"""Property-based test: tuple visibility against an independent
reference model.

Hypothesis generates arbitrary tuple headers, commit-log states, and
snapshots; the production visibility code must agree with a
brute-force reference implementation of the MVCC rules, and the
SSI-relevant classification flags must be internally consistent.
"""

from hypothesis import given, settings, strategies as st

from repro.mvcc.clog import CommitLog, XidStatus
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.visibility import TxnView, tuple_visibility
from repro.storage.tuple import HeapTuple, TID

MY_XID = 50
XIDS = list(range(3, 12)) + [MY_XID]

statuses = st.sampled_from([XidStatus.IN_PROGRESS, XidStatus.COMMITTED,
                            XidStatus.ABORTED])


@st.composite
def scenarios(draw):
    clog = CommitLog()
    status = {}
    for xid in XIDS:
        clog.register(xid)
        state = draw(statuses)
        status[xid] = state
        if state is XidStatus.COMMITTED:
            clog.set_committed([xid])
        elif state is XidStatus.ABORTED:
            clog.set_aborted([xid])
    # My transaction is in progress by definition.
    status[MY_XID] = XidStatus.IN_PROGRESS
    clog._status[MY_XID] = XidStatus.IN_PROGRESS

    xmin = draw(st.sampled_from(XIDS))
    has_xmax = draw(st.booleans())
    xmax = draw(st.sampled_from(XIDS)) if has_xmax else 0
    lock_only = draw(st.booleans()) if has_xmax else False
    cmin = draw(st.integers(0, 3))
    cmax = draw(st.integers(0, 3))
    curcid = draw(st.integers(0, 3))

    # Snapshot: choose a set of xids regarded in-progress at snapshot
    # time; xmax bound above every xid.
    xip = frozenset(x for x in XIDS
                    if draw(st.booleans()) or x == MY_XID)
    snapshot = Snapshot(xmin=min(XIDS), xmax=max(XIDS) + 1, xip=xip)
    tup = HeapTuple(tid=TID(0, 0), data={}, xmin=xmin, cmin=cmin,
                    xmax=xmax, cmax=cmax, xmax_lock_only=lock_only)
    return clog, status, snapshot, tup, curcid


def reference_visible(clog, status, snapshot, tup, curcid) -> bool:
    """Brute-force restatement of the MVCC visibility rules."""
    def creator_visible() -> bool:
        if status[tup.xmin] is XidStatus.ABORTED:
            return False
        if tup.xmin == MY_XID:
            return tup.cmin < curcid
        return (status[tup.xmin] is XidStatus.COMMITTED
                and tup.xmin not in snapshot.xip)

    def deleter_hides() -> bool:
        if tup.xmax == 0 or tup.xmax_lock_only:
            return False
        if status[tup.xmax] is XidStatus.ABORTED:
            return False
        if tup.xmax == MY_XID:
            return tup.cmax < curcid
        return (status[tup.xmax] is XidStatus.COMMITTED
                and tup.xmax not in snapshot.xip)

    return creator_visible() and not deleter_hides()


@settings(max_examples=300, deadline=None)
@given(scenarios())
def test_matches_reference_model(scenario):
    clog, status, snapshot, tup, curcid = scenario
    view = TxnView(xids=frozenset({MY_XID}), curcid=curcid)
    result = tuple_visibility(tup, snapshot, view, clog)
    assert result.visible == reference_visible(clog, status, snapshot,
                                               tup, curcid)


@settings(max_examples=300, deadline=None)
@given(scenarios())
def test_classification_flags_consistent(scenario):
    clog, status, snapshot, tup, curcid = scenario
    view = TxnView(xids=frozenset({MY_XID}), curcid=curcid)
    result = tuple_visibility(tup, snapshot, view, clog)
    # creator_concurrent only on invisible tuples with a live foreign
    # creator outside the snapshot.
    if result.creator_concurrent:
        assert not result.visible
        assert tup.xmin != MY_XID
        assert status[tup.xmin] is not XidStatus.ABORTED
        assert (tup.xmin in snapshot.xip
                or status[tup.xmin] is XidStatus.IN_PROGRESS)
        assert result.creator_xid == tup.xmin
    # deleter_concurrent only on visible tuples with a real (non-lock)
    # foreign deleter outside the snapshot.
    if result.deleter_concurrent:
        assert result.visible
        assert tup.xmax not in (0, MY_XID)
        assert not tup.xmax_lock_only
        assert status[tup.xmax] is not XidStatus.ABORTED
        assert result.deleter_xid == tup.xmax
    # The two flags never coincide.
    assert not (result.creator_concurrent and result.deleter_concurrent)
