"""Witness-order replay: the serializability checker's topological
order must be *operationally* equivalent to the concurrent execution.

For random update/read/scan programs run under SERIALIZABLE through
the deterministic scheduler, we take the checker's witness serial
order (section 3.1: "the serial order can be determined using a
topological sort") and re-execute the committed transactions' writes
in that order against a plain dictionary. The final state must equal
the database's actual final state -- a validation of the whole stack
(engine semantics, history recording, graph construction) that no
single component can fake.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.config import EngineConfig
from repro.engine import Between, Database, Eq, IsolationLevel
from repro.sim import Client, Scheduler, ops
from repro.verify import check_serializable
from repro.verify.history import INITIAL_XID

KEYSPACE = 8
SER = IsolationLevel.SERIALIZABLE

read_op = st.tuples(st.just("read"), st.integers(0, KEYSPACE - 1))
scan_op = st.tuples(st.just("scan"), st.integers(0, KEYSPACE - 1),
                    st.integers(0, KEYSPACE - 1))
update_op = st.tuples(st.just("update"), st.integers(0, KEYSPACE - 1),
                      st.integers(0, 1000))

txn_program = st.lists(st.one_of(read_op, scan_op, update_op),
                       min_size=1, max_size=5)
client_programs = st.lists(st.lists(txn_program, min_size=1, max_size=3),
                           min_size=2, max_size=4)


def run_history(programs, seed):
    db = Database(EngineConfig(record_history=True))
    db.create_table("t", ["k", "v"], key="k")
    setup = db.session()
    setup.begin()
    for k in range(KEYSPACE):
        setup.insert("t", {"k": k, "v": -1})
    setup.commit()
    scheduler = Scheduler(db, seed=seed)
    for cid, txns in enumerate(programs):
        queue = [tuple(actions) for actions in reversed(txns)]

        def source(queue=queue):
            if not queue:
                return None
            actions = queue.pop()

            def program(actions=actions):
                yield ops.begin(SER)
                for action in actions:
                    if action[0] == "read":
                        yield ops.select("t", Eq("k", action[1]))
                    elif action[0] == "scan":
                        lo, hi = sorted(action[1:3])
                        yield ops.select("t", Between("k", lo, hi))
                    else:
                        _kind, key, value = action
                        yield ops.update("t", Eq("k", key), {"v": value})
                yield ops.commit()

            return ("txn", program)

        scheduler.add_client(Client(cid, db.session(), source))
    scheduler.run(max_steps=4000)
    return db


# Each committed transaction's writes are derived from the recorder
# itself (it knows the writer xid and contents of every version), so
# programs need no xid bookkeeping.


def replay_final_state(recorder, order):
    """Apply committed writes in witness order to a dict."""
    state = {k: -1 for k in range(KEYSPACE)}
    writes_by_xid = {}
    for vid, info in recorder.versions.items():
        if info.creator_xid in (INITIAL_XID,):
            continue
        writes_by_xid.setdefault(info.creator_xid, []).append(info)
    for xid in order:
        for info in writes_by_xid.get(xid, []):
            key = info.data.get("k")
            if key is not None:
                state[key] = info.data.get("v")
    return state


def actual_final_state(db):
    return {row["k"]: row["v"] for row in db.session().select("t")
            if row["k"] < KEYSPACE}


@settings(max_examples=30, deadline=None)
@given(programs=client_programs, seed=st.integers(0, 500))
def test_witness_order_reproduces_final_state(programs, seed):
    db = run_history(programs, seed)
    result = check_serializable(db.recorder)
    assert result.serializable
    order = result.serial_order
    assert order is not None
    # A transaction may write the same key several times; within one
    # transaction version order is creation order, which the recorder
    # preserves (list append). Replay and compare.
    assert replay_final_state(db.recorder, order) == actual_final_state(db)


@settings(max_examples=30, deadline=None)
@given(programs=client_programs, seed=st.integers(0, 500))
def test_reads_consistent_with_witness_order(programs, seed):
    """Every version a committed transaction read must be current at
    its position in the witness order: created before it, replaced (if
    ever) after it."""
    db = run_history(programs, seed)
    result = check_serializable(db.recorder)
    assert result.serializable
    position = {xid: i for i, xid in enumerate(result.serial_order)}
    recorder = db.recorder
    for read in recorder.reads:
        if read.xid not in position:
            continue
        for vid in read.versions:
            info = recorder.versions[vid]
            creator = info.creator_xid
            if creator in position and creator != read.xid:
                assert position[creator] < position[read.xid]
            replacer = info.replacer_xid
            if (replacer is not None and replacer in position
                    and replacer != read.xid):
                assert position[read.xid] < position[replacer]
