"""Runtime invariant sanitizers (repro.analysis.sanitize): each test
seeds one specific corruption and asserts the matching violation; a
clean engine must always pass."""

import pytest

from repro.analysis.sanitize import (HeapSanitizer, LockLeakSanitizer,
                                     SSISanitizer, SanitizerRunner,
                                     SanitizerViolation)
from repro.config import EngineConfig, SanitizerConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.locks.modes import LockMode
from repro.mvcc.xid import INVALID_XID

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t", ["id", "v"], key="id")
    s = database.session()
    for i in range(6):
        s.insert("t", {"id": i, "v": 0})
    return database


def retained_reader(db):
    """Commit a serializable reader while another serializable txn is
    still active, so its sxact stays on the committed-retained list
    with its SIREAD locks (paper section 4.7)."""
    holdover, reader = db.session(), db.session()
    holdover.begin(SER)
    holdover.select("t", Eq("id", 0))
    reader.begin(SER)
    xid = reader.txn.xid
    reader.select("t")
    reader.commit()
    sx = db.ssi.sxact_for_xid(xid)
    assert sx is not None and sx.committed
    assert sx in db.ssi.committed_retained()
    return sx


def raises_invariant(check, invariant, sanitizer):
    with pytest.raises(SanitizerViolation) as exc_info:
        check()
    violation = exc_info.value
    assert violation.invariant == invariant
    assert violation.sanitizer == sanitizer
    assert str(violation).startswith(f"[{sanitizer}:{invariant}]")
    return violation


class TestCleanEngine:
    def test_all_sanitizers_pass(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s1.update("t", Eq("id", 0), {"v": 1})
        s2.begin(SER)
        s2.select("t")
        SSISanitizer(db).check()
        HeapSanitizer(db).check()
        LockLeakSanitizer(db).check()
        s1.commit()
        s2.commit()
        runner = SanitizerRunner(db)
        runner.check_now()
        assert runner.stats()["ssi"] == 1

    def test_violation_is_an_assertion_error(self):
        assert issubclass(SanitizerViolation, AssertionError)


class TestSSISanitizer:
    def test_siread_stale_holder(self, db):
        sx = retained_reader(db)
        sx.locks_released = True  # cleanup lied: locks are still there
        raises_invariant(lambda: SSISanitizer(db).check(),
                         "siread-stale-holder", "ssi")

    def test_siread_unknown_holder(self, db):
        sx = retained_reader(db)
        db.ssi._committed.remove(sx)  # leak the sxact past tracking
        raises_invariant(lambda: SSISanitizer(db).check(),
                         "siread-unknown-holder", "ssi")

    def test_per_txn_mode_skips_lock_table_sweep(self, db):
        sx = retained_reader(db)
        sx.locks_released = True
        SSISanitizer(db).check(sweep=False)  # cheap mode: no table scan

    def test_conflict_asymmetry(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s1.select("t", Eq("id", 0))
        s2.begin(SER)
        s2.select("t", Eq("id", 1))
        sx1 = db.ssi.sxact_for_xid(s1.txn.xid)
        sx2 = db.ssi.sxact_for_xid(s2.txn.xid)
        sx1.out_conflicts.add(sx2)  # one-sided edge
        raises_invariant(lambda: SSISanitizer(db).check(),
                         "conflict-asymmetry", "ssi")

    def test_conflict_dangling(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s1.select("t", Eq("id", 0))
        s2.begin(SER)
        aborted = db.ssi.sxact_for_xid(s2.txn.xid)
        s2.rollback()
        assert aborted.aborted
        sx1 = db.ssi.sxact_for_xid(s1.txn.xid)
        sx1.in_conflicts.add(aborted)  # abort should have unlinked this
        raises_invariant(lambda: SSISanitizer(db).check(),
                         "conflict-dangling", "ssi")

    def test_earliest_out_monotone(self, db):
        writer = retained_reader(db)
        s = db.session()
        s.begin(SER)
        reader = db.ssi.sxact_for_xid(s.txn.xid)
        reader.out_conflicts.add(writer)
        writer.in_conflicts.add(reader)
        assert reader.earliest_out_commit_seq > writer.cseq
        raises_invariant(lambda: SSISanitizer(db).check(),
                         "earliest-out-monotone", "ssi")

    def test_doom_without_info(self, db):
        s = db.session()
        s.begin(SER)
        sx = db.ssi.sxact_for_xid(s.txn.xid)
        sx.doomed = True
        assert sx.doom_info is None
        raises_invariant(lambda: SSISanitizer(db).check(),
                         "doom-without-info", "ssi")

    def test_lifecycle_finished_in_active_set(self, db):
        sx = retained_reader(db)
        db.ssi._active.add(sx)  # committed sxact back in the active set
        raises_invariant(lambda: SSISanitizer(db).check(),
                         "lifecycle-state", "ssi")

    def test_violation_carries_state_dump(self, db):
        sx = retained_reader(db)
        sx.locks_released = True
        violation = raises_invariant(lambda: SSISanitizer(db).check(),
                                     "siread-stale-holder", "ssi")
        assert "active transactions" in violation.dump
        assert "committed-retained" in violation.dump
        assert violation.render().count("\n") >= 2


class TestHeapSanitizer:
    def corrupt_tuple(self, db):
        heap = db.relation("t").heap
        return heap, next(heap.scan())

    def test_xmin_unstamped(self, db):
        _, tup = self.corrupt_tuple(db)
        tup.xmin = INVALID_XID
        raises_invariant(lambda: HeapSanitizer(db).check(),
                         "xmin-unstamped", "heap")

    def test_chain_without_deleter(self, db):
        _, tup = self.corrupt_tuple(db)
        tup.next_tid = tup.tid
        assert tup.xmax == INVALID_XID
        raises_invariant(lambda: HeapSanitizer(db).check(),
                         "chain-without-deleter", "heap")

    def test_hint_contradiction(self, db):
        _, tup = self.corrupt_tuple(db)
        tup.xmin_committed = True
        tup.xmin_aborted = True
        raises_invariant(lambda: HeapSanitizer(db).check(),
                         "hint-contradiction", "heap")

    def test_hint_clog_disagreement(self, db):
        _, tup = self.corrupt_tuple(db)
        assert db.clog.did_commit(tup.xmin)
        tup.xmin_committed = False
        tup.xmin_aborted = True  # hint contradicts the commit log
        violation = raises_invariant(lambda: HeapSanitizer(db).check(),
                                     "hint-clog-disagreement", "heap")
        assert violation.subject["hint"] == "xmin_aborted"

    def test_chain_cycle(self, db):
        _, tup = self.corrupt_tuple(db)
        tup.xmax = tup.xmin  # stamped deleter so the chain is "real"
        tup.next_tid = tup.tid
        raises_invariant(lambda: HeapSanitizer(db).check(),
                         "chain-cycle", "heap")

    def test_vismap_not_all_visible(self, db):
        heap, tup = self.corrupt_tuple(db)
        tup.xmax = tup.xmin  # committed deleter on the page
        heap.vismap.set_all_visible(tup.tid.page)
        raises_invariant(lambda: HeapSanitizer(db).check(),
                         "vismap-not-all-visible", "heap")

    def test_fsm_missing_page(self):
        config = EngineConfig()
        db = Database(config)
        db.create_table("big", ["id"], key="id")
        s = db.session()
        for i in range(2 * config.heap_page_size + 1):
            s.insert("big", {"id": i})
        heap = db.relation("big").heap
        assert heap.page_count >= 3
        HeapSanitizer(db).check()
        # Physically free a slot on a full non-tail page behind the
        # FSM's back: the page now has room no insert can find.
        page = next(heap.scan_pages())
        assert not page.has_room()
        page.remove(0)
        if heap.uses_fsm:
            assert page.page_no not in heap.fsm_entries()
        raises_invariant(lambda: HeapSanitizer(db).check(),
                         "fsm-missing-page", "heap")


class TestLockLeakSanitizer:
    def test_lock_leak_at_txn_end(self, db):
        db.lockmgr.acquire(999, ("rel", 1), LockMode.SHARE)
        violation = raises_invariant(
            lambda: LockLeakSanitizer(db).check_txn_end(999),
            "lock-leak-txn-end", "locks")
        assert violation.subject["xid"] == 999

    def test_orphan_owner_sweep(self, db):
        db.lockmgr.acquire(999, ("rel", 1), LockMode.SHARE)
        raises_invariant(lambda: LockLeakSanitizer(db).check(),
                         "lock-orphan-owner", "locks")

    def test_other_txns_locks_are_not_leaks(self, db):
        s = db.session()
        s.begin(SER)
        s.update("t", Eq("id", 0), {"v": 9})  # holds real locks
        LockLeakSanitizer(db).check()
        LockLeakSanitizer(db).check_txn_end(999_999)
        s.commit()


class TestRunnerWiring:
    def test_sanitizers_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert Database(EngineConfig()).sanitizers is None

    def test_config_enables_runner(self):
        config = EngineConfig()
        config.sanitize = SanitizerConfig.all_on()
        assert Database(config).sanitizers is not None

    def test_env_flag_forces_runner(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert Database(EngineConfig()).sanitizers is not None

    def test_commit_hook_catches_release_all_bypass(self, monkeypatch):
        config = EngineConfig()
        config.sanitize = SanitizerConfig.all_on()
        db = Database(config)
        db.create_table("t", ["id"], key="id")
        s = db.session()
        s.insert("t", {"id": 1})
        monkeypatch.setattr(db.lockmgr, "release_all", lambda owner: 0)
        s.begin(SER)
        s.insert("t", {"id": 2})
        with pytest.raises(SanitizerViolation) as exc_info:
            s.commit()
        assert exc_info.value.invariant == "lock-leak-txn-end"

    def test_sweep_interval_batches_heap_checks(self, db):
        db.config.sanitize = SanitizerConfig.all_on(sweep_interval=4)
        runner = SanitizerRunner(db)
        for _ in range(8):
            s = db.session()
            s.begin(SER)
            s.select("t", Eq("id", 0))
            s.commit()
            runner.on_txn_end(type("Txn", (), {"xid": 0})())
        stats = runner.stats()
        assert stats["sweeps"] == 2
        assert stats["heap"] == 2
        assert stats["ssi"] == 8
