"""Streaming replication and safe snapshots on replicas (section 7.2)."""

import threading
import time

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import (FeatureNotSupportedError, RetryableError,
                          StatementTimeout)
from repro.replication import Replica, ReplicaReadMode

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def master():
    db = Database(EngineConfig())
    db.create_table("control", ["id", "batch"], key="id")
    db.create_table("receipts", ["rid", "batch", "amount"], key="rid")
    s = db.session()
    s.insert("control", {"id": 0, "batch": 1})
    return db


class TestLogShipping:
    def test_changes_replicate(self, master):
        replica = Replica(master)
        s = master.session()
        s.insert("receipts", {"rid": 1, "batch": 1, "amount": 5})
        s.update("control", Eq("id", 0), {"batch": 2})
        replica.catch_up()
        assert replica.query("receipts") == [
            {"rid": 1, "batch": 1, "amount": 5}]
        assert replica.query("control")[0]["batch"] == 2

    def test_deletes_replicate(self, master):
        replica = Replica(master)
        s = master.session()
        s.insert("receipts", {"rid": 1, "batch": 1, "amount": 5})
        s.delete("receipts", Eq("rid", 1))
        replica.catch_up()
        assert replica.query("receipts") == []

    def test_uncommitted_changes_do_not_replicate(self, master):
        replica = Replica(master)
        s = master.session()
        s.begin(SER)
        s.insert("receipts", {"rid": 1, "batch": 1, "amount": 5})
        replica.catch_up()
        assert replica.query("receipts") == []
        s.commit()
        replica.catch_up()
        assert len(replica.query("receipts")) == 1

    def test_aborted_changes_never_ship(self, master):
        replica = Replica(master)
        s = master.session()
        s.begin(SER)
        s.insert("receipts", {"rid": 1, "batch": 1, "amount": 5})
        s.rollback()
        replica.catch_up()
        assert replica.query("receipts") == []

    def test_incremental_catch_up(self, master):
        replica = Replica(master)
        s = master.session()
        s.insert("receipts", {"rid": 1, "batch": 1, "amount": 5})
        assert replica.catch_up() >= 1
        assert replica.catch_up() == 0
        s.insert("receipts", {"rid": 2, "batch": 1, "amount": 6})
        assert replica.catch_up() == 1


class TestSafeSnapshotsOnReplica:
    def test_serializable_requires_safe_snapshot(self, master):
        replica = Replica(master)
        with pytest.raises(FeatureNotSupportedError):
            replica.query("control", mode=ReplicaReadMode.LATEST_SAFE)

    def test_safe_marker_enables_serializable_reads(self, master):
        replica = Replica(master)
        s = master.session()
        s.insert("receipts", {"rid": 1, "batch": 1, "amount": 5})
        replica.catch_up()
        # The autocommit insert ran with no other r/w serializable
        # transactions active, so its commit record carries the marker.
        assert replica.has_safe_snapshot
        rows = replica.query("receipts", mode=ReplicaReadMode.LATEST_SAFE)
        assert len(rows) == 1

    def test_unsafe_window_holds_back_safe_state(self, master):
        """While a r/w serializable transaction is open on the master,
        commits are not safe points; the safe state lags."""
        replica = Replica(master)
        s = master.session()
        s.insert("receipts", {"rid": 1, "batch": 1, "amount": 5})
        long_txn = master.session()
        long_txn.begin(SER)
        long_txn.select("control", Eq("id", 0))  # keep it active & r/w
        s2 = master.session()
        s2.insert("receipts", {"rid": 2, "batch": 1, "amount": 6})
        replica.catch_up()
        # Latest state has both rows; safe state is stale.
        assert len(replica.query("receipts")) == 2
        assert len(replica.query("receipts",
                                 mode=ReplicaReadMode.LATEST_SAFE)) == 1
        assert replica.safe_snapshot_lag >= 1
        long_txn.commit()
        s3 = master.session()
        s3.insert("receipts", {"rid": 3, "batch": 1, "amount": 7})
        replica.catch_up()
        assert len(replica.query("receipts",
                                 mode=ReplicaReadMode.LATEST_SAFE)) == 3

    def test_report_anomaly_prevented_on_safe_snapshot(self, master):
        """The section 7.2 scenario: the REPORT query runs on the
        standby. On the latest state it can expose the batch-processing
        anomaly; on the safe snapshot it cannot, because the safe state
        is a prefix of the apparent serial order."""
        replica = Replica(master)
        t2 = master.session()   # NEW-RECEIPT, still open
        t2.begin(SER)
        batch = t2.select("control", Eq("id", 0))[0]["batch"]
        t3 = master.session()   # CLOSE-BATCH
        t3.begin(SER)
        t3.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
        t3.commit()             # not a safe point: t2 still active
        replica.catch_up()
        # REPORT on the replica's LATEST state: sees batch closed and
        # batch-1 total = 0. Then t2's receipt lands in batch 1 ->
        # anomaly (the total changed after the report).
        latest_ctrl = replica.query("control")[0]["batch"]
        assert latest_ctrl == 2
        latest_total = sum(r["amount"] for r in replica.query(
            "receipts", Eq("batch", 1)))
        assert latest_total == 0
        t2.insert("receipts", {"rid": 1, "batch": batch, "amount": 10})
        t2.commit()  # allowed on the master: no dangerous structure
        #              without the REPORT transaction (section 3.3) --
        #              the replica read was invisible to the master.
        replica.catch_up()
        new_total = sum(r["amount"] for r in replica.query(
            "receipts", Eq("batch", 1)))
        assert new_total == 10  # the anomaly: report said 0, now 10
        # The safe snapshot never showed the closed batch with total 0:
        # safe points only exist where no r/w txn was active.
        safe_ctrl = replica.query("control",
                                  mode=ReplicaReadMode.LATEST_SAFE)
        safe_total = sum(r["amount"] for r in replica.query(
            "receipts", Eq("batch", 1),
            mode=ReplicaReadMode.LATEST_SAFE))
        assert (safe_ctrl[0]["batch"], safe_total) in ((1, 0), (2, 10))


class TestWaitSafeMode:
    """SERIALIZABLE READ ONLY DEFERRABLE on the standby: WAIT_SAFE
    waits (bounded) for a safe snapshot instead of failing fast."""

    def busy_master(self):
        """A master that never produced a safe point: a serializable
        r/w transaction has been active since before its first commit."""
        db = Database(EngineConfig())
        db.create_table("control", ["id", "batch"], key="id")
        hog = db.session()
        hog.begin(SER)
        hog.insert("control", {"id": 99, "batch": 0})
        s = db.session()
        s.insert("control", {"id": 0, "batch": 1})  # marker: unsafe
        return db, hog

    def test_wait_safe_reads_when_marker_exists(self, master):
        replica = Replica(master)
        rows = replica.query("control", mode=ReplicaReadMode.WAIT_SAFE)
        assert rows[0]["batch"] == 1

    def test_wait_safe_timeout_raises_retryable_57014(self):
        db, hog = self.busy_master()
        replica = Replica(db)
        with pytest.raises(StatementTimeout) as exc:
            replica.query("control", mode=ReplicaReadMode.WAIT_SAFE,
                          wait_timeout=0.05)
        assert exc.value.sqlstate == "57014"
        assert isinstance(exc.value, RetryableError)
        hog.rollback()

    def test_wait_absorbs_marker_appearing_mid_wait(self):
        db, hog = self.busy_master()
        replica = Replica(db)

        def finish():
            time.sleep(0.05)
            hog.commit()          # master quiesces
            db.session().insert("control", {"id": 1, "batch": 2})

        t = threading.Thread(target=finish)
        t.start()
        rows = replica.query("control", mode=ReplicaReadMode.WAIT_SAFE,
                             wait_timeout=5.0)
        t.join()
        assert {r["id"] for r in rows} >= {0, 99}

    def test_safe_snapshot_lag_gauge_tracks_staleness(self):
        db, hog = self.busy_master()
        replica = Replica(db, name="standby-1")
        gauge = db.obs.metrics.gauge("replica.safe_snapshot_lag",
                                     replica="standby-1")
        replica.catch_up()
        assert gauge.read() == replica.safe_snapshot_lag > 0
        hog.commit()
        db.session().insert("control", {"id": 1, "batch": 2})
        replica.catch_up()
        assert replica.has_safe_snapshot
        assert gauge.read() == 0
