"""Tests for the latching discipline (repro.engine.latches): rank
ordering enforcement, reentrancy, and condition-variable parking."""

import threading
import time

import pytest

from repro.engine.latches import (EngineLatch, Latch, LatchOrderError,
                                  RANK_CONNECTIONS, RANK_ENGINE,
                                  RANK_METRICS, RANK_WIRE)


class TestOrdering:
    def test_ranks_are_strictly_increasing(self):
        assert RANK_ENGINE < RANK_CONNECTIONS < RANK_WIRE < RANK_METRICS

    def test_increasing_rank_acquisition_allowed(self):
        low = Latch("low", RANK_ENGINE)
        high = Latch("high", RANK_WIRE)
        with low:
            with high:
                assert low.held_by_me() and high.held_by_me()
        assert not low.held_by_me() and not high.held_by_me()

    def test_decreasing_rank_acquisition_raises(self):
        low = Latch("low", RANK_ENGINE)
        high = Latch("high", RANK_WIRE)
        with high:
            with pytest.raises(LatchOrderError):
                low.acquire()

    def test_equal_rank_different_latch_raises(self):
        a = Latch("a", RANK_WIRE)
        b = Latch("b", RANK_WIRE)
        with a:
            with pytest.raises(LatchOrderError):
                b.acquire()

    def test_reentrant_acquisition_allowed(self):
        latch = Latch("latch", RANK_ENGINE)
        with latch:
            with latch:
                assert latch.held_by_me()
            assert latch.held_by_me()
        assert not latch.held_by_me()

    def test_order_tracking_is_per_thread(self):
        high = Latch("high", RANK_METRICS)
        low = Latch("low", RANK_ENGINE)
        acquired = threading.Event()
        release = threading.Event()

        def holder():
            with high:
                acquired.set()
                release.wait(5)

        thread = threading.Thread(target=holder)
        thread.start()
        assert acquired.wait(5)
        # This thread holds nothing; the low-rank acquire is legal even
        # though another thread currently holds a high-rank latch.
        with low:
            pass
        release.set()
        thread.join(5)
        assert not thread.is_alive()


class TestEngineLatchParking:
    def test_park_returns_when_condition_ready(self):
        latch = EngineLatch()
        flag = {"ready": False}

        def wake():
            time.sleep(0.05)
            with latch:
                flag["ready"] = True
                latch.notify_all()

        thread = threading.Thread(target=wake)
        thread.start()
        with latch:
            assert latch.park(lambda: flag["ready"]) is True
        thread.join(5)
        assert latch.parks == 1
        assert latch.park_timeouts == 0

    def test_park_times_out(self):
        latch = EngineLatch()
        with latch:
            deadline = time.monotonic() + 0.05
            assert latch.park(lambda: False, deadline=deadline) is False
        assert latch.park_timeouts == 1

    def test_park_releases_latch_while_waiting(self):
        """The whole point of parking: another thread can take the
        latch (and satisfy the condition) while the parker sleeps."""
        latch = EngineLatch()
        flag = {"ready": False}
        entered = []

        def other():
            with latch:  # would deadlock if park held the latch
                entered.append(True)
                flag["ready"] = True
                latch.notify_all()

        thread = threading.Thread(target=other)
        with latch:
            thread.start()
            assert latch.park(lambda: flag["ready"]) is True
        thread.join(5)
        assert entered == [True]

    def test_bow_yields_the_latch(self):
        latch = EngineLatch()
        taken = []

        def contender():
            with latch:
                taken.append(True)
                latch.notify_all()

        thread = threading.Thread(target=contender)
        with latch:
            thread.start()
            # Bow until the contender got its turn (bounded wait: bow
            # releases the latch, so the contender cannot starve).
            deadline = time.monotonic() + 5
            while not taken and time.monotonic() < deadline:
                latch.bow()
        thread.join(5)
        assert taken == [True]

    def test_immediate_condition_skips_sleep(self):
        latch = EngineLatch()
        with latch:
            assert latch.park(lambda: True) is True
