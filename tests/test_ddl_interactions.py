"""DDL and index-type interactions with SSI (paper sections 5.2.1, 7.4).

SIREAD locks outlive their transaction, so DDL cannot simply wait for
them the way it waits for table locks: table rewrites must *promote*
surviving physical locks to relation granularity, and DROP INDEX must
transfer index-gap locks to the heap relation. The tests pin a
concurrent transaction open so committed readers' SIREAD locks are
retained across the DDL (section 6.1's cleanup would otherwise drop
them as unnecessary).
"""

import pytest

from repro.config import EngineConfig
from repro.engine import Between, Database, Eq, IsolationLevel
from repro.errors import SerializationFailure, WouldBlock
from repro.locks.modes import LockMode

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t", ["k", "v"], key="k")
    s = database.session()
    for k in range(40):
        s.insert("t", {"k": k, "v": 0})
    return database


@pytest.fixture
def pin(db):
    """An idle concurrent transaction that keeps committed
    transactions' SIREAD locks alive."""
    session = db.session()
    session.begin(SER)
    yield session
    if session.txn is not None:
        session.rollback()


class TestTableRewrite:
    def test_rewrite_promotes_committed_siread_locks(self, db, pin):
        r = db.session()
        r.begin(SER)
        r.select("t", Eq("k", 1))  # tuple + index-page SIREAD locks
        sx = r.txn.sxact
        fine = {t[0] for t in db.ssi.lockmgr.targets_held(sx)}
        assert "t" in fine or "ip" in fine
        r.commit()
        assert db.ssi.lockmgr.targets_held(sx)  # retained: pin is open
        db.session().recluster_table("t")
        kinds = {t[0] for t in db.ssi.lockmgr.targets_held(sx)}
        assert kinds == {"r"}, f"expected only relation locks, got {kinds}"

    def test_rewrite_keeps_conflict_detection(self, db, pin):
        """After the rewrite moves tuples, the promoted relation lock
        must still flag writers against the committed reader."""
        r = db.session()
        r.begin(SER)
        r.select("t", Eq("k", 1))
        sx = r.txn.sxact
        r.commit()
        db.session().recluster_table("t")
        w = db.session()
        w.begin(SER)
        w.update("t", Eq("k", 1), {"v": 5})
        assert sx in w.txn.sxact.in_conflicts  # r -rw-> w survived DDL
        w.rollback()

    def test_rewrite_compacts_dead_tuples(self, db):
        s = db.session()
        for i in range(10):
            s.update("t", Eq("k", 1), {"v": i})
        rel = db.relation("t")
        assert sum(1 for _ in rel.heap.scan()) > 40
        db.session().recluster_table("t")
        rel = db.relation("t")
        assert sum(1 for _ in rel.heap.scan()) == 40
        assert s.select("t", Eq("k", 1))[0]["v"] == 9

    def test_rewrite_blocks_behind_open_transaction(self, db):
        r = db.session()
        r.begin(SER)
        r.select("t", Eq("k", 1))  # holds ACCESS_SHARE table lock
        ddl = db.session()
        with pytest.raises(WouldBlock):
            ddl.recluster_table("t")
        r.commit()
        ddl.resume()
        assert len(db.session().select("t")) == 40


class TestDropIndex:
    def test_drop_index_transfers_gap_locks_to_heap(self, db, pin):
        r = db.session()
        r.begin(SER)
        assert r.select("t", Between("k", 50, 60)) == []  # gap lock only
        sx = r.txn.sxact
        assert any(t[0] == "ip" for t in db.ssi.lockmgr.targets_held(sx))
        r.commit()
        db.session().drop_index("t_pkey")
        targets = db.ssi.lockmgr.targets_held(sx)
        assert not any(t[0] in ("ip", "ir") for t in targets)
        assert ("r", db.relation("t").oid) in targets

    def test_phantom_still_detected_after_concurrent_index_drop(self, db):
        """Mid-flight index drop (DROP INDEX CONCURRENTLY takes no
        blocking table lock): the reader's gap locks move to the heap
        relation and must still catch the phantom insert."""
        r = db.session()
        r.begin(SER)
        assert r.select("t", Between("k", 50, 60)) == []
        r.update("t", Eq("k", 1), {"v": 1})
        rel = db.relation("t")
        index = rel.indexes["t_pkey"]
        rel.drop_index("t_pkey")
        db.ssi.lockmgr.transfer_index_to_heap(index.oid, rel.oid)
        w = db.session()
        w.begin(SER)
        w.select("t", Eq("k", 1))            # w -rw-> r (r wrote k=1)
        w.insert("t", {"k": 55, "v": 1})     # r -rw-> w (phantom)
        r.commit()
        with pytest.raises(SerializationFailure):
            w.commit()


class TestHashIndexFallback:
    def test_hash_scan_locks_whole_index_relation(self, db):
        db.create_table("h", ["k", "v"])
        db.create_index("h", "k", using="hash")
        s = db.session()
        s.insert("h", {"k": "a", "v": 1})
        r = db.session()
        r.begin(SER)
        r.select("h", Eq("k", "a"))
        targets = db.ssi.lockmgr.targets_held(r.txn.sxact)
        assert any(t[0] == "ir" for t in targets), targets
        r.rollback()

    def test_hash_fallback_detects_phantoms(self, db):
        """Even equality scans through a hash index must detect a
        concurrent insert of a matching row, via the index-relation
        lock (section 7.4)."""
        db.create_table("h", ["k", "v"])
        db.create_index("h", "k", using="hash")
        setup = db.session()
        setup.insert("h", {"k": "x", "v": 0})
        r, w = db.session(), db.session()
        r.begin(SER)
        w.begin(SER)
        assert r.select("h", Eq("k", "zzz")) == []   # empty hash lookup
        r.update("h", Eq("k", "x"), {"v": 1})        # r writes
        w.select("h", Eq("k", "x"))                  # w -rw-> r
        w.insert("h", {"k": "zzz", "v": 1})          # r -rw-> w
        r.commit()
        with pytest.raises(SerializationFailure):
            w.commit()


class TestBtreePageSplits:
    def test_gap_locks_follow_page_splits(self):
        """A reader's gap lock must keep covering its key range after
        concurrent inserts split the page (PredicateLockPageSplit)."""
        cfg = EngineConfig()
        cfg.btree_page_size = 4  # tiny pages: splits happen fast
        sdb = Database(cfg)
        sdb.create_table("t", ["k", "v"], key="k")
        s = sdb.session()
        for k in range(0, 40, 10):
            s.insert("t", {"k": k, "v": 0})
        r, w = sdb.session(), sdb.session()
        r.begin(SER)
        w.begin(SER)
        assert r.select("t", Between("k", 11, 19)) == []  # gap lock
        r.update("t", Eq("k", 0), {"v": 1})
        # w inserts many keys, forcing splits of the locked page,
        # ending with one inside r's scanned gap.
        w.select("t", Eq("k", 0))
        for k in (1, 2, 3, 4, 5, 6, 7, 8, 9, 15):
            w.insert("t", {"k": k, "v": 1})
        r.commit()
        with pytest.raises(SerializationFailure):
            w.commit()


class TestExplicitLocking:
    def test_explicit_lock_table_workaround(self, db):
        """Section 2.2: explicit LOCK TABLE serializes conflicting
        transactions even under snapshot isolation."""
        s1, s2 = db.session(), db.session()
        s1.begin(IsolationLevel.REPEATABLE_READ)
        s2.begin(IsolationLevel.REPEATABLE_READ)
        s1.lock_table("t", LockMode.SHARE_ROW_EXCLUSIVE)
        with pytest.raises(WouldBlock):
            s2.lock_table("t", LockMode.SHARE_ROW_EXCLUSIVE)
        s1.update("t", Eq("k", 1), {"v": 1})
        s1.commit()
        s2.resume()
        s2.commit()
