"""Savepoints / subtransactions interacting with SSI (paper
section 7.3): SIREAD locks survive subtransaction rollback, and the
own-write SIREAD-drop optimization is disabled inside subtransactions
because the write lock could be rolled back while the read stands."""

import pytest

from repro.config import EngineConfig, SSIConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import SerializationFailure
from repro.ssi.targets import tuple_target

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t", ["k", "v"], key="k")
    s = database.session()
    for k in range(4):
        s.insert("t", {"k": k, "v": 0})
    return database


def held_tuple_targets(db, session):
    return {t for t in db.ssi.lockmgr.targets_held(session.txn.sxact)
            if t[0] == "t"}


class TestOwnWriteDrop:
    def test_top_level_write_drops_tuple_siread(self, db):
        s = db.session()
        s.begin(SER)
        s.select("t", Eq("k", 0))
        before = held_tuple_targets(db, s)
        assert before
        s.update("t", Eq("k", 0), {"v": 1})
        after = held_tuple_targets(db, s)
        # The read lock on the old version is subsumed by the write
        # lock in the tuple header (section 7.3).
        assert not (before & after)
        s.rollback()

    def test_write_inside_subxact_keeps_siread(self, db):
        s = db.session()
        s.begin(SER)
        s.select("t", Eq("k", 0))
        before = held_tuple_targets(db, s)
        s.savepoint("sp")
        s.update("t", Eq("k", 0), {"v": 1})
        after = held_tuple_targets(db, s)
        assert before & after, "SIREAD dropped inside a subtransaction"
        s.rollback()

    def test_optimization_can_be_disabled(self):
        db = Database(EngineConfig(
            ssi=SSIConfig(own_write_drops_siread=False)))
        db.create_table("t", ["k", "v"], key="k")
        db.session().insert("t", {"k": 0, "v": 0})
        s = db.session()
        s.begin(SER)
        s.select("t", Eq("k", 0))
        before = held_tuple_targets(db, s)
        s.update("t", Eq("k", 0), {"v": 1})
        assert before <= held_tuple_targets(db, s)
        s.rollback()

    def test_subxact_rollback_leaves_read_protected(self, db):
        """The section 7.3 hazard, end to end: read a tuple, update it
        inside a savepoint, roll the savepoint back. The write lock is
        gone, so a concurrent writer can take the tuple -- but the
        surviving SIREAD lock must still flag the rw-antidependency and
        the dangerous structure must still abort someone."""
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s1.select("t", Eq("k", 0))       # the protected read
        s1.savepoint("sp")
        s1.update("t", Eq("k", 0), {"v": 1})
        s1.rollback_to_savepoint("sp")   # write lock released
        s2.begin(SER)
        s2.select("t", Eq("k", 1))
        s2.update("t", Eq("k", 0), {"v": 2})  # takes the tuple freely
        s1.update("t", Eq("k", 1), {"v": 2})  # completes the cycle
        s2.commit()
        with pytest.raises(SerializationFailure):
            s1.commit()


class TestSubxactReads:
    def test_siread_from_aborted_subxact_survives(self, db):
        """Data read inside a rolled-back subtransaction "may have been
        reported to the user or otherwise externalized": its SIREAD
        locks belong to the top level and survive the rollback."""
        s = db.session()
        s.begin(SER)
        s.savepoint("sp")
        s.select("t", Eq("k", 2))
        s.rollback_to_savepoint("sp")
        assert any(t == tuple_target(db.relation("t").oid,
                                     _tid_of(db, 2))
                   for t in held_tuple_targets(db, s))
        # And it still drives conflict detection:
        w = db.session()
        w.begin(SER)
        w.update("t", Eq("k", 2), {"v": 9})
        assert s.txn.sxact in w.txn.sxact.in_conflicts
        w.rollback()
        s.commit()

    def test_subxact_write_skew_detected(self, db):
        """Write skew where each side's write happens inside a
        (released) savepoint: detection must be unaffected."""
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        s1.select("t", Eq("k", 0))
        s2.select("t", Eq("k", 1))
        s1.savepoint("a")
        s1.update("t", Eq("k", 1), {"v": 1})
        s1.release_savepoint("a")
        s2.savepoint("b")
        s2.update("t", Eq("k", 0), {"v": 1})
        s2.release_savepoint("b")
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()


def _tid_of(db, key):
    rel = db.relation("t")
    for tup in rel.heap.scan():
        if tup.data.get("k") == key and tup.xmax == 0:
            return tup.tid
    raise AssertionError(f"live tuple k={key} not found")
