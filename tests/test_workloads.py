"""Unit tests for the benchmark workloads."""

import random

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.workloads import (DBT2PP, DoctorsWorkload, ReceiptsWorkload,
                             RubisBidding, SIBench, run_workload)
from repro.workloads.dbt2pp import customer_key, district_key, order_key

SER = IsolationLevel.SERIALIZABLE
RR = IsolationLevel.REPEATABLE_READ


class TestSIBench:
    def test_setup_loads_table(self):
        db = Database(EngineConfig())
        SIBench(table_size=30).setup(db, random.Random(1))
        assert len(db.session().select("sibench")) == 30

    def test_mix_contains_both_types(self):
        result = run_workload(SIBench(table_size=20), isolation=RR,
                              n_clients=3, max_ticks=2000, seed=2)
        assert result.by_type.get("update", 0) > 0
        assert result.by_type.get("query", 0) > 0

    def test_update_fraction_respected(self):
        wl = SIBench(table_size=20, update_fraction=0.0)
        result = run_workload(wl, isolation=RR, n_clients=2,
                              max_ticks=1500, seed=2)
        assert result.by_type.get("update", 0) == 0

    def test_queries_get_safe_snapshots_under_ssi(self):
        db = Database(EngineConfig())
        result = run_workload(SIBench(table_size=20), isolation=SER,
                              n_clients=3, max_ticks=2500, seed=2, db=db)
        assert result.commits > 0
        assert db.ssi.stats.safe_snapshots > 0


class TestDBT2PP:
    @pytest.fixture(scope="class")
    def loaded(self):
        db = Database(EngineConfig())
        wl = DBT2PP(warehouses=1, districts=2, customers_per_district=5,
                    items=20)
        wl.setup(db, random.Random(3))
        return db, wl

    def test_schema_loaded(self, loaded):
        db, wl = loaded
        s = db.session()
        assert len(s.select("warehouse")) == 1
        assert len(s.select("district")) == 2
        assert len(s.select("customer")) == 10
        assert len(s.select("item")) == 20
        assert len(s.select("stock")) == 20
        # Preloaded order history exists.
        assert len(s.select("orders")) == 2 * wl.initial_orders
        assert len(s.select("new_order")) > 0

    def test_key_flattening_is_injective(self):
        # Injective within each table's keyspace (tables are separate
        # namespaces, so cross-table collisions are fine).
        districts, customers, orders = set(), set(), set()
        for w in range(3):
            for d in range(10):
                assert district_key(w, d) not in districts
                districts.add(district_key(w, d))
                for c in range(20):
                    assert customer_key(w, d, c) not in customers
                    customers.add(customer_key(w, d, c))
                for o in range(1, 30):
                    assert order_key(w, d, o) not in orders
                    orders.add(order_key(w, d, o))

    def test_new_order_advances_district_counter(self, loaded):
        db, wl = loaded
        s = db.session()
        before = s.select("district",
                          Eq("d_key", district_key(0, 0)))[0]["d_next_o_id"]
        program = wl._txn_new_order(random.Random(5), RR, 0, 0, 1)
        _drive(db, program)
        after = s.select("district",
                         Eq("d_key", district_key(0, 0)))[0]["d_next_o_id"]
        assert after == before + 1
        ok = order_key(0, 0, before)
        assert len(s.select("orders", Eq("o_key", ok))) == 1
        assert len(s.select("order_line", Eq("o_key", ok))) >= 1

    def test_payment_moves_balance(self, loaded):
        db, wl = loaded
        s = db.session()
        ck = customer_key(0, 1, 2)
        before = s.select("customer", Eq("c_key", ck))[0]["c_balance"]
        program = wl._txn_payment(random.Random(5), RR, 0, 1, 2)
        _drive(db, program)
        after = s.select("customer", Eq("c_key", ck))[0]["c_balance"]
        assert after < before

    def test_delivery_consumes_new_order(self, loaded):
        db, wl = loaded
        s = db.session()
        pending_before = len(s.select("new_order"))
        program = wl._txn_delivery(random.Random(5), RR, 0, 0, 0)
        _drive(db, program)
        assert len(s.select("new_order")) == pending_before - 1

    def test_credit_check_sets_status(self, loaded):
        db, wl = loaded
        program = wl._txn_credit_check(random.Random(5), RR, 0, 0, 1)
        _drive(db, program)
        s = db.session()
        status = s.select("customer",
                          Eq("c_key", customer_key(0, 0, 1)))[0]["c_credit"]
        assert status in ("GC", "BC")

    def test_read_only_fraction_extremes(self):
        wl0 = DBT2PP(warehouses=1, districts=2, customers_per_district=5,
                     items=20, read_only_fraction=1.0)
        result = run_workload(wl0, isolation=RR, n_clients=2,
                              max_ticks=2000, seed=4)
        assert set(result.by_type) <= {"order_status", "stock_level"}


class TestRubis:
    def test_mix_is_read_heavy(self):
        result = run_workload(RubisBidding(), isolation=RR, n_clients=3,
                              max_ticks=4000, seed=6)
        ro = sum(count for name, count in result.by_type.items()
                 if name.startswith(("view", "search")))
        rw = result.commits - ro
        assert ro > rw

    def test_bids_accumulate(self):
        db = Database(EngineConfig())
        run_workload(RubisBidding(read_only_fraction=0.0),
                     isolation=RR, n_clients=3, max_ticks=3000, seed=6,
                     db=db)
        assert len(db.session().select("bids")) > 0


class TestAnomalyWorkloads:
    def test_receipts_detects_si_violations_on_some_seed(self):
        found = False
        for seed in range(8):
            db = Database(EngineConfig())
            wl = ReceiptsWorkload()
            run_workload(wl, isolation=RR, n_clients=5, max_ticks=4000,
                         seed=seed, db=db)
            if wl.violations(db):
                found = True
                break
        assert found

    def test_receipts_never_violates_under_ssi(self):
        for seed in range(4):
            db = Database(EngineConfig())
            wl = ReceiptsWorkload()
            run_workload(wl, isolation=SER, n_clients=5, max_ticks=4000,
                         seed=seed, db=db)
            assert wl.violations(db) == []

    def test_doctors_invariant_under_ssi(self):
        for seed in range(6):
            db = Database(EngineConfig())
            wl = DoctorsWorkload(n_doctors=3, transactions_per_client=3)
            run_workload(wl, isolation=SER, n_clients=4,
                         max_ticks=20_000, seed=seed, db=db)
            assert wl.invariant_holds(db)


def _drive(db, program_factory):
    """Run one transaction program directly against a session."""
    session = db.session()
    gen = program_factory()
    result = None
    try:
        while True:
            op = gen.send(result)
            result = getattr(session, op.method)(*op.args, **op.kwargs)
    except StopIteration:
        pass
    if session.in_transaction():
        session.commit()
