"""Direct unit tests for the SIREAD lock manager (paper section 5.2.1),
including property-based consistency checks."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SSIConfig
from repro.errors import CapacityExceededError
from repro.mvcc.snapshot import Snapshot
from repro.ssi.lockmgr import SIReadLockManager
from repro.ssi.sxact import SerializableXact
from repro.ssi.targets import (heap_write_targets, index_page_target,
                               index_rel_target, page_target, rel_target,
                               tuple_target)
from repro.storage.tuple import TID


def sx(xid=1):
    return SerializableXact(xid, Snapshot(1, 2), snapshot_seq=0)


def mgr(**kw):
    defaults = dict(max_pred_locks_per_page=3,
                    max_pred_locks_per_relation=4,
                    max_predicate_locks=10_000)
    defaults.update(kw)
    return SIReadLockManager(SSIConfig(**defaults))


class TestAcquire:
    def test_tuple_lock_recorded(self):
        m, s = mgr(), sx()
        m.acquire_tuple(s, 1, TID(0, 0))
        assert m.holds(s, tuple_target(1, TID(0, 0)))
        assert m.lock_count == 1

    def test_coarser_lock_short_circuits(self):
        m, s = mgr(), sx()
        m.acquire_relation(s, 1)
        m.acquire_tuple(s, 1, TID(0, 0))
        m.acquire_page(s, 1, 0)
        assert m.targets_held(s) == {rel_target(1)}

    def test_page_lock_subsumes_tuple_locks(self):
        m, s = mgr(), sx()
        m.acquire_tuple(s, 1, TID(0, 0))
        m.acquire_tuple(s, 1, TID(0, 1))
        m.acquire_page(s, 1, 0)
        assert m.targets_held(s) == {page_target(1, 0)}

    def test_tuple_promotion_to_page(self):
        m, s = mgr(max_pred_locks_per_page=2), sx()
        for slot in range(3):
            m.acquire_tuple(s, 1, TID(0, slot))
        assert m.targets_held(s) == {page_target(1, 0)}

    def test_page_promotion_to_relation(self):
        m, s = mgr(max_pred_locks_per_relation=2), sx()
        for page in range(3):
            m.acquire_page(s, 1, page)
        assert m.targets_held(s) == {rel_target(1)}

    def test_relation_promotion_subsumes_stranded_tuples(self):
        # Tuple locks on pages without page locks must also be
        # subsumed by a relation lock.
        m, s = mgr(max_pred_locks_per_relation=2), sx()
        m.acquire_tuple(s, 1, TID(9, 0))
        for page in range(3):
            m.acquire_page(s, 1, page)
        assert m.targets_held(s) == {rel_target(1)}

    def test_index_page_promotion(self):
        m, s = mgr(max_pred_locks_per_relation=2), sx()
        for page in range(3):
            m.acquire_index_page(s, 7, page)
        assert m.targets_held(s) == {index_rel_target(7)}

    def test_different_relations_promote_independently(self):
        m, s = mgr(max_pred_locks_per_page=2), sx()
        m.acquire_tuple(s, 1, TID(0, 0))
        m.acquire_tuple(s, 2, TID(0, 0))
        m.acquire_tuple(s, 2, TID(0, 1))
        m.acquire_tuple(s, 2, TID(0, 2))
        held = m.targets_held(s)
        assert tuple_target(1, TID(0, 0)) in held
        assert page_target(2, 0) in held


class TestHolders:
    def test_holders_across_granularities(self):
        m = mgr()
        a, b, c = sx(1), sx(2), sx(3)
        m.acquire_relation(a, 1)
        m.acquire_page(b, 1, 0)
        m.acquire_tuple(c, 1, TID(0, 5))
        holders, summary = m.holders_of(heap_write_targets(1, TID(0, 5)))
        assert holders == {a, b, c}
        assert summary is None

    def test_unrelated_targets_not_matched(self):
        m = mgr()
        a = sx(1)
        m.acquire_tuple(a, 1, TID(0, 5))
        holders, _ = m.holders_of(heap_write_targets(1, TID(0, 6)))
        assert holders == set()
        holders, _ = m.holders_of(heap_write_targets(2, TID(0, 5)))
        assert holders == set()

    def test_own_write_drop_only_exact_tuple(self):
        m, s = mgr(), sx()
        m.acquire_tuple(s, 1, TID(0, 0))
        m.acquire_page(s, 1, 1)
        m.drop_tuple_lock(s, 1, TID(0, 0))
        m.drop_tuple_lock(s, 1, TID(1, 0))  # covered by page lock: kept
        assert m.targets_held(s) == {page_target(1, 1)}


class TestStructuralMaintenance:
    def test_page_split_copies_locks(self):
        m = mgr()
        a, b = sx(1), sx(2)
        m.acquire_index_page(a, 7, 0)
        m.acquire_index_page(b, 7, 0)
        m.page_split(7, 0, 1)
        holders, _ = m.holders_of([index_page_target(7, 1)])
        assert holders == {a, b}
        # Originals retained too.
        holders, _ = m.holders_of([index_page_target(7, 0)])
        assert holders == {a, b}

    def test_page_split_copies_summary_seq(self):
        m, s = mgr(), sx()
        m.acquire_index_page(s, 7, 0)
        m.transfer_to_summary(s, commit_seq=5)
        m.page_split(7, 0, 1)
        _, summary = m.holders_of([index_page_target(7, 1)])
        assert summary == 5

    def test_rewrite_promotion(self):
        m = mgr()
        a = sx(1)
        m.acquire_tuple(a, 1, TID(0, 0))
        m.acquire_page(a, 1, 3)
        m.acquire_index_page(a, 7, 0)
        m.promote_for_rewrite(heap_oid=1, index_oids=[7])
        assert m.targets_held(a) == {rel_target(1)}

    def test_drop_index_transfer(self):
        m = mgr()
        a = sx(1)
        m.acquire_index_page(a, 7, 0)
        m.acquire_index_relation(a, 7)
        m.transfer_index_to_heap(7, heap_oid=1)
        assert m.targets_held(a) == {rel_target(1)}

    def test_drop_index_transfers_summary(self):
        m, s = mgr(), sx()
        m.acquire_index_page(s, 7, 0)
        m.transfer_to_summary(s, commit_seq=9)
        m.transfer_index_to_heap(7, heap_oid=1)
        _, summary = m.holders_of([rel_target(1)])
        assert summary == 9


class TestSummary:
    def test_transfer_to_summary_consolidates(self):
        m = mgr()
        a, b = sx(1), sx(2)
        m.acquire_tuple(a, 1, TID(0, 0))
        m.acquire_tuple(b, 1, TID(0, 0))
        m.transfer_to_summary(a, commit_seq=3)
        m.transfer_to_summary(b, commit_seq=7)
        _, summary = m.holders_of(heap_write_targets(1, TID(0, 0)))
        assert summary == 7  # newest holder's commit seq
        assert m.lock_count == 1  # one consolidated entry

    def test_cleanup_summary_drops_stale(self):
        m, s = mgr(), sx()
        m.acquire_tuple(s, 1, TID(0, 0))
        m.transfer_to_summary(s, commit_seq=3)
        assert m.cleanup_summary(min_active_snapshot_seq=2) == 0
        assert m.cleanup_summary(min_active_snapshot_seq=3) == 1
        assert m.lock_count == 0


class TestCapacity:
    def test_capacity_error(self):
        m, s = mgr(max_predicate_locks=2, max_pred_locks_per_page=100), sx()
        m.acquire_tuple(s, 1, TID(0, 0))
        m.acquire_tuple(s, 1, TID(0, 1))
        with pytest.raises(CapacityExceededError):
            m.acquire_tuple(s, 1, TID(0, 2))

    def test_peak_tracking(self):
        m, s = mgr(), sx()
        for slot in range(3):
            m.acquire_tuple(s, 1, TID(0, slot))
        m.release_all(s)
        assert m.peak_lock_count == 3
        assert m.lock_count == 0


class TestProperties:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3),      # actor
                              st.sampled_from(["t", "p", "r", "ip", "ir",
                                               "rel", "drop", "release"]),
                              st.integers(0, 2),      # rel/index oid
                              st.integers(0, 3),      # page
                              st.integers(0, 3)),     # slot
                    max_size=60))
    def test_internal_consistency(self, operations):
        """Forward (target -> holders) and reverse (holder -> targets)
        indexes always agree, and each holder's targets never include a
        finer target covered by a coarser one it also holds."""
        m = mgr()
        actors = {i: sx(i + 1) for i in range(4)}
        for actor_id, op, oid, page, slot in operations:
            actor = actors[actor_id]
            if op == "t":
                m.acquire_tuple(actor, oid, TID(page, slot))
            elif op == "p":
                m.acquire_page(actor, oid, page)
            elif op == "r" or op == "rel":
                m.acquire_relation(actor, oid)
            elif op == "ip":
                m.acquire_index_page(actor, 100 + oid, page)
            elif op == "ir":
                m.acquire_index_relation(actor, 100 + oid)
            elif op == "drop":
                m.drop_tuple_lock(actor, oid, TID(page, slot))
            elif op == "release":
                m.release_all(actor)
        # forward/reverse agreement
        for actor in actors.values():
            for target in m.targets_held(actor):
                holders, _ = m.holders_of([target])
                assert actor in holders
        for target, holders in list(m._locks.items()):
            for holder in holders:
                assert target in m.targets_held(holder)
        # no redundant finer locks under coarser ones
        for actor in actors.values():
            held = m.targets_held(actor)
            for target in held:
                if target[0] == "t":
                    assert page_target(target[1], target[2]) not in held
                    assert rel_target(target[1]) not in held
                elif target[0] == "p":
                    assert rel_target(target[1]) not in held
                elif target[0] == "ip":
                    assert index_rel_target(target[1]) not in held
