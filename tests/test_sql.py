"""Tests for the SQL front end: lexer, parser, and execution, including
the paper's examples written as SQL text."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database
from repro.errors import SerializationFailure, UniqueViolationError
from repro.sql import SQLSession, SQLSyntaxError, parse, tokenize
from repro.sql import ast


@pytest.fixture
def db():
    return Database(EngineConfig())


@pytest.fixture
def sql(db):
    return SQLSession(db.session())


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select From WHERE")]
        assert kinds == ["keyword", "keyword", "keyword", "end"]

    def test_identifiers_preserve_case(self):
        token = tokenize("myTable")[0]
        assert token.kind == "ident" and token.value == "myTable"

    def test_numbers(self):
        values = [t.value for t in tokenize("42 3.5")][:2]
        assert values == [42, 3.5]

    def test_strings_with_escapes(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_comments_skipped(self):
        tokens = tokenize("SELECT -- comment\n1")
        assert [t.kind for t in tokens] == ["keyword", "number", "end"]

    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'oops")

    def test_bad_character(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("SELECT @")


class TestParser:
    def test_select_with_everything(self):
        stmt = parse("SELECT a, b FROM t WHERE a > 1 AND b = 'x' "
                     "ORDER BY a DESC LIMIT 5 FOR UPDATE")
        assert isinstance(stmt, ast.Select)
        assert stmt.order_by == "a" and stmt.descending
        assert stmt.limit == 5 and stmt.for_update

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(amount) AS total FROM r")
        assert stmt.items[0].func == "COUNT"
        assert stmt.items[1].alias == "total"

    def test_between(self):
        stmt = parse("SELECT * FROM t WHERE k BETWEEN 1 AND 5")
        assert isinstance(stmt.where, ast.BetweenCond)

    def test_insert_multi_row(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2), (3, 4)")
        assert len(stmt.rows) == 2

    def test_insert_arity_mismatch(self):
        with pytest.raises(SQLSyntaxError):
            parse("INSERT INTO t (a, b) VALUES (1)")

    def test_update_with_arithmetic(self):
        stmt = parse("UPDATE t SET v = v + 1 WHERE k = 0")
        column, expr = stmt.assignments[0]
        assert column == "v" and isinstance(expr, ast.BinaryOp)

    def test_begin_variants(self):
        stmt = parse("BEGIN ISOLATION LEVEL SERIALIZABLE READ ONLY, "
                     "DEFERRABLE")
        assert stmt.isolation == "serializable"
        assert stmt.read_only and stmt.deferrable
        assert parse("BEGIN").isolation is None
        assert parse("BEGIN ISOLATION LEVEL REPEATABLE READ").isolation \
            == "repeatable read"

    def test_two_phase_commit_statements(self):
        assert isinstance(parse("PREPARE TRANSACTION 'g1'"),
                          ast.PrepareTransaction)
        assert parse("COMMIT PREPARED 'g1'").gid == "g1"
        assert parse("ROLLBACK PREPARED 'g1'").gid == "g1"

    def test_savepoints(self):
        assert parse("SAVEPOINT sp").name == "sp"
        assert parse("ROLLBACK TO SAVEPOINT sp").name == "sp"
        assert parse("RELEASE SAVEPOINT sp").name == "sp"

    def test_lock_table(self):
        stmt = parse("LOCK TABLE t IN SHARE ROW EXCLUSIVE MODE")
        assert stmt.mode == "SHARE ROW EXCLUSIVE"

    def test_create_table_with_primary_key(self):
        stmt = parse("CREATE TABLE t (k INT PRIMARY KEY, v TEXT)")
        assert stmt.primary_key == "k"
        assert stmt.columns == ("k", "v")

    def test_create_index_using_hash(self):
        stmt = parse("CREATE INDEX ON t (v) USING HASH")
        assert stmt.using == "hash" and not stmt.unique

    def test_garbage_rejected(self):
        with pytest.raises(SQLSyntaxError):
            parse("EXPLAIN SELECT 1")
        with pytest.raises(SQLSyntaxError):
            parse("SELECT * FROM t WHERE")


class TestExecution:
    def test_ddl_and_crud_roundtrip(self, sql):
        sql.execute("CREATE TABLE accounts (id INT PRIMARY KEY, owner TEXT,"
                    " balance INT)")
        assert sql.execute("INSERT INTO accounts (id, owner, balance) "
                           "VALUES (1, 'alice', 100), (2, 'bob', 50)") == 2
        rows = sql.execute("SELECT owner FROM accounts WHERE balance >= 100")
        assert rows == [{"owner": "alice"}]
        assert sql.execute("UPDATE accounts SET balance = balance + 10 "
                           "WHERE owner = 'bob'") == 1
        row = sql.execute("SELECT balance FROM accounts WHERE id = 2")[0]
        assert row["balance"] == 60
        assert sql.execute("DELETE FROM accounts WHERE id = 1") == 1
        assert sql.execute("SELECT COUNT(*) FROM accounts")[0]["count"] == 1

    def test_aggregates(self, sql):
        sql.execute("CREATE TABLE r (rid INT PRIMARY KEY, amount INT)")
        sql.execute("INSERT INTO r (rid, amount) VALUES (1, 10), (2, 30)")
        row = sql.execute("SELECT COUNT(*), SUM(amount) AS total, "
                          "MIN(amount), MAX(amount), AVG(amount) FROM r")[0]
        assert row["count"] == 2
        assert row["total"] == 40
        assert row["min_amount"] == 10
        assert row["max_amount"] == 30
        assert row["avg_amount"] == 20

    def test_order_by_and_limit(self, sql):
        sql.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        for k, v in ((1, 30), (2, 10), (3, 20)):
            sql.execute(f"INSERT INTO t (k, v) VALUES ({k}, {v})")
        rows = sql.execute("SELECT k FROM t ORDER BY v DESC LIMIT 2")
        assert [r["k"] for r in rows] == [1, 3]

    def test_unique_violation_via_sql(self, sql):
        sql.execute("CREATE TABLE t (k INT PRIMARY KEY)")
        sql.execute("INSERT INTO t (k) VALUES (1)")
        with pytest.raises(UniqueViolationError):
            sql.execute("INSERT INTO t (k) VALUES (1)")

    def test_transactions_and_savepoints(self, sql):
        sql.execute("CREATE TABLE t (k INT PRIMARY KEY)")
        sql.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
        sql.execute("INSERT INTO t (k) VALUES (1)")
        sql.execute("SAVEPOINT sp")
        sql.execute("INSERT INTO t (k) VALUES (2)")
        sql.execute("ROLLBACK TO SAVEPOINT sp")
        sql.execute("COMMIT")
        rows = sql.execute("SELECT * FROM t")
        assert [r["k"] for r in rows] == [1]

    def test_vacuum(self, sql, db):
        sql.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        sql.execute("INSERT INTO t (k, v) VALUES (1, 0)")
        for i in range(3):
            sql.execute(f"UPDATE t SET v = {i} WHERE k = 1")
        sql.execute("VACUUM t")
        assert sum(1 for _ in db.relation("t").heap.scan()) == 1

    def test_for_update_locks(self, db):
        a, b = SQLSession(db.session()), SQLSession(db.session())
        a.execute("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        a.execute("INSERT INTO t (k, v) VALUES (1, 0)")
        a.execute("BEGIN ISOLATION LEVEL REPEATABLE READ")
        a.execute("SELECT * FROM t WHERE k = 1 FOR UPDATE")
        from repro.errors import WouldBlock
        b.execute("BEGIN ISOLATION LEVEL REPEATABLE READ")
        with pytest.raises(WouldBlock):
            b.execute("UPDATE t SET v = 9 WHERE k = 1")
        a.execute("COMMIT")
        b.session.resume()
        b.execute("COMMIT")


class TestJoinsAndGrouping:
    @pytest.fixture
    def loaded(self, sql):
        sql.execute("CREATE TABLE customers (cid INT PRIMARY KEY, "
                    "region TEXT, balance INT)")
        sql.execute("CREATE TABLE orders (oid INT PRIMARY KEY, "
                    "cid INT, amount INT)")
        sql.execute("INSERT INTO customers (cid, region, balance) VALUES "
                    "(1, 'north', 10), (2, 'south', 20), (3, 'north', 5)")
        sql.execute("INSERT INTO orders (oid, cid, amount) VALUES "
                    "(1, 1, 100), (2, 2, 50), (3, 1, 25), (4, NULL, 9)")
        return sql

    def test_parser_join_group_having(self):
        stmt = parse("SELECT region, COUNT(*) FROM orders "
                     "JOIN customers ON orders.cid = customers.cid "
                     "GROUP BY region HAVING COUNT(*) > 1")
        assert stmt.joins[0].table == "customers"
        assert stmt.group_by == ("region",)
        assert stmt.having is not None

    def test_join_left_major_order_and_null_keys(self, loaded):
        rows = loaded.execute(
            "SELECT oid, region FROM orders "
            "JOIN customers ON orders.cid = customers.cid")
        # orders order (left-major); the NULL-cid order joins nothing.
        assert rows == [{"oid": 1, "region": "north"},
                        {"oid": 2, "region": "south"},
                        {"oid": 3, "region": "north"}]

    def test_join_with_where_pushdown(self, loaded):
        rows = loaded.execute(
            "SELECT oid FROM orders "
            "JOIN customers ON orders.cid = customers.cid "
            "WHERE region = 'north' AND amount > 30")
        assert rows == [{"oid": 1}]

    def test_group_by_having_order(self, loaded):
        rows = loaded.execute(
            "SELECT cid, SUM(amount) AS total FROM orders "
            "WHERE cid = 1 OR cid = 2 GROUP BY cid "
            "HAVING SUM(amount) > 60 ORDER BY cid")
        assert rows == [{"cid": 1, "total": 125}]

    def test_join_then_group(self, loaded):
        rows = loaded.execute(
            "SELECT region, SUM(amount) AS total FROM orders "
            "JOIN customers ON orders.cid = customers.cid "
            "GROUP BY region ORDER BY region")
        assert rows == [{"region": "north", "total": 125},
                        {"region": "south", "total": 50}]

    def test_ambiguous_column_rejected(self, loaded):
        with pytest.raises(SQLSyntaxError, match="ambiguous"):
            loaded.execute("SELECT cid FROM orders "
                           "JOIN customers ON orders.cid = customers.cid")

    def test_unknown_qualifier_rejected(self, loaded):
        with pytest.raises(SQLSyntaxError, match="missing FROM-clause"):
            loaded.execute("SELECT oid FROM orders "
                           "JOIN customers ON orders.cid = nope.cid")

    def test_for_update_with_join_rejected(self, loaded):
        with pytest.raises(SQLSyntaxError, match="FOR UPDATE"):
            loaded.execute("SELECT oid FROM orders "
                           "JOIN customers ON orders.cid = customers.cid "
                           "FOR UPDATE")

    def test_bare_column_in_group_must_be_grouped(self, loaded):
        with pytest.raises(SQLSyntaxError, match="GROUP BY"):
            loaded.execute("SELECT region, amount FROM orders "
                           "JOIN customers ON orders.cid = customers.cid "
                           "GROUP BY region")

    def test_order_by_places_nulls_last(self, loaded):
        loaded.execute("INSERT INTO customers (cid, region, balance) "
                       "VALUES (4, NULL, 1)")
        regions = [r["region"] for r in loaded.execute(
            "SELECT region FROM customers GROUP BY region "
            "ORDER BY region")]
        assert regions == ["north", "south", None]

    def test_explain_shows_join_and_agg_nodes(self, loaded):
        loaded.execute("ANALYZE")
        plan = "\n".join(loaded.execute(
            "EXPLAIN SELECT region, SUM(amount) FROM orders "
            "JOIN customers ON orders.cid = customers.cid "
            "GROUP BY region ORDER BY region"))
        assert "Join" in plan
        assert "HashAggregate" in plan
        assert "Sort" in plan


class TestPaperExamplesInSQL:
    def test_write_skew_in_sql(self, db):
        """Figure 1, verbatim in SQL."""
        admin = SQLSession(db.session())
        admin.execute("CREATE TABLE doctors (name TEXT PRIMARY KEY, "
                      "oncall BOOL)")
        admin.execute("INSERT INTO doctors (name, oncall) "
                      "VALUES ('alice', TRUE), ('bob', TRUE)")
        t1, t2 = SQLSession(db.session()), SQLSession(db.session())
        t1.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
        t2.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
        n1 = t1.execute("SELECT COUNT(*) FROM doctors "
                        "WHERE oncall = TRUE")[0]["count"]
        n2 = t2.execute("SELECT COUNT(*) FROM doctors "
                        "WHERE oncall = TRUE")[0]["count"]
        assert n1 == n2 == 2
        t1.execute("UPDATE doctors SET oncall = FALSE WHERE name = 'alice'")
        t2.execute("UPDATE doctors SET oncall = FALSE WHERE name = 'bob'")
        t1.execute("COMMIT")
        with pytest.raises(SerializationFailure):
            t2.execute("COMMIT")
        remaining = admin.execute("SELECT COUNT(*) FROM doctors "
                                  "WHERE oncall = TRUE")[0]["count"]
        assert remaining == 1

    def test_batch_processing_in_sql(self, db):
        """Figure 2, verbatim in SQL: the REPORT's SUM plus the pivot
        abort on NEW-RECEIPT."""
        admin = SQLSession(db.session())
        admin.execute("CREATE TABLE control (id INT PRIMARY KEY, "
                      "batch INT)")
        admin.execute("CREATE TABLE receipts (rid INT PRIMARY KEY, "
                      "batch INT, amount INT)")
        admin.execute("CREATE INDEX ON receipts (batch)")
        admin.execute("INSERT INTO control (id, batch) VALUES (0, 1)")
        t1, t2, t3 = (SQLSession(db.session()) for _ in range(3))
        t2.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
        x2 = t2.execute("SELECT batch FROM control WHERE id = 0")[0]["batch"]
        t3.execute("BEGIN ISOLATION LEVEL SERIALIZABLE")
        t3.execute("UPDATE control SET batch = batch + 1 WHERE id = 0")
        t3.execute("COMMIT")
        t1.execute("BEGIN ISOLATION LEVEL SERIALIZABLE READ ONLY")
        x1 = t1.execute("SELECT batch FROM control WHERE id = 0")[0]["batch"]
        total = t1.execute(f"SELECT SUM(amount) FROM receipts "
                           f"WHERE batch = {x1 - 1}")[0]["sum_amount"]
        t1.execute("COMMIT")
        assert total is None  # empty batch
        with pytest.raises(SerializationFailure):
            t2.execute(f"INSERT INTO receipts (rid, batch, amount) "
                       f"VALUES (1, {x2}, 100)")
            t2.execute("COMMIT")
