"""repro.shard: partitioning, routing, commit paths, distributed SSI
certification, snapshot coherence, 2PC recovery, and replica routing."""

import threading

import pytest

from repro.config import EngineConfig
from repro.engine import Eq, IsolationLevel
from repro.engine.coordinator import Decision, DecisionLog
from repro.engine.predicate import And, Ge, Gt, Le
from repro.errors import (FeatureNotSupportedError, ReadOnlyTransactionError,
                          SerializationFailure)
from repro.shard.database import ShardedDatabase
from repro.shard.partition import Partitioner, shard_for
from repro.shard.threaded import ThreadedShardedDatabase

SER = IsolationLevel.SERIALIZABLE
RR = IsolationLevel.REPEATABLE_READ


def make_db(n_shards=2, **engine_kw):
    sdb = ShardedDatabase(
        n_shards, [EngineConfig(**engine_kw) for _ in range(n_shards)])
    sdb.create_table("accounts", ["id", "bal"], key="id")
    sdb.load_rows("accounts", [{"id": i, "bal": 100} for i in range(8)])
    return sdb


def two_keys_on_distinct_shards(n_shards=2):
    a = next(i for i in range(64) if shard_for(i, n_shards) == 0)
    b = next(i for i in range(64) if shard_for(i, n_shards) == 1)
    return a, b


class TestPartitioner:
    def test_shard_for_is_deterministic_and_in_range(self):
        for key in [0, 1, "x", (1, 2), 999999]:
            s = shard_for(key, 4)
            assert s == shard_for(key, 4)
            assert 0 <= s < 4

    def test_single_shard_short_circuit(self):
        assert shard_for("anything", 1) == 0

    def test_key_equality_routes_to_one_shard(self):
        p = Partitioner(4)
        p.add_table("t", "id")
        shards = p.shards_for_predicate("t", Eq("id", 7))
        assert shards == [shard_for(7, 4)]

    def test_range_predicate_fans_out(self):
        p = Partitioner(4)
        p.add_table("t", "id")
        assert p.shards_for_predicate(
            "t", And(Ge("id", 0), Le("id", 9))) == [0, 1, 2, 3]
        assert p.shards_for_predicate("t", None) == [0, 1, 2, 3]

    def test_keyless_table_pins_to_shard_zero(self):
        p = Partitioner(4)
        p.add_table("ctl", None)
        assert p.shards_for_predicate("ctl", None) == [0]
        assert p.shard_for_row("ctl", {"k": 1}) == 0

    def test_missing_partition_key_raises(self):
        p = Partitioner(2)
        p.add_table("t", "id")
        with pytest.raises(ValueError):
            p.shard_for_row("t", {"other": 1})

    def test_shard_key_extractor_changes_affinity(self):
        p = Partitioner(4)
        # district key embeds its warehouse as key // 100.
        p.add_table("district", "dk", shard_key=lambda k: k // 100)
        p.add_table("warehouse", "w", shard_key=lambda k: k)
        for w in range(1, 9):
            home = p.shards_for_predicate("warehouse", Eq("w", w))
            for d in range(10):
                assert p.shard_for_row(
                    "district", {"dk": w * 100 + d}) == home[0]


class TestRoutingAndDML:
    def test_fanout_select_merges_all_shards(self):
        sdb = make_db()
        sess = sdb.session(SER)
        rows = sess.run_transaction(lambda s: s.select("accounts"))
        assert sorted(r["id"] for r in rows) == list(range(8))
        # Data really is split: no shard holds everything.
        per_shard = [len(db.session().select("accounts"))
                     for db in sdb.shards]
        assert all(0 < n < 8 for n in per_shard)
        assert sum(per_shard) == 8

    def test_key_equality_opens_one_branch(self):
        sdb = make_db()
        sess = sdb.session(SER)
        sess.begin(SER)
        sess.select("accounts", Eq("id", 3))
        assert len(sess._branches) == 1
        assert list(sess._branches) == [shard_for(3, 2)]
        sess.commit()

    def test_autocommit_statement(self):
        sdb = make_db()
        sess = sdb.session(SER)
        assert not sess.in_transaction()
        sess.update("accounts", Eq("id", 1), {"bal": 42})
        assert not sess.in_transaction()
        rows = sdb.session(SER).select("accounts", Eq("id", 1))
        assert rows[0]["bal"] == 42

    def test_cross_shard_aggregates_merge(self):
        sdb = make_db()
        sess = sdb.session(SER)
        sess.update("accounts", Eq("id", 0), {"bal": 20})
        got = sess.scan_aggregate(
            "accounts",
            [("COUNT", "id"), ("SUM", "bal"), ("MIN", "bal"),
             ("MAX", "bal"), ("AVG", "bal")])
        assert got[0] == 8
        assert got[1] == 20 + 7 * 100
        assert got[2] == 20 and got[3] == 100
        assert got[4] == pytest.approx((20 + 700) / 8)

    def test_update_and_delete_counts_sum_across_shards(self):
        sdb = make_db()
        sess = sdb.session(SER)
        assert sess.update("accounts", Gt("id", -1), {"bal": 1}) == 8
        assert sess.delete("accounts", Gt("id", 3)) == 4
        assert len(sess.select("accounts")) == 4

    def test_savepoints_unsupported(self):
        sdb = make_db()
        sess = sdb.session(SER)
        with pytest.raises(FeatureNotSupportedError):
            sess.savepoint("sp1")


class TestCommitPaths:
    def test_single_shard_commit_skips_coordinator(self):
        sdb = make_db()
        sess = sdb.session(SER)
        sess.begin(SER)
        sess.update("accounts", Eq("id", 2), {"bal": 7})
        assert sess.commit()
        assert len(sdb.coordinator.log) == 0
        assert sdb.certifier.state_of("g1") == "committed"

    def test_one_writer_multi_shard_commit_skips_decision_log(self):
        a, b = two_keys_on_distinct_shards()
        sdb = make_db()
        sess = sdb.session(SER)
        sess.begin(SER)
        sess.select("accounts", Eq("id", a))   # reader branch
        sess.update("accounts", Eq("id", b), {"bal": 5})
        assert len(sess._branches) == 2
        assert sess.commit()
        # One-phase: no coordinator decision, nothing left prepared.
        assert len(sdb.coordinator.log) == 0
        assert all(db.prepared_gids() == [] for db in sdb.shards)
        rows = sdb.session(SER).select("accounts", Eq("id", b))
        assert rows[0]["bal"] == 5

    def test_two_writer_commit_logs_decision_and_applies_both(self):
        a, b = two_keys_on_distinct_shards()
        sdb = make_db()
        sess = sdb.session(SER)
        gid = sess.begin(SER)
        sess.update("accounts", Eq("id", a), {"bal": 1})
        sess.update("accounts", Eq("id", b), {"bal": 2})
        assert sess.commit()
        assert list(sdb.coordinator.log) == [(gid, Decision.COMMITTED)]
        assert all(db.prepared_gids() == [] for db in sdb.shards)
        check = sdb.session(SER)
        assert check.select("accounts", Eq("id", a))[0]["bal"] == 1
        assert check.select("accounts", Eq("id", b))[0]["bal"] == 2

    def test_rollback_leaves_no_branch_state(self):
        a, b = two_keys_on_distinct_shards()
        sdb = make_db()
        sess = sdb.session(SER)
        gid = sess.begin(SER)
        sess.update("accounts", Eq("id", a), {"bal": 0})
        sess.update("accounts", Eq("id", b), {"bal": 0})
        sess.rollback()
        assert sdb.certifier.state_of(gid) == "aborted"
        rows = sdb.session(SER).select("accounts")
        assert all(r["bal"] == 100 for r in rows)


class TestDistributedSSI:
    def _write_skew(self, sdb, iso=SER):
        """Cross-shard write skew: each side reads both accounts and
        debits its own; each shard sees only one rw edge."""
        a, b = two_keys_on_distinct_shards()
        s1, s2 = sdb.session(iso), sdb.session(iso)
        s1.begin(iso)
        s2.begin(iso)
        for s in (s1, s2):
            s.select("accounts", Eq("id", a))
            s.select("accounts", Eq("id", b))
        s1.update("accounts", Eq("id", a), {"bal": -90})
        s2.update("accounts", Eq("id", b), {"bal": -90})
        return s1, s2

    def test_cross_shard_write_skew_aborts_under_serializable(self):
        sdb = make_db(record_history=True)
        s1, s2 = self._write_skew(sdb)
        assert s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()
        assert sdb.check_serializable().serializable

    def test_cross_shard_write_skew_commits_under_snapshot_isolation(self):
        sdb = make_db(record_history=True)
        s1, s2 = self._write_skew(sdb, iso=RR)
        assert s1.commit()
        assert s2.commit()   # the anomaly plain SI+2PC admits
        check = sdb.check_serializable()
        assert not check.serializable
        assert check.cycle

    def test_late_branch_after_multi_shard_commit_restarts(self):
        a, b = two_keys_on_distinct_shards()
        sdb = make_db()
        reader = sdb.session(SER)
        reader.begin(SER)
        reader.select("accounts", Eq("id", a))     # snapshot shard 0 only
        writer = sdb.session(SER)
        writer.begin(SER)
        writer.update("accounts", Eq("id", a), {"bal": 10})
        writer.update("accounts", Eq("id", b), {"bal": 10})
        assert writer.commit()                      # footprint {0, 1}
        with pytest.raises(SerializationFailure) as exc:
            reader.select("accounts", Eq("id", b))  # late shard-1 branch
        assert "snapshot" in str(exc.value)

    def test_certifier_stats_expose_epoch_and_states(self):
        sdb = make_db()
        sess = sdb.session(SER)
        sess.run_transaction(
            lambda s: s.update("accounts", Gt("id", -1), {"bal": 3}))
        stats = sdb.certifier.stats()
        assert stats["txns"] >= 1
        assert stats["multi_commit_epoch"] >= 1
        assert stats.get("state_committed", 0) >= 1


class TestThreadedRouter:
    def test_concurrent_transfers_preserve_total(self):
        sdb = make_db(n_shards=2)
        tdb = ThreadedShardedDatabase(sdb)
        n_clients, moves = 4, 8
        start = threading.Barrier(n_clients)
        errors = []

        def run(idx):
            sess = tdb.session(SER)
            start.wait()
            for i in range(moves):
                src, dst = (idx + i) % 8, (idx + i + 1) % 8

                def transfer(s):
                    bal = s.select("accounts", Eq("id", src))[0]["bal"]
                    s.update("accounts", Eq("id", src), {"bal": bal - 1})
                    peer = s.select("accounts", Eq("id", dst))[0]["bal"]
                    s.update("accounts", Eq("id", dst), {"bal": peer + 1})

                try:
                    sess.run_transaction(transfer)
                except Exception as exc:  # noqa: BLE001 - surfaced below
                    errors.append(exc)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        sess = tdb.session(SER)
        total = sess.run_transaction(
            lambda s: s.scan_aggregate("accounts", [("SUM", "bal")]))
        assert total[0] == 8 * 100
        tdb.close()
        sdb.close()


class TestDecisionLogRecovery:
    def test_decision_log_replays_from_disk(self, tmp_path):
        path = str(tmp_path / "decisions.jsonl")
        log = DecisionLog(path)
        log.append(("g1", Decision.COMMITTED))
        log.append(("g2", Decision.ABORTED))
        reopened = DecisionLog(path)
        assert list(reopened) == [("g1", Decision.COMMITTED),
                                  ("g2", Decision.ABORTED)]

    def test_recover_resolves_in_doubt_branches(self, tmp_path):
        """Presumed abort across a coordinator restart: a prepared
        branch with a logged COMMIT decision commits; a prepared branch
        whose decision never made the log rolls back."""
        path = str(tmp_path / "decisions.jsonl")
        sdb = ShardedDatabase(
            2, [EngineConfig(), EngineConfig()], coordinator_log=path)
        sdb.create_table("accounts", ["id", "bal"], key="id")
        sdb.load_rows("accounts", [{"id": i, "bal": 100} for i in range(4)])

        # Crash window 1: decision logged, branches still prepared.
        s0 = sdb.shards[0].session()
        s0.begin(SER)
        s0.update("accounts", None, {"bal": 1})
        s0.prepare_transaction("gA:s0")
        sdb.coordinator.log.append(("gA", Decision.COMMITTED))
        # Crash window 2: prepared, no decision record.
        s1 = sdb.shards[1].session()
        s1.begin(SER)
        s1.update("accounts", None, {"bal": 2})
        s1.prepare_transaction("gB:s1")

        # "Restart": a fresh sharded deployment over the same engines
        # and the same on-disk decision log.
        sdb2 = ShardedDatabase.__new__(ShardedDatabase)
        sdb2.n_shards = 2
        sdb2.shards = sdb.shards
        from repro.engine.coordinator import Coordinator
        sdb2.coordinator = Coordinator(
            {"s0": sdb.shards[0], "s1": sdb.shards[1]}, log_path=path)
        actions = sdb2.coordinator.recover()
        assert actions == {"gA:s0": "committed", "gB:s1": "rolled back"}
        assert all(db.prepared_gids() == [] for db in sdb.shards)
        rows0 = sdb.shards[0].session().select("accounts")
        assert all(r["bal"] == 1 for r in rows0)       # gA applied
        rows1 = sdb.shards[1].session().select("accounts")
        assert all(r["bal"] == 100 for r in rows1)     # gB rolled back


class TestDeferrableRouting:
    def make(self):
        sdb = make_db()
        sdb.attach_replicas()
        # Autocommit loading above went master-side; ship it, and give
        # every shard a safe snapshot (no serializable txn is active).
        sdb.refresh_replicas()
        return sdb

    def test_deferrable_reads_route_to_replicas(self):
        sdb = self.make()
        sess = sdb.session(SER)
        sess.begin(SER, read_only=True, deferrable=True)
        rows = sess.select("accounts")
        assert sorted(r["id"] for r in rows) == list(range(8))
        assert sess._branches == {}       # no master branch ever opened
        assert sess.commit()

    def test_deferrable_rejects_writes(self):
        sdb = self.make()
        sess = sdb.session(SER)
        sess.begin(SER, read_only=True, deferrable=True)
        with pytest.raises(ReadOnlyTransactionError):
            sess.update("accounts", Eq("id", 1), {"bal": 0})

    def test_deferrable_requires_serializable_read_only(self):
        sdb = self.make()
        with pytest.raises(FeatureNotSupportedError):
            sdb.session(SER).begin(SER, deferrable=True)
        with pytest.raises(FeatureNotSupportedError):
            sdb.session(SER).begin(RR, read_only=True, deferrable=True)

    def test_deferrable_needs_attached_replicas(self):
        sdb = make_db()
        with pytest.raises(FeatureNotSupportedError):
            sdb.session(SER).begin(SER, read_only=True, deferrable=True)
