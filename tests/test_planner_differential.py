"""Differential planner suite: plans may change, answers may not.

Every corpus replay (the four canonical anomalies) is re-executed with
the cost planner + caches fully OFF and fully ON (with ANALYZE run on
the initial state so the cost path is actually exercised). The
contract: scan choice is invisible to semantics -- identical committed
row sets, identical committed-transaction sets, and identical
serializability verdicts, under both snapshot isolation and SSI.

The suite also runs a skewed-AND program built here (corpus programs
use single-conjunct predicates, so they exercise the cache + fallback
paths but not the conjunct *reordering*), covering the one case where
the cost planner actually changes the chosen index.
"""

from pathlib import Path

import pytest

from repro.config import PerfConfig
from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import And, Eq
from repro.explore import load_replay, run_replay

CORPUS_DIR = Path(__file__).resolve().parent / "explore_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))

#: Everything this PR added, disabled: byte-identical seed behaviour.
PLANNER_OFF = PerfConfig(cost_planner=False, plan_cache=False,
                         parse_cache=False)


def run_pair(replay, isolation=None):
    off = run_replay(replay, isolation, perf=PLANNER_OFF)
    on = run_replay(replay, isolation, analyze=True)
    return off, on


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_identical_outcome_under_snapshot_isolation(path):
    """Strict replay at the file's own isolation level: same schedule,
    same committed rows, same (non-)serializable verdict."""
    replay = load_replay(str(path))
    off, on = run_pair(replay)
    assert off.record.complete and on.record.complete
    assert not off.diverged and not on.diverged, \
        "scan choice changed the replayable step structure"
    assert off.record.state == on.record.state
    assert off.record.committed_txns == on.record.committed_txns
    assert off.record.check.serializable == on.record.check.serializable
    assert not on.record.check.serializable, \
        f"{path.stem}: pinned anomaly disappeared with the planner on"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_identical_ssi_verdict_under_serializable(path):
    """SSI must break the dangerous structure with the planner on or
    off: serializable history, at least one serialization failure."""
    replay = load_replay(str(path))
    off, on = run_pair(replay, IsolationLevel.SERIALIZABLE)
    assert off.record.complete and on.record.complete
    assert off.record.check.serializable and on.record.check.serializable
    assert (off.record.serialization_failures >= 1) \
        == (on.record.serialization_failures >= 1)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_planner_on_is_deterministic(path):
    replay = load_replay(str(path))
    first = run_replay(replay, analyze=True)
    second = run_replay(replay, analyze=True)
    assert first.record.state == second.record.state
    assert first.record.schedule == second.record.schedule


def test_skewed_and_predicate_same_rows_either_plan():
    """Direct engine-level differential on the plan the cost planner
    actually changes: And(low-cardinality, unique-key). The rule plan
    scans through the grp index, the cost plan through the primary
    key; both must return the same rows."""
    from repro.config import EngineConfig
    from repro.engine import Database

    def build(perf):
        db = Database(EngineConfig(perf=perf))
        db.create_table("t", ["k", "grp", "v"], key="k")
        db.create_index("t", "grp")
        s = db.session()
        s.begin()
        for i in range(120):
            s.insert("t", {"k": i, "grp": i % 3, "v": i * 7})
        s.commit()
        db.analyze()
        return db

    answers = []
    for perf in (PLANNER_OFF, PerfConfig()):
        db = build(perf)
        s = db.session()
        s.begin()
        rows = []
        for i in range(60):
            pred = And(Eq("grp", i % 3), Eq("k", (i * 37) % 120))
            rows.append(sorted(tuple(sorted(r.items()))
                               for r in s.select("t", pred)))
        s.commit()
        answers.append(rows)
    assert answers[0] == answers[1]
    # Sanity: the enabled run really did choose differently.
    db_on = build(PerfConfig())
    choice = db_on.planner.choose(db_on.relation("t"),
                                  And(Eq("grp", 1), Eq("k", 1)))
    assert choice.column == "k" and choice.source == "cost"
