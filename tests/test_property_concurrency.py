"""Property-based end-to-end test: SSI never commits a
non-serializable history.

Hypothesis generates random transaction programs (reads, range scans,
updates, inserts, deletes over a small keyspace) for several
concurrent clients and a random scheduler seed; the engine records the
full history; the offline checker (repro.verify) builds the Adya
multiversion serialization graph and verifies acyclicity.

* SERIALIZABLE and S2PL runs must always be serializable;
* REPEATABLE READ (snapshot isolation) runs over the same program
  space must produce at least some non-serializable histories across
  the corpus -- otherwise the test is not exercising anything.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.config import EngineConfig
from repro.engine import Between, Database, Eq, IsolationLevel
from repro.explore.explorer import _RandomDriver
from repro.sim import Client, Scheduler, ops
from repro.verify import check_serializable

KEYSPACE = 8

read_op = st.tuples(st.just("read"), st.integers(0, KEYSPACE - 1))
scan_op = st.tuples(st.just("scan"), st.integers(0, KEYSPACE - 1),
                    st.integers(0, KEYSPACE - 1))
update_op = st.tuples(st.just("update"), st.integers(0, KEYSPACE - 1),
                      st.integers(0, 100))
insert_op = st.tuples(st.just("insert"), st.integers(100, 120),
                      st.integers(0, 100))
delete_op = st.tuples(st.just("delete"), st.integers(0, KEYSPACE - 1))

txn_program = st.lists(st.one_of(read_op, scan_op, update_op, insert_op,
                                 delete_op),
                       min_size=1, max_size=5)
client_programs = st.lists(st.lists(txn_program, min_size=1, max_size=3),
                           min_size=2, max_size=4)


def build_program(actions, isolation):
    def generator(actions=tuple(actions), isolation=isolation):
        yield ops.begin(isolation)
        for action in actions:
            kind = action[0]
            if kind == "read":
                yield ops.select("t", Eq("k", action[1]))
            elif kind == "scan":
                lo, hi = sorted(action[1:3])
                yield ops.select("t", Between("k", lo, hi))
            elif kind == "update":
                yield ops.update("t", Eq("k", action[1]),
                                 {"v": action[2]})
            elif kind == "insert":
                yield ops.insert("t", {"k": action[1], "v": action[2]})
            elif kind == "delete":
                yield ops.delete("t", Eq("k", action[1]))
        yield ops.commit()

    return generator


def run_random_history(programs, isolation, seed, policy=None):
    db = Database(EngineConfig(record_history=True))
    db.create_table("t", ["k", "v"], key="k")
    setup = db.session()
    setup.begin()
    for k in range(KEYSPACE):
        setup.insert("t", {"k": k, "v": 0})
    setup.commit()
    scheduler = Scheduler(db, seed=seed, policy=policy)
    for cid, txns in enumerate(programs):
        queue = [("txn", build_program(actions, isolation))
                 for actions in txns]
        queue.reverse()

        def source(queue=queue):
            return queue.pop() if queue else None

        # Constraint errors (duplicate inserts) are expected; retries
        # capped so generated duplicate-key loops terminate.
        scheduler.add_client(Client(cid, db.session(), source,
                                    max_retries=10))
    scheduler.run(max_steps=5000)
    return db


@settings(max_examples=40, deadline=None)
@given(programs=client_programs, seed=st.integers(0, 1_000))
def test_serializable_histories_are_serializable(programs, seed):
    db = run_random_history(programs, IsolationLevel.SERIALIZABLE, seed)
    result = check_serializable(db.recorder)
    assert result.serializable, (
        f"SSI committed a non-serializable history! cycle={result.cycle}")


@settings(max_examples=25, deadline=None)
@given(programs=client_programs, seed=st.integers(0, 1_000))
def test_s2pl_histories_are_serializable(programs, seed):
    db = run_random_history(programs, IsolationLevel.S2PL, seed)
    result = check_serializable(db.recorder)
    assert result.serializable, (
        f"S2PL committed a non-serializable history! cycle={result.cycle}")


@settings(max_examples=15, deadline=None)
@given(programs=client_programs, seed=st.integers(0, 1_000))
def test_serializable_under_many_interleavings(programs, seed):
    """Explorer-strategy scheduling: instead of one scheduler seed per
    generated program, plug in several independent exploration policies
    (repro.explore's recording random drivers), so each program is
    checked under multiple distinct interleavings. Every SSI history
    must be serializable, and a failure reports the exact schedule."""
    for trial in range(4):
        driver = _RandomDriver(seed * 31 + trial)
        db = run_random_history(programs, IsolationLevel.SERIALIZABLE,
                                seed, policy=driver.pick)
        result = check_serializable(db.recorder)
        assert result.serializable, (
            f"SSI committed a non-serializable history under replayable "
            f"schedule {driver.choices}! cycle={result.cycle}")


def test_snapshot_isolation_produces_anomalies_somewhere():
    """Sanity check that the random program space actually contains
    anomalies for the checker to find: across a fixed corpus of seeds,
    plain snapshot isolation must commit at least one non-serializable
    history (otherwise the two properties above are vacuous)."""
    rng = random.Random(4242)
    anomalies = 0
    for trial in range(60):
        programs = []
        for _ in range(rng.randint(2, 3)):
            txns = []
            for _ in range(rng.randint(1, 2)):
                actions = []
                for _ in range(rng.randint(2, 4)):
                    kind = rng.choice(["read", "scan", "update"])
                    if kind == "read":
                        actions.append(("read", rng.randrange(KEYSPACE)))
                    elif kind == "scan":
                        a, b = (rng.randrange(KEYSPACE)
                                for _ in range(2))
                        actions.append(("scan", a, b))
                    else:
                        actions.append(("update", rng.randrange(KEYSPACE),
                                        rng.randrange(100)))
                txns.append(actions)
            programs.append(txns)
        db = run_random_history(programs,
                                IsolationLevel.REPEATABLE_READ,
                                seed=trial)
        if not check_serializable(db.recorder).serializable:
            anomalies += 1
    assert anomalies > 0, "corpus never produced an SI anomaly"
