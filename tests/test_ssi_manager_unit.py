"""Direct unit tests for the SSI manager's conflict tracking and
resolution machinery (paper sections 3.3, 4, 5.3-5.4, 6)."""

import pytest

from repro.config import SSIConfig
from repro.errors import SerializationFailure
from repro.mvcc.clog import CommitLog
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.visibility import VisibilityResult
from repro.ssi.manager import SSIManager
from repro.ssi.sxact import INFINITE_SEQ
from repro.storage.tuple import HeapTuple, TID


def make_manager(**kw):
    clog = CommitLog()
    manager = SSIManager(SSIConfig(**kw), clog)
    return manager, clog


def begin(manager, clog, xid, **kw):
    clog.register(xid)
    snap = Snapshot(xmin=xid, xmax=xid + 1)
    return manager.begin(xid, snap, **kw)


def tup(tid=TID(0, 0)):
    return HeapTuple(tid=tid, data={}, xmin=1)


class TestEdgeRecording:
    def test_flag_records_both_directions(self):
        m, clog = make_manager()
        r = begin(m, clog, 10)
        w = begin(m, clog, 11)
        m._flag_rw_conflict(r, w, actor=w)
        assert w in r.out_conflicts
        assert r in w.in_conflicts
        assert m.stats.conflicts_flagged == 1

    def test_duplicate_edges_deduplicated(self):
        m, clog = make_manager()
        r = begin(m, clog, 10)
        w = begin(m, clog, 11)
        m._flag_rw_conflict(r, w, actor=w)
        m._flag_rw_conflict(r, w, actor=w)
        assert m.stats.conflicts_flagged == 1

    def test_commit_updates_in_neighbors_earliest_out(self):
        m, clog = make_manager()
        r = begin(m, clog, 10)
        w = begin(m, clog, 11)
        m._flag_rw_conflict(r, w, actor=w)
        assert r.earliest_out_commit_seq == INFINITE_SEQ
        m.precommit_check(w)
        m.commit(w)
        assert r.earliest_out_commit_seq == w.commit_seq

    def test_abort_removes_edges(self):
        m, clog = make_manager()
        r = begin(m, clog, 10)
        w = begin(m, clog, 11)
        m._flag_rw_conflict(r, w, actor=w)
        m.abort(w)
        assert w not in r.out_conflicts
        assert not w.in_conflicts


class TestDangerousStructures:
    def _triple(self, m, clog):
        t1 = begin(m, clog, 10)
        t2 = begin(m, clog, 11)
        t3 = begin(m, clog, 12)
        return t1, t2, t3

    def test_pivot_doomed_when_t3_commits_first(self):
        m, clog = make_manager()
        t1, t2, t3 = self._triple(m, clog)
        t2.wrote_data = True
        t3.wrote_data = True
        m._flag_rw_conflict(t2, t3, actor=t3)  # T2 -> T3
        m.precommit_check(t3)
        m.commit(t3)                            # T3 commits first
        m._flag_rw_conflict(t1, t2, actor=t1)  # T1 -> T2: completes it
        assert t2.doomed
        with pytest.raises(SerializationFailure):
            m.precommit_check(t2)

    def test_no_failure_if_t1_committed_before_t3(self):
        m, clog = make_manager()
        t1, t2, t3 = self._triple(m, clog)
        t1.wrote_data = True
        m._flag_rw_conflict(t1, t2, actor=t2)
        m._flag_rw_conflict(t2, t3, actor=t3)
        m.precommit_check(t1)
        m.commit(t1)                            # T1 commits first
        m.precommit_check(t3)                   # T3 commits later: safe
        m.commit(t3)
        assert not t2.doomed
        m.precommit_check(t2)
        m.commit(t2)

    def test_without_commit_ordering_opt_structure_always_fires(self):
        m, clog = make_manager(commit_ordering_opt=False,
                               read_only_opt=False)
        t1, t2, t3 = self._triple(m, clog)
        m._flag_rw_conflict(t1, t2, actor=t1)
        # Second edge makes T2 a pivot; without the optimization the
        # structure fires immediately even though nothing committed.
        with pytest.raises(SerializationFailure):
            m._flag_rw_conflict(t2, t3, actor=t2)

    def test_actor_victim_raises_immediately(self):
        m, clog = make_manager()
        t1, t2, t3 = self._triple(m, clog)
        m._flag_rw_conflict(t2, t3, actor=t3)
        m.precommit_check(t3)
        m.commit(t3)
        # The pivot itself performs the completing action: it dies now.
        with pytest.raises(SerializationFailure):
            m._flag_rw_conflict(t1, t2, actor=t2)

    def test_read_only_t1_spared_when_t3_commits_after_snapshot(self):
        m, clog = make_manager()
        t2 = begin(m, clog, 11)
        t3 = begin(m, clog, 12)
        t1 = begin(m, clog, 10, read_only=True)  # snapshot now
        t3.wrote_data = True
        m._flag_rw_conflict(t2, t3, actor=t3)
        m.precommit_check(t3)
        m.commit(t3)  # commits AFTER t1's snapshot
        m._flag_rw_conflict(t1, t2, actor=t1)
        assert not t2.doomed  # Theorem 3: false positive

    def test_read_only_t1_not_spared_when_t3_predates_snapshot(self):
        m, clog = make_manager()
        t2 = begin(m, clog, 11)
        t3 = begin(m, clog, 12)
        t3.wrote_data = True
        m._flag_rw_conflict(t2, t3, actor=t3)
        m.precommit_check(t3)
        m.commit(t3)
        t1 = begin(m, clog, 10, read_only=True)  # snapshot AFTER t3
        m._flag_rw_conflict(t1, t2, actor=t1)
        assert t2.doomed

    def test_two_transaction_cycle(self):
        m, clog = make_manager()
        a = begin(m, clog, 10)
        b = begin(m, clog, 11)
        m._flag_rw_conflict(a, b, actor=b)
        m._flag_rw_conflict(b, a, actor=a)
        m.precommit_check(a)
        m.commit(a)  # first committer; pivot b must die
        assert b.doomed

    def test_doomed_flag_cleared_on_abort(self):
        m, clog = make_manager()
        a = begin(m, clog, 10)
        a.doomed = True
        m.abort(a)
        assert a.aborted and not a.doomed


class TestPreparedInteraction:
    def test_prepared_pivot_cannot_be_victim(self):
        m, clog = make_manager()
        t1 = begin(m, clog, 10)
        t2 = begin(m, clog, 11)
        t3 = begin(m, clog, 12)
        m._flag_rw_conflict(t2, t3, actor=t3)
        m.precommit_check(t3)
        m.commit(t3)
        m.prepare(t2)  # pivot-to-be is now unabortable
        with pytest.raises(SerializationFailure):
            m._flag_rw_conflict(t1, t2, actor=t1)
        assert not t2.doomed

    def test_precommit_aborts_self_when_pivot_prepared(self):
        m, clog = make_manager()
        t1 = begin(m, clog, 10)
        pivot = begin(m, clog, 11)
        me = begin(m, clog, 12)
        m._flag_rw_conflict(t1, pivot, actor=t1)
        m._flag_rw_conflict(pivot, me, actor=pivot)
        m.prepare(pivot)
        # `me` commits first (T3) but cannot doom the prepared pivot,
        # so T1 is doomed instead (the only abortable participant).
        m.precommit_check(me)
        assert t1.doomed and not pivot.doomed

    def test_recovered_prepared_is_conservative(self):
        m, clog = make_manager()
        clog.register(50)
        sx = m.register_recovered_prepared(50, Snapshot(50, 51))
        assert sx.prepared
        assert sx.summary_in_max_seq is not None
        assert sx.summary_conflict_out
        assert sx.earliest_out_commit_seq == 0.0


class TestCleanup:
    def test_no_concurrent_transactions_frees_everything(self):
        m, clog = make_manager()
        a = begin(m, clog, 10)
        tuple_ = tup()
        m.on_read_tuple(a, 1, tuple_, VisibilityResult(True))
        m.precommit_check(a)
        m.commit(a)
        assert m.committed_retained() == []
        assert m.lockmgr.lock_count == 0
        assert m.sxact_for_xid(10) is None

    def test_concurrent_active_retains_committed(self):
        m, clog = make_manager()
        pin = begin(m, clog, 9)
        a = begin(m, clog, 10)
        m.on_read_tuple(a, 1, tup(), VisibilityResult(True))
        m.precommit_check(a)
        m.commit(a)
        assert a in m.committed_retained()
        assert not a.locks_released
        m.commit(pin)
        assert m.committed_retained() == []

    def test_summarization_triggers_at_capacity(self):
        m, clog = make_manager(max_committed_sxacts=1)
        pin = begin(m, clog, 5)  # keeps everyone "needed"
        xacts = []
        for xid in (10, 11, 12):
            a = begin(m, clog, xid)
            m.on_read_tuple(a, 1, tup(TID(0, xid)), VisibilityResult(True))
            m.precommit_check(a)
            m.commit(a)
            xacts.append(a)
        assert len(m.committed_retained()) == 1
        assert m.stats.summarized == 2
        table = m.old_serxid_table()
        assert 10 in table and 11 in table
        assert m.lockmgr.summary_targets()
        m.commit(pin)

    def test_summarize_sets_neighbor_markers(self):
        m, clog = make_manager(max_committed_sxacts=0)
        pin = begin(m, clog, 5)
        reader = begin(m, clog, 10)
        writer = begin(m, clog, 11)
        victim = begin(m, clog, 12)
        m._flag_rw_conflict(reader, victim, actor=victim)  # reader -> victim
        m._flag_rw_conflict(victim, writer, actor=victim)  # victim -> writer
        m.precommit_check(victim)
        m.commit(victim)  # capacity 0: summarized immediately
        assert victim not in reader.out_conflicts
        assert reader.summary_conflict_out
        assert reader.earliest_out_commit_seq == victim.commit_seq
        assert victim not in writer.in_conflicts
        assert writer.summary_in_max_seq == victim.commit_seq


class TestSafeSnapshotBookkeeping:
    def test_watch_lists_symmetric(self):
        m, clog = make_manager()
        w = begin(m, clog, 10)
        ro = begin(m, clog, 11, read_only=True)
        assert w in ro.possible_unsafe_conflicts
        assert ro in w.watching_ros

    def test_ro_ignores_other_read_only_transactions(self):
        m, clog = make_manager()
        other_ro = begin(m, clog, 10, read_only=True)
        ro = begin(m, clog, 11, read_only=True)
        assert ro.ro_safe  # a read-only txn cannot endanger a snapshot

    def test_safe_transition_releases_ssi_state(self):
        m, clog = make_manager()
        w = begin(m, clog, 10)
        ro = begin(m, clog, 11, read_only=True)
        m.on_read_tuple(ro, 1, tup(), VisibilityResult(True))
        m._flag_rw_conflict(ro, w, actor=ro)
        m.precommit_check(w)
        m.commit(w)  # no dangerous out-conflict: ro becomes safe
        assert ro.ro_safe
        assert not ro.out_conflicts
        assert m.lockmgr.targets_held(ro) == set()

    def test_stats_counters(self):
        m, clog = make_manager()
        a = begin(m, clog, 10)
        m.precommit_check(a)
        m.commit(a)
        b = begin(m, clog, 11)
        m.abort(b)
        assert m.stats.committed == 1
        assert m.stats.aborted == 1
