"""Tests for repro.server: wire protocol, connection lifecycle,
admission control, backpressure, and both transports."""

import socket
import threading
import time

import pytest

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.errors import (AuthenticationError, LockNotAvailable,
                          ProtocolError, ReproError, SerializationFailure,
                          TooManyConnections)
from repro.server import (ClientPool, ReproClient, ReproServer,
                          ServerConfig, connect)
from repro.server import protocol


def make_server(**kw):
    config_kw = {"port": 0}
    config_kw.update(kw)
    db = Database(EngineConfig())
    return ReproServer(db, ServerConfig(**config_kw)).start()


def assert_clean_stop(server):
    leaks = server.stop()
    assert leaks == {"threads": [], "connections": []}


class RawConn:
    """Protocol-level test client: raw frames, no client library."""

    def __init__(self, address):
        self.sock = socket.create_connection(address, timeout=10)
        self.rfile = self.sock.makefile("rb")

    def send(self, **payload):
        self.sock.sendall(protocol.encode_frame(payload))

    def send_bytes(self, data):
        self.sock.sendall(data)

    def recv(self):
        line = self.rfile.readline()
        assert line, "server closed the connection"
        return protocol.decode_frame(line.rstrip(b"\r\n"))

    def close(self):
        self.rfile.close()
        self.sock.close()


class TestLifecycle:
    def test_start_stop_leak_free(self):
        server = make_server()
        assert server.address[1] > 0
        assert_clean_stop(server)

    def test_stop_is_idempotent(self):
        server = make_server()
        assert_clean_stop(server)
        assert server.stop() == {"threads": [], "connections": []}

    def test_context_manager(self):
        db = Database(EngineConfig())
        with ReproServer(db, ServerConfig(port=0)) as server:
            client = connect(server.address)
            assert client.ping() == "pong"
            client.close()

    def test_hello_reports_wire_version_and_isolation(self):
        server = make_server()
        client = connect(server.address, isolation="repeatable read")
        assert client.hello["wire_version"] == protocol.WIRE_VERSION
        assert client.hello["isolation"] == "repeatable read"
        client.close()
        assert_clean_stop(server)

    def test_implicit_rollback_on_abrupt_disconnect(self):
        server = make_server()
        boot = connect(server.address)
        boot.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        boot.sql("INSERT INTO t (k, v) VALUES (1, 10)")

        walker = connect(server.address)
        walker.sql("BEGIN")
        walker.sql("UPDATE t SET v = 99 WHERE k = 1")
        # Vanish without COMMIT or a close frame. (Both the socket and
        # its makefile wrapper must go, or the fd stays open.)
        walker._teardown()

        # The survivor's conflicting update parks until the server
        # rolls the orphan back, then proceeds; the orphan's write
        # must not survive.
        boot.sql("BEGIN ISOLATION LEVEL READ COMMITTED")
        assert boot.sql("UPDATE t SET v = 11 WHERE k = 1") == 1
        boot.sql("COMMIT")
        assert boot.sql("SELECT v FROM t WHERE k = 1") == [{"v": 11}]
        boot.close()
        assert_clean_stop(server)

    def test_stop_cancels_parked_statement(self):
        server = make_server()
        boot = connect(server.address)
        boot.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        boot.sql("INSERT INTO t (k, v) VALUES (1, 10)")
        holder = connect(server.address)
        holder.sql("BEGIN")
        holder.sql("UPDATE t SET v = 11 WHERE k = 1")

        waiter = connect(server.address)
        errors = []

        def blocked():
            waiter.sql("BEGIN ISOLATION LEVEL READ COMMITTED")
            try:
                waiter.sql("UPDATE t SET v = 12 WHERE k = 1")
            except (ReproError, OSError) as exc:
                errors.append(exc)

        thread = threading.Thread(target=blocked)
        thread.start()
        deadline = time.monotonic() + 5
        while (server.engine.latch.parks == 0
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert_clean_stop(server)
        thread.join(10)
        assert not thread.is_alive()
        assert errors, "parked statement survived server stop"


class TestProtocolErrors:
    def test_sql_before_hello_is_protocol_error(self):
        server = make_server()
        raw = RawConn(server.address)
        raw.send(id=1, op="sql", sql="SELECT 1")
        response = raw.recv()
        assert response["ok"] is False
        assert response["error"]["sqlstate"] == ProtocolError.sqlstate
        raw.close()
        assert_clean_stop(server)

    def test_unknown_op_rejected(self):
        server = make_server()
        raw = RawConn(server.address)
        raw.send(id=1, op="launch_missiles")
        response = raw.recv()
        assert response["ok"] is False
        assert response["error"]["sqlstate"] == "08P01"
        raw.close()
        assert_clean_stop(server)

    def test_garbage_line_rejected(self):
        server = make_server()
        raw = RawConn(server.address)
        raw.send_bytes(b"this is not json\n")
        response = raw.recv()
        assert response["ok"] is False
        assert response["error"]["type"] == "ProtocolError"
        raw.close()
        assert_clean_stop(server)

    def test_double_hello_rejected(self):
        server = make_server()
        raw = RawConn(server.address)
        raw.send(id=1, op="hello")
        assert raw.recv()["ok"] is True
        raw.send(id=2, op="hello")
        response = raw.recv()
        assert response["ok"] is False
        assert response["error"]["sqlstate"] == "08P01"
        raw.close()
        assert_clean_stop(server)

    def test_unknown_isolation_rejected(self):
        server = make_server()
        with pytest.raises(ProtocolError):
            connect(server.address, isolation="chaotic evil")
        assert_clean_stop(server)


class TestAuthentication:
    def test_wrong_token_gets_28P01(self):
        server = make_server(auth_token="sesame")
        with pytest.raises(AuthenticationError):
            connect(server.address, token="wrong")
        with pytest.raises(AuthenticationError):
            connect(server.address)  # missing token
        client = connect(server.address, token="sesame")
        assert client.ping() == "pong"
        client.close()
        assert_clean_stop(server)


class TestAdmissionControl:
    def test_connection_limit_rejects_with_53300(self):
        server = make_server(max_connections=1)
        first = connect(server.address)
        with pytest.raises(TooManyConnections) as excinfo:
            ReproClient(server.address, connect_retries=0).connect()
        assert excinfo.value.sqlstate == "53300"
        assert excinfo.value.retryable is True
        first.close()
        assert_clean_stop(server)

    def test_connect_retry_wins_a_freed_slot(self):
        server = make_server(max_connections=1)
        first = connect(server.address)

        def free_slot():
            time.sleep(0.15)
            first.close()

        thread = threading.Thread(target=free_slot)
        thread.start()
        second = ReproClient(server.address, connect_retries=20,
                             backoff_base=0.05, backoff_cap=0.1).connect()
        assert second.ping() == "pong"
        assert second.retries > 0
        thread.join(5)
        second.close()
        assert_clean_stop(server)

    def test_backpressure_rejects_pipelined_overflow(self):
        server = make_server(queue_depth=1)
        boot = connect(server.address)
        boot.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        boot.sql("INSERT INTO t (k, v) VALUES (1, 10)")
        holder = connect(server.address)
        holder.sql("BEGIN")
        holder.sql("UPDATE t SET v = 11 WHERE k = 1")

        raw = RawConn(server.address)
        raw.send(id=1, op="hello")
        assert raw.recv()["ok"] is True
        raw.send(id=2, op="sql", sql="BEGIN ISOLATION LEVEL READ COMMITTED")
        assert raw.recv()["ok"] is True
        # This statement parks its worker on the held lock...
        raw.send(id=3, op="sql", sql="UPDATE t SET v = 12 WHERE k = 1")
        time.sleep(0.2)  # let the worker actually park
        # ...so pipelining past queue_depth=1 must bounce with 53300.
        for i in range(4, 10):
            raw.send(id=i, op="ping")
        # At least 5 of the 6 pings overflow the queue (6 when the
        # worker had not yet dequeued the update); rejections are sent
        # by the reader thread immediately, before the blocked work.
        responses = {}
        for _ in range(5):
            frame = raw.recv()
            responses[frame["id"]] = frame
        rejected = [r for r in responses.values()
                    if not r["ok"]
                    and r["error"]["sqlstate"] == "53300"]
        assert len(rejected) == 5
        assert all(r["error"]["retryable"] for r in rejected)
        # Unblock; every remaining id (3..9) gets exactly one response.
        holder.sql("COMMIT")
        while len(responses) < 7:
            frame = raw.recv()
            responses[frame["id"]] = frame
        assert responses[3]["ok"] is True and responses[3]["result"] == 1
        for c in (boot, holder):
            c.close()
        raw.close()
        assert_clean_stop(server)


class TestStatementTimeout:
    def test_lock_wait_past_timeout_is_55P03(self):
        server = make_server(statement_timeout=0.2)
        boot = connect(server.address)
        boot.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        boot.sql("INSERT INTO t (k, v) VALUES (1, 10)")
        holder = connect(server.address)
        holder.sql("BEGIN")
        holder.sql("UPDATE t SET v = 11 WHERE k = 1")

        waiter = connect(server.address)
        waiter.sql("BEGIN ISOLATION LEVEL READ COMMITTED")
        with pytest.raises(LockNotAvailable) as excinfo:
            waiter.sql("UPDATE t SET v = 12 WHERE k = 1")
        assert excinfo.value.sqlstate == "55P03"
        assert waiter.txn == "failed"
        waiter.sql("ROLLBACK")
        # The cancelled request left the grant queue clean: the holder
        # commits and a fresh update sails through.
        holder.sql("COMMIT")
        assert waiter.sql("UPDATE t SET v = 13 WHERE k = 1") == 1
        for c in (boot, holder, waiter):
            c.close()
        assert_clean_stop(server)


class TestSQLFlow:
    def test_txn_field_tracks_state(self):
        server = make_server()
        client = connect(server.address)
        client.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        assert client.txn == "idle"
        client.sql("BEGIN")
        assert client.txn == "open"
        with pytest.raises(ReproError):
            client.sql("SELECT * FROM nonexistent")
        assert client.txn == "failed"
        client.sql("ROLLBACK")
        assert client.txn == "idle"
        client.close()
        assert_clean_stop(server)

    def test_serialization_failure_carries_postmortem_fields(self):
        server = make_server()
        boot = connect(server.address)
        boot.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        boot.sql("INSERT INTO t (k, v) VALUES (1, 10), (2, 10)")
        c1 = connect(server.address)
        c2 = connect(server.address)
        c1.sql("BEGIN ISOLATION LEVEL SERIALIZABLE")
        c2.sql("BEGIN ISOLATION LEVEL SERIALIZABLE")
        c1.sql("SELECT v FROM t WHERE k = 2")
        c2.sql("SELECT v FROM t WHERE k = 1")
        c1.sql("UPDATE t SET v = 5 WHERE k = 1")
        c2.sql("UPDATE t SET v = 5 WHERE k = 2")
        c1.sql("COMMIT")
        with pytest.raises(SerializationFailure) as excinfo:
            c2.sql("COMMIT")
        assert excinfo.value.sqlstate == "40001"
        assert excinfo.value.retryable is True
        for c in (boot, c1, c2):
            c.close()
        assert_clean_stop(server)

    def test_prepare_state_is_per_connection(self):
        server = make_server()
        boot = connect(server.address)
        boot.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        boot.sql("INSERT INTO t (k, v) VALUES (1, 10)")
        c1 = connect(server.address)
        c2 = connect(server.address)
        c1.sql("PREPARE getv AS SELECT v FROM t WHERE k = $1")
        assert c1.sql("EXECUTE getv(1)") == [{"v": 10}]
        with pytest.raises(ReproError):
            c2.sql("EXECUTE getv(1)")  # not prepared on this connection
        assert c1.sql("EXECUTE getv(1)") == [{"v": 10}]
        for c in (boot, c1, c2):
            c.close()
        assert_clean_stop(server)

    def test_default_isolation_from_config(self):
        server = make_server(default_isolation="read committed")
        client = connect(server.address)
        assert client.hello["isolation"] == "read committed"
        client.close()
        assert_clean_stop(server)


class TestAsyncioTransport:
    def test_sql_roundtrip(self):
        server = make_server(mode="asyncio")
        client = connect(server.address)
        client.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        client.sql("INSERT INTO t (k, v) VALUES (1, 10)")
        assert client.sql("SELECT * FROM t") == [{"k": 1, "v": 10}]
        client.close()
        assert_clean_stop(server)

    def test_admission_control(self):
        server = make_server(mode="asyncio", max_connections=1)
        first = connect(server.address)
        with pytest.raises(TooManyConnections):
            ReproClient(server.address, connect_retries=0).connect()
        first.close()
        assert_clean_stop(server)

    def test_concurrent_clients_interleave(self):
        server = make_server(mode="asyncio")
        boot = connect(server.address)
        boot.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        boot.sql("INSERT INTO t (k, v) VALUES (1, 10)")
        holder = connect(server.address)
        holder.sql("BEGIN")
        holder.sql("UPDATE t SET v = 11 WHERE k = 1")
        # A second client's statement runs while the first's txn is
        # open (the parked statement must not block the event loop).
        other = connect(server.address)
        assert other.ping() == "pong"
        assert other.sql("SELECT k FROM t") == [{"k": 1}]
        holder.sql("COMMIT")
        for c in (boot, holder, other):
            c.close()
        assert_clean_stop(server)


class TestNoFatalErrors:
    def test_smoke_leaves_no_fatal_errors(self):
        server = make_server()
        client = connect(server.address)
        client.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        client.run_transaction(
            lambda c: c.sql("INSERT INTO t (k, v) VALUES (1, 1)"))
        client.close()
        assert server.fatal_errors == []
        assert_clean_stop(server)


class TestClientPool:
    def test_connections_are_reused_within_bound(self):
        server = make_server()
        with ClientPool(server.address, size=2) as pool:
            c1 = pool.acquire()
            pool.release(c1)
            c2 = pool.acquire()
            assert c2 is c1                      # reuse, not re-dial
            pool.release(c2)
            assert pool.stats()["created"] == 1  # never above demand
        assert_clean_stop(server)

    def test_exhaustion_raises_retryable_53300(self):
        server = make_server()
        with ClientPool(server.address, size=1,
                        acquire_timeout=0.05) as pool:
            held = pool.acquire()
            with pytest.raises(TooManyConnections) as exc:
                pool.acquire()
            assert exc.value.sqlstate == "53300"
            assert isinstance(exc.value, ReproError)
            assert pool.stats()["exhausted"] == 1
            pool.release(held)
        assert_clean_stop(server)

    def test_waiter_wins_a_released_connection(self):
        """The pool-exhaustion retry: a blocked acquire succeeds as
        soon as a peer releases, well before its timeout."""
        server = make_server()
        with ClientPool(server.address, size=1, acquire_timeout=5.0) as pool:
            held = pool.acquire()
            got = []

            def waiter():
                client = pool.acquire()
                got.append(client)
                pool.release(client)

            t = threading.Thread(target=waiter)
            t.start()
            time.sleep(0.05)
            assert not got            # parked on the condition variable
            pool.release(held)
            t.join(timeout=5)
            assert got == [held]
            assert pool.stats()["waits"] == 1
        assert_clean_stop(server)

    def test_run_transaction_through_pool(self):
        server = make_server()
        with ClientPool(server.address, size=2) as pool:
            with pool.connection() as c:
                c.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            pool.run_transaction(
                lambda c: c.sql("INSERT INTO t (k, v) VALUES (1, 10)"))
            rows = pool.run_transaction(
                lambda c: c.sql("SELECT v FROM t WHERE k = 1"))
            assert rows == [{"v": 10}]
        assert_clean_stop(server)

    def test_release_rolls_back_open_transaction(self):
        server = make_server()
        with ClientPool(server.address, size=1) as pool:
            c = pool.acquire()
            c.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
            c.sql("BEGIN")
            c.sql("INSERT INTO t (k, v) VALUES (1, 10)")
            pool.release(c)           # implicit ROLLBACK
            rows = pool.run_transaction(lambda c: c.sql("SELECT k FROM t"))
            assert rows == []
        assert_clean_stop(server)

    def test_dead_connection_heals_on_next_acquire(self):
        server = make_server()
        pool = ClientPool(server.address, size=1)
        c = pool.acquire()
        c.close()                     # simulate a dropped connection
        pool.release(c)               # slot freed, not pooled
        assert pool.stats()["created"] == 0
        c2 = pool.acquire()           # re-dials within the bound
        assert c2.ping() == "pong"
        pool.release(c2)
        pool.close()
        assert_clean_stop(server)
