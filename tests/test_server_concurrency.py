"""Concurrency acceptance tests for repro.server: real OS threads,
sanitizers on, histories verified acyclic (the paper's correctness
criterion) after running through the actual network stack."""

import random
import threading

import pytest

from repro.config import EngineConfig, SanitizerConfig
from repro.engine.database import Database
from repro.errors import SerializationFailure
from repro.server import ReproServer, ServerConfig, connect
from repro.verify.checker import check_serializable


def make_sanitized_server(monkeypatch, **kw):
    """Server over a database with every runtime sanitizer armed and
    the history recorder on (so repro.verify can check the run)."""
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    db = Database(EngineConfig(sanitize=SanitizerConfig.all_on(),
                               record_history=True))
    assert db.sanitizers is not None
    config_kw = {"port": 0}
    config_kw.update(kw)
    server = ReproServer(db, ServerConfig(**config_kw)).start()
    return server, db


def assert_clean_finish(server, db):
    assert server.fatal_errors == []
    leaks = server.stop()
    assert leaks == {"threads": [], "connections": []}
    result = check_serializable(db.recorder)
    assert result.serializable, f"cycle through server: {result.cycle}"
    return result


class TestWriteSkewOverTheWire:
    def test_exactly_one_40001_and_retry_succeeds(self, monkeypatch):
        server, db = make_sanitized_server(monkeypatch)
        boot = connect(server.address)
        boot.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
        boot.sql("INSERT INTO t (k, v) VALUES (1, 10), (2, 10)")
        boot.close()

        barrier = threading.Barrier(2, timeout=15)
        clients = {}
        failures = {}

        def skew(name, read_k, write_k):
            client = connect(server.address)
            clients[name] = client
            client.sql("BEGIN ISOLATION LEVEL SERIALIZABLE")
            barrier.wait()
            rows = client.sql(f"SELECT v FROM t WHERE k = {read_k}")
            barrier.wait()  # both have read before either writes
            client.sql(f"UPDATE t SET v = {rows[0]['v'] - 5} "
                       f"WHERE k = {write_k}")
            barrier.wait()  # both have written before either commits
            try:
                client.sql("COMMIT")
            except SerializationFailure as exc:
                failures[name] = exc
                if client.txn in ("open", "failed"):
                    client.sql("ROLLBACK")

        threads = [threading.Thread(target=skew, args=("a", 1, 2)),
                   threading.Thread(target=skew, args=("b", 2, 1))]
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)
            assert not t.is_alive()

        # The dangerous structure fires on exactly one side: the first
        # committer wins (commit-ordering optimization, section 3.3.1).
        assert len(failures) == 1, f"expected one 40001, got {failures}"
        (loser, exc), = failures.items()
        assert exc.sqlstate == "40001"
        assert exc.retryable is True

        # The client library's retry loop re-runs the loser to success.
        read_k, write_k = (1, 2) if loser == "a" else (2, 1)
        client = clients[loser]

        def txn(c):
            rows = c.sql(f"SELECT v FROM t WHERE k = {read_k}")
            c.sql(f"UPDATE t SET v = {rows[0]['v'] - 5} "
                  f"WHERE k = {write_k}")

        client.run_transaction(txn, isolation="serializable")

        # Final state matches the serial order winner-then-loser.
        values = {row["k"]: row["v"]
                  for row in client.sql("SELECT * FROM t")}
        winner_read_k = 2 if loser == "a" else 1
        assert values[read_k] == 5          # winner's write
        assert values[winner_read_k] == 0   # loser re-read 5, wrote 0
        for c in clients.values():
            c.close()
        assert_clean_finish(server, db)


class TestConcurrentSIBench:
    TABLE_SIZE = 20
    CLIENTS = 16
    TXNS_PER_CLIENT = 6

    @pytest.mark.parametrize("mode", ["threaded", "asyncio"])
    def test_16_clients_zero_anomalies(self, monkeypatch, mode):
        server, db = make_sanitized_server(monkeypatch, mode=mode,
                                           max_connections=self.CLIENTS + 1)
        boot = connect(server.address)
        boot.sql("CREATE TABLE sibench (k INT PRIMARY KEY, v INT)")
        seed_rng = random.Random(42)
        values = ", ".join(f"({k}, {seed_rng.randrange(10_000)})"
                           for k in range(self.TABLE_SIZE))
        boot.sql(f"INSERT INTO sibench (k, v) VALUES {values}")
        boot.close()

        stats = {"commits": 0, "retries": 0}
        stats_lock = threading.Lock()
        errors = []

        def client_loop(worker_id):
            rng = random.Random(1000 + worker_id)
            try:
                client = connect(server.address, isolation="serializable",
                                 backoff_base=0.002, backoff_cap=0.05)
                for _ in range(self.TXNS_PER_CLIENT):
                    if rng.random() < 0.5:
                        key = rng.randrange(self.TABLE_SIZE)
                        value = rng.randrange(10_000)

                        def txn(c, key=key, value=value):
                            c.sql(f"UPDATE sibench SET v = {value} "
                                  f"WHERE k = {key}")

                        client.run_transaction(txn, max_retries=50)
                    else:
                        def txn(c):
                            rows = c.sql("SELECT * FROM sibench")
                            assert len(rows) == self.TABLE_SIZE
                            return min(rows,
                                       key=lambda r: (r["v"], r["k"]))

                        client.run_transaction(txn, read_only=True,
                                               max_retries=50)
                with stats_lock:
                    stats["commits"] += self.TXNS_PER_CLIENT
                    stats["retries"] += client.retries
                client.close()
            except Exception as exc:  # surface, don't hang the join
                errors.append((worker_id, exc))

        threads = [threading.Thread(target=client_loop, args=(i,),
                                    name=f"sibench-client-{i}")
                   for i in range(self.CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
            assert not t.is_alive(), "sibench client hung"
        assert errors == []
        assert stats["commits"] == self.CLIENTS * self.TXNS_PER_CLIENT

        # Zero non-serializable commits: the recorded history's Adya
        # graph (over committed transactions) must be acyclic.
        result = assert_clean_finish(server, db)
        assert result.serial_order is not None
