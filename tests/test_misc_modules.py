"""Coverage for the small supporting modules: errors, config, waits,
isolation levels, and SSI target helpers."""

import pytest

from repro.config import CostModel, EngineConfig, SSIConfig
from repro.engine.isolation import IsolationLevel
from repro.errors import (CapacityExceededError, DeadlockDetected,
                          ReproError, RetryableError, SerializationFailure,
                          UserError, WouldBlock)
from repro.ssi.targets import (heap_write_targets, index_inf_target,
                               index_insert_targets, index_key_target,
                               index_page_target, index_rel_target,
                               page_target, rel_target, tuple_target)
from repro.storage.tuple import TID
from repro.waits import SafeSnapshotWait, Yield, YIELD


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(SerializationFailure, RetryableError)
        assert issubclass(DeadlockDetected, RetryableError)
        assert issubclass(RetryableError, ReproError)
        assert issubclass(UserError, ReproError)
        assert not issubclass(CapacityExceededError, RetryableError)

    def test_sqlstates(self):
        assert SerializationFailure("x").sqlstate == "40001"
        assert DeadlockDetected("x").sqlstate == "40P01"
        assert CapacityExceededError("x").sqlstate == "53200"

    def test_serialization_failure_metadata(self):
        exc = SerializationFailure("boom", pivot_xid=7, reason="pivot")
        assert exc.pivot_xid == 7
        assert exc.reason == "pivot"

    def test_would_block_is_not_repro_error(self):
        # Control flow, not an error: a bare `except ReproError` must
        # not swallow it.
        assert not issubclass(WouldBlock, ReproError)


class TestConfig:
    def test_defaults_are_paper_faithful(self):
        cfg = SSIConfig()
        assert cfg.commit_ordering_opt
        assert cfg.read_only_opt
        assert cfg.safe_snapshots
        assert cfg.own_write_drops_siread
        assert cfg.conflict_tracking == "full"
        assert cfg.index_locking == "page"  # what 9.1 shipped

    def test_disk_bound_factory(self):
        cfg = EngineConfig.disk_bound(io_miss=42.0, buffer_pages=10)
        assert cfg.cost.io_miss == 42.0
        assert cfg.buffer_pages == 10

    def test_in_memory_factory(self):
        cfg = EngineConfig.in_memory()
        assert cfg.cost.io_miss == 0.0
        assert cfg.buffer_pages is None

    def test_cost_model_fields(self):
        cost = CostModel()
        assert cost.ssi_lock_work > cost.hw_lock_work
        assert cost.parallelism >= 1


class TestWaits:
    def test_yield_always_ready(self):
        assert YIELD.ready
        assert Yield().ready
        assert "yield" in YIELD.describe()

    def test_safe_snapshot_wait_tracks_sxact(self):
        class FakeSx:
            xid = 9
            ro_safe = False
            ro_unsafe = False

        sx = FakeSx()
        wait = SafeSnapshotWait(sx)
        assert not wait.ready
        sx.ro_unsafe = True
        assert wait.ready
        sx.ro_unsafe = False
        sx.ro_safe = True
        assert wait.ready
        assert "9" in wait.describe()


class TestIsolationLevels:
    def test_snapshot_based_classification(self):
        assert IsolationLevel.READ_COMMITTED.snapshot_based
        assert IsolationLevel.REPEATABLE_READ.snapshot_based
        assert IsolationLevel.SERIALIZABLE.snapshot_based
        assert not IsolationLevel.S2PL.snapshot_based

    def test_only_serializable_uses_ssi(self):
        assert IsolationLevel.SERIALIZABLE.uses_ssi
        assert not IsolationLevel.REPEATABLE_READ.uses_ssi

    def test_only_rc_takes_statement_snapshots(self):
        assert IsolationLevel.READ_COMMITTED.statement_snapshot
        assert not IsolationLevel.SERIALIZABLE.statement_snapshot


class TestTargets:
    def test_heap_write_targets_coarsest_first(self):
        targets = heap_write_targets(5, TID(3, 7))
        assert targets == [rel_target(5), page_target(5, 3),
                           tuple_target(5, TID(3, 7))]

    def test_index_insert_targets_coarsest_first(self):
        targets = index_insert_targets(9, [1, 2])
        assert targets[0] == index_rel_target(9)
        assert index_page_target(9, 1) in targets
        assert index_page_target(9, 2) in targets

    def test_key_targets_distinct_per_key(self):
        assert index_key_target(9, 5) != index_key_target(9, 6)
        assert index_key_target(9, 5) != index_inf_target(9)
        assert index_inf_target(9) == index_inf_target(9)
