"""Crash-point fault injection (ISSUE 9 satellite: kill the engine at
every IO boundary and prove recovery).

The exhaustive sweep enumerates *every* write/fsync/truncate the
durability layer performs during a small serial workload and crashes
at each one in turn; the seeded sweeps sample crash points (including
torn-write variants) across a larger workload and a corpus program.
After each crash, :func:`tests.crashkit.sweep_crash_points` requires

* the recovered state to be a committed prefix of the uncrashed run
  (only the commit in flight at the crash may be absent), and
* resuming the remaining transactions on the recovered database to
  reproduce the uncrashed run's final state exactly.
"""

import random
from pathlib import Path

import pytest

from repro.engine.isolation import IsolationLevel
from repro.explore import load_replay
from repro.explore.explorer import canonical_state
from repro.explore.program import Program, Stmt, TableSpec, Txn, add
from repro.storage.durable import SimulatedCrash, open_database
from tests.crashkit import (CrashInjector, OpCounter, count_workload_ops,
                            durable_config, reference_states,
                            run_serial_workload, sweep_crash_points)

CORPUS_DIR = Path(__file__).resolve().parent / "explore_corpus"


def small_program() -> Program:
    """Inserts, updates, and deletes across two tables in eight
    transactions -- small enough to crash at every IO operation."""
    return Program(
        tables=[
            TableSpec("acct", ["id", "bal"], key="id",
                      rows=[{"id": 1, "bal": 100}, {"id": 2, "bal": 200}]),
            TableSpec("log", ["id", "note"], key="id"),
        ],
        clients=[[
            Txn([Stmt("insert", "log", row={"id": 1, "note": "open"}),
                 Stmt("update", "acct", where=["eq", "id", 1],
                      set={"bal": add("bal", -10)})]),
            Txn([Stmt("select", "acct", where=["eq", "id", 2])],
                read_only=True),
            Txn([Stmt("insert", "log", row={"id": 2, "note": "xfer"}),
                 Stmt("update", "acct", where=["eq", "id", 2],
                      set={"bal": add("bal", 10)})]),
            Txn([Stmt("delete", "log", where=["eq", "id", 1])]),
            Txn([Stmt("insert", "log", row={"id": 3, "note": "close"}),
                 Stmt("insert", "log", row={"id": 4, "note": "audit"})]),
            Txn([Stmt("update", "acct", where=["eq", "id", 1],
                      set={"bal": 0}),
                 Stmt("delete", "log", where=["eq", "id", 3])]),
        ]],
    )


def larger_program() -> Program:
    """~20 transactions over a 24-row table: enough IO (several
    auto-checkpoints at the test threshold) that sweeping every crash
    point would be slow, so the seeded sweep samples them."""
    rows = [{"id": i, "v": i * 10} for i in range(1, 25)]
    txns = []
    for i in range(1, 11):
        txns.append(Txn([
            Stmt("update", "t", where=["eq", "id", i],
                 set={"v": add("v", 1)}),
            Stmt("insert", "t", row={"id": 100 + i, "v": i}),
        ]))
        txns.append(Txn([
            Stmt("delete", "t", where=["eq", "id", 100 + i]),
        ]))
    return Program(
        tables=[TableSpec("t", ["id", "v"], key="id", rows=rows)],
        clients=[txns])


def _assert_all_ok(reports):
    bad = [r for r in reports if not r["ok"]]
    assert not bad, f"{len(bad)} crash points failed recovery: {bad[:3]}"


def test_exhaustive_crash_sweep():
    """Every single IO operation of the small workload is a crash
    point; all of them must recover to a committed prefix."""
    program = small_program()
    iso = IsolationLevel.SERIALIZABLE
    total = count_workload_ops(program, iso)
    assert total >= 10, f"workload too quiet to sweep ({total} IO ops)"
    reports = sweep_crash_points(program, iso,
                                 crash_points=range(1, total + 1))
    _assert_all_ok(reports)
    assert all(r["crashed"] for r in reports), \
        "a crash point inside the op count did not fire"
    # The sweep must actually exercise mid-workload crashes, not just
    # lose everything: some crash points recover committed work.
    assert any(r["completed"] > 0 for r in reports)


def test_exhaustive_crash_sweep_torn_writes():
    """Same sweep with every fatal write torn in half instead of
    dropped: checksums must mask the torn frame/page and recovery must
    still land on a committed prefix."""
    program = small_program()
    iso = IsolationLevel.SERIALIZABLE
    total = count_workload_ops(program, iso)
    reports = sweep_crash_points(program, iso,
                                 crash_points=range(1, total + 1),
                                 torn=True)
    _assert_all_ok(reports)


def test_seeded_random_crash_sweep_larger_workload():
    program = larger_program()
    iso = IsolationLevel.REPEATABLE_READ
    total = count_workload_ops(program, iso)
    rng = random.Random(0xC0FFEE)
    points = sorted(rng.sample(range(1, total + 1), min(18, total)))
    reports = sweep_crash_points(program, iso, crash_points=points)
    _assert_all_ok(reports)
    reports_torn = sweep_crash_points(program, iso, crash_points=points,
                                      torn=True)
    _assert_all_ok(reports_torn)


@pytest.mark.parametrize("name", ["phantom_under_join",
                                  "write_skew_via_aggregate"])
def test_corpus_program_crash_sweep(name):
    """The corpus programs (guards, back-references, aggregates-via-
    selects) run serially under SERIALIZABLE survive sampled crash
    points."""
    program = load_replay(str(CORPUS_DIR / f"{name}.json")).program
    iso = IsolationLevel.SERIALIZABLE
    total = count_workload_ops(program, iso)
    step = max(1, total // 12)
    reports = sweep_crash_points(program, iso,
                                 crash_points=range(1, total + 1, step))
    _assert_all_ok(reports)


def test_crash_during_checkpoint_recovers_from_previous(tmp_path):
    """Force a checkpoint and crash inside it at each of its IO
    operations: the previous checkpoint (and the WAL) must keep the
    database recoverable -- the atomic-publish + segment-generation
    design under test."""
    program = small_program()
    iso = IsolationLevel.SERIALIZABLE
    # Count the IO ops of an explicit checkpoint after the workload.
    data_dir = str(tmp_path / "count")
    done, crashed, db = run_serial_workload(program, data_dir, iso,
                                            checkpoint_wal_bytes=0)
    assert not crashed
    counter = OpCounter()
    db.durability.io.fault_hook = counter
    db.durability.checkpoint()
    ckpt_ops = counter.count
    db.durability.io.fault_hook = None
    db.close()
    assert ckpt_ops >= 3
    final = reference_states(program, iso)[-1]
    for crash_at in range(1, ckpt_ops + 1):
        ddir = str(tmp_path / f"ckpt{crash_at}")
        done, crashed, db = run_serial_workload(program, ddir, iso,
                                                checkpoint_wal_bytes=0)
        assert not crashed
        hook = CrashInjector(crash_at)
        db.durability.io.fault_hook = hook
        try:
            db.durability.checkpoint()
        except SimulatedCrash:
            pass
        assert hook.fired, f"checkpoint op {crash_at} never ran"
        recovered = open_database(ddir, durable_config(ddir))
        assert canonical_state(recovered, program) == final, \
            f"crash at checkpoint op {crash_at} lost committed state"
        recovered.close()


def test_recovery_report_is_populated(tmp_path):
    program = small_program()
    data_dir = str(tmp_path / "d")
    done, crashed, _db = run_serial_workload(
        program, data_dir, IsolationLevel.SERIALIZABLE,
        hook=CrashInjector(10 ** 9), checkpoint_wal_bytes=0)
    assert not crashed and done == len(program.all_txns())
    recovered = open_database(data_dir, durable_config(data_dir))
    report = recovered.durability.last_recovery
    assert report["frames_replayed"] >= 1
    assert report["commits_replayed"] >= 1
    assert report["wal_end"] >= report["redo_lsn"]
    recovered.close()
