"""Unit tests for the durability layer (ISSUE 9 tentpole).

Page frames, the physical WAL, the dirty-page table, checkpoints
(including CLOG/serxid segment generations), clean-shutdown round
trips, the torn-page corruption property (satellite: checksums turn
arbitrary byte corruption into a structured DataCorruptionError), the
durability-off purity guarantee, the WAL-before-data sanitizer, and
the server stop() drain regression (an acked commit must never be
lost by a graceful stop).
"""

import os
import time

import pytest

from repro.config import DurabilityConfig, EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import DataCorruptionError, UniqueViolationError
from repro.server import ReproServer, ServerConfig, connect
from repro.storage.durable import open_database, pagefmt
from repro.storage.durable.bufferpool import DirtyPageTable
from repro.storage.durable.walfile import WALFile, read_wal
from repro.storage.durable.io import DurableIO
from repro.analysis.sanitize.durable_check import DurableSanitizer
from repro.analysis.sanitize.violations import SanitizerViolation


def cfg_for(tmp_path, **kw) -> EngineConfig:
    kw.setdefault("fsync", False)
    return EngineConfig.durable(str(tmp_path),
                                durability=DurabilityConfig(**kw))


def small_db(tmp_path, **kw) -> Database:
    db = Database(cfg_for(tmp_path, **kw))
    db.create_table("t", ["k", "v"], key="k")
    s = db.session()
    for k in range(6):
        s.insert("t", {"k": k, "v": k * 10})
    return db


# ---------------------------------------------------------------------------
# page frames
# ---------------------------------------------------------------------------
class TestPageFormat:
    def test_round_trip(self):
        payload = {"s": [[{"k": 1}, 5, 0, 0, 0, 0, None], None]}
        frame = pagefmt.encode_page(pagefmt.KIND_HEAP, 7, 3, 1234,
                                    payload, 1024)
        assert len(frame) == 1024
        kind, oid, page_no, lsn, decoded = pagefmt.decode_page(
            frame, expect_kind=pagefmt.KIND_HEAP)
        assert (kind, oid, page_no, lsn) == (pagefmt.KIND_HEAP, 7, 3, 1234)
        assert decoded == payload

    def test_zero_frame_is_absent_page(self):
        assert pagefmt.decode_page(b"\x00" * 512) is None

    def test_any_flipped_byte_fails_checksum(self):
        frame = bytearray(pagefmt.encode_page(
            pagefmt.KIND_HEAP, 1, 0, 10, {"s": [None]}, 256))
        # Flip one byte in every checksummed region: header fields
        # (oid, page_lsn) and the payload. (The reserved header short
        # is zeroed in the CRC and legitimately ignored.)
        for offset in (8, 20, pagefmt.HEADER.size + 2):
            bad = bytearray(frame)
            bad[offset] ^= 0x40
            with pytest.raises(DataCorruptionError) as err:
                pagefmt.decode_page(bytes(bad), path="x.pg",
                                    expect_kind=pagefmt.KIND_HEAP)
            assert err.value.reason in ("checksum", "magic", "version",
                                        "short")
            assert err.value.path == "x.pg"

    def test_wrong_kind_rejected(self):
        frame = pagefmt.encode_page(pagefmt.KIND_CLOG, 0, 0, 0,
                                    {"b": 0}, 256)
        with pytest.raises(DataCorruptionError) as err:
            pagefmt.decode_page(frame, expect_kind=pagefmt.KIND_HEAP)
        assert err.value.reason == "magic"

    def test_oversized_payload_rejected(self):
        with pytest.raises(DataCorruptionError) as err:
            pagefmt.encode_page(pagefmt.KIND_HEAP, 1, 0, 0,
                                {"s": ["x" * 600]}, 256)
        assert err.value.reason == "overflow"


# ---------------------------------------------------------------------------
# the physical WAL
# ---------------------------------------------------------------------------
class TestWALFile:
    def test_append_read_round_trip(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WALFile(path, DurableIO(fsync=False))
        lsns = [wal.append({"t": "commit", "xid": i}) for i in range(5)]
        wal.flush()
        assert wal.durable_lsn == wal.end_lsn
        frames, valid_end = read_wal(path)
        assert valid_end == wal.end_lsn
        assert [rec["xid"] for _lsn, rec in frames] == list(range(5))
        assert [lsn for lsn, _rec in frames] == lsns
        wal.close()

    def test_torn_tail_is_clean_stop(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WALFile(path, DurableIO(fsync=False))
        wal.append({"t": "commit", "xid": 1})
        cut = wal.append({"t": "commit", "xid": 2})
        wal.append({"t": "commit", "xid": 3})
        wal.flush()
        wal.close()
        # Tear mid-way through the second frame.
        with open(path, "r+b") as f:
            f.truncate(cut + 7)
        frames, valid_end = read_wal(path)
        assert [rec["xid"] for _lsn, rec in frames] == [1]
        assert valid_end == cut

    def test_corrupt_frame_stops_scan(self, tmp_path):
        path = str(tmp_path / "wal.log")
        wal = WALFile(path, DurableIO(fsync=False))
        wal.append({"t": "commit", "xid": 1})
        cut = wal.append({"t": "commit", "xid": 2})
        wal.flush()
        wal.close()
        blob = bytearray(open(path, "rb").read())
        blob[cut + 10] ^= 0xFF  # inside the second frame's body
        open(path, "wb").write(bytes(blob))
        frames, valid_end = read_wal(path)
        assert [rec["xid"] for _lsn, rec in frames] == [1]
        assert valid_end == cut

    def test_flush_upto_is_incremental(self, tmp_path):
        wal = WALFile(str(tmp_path / "wal.log"), DurableIO(fsync=False))
        first = wal.append({"a": 1})
        wal.append({"a": 2})
        wal.flush(first)
        assert wal.durable_lsn >= first
        flushes = wal.flushes
        wal.flush(first)   # already durable: no extra fsync
        assert wal.flushes == flushes
        wal.close()


# ---------------------------------------------------------------------------
# dirty-page table
# ---------------------------------------------------------------------------
class TestDirtyPageTable:
    def test_eviction_writes_back_and_keeps_bound(self):
        written = []
        pool = DirtyPageTable(2, lambda key, lsn: written.append((key, lsn)))
        pool.mark_dirty(("h", 1, 0), 10)
        pool.mark_dirty(("h", 1, 1), 20)
        assert not written
        pool.mark_dirty(("h", 1, 2), 30)   # over capacity: evict one
        assert len(pool) == 2
        assert written and pool.evictions == len(written)

    def test_redirty_advances_to_latest_lsn(self):
        # The in-memory page holds *all* changes, so writeback must
        # flush WAL through the newest record touching it -- the entry
        # tracks the max, which becomes the written page's pageLSN.
        pool = DirtyPageTable(8, lambda key, lsn: None)
        pool.mark_dirty(("h", 1, 0), 10)
        pool.mark_dirty(("h", 1, 0), 99)
        pool.mark_dirty(("h", 1, 0), 50)
        assert pool.rec_lsn(("h", 1, 0)) == 99

    def test_flush_all_empties(self):
        written = []
        pool = DirtyPageTable(8, lambda key, lsn: written.append(key))
        for page_no in range(5):
            pool.mark_dirty(("h", 1, page_no), page_no)
        pool.flush_all()
        assert len(pool) == 0
        assert sorted(written) == [("h", 1, p) for p in range(5)]

    def test_flush_all_keeps_pages_dirtied_mid_flush(self):
        # A checkpoint's writebacks release the engine latch around WAL
        # fsyncs, so a concurrent backend can commit mid-flush. The
        # callback below plays that backend: while page 1 is being
        # written it dirties a brand-new page, re-dirties page 0 (whose
        # writeback already completed), and re-dirties page 1 itself.
        # None of those may be wiped by flush_all -- they are not on
        # disk.
        pool = None
        written = []

        def writeback(key, lsn):
            written.append((key, lsn))
            if key == ("h", 1, 1) and len(written) == 2:
                pool.mark_dirty(("h", 1, 9), 99)   # new page
                pool.mark_dirty(("h", 1, 0), 99)   # already flushed
                pool.mark_dirty(("h", 1, 1), 99)   # mid-own-writeback

        pool = DirtyPageTable(8, writeback)
        pool.mark_dirty(("h", 1, 0), 10)
        pool.mark_dirty(("h", 1, 1), 20)
        pool.flush_all()
        assert pool.entries() == {("h", 1, 9): 99, ("h", 1, 0): 99,
                                  ("h", 1, 1): 99}
        assert written == [(("h", 1, 0), 10), (("h", 1, 1), 20)]
        # The survivors drain normally on the next flush.
        pool.flush_all()
        assert len(pool) == 0


# ---------------------------------------------------------------------------
# clean shutdown / reopen round trips
# ---------------------------------------------------------------------------
class TestCleanRoundTrip:
    def test_rows_indexes_and_ddl_survive(self, tmp_path):
        db = small_db(tmp_path)
        db.create_index("t", "v", unique=True)
        db.create_table("gone", ["a"])
        db.drop_table("gone")
        s = db.session()
        s.update("t", Eq("k", 3), {"v": 77})
        s.delete("t", Eq("k", 5))
        db.close()
        rec = open_database(str(tmp_path), cfg_for(tmp_path))
        s2 = rec.session()
        assert s2.select("t", Eq("k", 3)) == [{"k": 3, "v": 77}]
        assert s2.select("t", Eq("k", 5)) == []
        assert len(s2.select("t")) == 5
        assert "gone" not in rec.relations()
        # The recovered unique index still enforces uniqueness.
        with pytest.raises(UniqueViolationError):
            s2.insert("t", {"k": 9, "v": 77})
        rec.close()

    def test_fresh_directory_is_fresh_database(self, tmp_path):
        db = open_database(str(tmp_path / "new"),
                           cfg_for(tmp_path / "new"))
        db.create_table("t", ["k"], key="k")
        db.session().insert("t", {"k": 1})
        db.close()
        rec = open_database(str(tmp_path / "new"),
                            cfg_for(tmp_path / "new"))
        assert rec.session().select("t") == [{"k": 1}]
        rec.close()

    def test_logical_wal_carries_physical_lsn(self, tmp_path):
        db = small_db(tmp_path)
        lsns = [r.lsn for r in db.wal if r.lsn is not None]
        assert lsns, "commit records must be stamped with their LSN"
        assert lsns == sorted(lsns)
        db.close()

    def test_auto_checkpoint_triggers_on_wal_volume(self, tmp_path):
        db = small_db(tmp_path, checkpoint_wal_bytes=500)
        before = db.durability.checkpoints
        s = db.session()
        for k in range(20, 40):
            s.insert("t", {"k": k, "v": 0})
        assert db.durability.checkpoints > before
        db.close()


# ---------------------------------------------------------------------------
# torn-page corruption property (satellite 3)
# ---------------------------------------------------------------------------
class TestCorruptionDetection:
    def corrupt_and_open(self, tmp_path, offset):
        db = small_db(tmp_path)
        oid = db.relation("t").oid
        db.close()
        path = os.path.join(str(tmp_path), "pages", f"{oid}.pg")
        with open(path, "r+b") as f:
            f.seek(offset)
            byte = f.read(1)
            f.seek(offset)
            f.write(bytes([byte[0] ^ 0x55]))
        return open_database(str(tmp_path), cfg_for(tmp_path))

    @pytest.mark.parametrize("offset", [
        8,                          # header (oid field)
        pagefmt.HEADER.size + 4,    # payload
        40,                         # payload start region
    ])
    def test_corrupt_heap_page_is_structured_error(self, tmp_path, offset):
        with pytest.raises(DataCorruptionError) as err:
            self.corrupt_and_open(tmp_path, offset)
        assert err.value.reason in ("checksum", "magic")
        assert err.value.kind == "heap"
        assert err.value.path and err.value.path.endswith(".pg")
        assert err.value.sqlstate == "XX001"

    def test_corrupt_clog_segment_detected(self, tmp_path):
        db = small_db(tmp_path)
        db.close()
        pages_dir = os.path.join(str(tmp_path), "pages")
        name = None
        for entry in os.listdir(pages_dir):
            if entry.startswith("clog."):
                name = entry
        assert name is not None
        with open(os.path.join(pages_dir, name), "r+b") as f:
            f.seek(pagefmt.HEADER.size + 1)
            f.write(b"\xde")
        with pytest.raises(DataCorruptionError):
            open_database(str(tmp_path), cfg_for(tmp_path))


# ---------------------------------------------------------------------------
# checkpoint segment generations
# ---------------------------------------------------------------------------
class TestSegmentGenerations:
    def test_checkpoint_rotates_and_reaps_segments(self, tmp_path):
        db = small_db(tmp_path)
        pages_dir = os.path.join(str(tmp_path), "pages")
        first = dict(db.durability.store.special_names)
        db.durability.checkpoint()
        second = dict(db.durability.store.special_names)
        assert first["clog"] != second["clog"]
        files = set(os.listdir(pages_dir))
        assert second["clog"] in files
        assert first["clog"] not in files, "old generation not reaped"
        db.close()
        third = dict(db.durability.store.special_names)
        files = set(os.listdir(pages_dir))
        clogs = {f for f in files if f.startswith("clog.")}
        assert clogs == {third["clog"]}
        rec = open_database(str(tmp_path), cfg_for(tmp_path))
        assert len(rec.session().select("t")) == 6
        rec.close()

    def test_dense_clog_segment_splits_across_pages(self, tmp_path):
        """A full CLOG segment (clog_segment_xids entries, one xid per
        autocommit) encodes to more JSON than one frame holds; the
        checkpoint must spill the segment across physical pages and
        recovery must merge them back -- long-running workloads hit
        this, not the anomaly-sized tests."""
        db = Database(cfg_for(tmp_path, checkpoint_wal_bytes=1 << 30))
        seg = db.config.durability.clog_segment_xids
        db.create_table("t", ["k"], key="k")
        s = db.session()
        for k in range(seg + 50):    # > one dense segment of xids
            s.begin(IsolationLevel.REPEATABLE_READ)
            s.insert("t", {"k": k})
            if k % 3 == 2:
                s.rollback()
            else:
                s.commit()
        db.checkpoint()
        n_rows = len(db.session().select("t"))
        n_xids = len(db.clog.entries())   # after the select's own xid
        clog_file = os.path.join(
            str(tmp_path), "pages", db.durability.store.special_names["clog"])
        n_pages = os.path.getsize(clog_file) // db.config.durability.page_bytes
        assert n_pages >= 2, "dense segment did not spill to a second page"
        db.close()
        rec = open_database(str(tmp_path), cfg_for(tmp_path))
        assert len(rec.clog.entries()) == n_xids
        assert len(rec.session().select("t")) == n_rows
        rec.close()


# ---------------------------------------------------------------------------
# checkpoint vs concurrent commits (review regressions)
# ---------------------------------------------------------------------------
class TestCheckpointConcurrency:
    def test_commit_landing_mid_checkpoint_survives_crash(self, tmp_path):
        """The server's flush gate releases the engine latch around WAL
        fsyncs inside a checkpoint's writebacks, so a backend can commit
        mid-flush. Played here by a writeback hook that commits a row
        while the dirty-page flush is running: the checkpoint must
        neither wipe that page's dirty entry nor publish a redo_lsn past
        the commit's record, or a crash silently loses committed data."""
        db = small_db(tmp_path)
        mgr = db.durability
        orig = mgr.pool._writeback
        fired = []

        def writeback(key, lsn):
            orig(key, lsn)
            if not fired:
                fired.append(key)
                db.session().insert("t", {"k": 100, "v": 1})

        mgr.pool._writeback = writeback
        doc = mgr.checkpoint()
        assert fired, "writeback hook never ran: no dirty pages?"
        mgr.pool._writeback = orig
        commit_lsn = max(r.lsn for r in db.wal if r.lsn is not None)
        assert doc["redo_lsn"] <= commit_lsn, \
            "redo_lsn past a commit that landed mid-checkpoint"
        del db  # kill without close: only the checkpoint + WAL survive
        rec = open_database(str(tmp_path), cfg_for(tmp_path))
        assert rec.session().select("t", Eq("k", 100)) == \
            [{"k": 100, "v": 1}]
        assert len(rec.session().select("t")) == 7
        rec.close()

    def test_auto_checkpoint_skips_while_one_in_flight(self, tmp_path):
        """maybe_auto_checkpoint runs under the engine latch; blocking
        on an in-flight checkpoint (which must reacquire that latch
        after its fsyncs) would deadlock, and proceeding would overlap
        generation switches. It must skip."""
        db = small_db(tmp_path)
        mgr = db.durability
        mgr.cfg.checkpoint_wal_bytes = 1
        mgr._wal_bytes_at_ckpt = -(10 ** 9)
        before = mgr.checkpoints
        assert mgr._ckpt_lock.acquire(blocking=False)
        try:
            mgr.maybe_auto_checkpoint()   # in flight elsewhere: skip
            assert mgr.checkpoints == before
        finally:
            mgr._ckpt_lock.release()
        mgr.maybe_auto_checkpoint()       # lock free again: fire
        assert mgr.checkpoints == before + 1
        mgr.cfg.checkpoint_wal_bytes = 0
        db.close()

    def test_crashed_generation_leftover_is_truncated(self, tmp_path):
        """A crash mid-checkpoint can leave an unpublished generation
        file under the very name the next checkpoint picks; its stale
        frames must not survive past the rewritten prefix (write_page
        opens existing files r+b)."""
        db = small_db(tmp_path)
        mgr = db.durability
        leftovers = mgr._next_segment_names()
        pages_dir = os.path.join(str(tmp_path), "pages")
        for name in leftovers.values():
            with open(os.path.join(pages_dir, name), "wb") as f:
                f.write(b"\xff" * (mgr.cfg.page_bytes * 4))
        db.close()   # shutdown checkpoint reuses exactly those names
        assert dict(mgr.store.special_names) == leftovers
        assert os.path.getsize(os.path.join(
            pages_dir, leftovers["clog"])) < mgr.cfg.page_bytes * 4
        rec = open_database(str(tmp_path), cfg_for(tmp_path))
        assert len(rec.session().select("t")) == 6
        rec.close()


# ---------------------------------------------------------------------------
# post-recovery housekeeping (review regressions)
# ---------------------------------------------------------------------------
class TestDurabilityHousekeeping:
    def test_recovery_restarts_async_flusher(self, tmp_path):
        kw = {"synchronous_commit": False, "commit_delay": 0.005}
        db = small_db(tmp_path, **kw)
        assert db.durability._flusher is not None
        db.close()
        rec = open_database(str(tmp_path), cfg_for(tmp_path, **kw))
        mgr = rec.durability
        assert mgr._flusher is not None and mgr._flusher.is_alive(), \
            "recovered async-commit database has no walwriter"
        rec.session().insert("t", {"k": 50, "v": 5})
        deadline = time.time() + 5
        while (mgr.wal.durable_lsn < mgr.wal.end_lsn
               and time.time() < deadline):
            time.sleep(0.005)
        assert mgr.wal.durable_lsn == mgr.wal.end_lsn, \
            "background flusher never persisted the acked commit"
        rec.close()

    def test_acked_commits_pruned_once_durable(self, tmp_path):
        db = small_db(tmp_path)   # synchronous_commit=True
        mgr = db.durability
        assert mgr.acked == {}, \
            "acked entries must be pruned once their WAL is durable"
        s = db.session()
        for k in range(20, 40):
            s.insert("t", {"k": k, "v": 0})
        assert mgr.acked == {}
        db.close()


# ---------------------------------------------------------------------------
# durability-off purity
# ---------------------------------------------------------------------------
class TestDurabilityOff:
    def test_default_config_has_no_durability_layer(self, tmp_path):
        db = Database(EngineConfig())
        assert db.durability is None
        db.create_table("t", ["k"], key="k")
        db.session().insert("t", {"k": 1})
        db.close()     # no-op
        db.checkpoint()
        assert os.listdir(str(tmp_path)) == []   # nothing ever written

    def test_disk_and_memory_engines_agree(self, tmp_path):
        mem = Database(EngineConfig())
        dur = Database(cfg_for(tmp_path))
        for db in (mem, dur):
            db.create_table("t", ["k", "v"], key="k")
            s = db.session()
            for k in range(8):
                s.insert("t", {"k": k, "v": k})
            s.begin(IsolationLevel.SERIALIZABLE)
            s.update("t", Eq("k", 2), {"v": 99})
            s.delete("t", Eq("k", 7))
            s.commit()
        assert (mem.session().select("t")
                == dur.session().select("t"))
        dur.close()


# ---------------------------------------------------------------------------
# the WAL-before-data sanitizer
# ---------------------------------------------------------------------------
class TestDurableSanitizer:
    def test_clean_engine_passes(self, tmp_path):
        db = small_db(tmp_path)
        DurableSanitizer(db).check()
        db.close()

    def test_in_memory_engine_is_noop(self):
        db = Database(EngineConfig())
        DurableSanitizer(db).check()

    def test_writeback_ahead_of_wal_flagged(self, tmp_path):
        db = small_db(tmp_path)
        mgr = db.durability
        mgr.store.written_lsns[(pagefmt.KIND_HEAP, 999, 0)] = (
            mgr.wal.durable_lsn + 10 ** 6)
        with pytest.raises(SanitizerViolation) as err:
            DurableSanitizer(db).check()
        assert err.value.invariant == "wal-before-data"
        db.durability = None   # neuter close-time re-checks
        del db

    def test_unflushed_ack_flagged(self, tmp_path):
        db = small_db(tmp_path)
        mgr = db.durability
        mgr.acked[12345] = mgr.wal.end_lsn + 10 ** 6
        with pytest.raises(SanitizerViolation) as err:
            DurableSanitizer(db).check()
        assert err.value.invariant == "ack-durable"
        db.durability = None
        del db

    def test_runner_wires_durable_sanitizer(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        db = Database(cfg_for(tmp_path))
        db.create_table("t", ["k"], key="k")
        db.session().insert("t", {"k": 1})
        assert db.sanitizers is not None
        assert db.sanitizers.stats()["durable"] >= 1
        db.close()


# ---------------------------------------------------------------------------
# server stop() drains acked commits (satellite 4)
# ---------------------------------------------------------------------------
class TestServerStopDrain:
    def test_stop_never_loses_an_acked_commit(self, tmp_path):
        db = Database(cfg_for(tmp_path, synchronous_commit=False))
        server = ReproServer(db, ServerConfig(port=0)).start()
        try:
            with connect(server.address) as client:
                client.sql("CREATE TABLE t (k INT PRIMARY KEY, v INT)")
                client.sql("INSERT INTO t (k, v) VALUES (1, 10)")
                client.sql("INSERT INTO t (k, v) VALUES (2, 20)")
            mgr = db.durability
            assert mgr.acked, "async commits should be acknowledged"
        finally:
            leaks = server.stop()
        assert leaks == {"threads": [], "connections": []}
        mgr = db.durability
        assert mgr.wal.durable_lsn == mgr.wal.end_lsn, \
            "stop() returned with acked WAL frames still unflushed"
        # Kill (no close): the acked rows must already be recoverable.
        del db
        rec = open_database(str(tmp_path), cfg_for(tmp_path))
        rows = rec.session().select("t")
        assert sorted(r["k"] for r in rows) == [1, 2]
        rec.close()

    def test_synchronous_commit_durable_at_ack(self, tmp_path):
        db = Database(cfg_for(tmp_path))   # synchronous_commit=True
        server = ReproServer(db, ServerConfig(port=0)).start()
        try:
            with connect(server.address) as client:
                client.sql("CREATE TABLE t (k INT PRIMARY KEY)")
                client.sql("INSERT INTO t (k) VALUES (7)")
                mgr = db.durability
                assert mgr.wal.durable_lsn == mgr.wal.end_lsn
        finally:
            server.stop()
        del db
        rec = open_database(str(tmp_path), cfg_for(tmp_path))
        assert rec.session().select("t") == [{"k": 7}]
        rec.close()
