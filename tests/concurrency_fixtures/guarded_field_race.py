"""Seeded data race: a declared guard ignored, and no guard at all.

``drive`` runs on a spawned thread (the ``threading.Thread(target=...)``
call below is what makes it a thread entry point for the analyzer) and
touches ``SharedCounter`` with no latch held:

* ``hits`` declares ``guarded-by(ENGINE)`` but ``record_hit`` mutates
  it latch-free -- RACE002;
* ``misses`` declares nothing and its lockset is empty at a reachable
  write -- RACE001.

Both bugs need the call graph: within any single function there is
nothing to flag. See README.md -- do not fix.
"""

import threading

from repro.engine.latches import EngineLatch


class SharedCounter:
    """Cache-hit tally shared between server threads."""

    def __init__(self) -> None:
        self.latch = EngineLatch()
        self.hits = 0  # repro: guarded-by(ENGINE)
        self.misses = 0

    def record_hit(self) -> None:
        self.hits += 1  # SEEDED RACE002: declared guard, no latch held

    def record_miss(self) -> None:
        self.misses += 1  # SEEDED RACE001: empty lockset on shared state

    def guarded_total(self) -> int:
        with self.latch:
            return self.hits + self.misses


def drive(counter: SharedCounter) -> None:
    counter.record_hit()
    counter.record_miss()


def spawn(counter: SharedCounter) -> threading.Thread:
    thread = threading.Thread(target=drive, args=(counter,))
    thread.start()
    return thread
