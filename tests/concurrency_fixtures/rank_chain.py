"""Seeded latch-order inversion across a two-call chain.

``serve`` (a thread target) takes the connections latch in
``run_forever`` and then -- one call deeper -- ``_admit`` takes the
engine latch. ENGINE (rank 10) must be acquired *before* CONNECTIONS
(rank 20), so the nested acquisition is out of order: a potential
lock-order deadlock against any thread acquiring in the documented
order. Provable only by propagating the held set through the
``run_forever -> _admit`` call edge (LATCH001); each function on its
own is disciplined (``with`` blocks, guard honoured), so the per-file
linter stays silent. See README.md -- do not fix.
"""

import threading

from repro.engine.latches import RANK_CONNECTIONS, RANK_ENGINE, Latch


class ChainServer:
    """Toy accept loop with an inverted latch order."""

    def __init__(self) -> None:
        self.conn_latch = Latch("connections", RANK_CONNECTIONS)
        self.engine_latch = Latch("engine", RANK_ENGINE)
        self.admitted = 0  # repro: guarded-by(ENGINE)

    def run_forever(self) -> None:
        with self.conn_latch:
            self._admit()

    def _admit(self) -> None:
        with self.engine_latch:  # SEEDED LATCH001: ENGINE under CONNECTIONS
            self.admitted += 1


def serve(server: ChainServer) -> None:
    server.run_forever()


def spawn(server: ChainServer) -> threading.Thread:
    thread = threading.Thread(target=serve, args=(server,))
    thread.start()
    return thread
