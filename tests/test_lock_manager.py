"""Unit tests for the heavyweight lock manager: modes, queues,
reentrancy, release, and deadlock detection."""

import pytest

from repro.errors import DeadlockDetected
from repro.locks import LockManager, LockMode, modes_conflict

REL = ("rel", 1)
XID5 = ("xid", 5)


class TestConflictMatrix:
    def test_symmetry(self):
        for a in LockMode:
            for b in LockMode:
                assert modes_conflict(a, b) == modes_conflict(b, a), (a, b)

    def test_share_compatible_with_share(self):
        assert not modes_conflict(LockMode.SHARE, LockMode.SHARE)

    def test_exclusive_conflicts_share(self):
        assert modes_conflict(LockMode.EXCLUSIVE, LockMode.SHARE)

    def test_access_share_only_conflicts_access_exclusive(self):
        assert modes_conflict(LockMode.ACCESS_SHARE, LockMode.ACCESS_EXCLUSIVE)
        assert not modes_conflict(LockMode.ACCESS_SHARE, LockMode.EXCLUSIVE)

    def test_intention_matrix(self):
        assert not modes_conflict(LockMode.INTENTION_SHARE,
                                  LockMode.INTENTION_EXCLUSIVE)
        assert modes_conflict(LockMode.INTENTION_EXCLUSIVE, LockMode.SHARE)
        assert modes_conflict(LockMode.SHARE_INTENT_EXCLUSIVE,
                              LockMode.INTENTION_EXCLUSIVE)
        assert not modes_conflict(LockMode.SHARE_INTENT_EXCLUSIVE,
                                  LockMode.INTENTION_SHARE)


class TestGrantAndQueue:
    def test_compatible_grants_immediate(self):
        mgr = LockManager()
        assert mgr.acquire(1, REL, LockMode.ACCESS_SHARE) is None
        assert mgr.acquire(2, REL, LockMode.ACCESS_SHARE) is None

    def test_conflicting_request_queues(self):
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.SHARE)
        req = mgr.acquire(2, REL, LockMode.EXCLUSIVE)
        assert req is not None and not req.granted

    def test_release_grants_waiter(self):
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.SHARE)
        req = mgr.acquire(2, REL, LockMode.EXCLUSIVE)
        mgr.release(1, REL, LockMode.SHARE)
        assert req.granted
        assert mgr.holds(2, REL, LockMode.EXCLUSIVE)

    def test_release_all_grants_waiters(self):
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.EXCLUSIVE)
        req = mgr.acquire(2, REL, LockMode.SHARE)
        mgr.release_all(1)
        assert req.granted

    def test_reentrant_acquire(self):
        mgr = LockManager()
        assert mgr.acquire(1, REL, LockMode.EXCLUSIVE) is None
        assert mgr.acquire(1, REL, LockMode.EXCLUSIVE) is None
        mgr.release(1, REL, LockMode.EXCLUSIVE)
        # Still held once; a waiter stays queued.
        req = mgr.acquire(2, REL, LockMode.SHARE)
        assert req is not None and not req.granted
        mgr.release(1, REL, LockMode.EXCLUSIVE)
        assert req.granted

    def test_upgrade_different_mode_same_owner_allowed(self):
        # Same owner never conflicts with itself.
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.SHARE)
        assert mgr.acquire(1, REL, LockMode.EXCLUSIVE) is None

    def test_fifo_fairness_blocks_later_compatible_request(self):
        # share held; exclusive queued; a new share must queue behind the
        # exclusive rather than starve it.
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.SHARE)
        excl = mgr.acquire(2, REL, LockMode.EXCLUSIVE)
        share = mgr.acquire(3, REL, LockMode.SHARE)
        assert share is not None and not share.granted
        mgr.release(1, REL, LockMode.SHARE)
        assert excl.granted and not share.granted
        mgr.release_all(2)
        assert share.granted

    def test_queue_drains_multiple_compatible(self):
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.EXCLUSIVE)
        reqs = [mgr.acquire(i, REL, LockMode.SHARE) for i in (2, 3, 4)]
        mgr.release_all(1)
        assert all(r.granted for r in reqs)

    def test_cancelled_request_on_release_all(self):
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.EXCLUSIVE)
        req = mgr.acquire(2, REL, LockMode.SHARE)
        mgr.release_all(2)  # waiter aborts
        assert req.cancelled and not req.granted

    def test_locks_held_introspection(self):
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.SHARE)
        mgr.acquire(1, XID5, LockMode.EXCLUSIVE)
        held = mgr.locks_held(1)
        assert held[REL] == {LockMode.SHARE}
        assert held[XID5] == {LockMode.EXCLUSIVE}


class TestDeadlockDetection:
    def test_two_party_deadlock(self):
        mgr = LockManager()
        a, b = ("xid", 1), ("xid", 2)
        mgr.acquire(1, a, LockMode.EXCLUSIVE)
        mgr.acquire(2, b, LockMode.EXCLUSIVE)
        # 1 waits for 2.
        assert mgr.acquire(1, b, LockMode.SHARE) is not None
        # 2 waiting for 1 closes the cycle.
        with pytest.raises(DeadlockDetected):
            mgr.acquire(2, a, LockMode.SHARE)
        assert mgr.deadlocks_detected == 1

    def test_three_party_deadlock(self):
        mgr = LockManager()
        tags = {i: ("xid", i) for i in (1, 2, 3)}
        for i in (1, 2, 3):
            mgr.acquire(i, tags[i], LockMode.EXCLUSIVE)
        assert mgr.acquire(1, tags[2], LockMode.SHARE) is not None
        assert mgr.acquire(2, tags[3], LockMode.SHARE) is not None
        with pytest.raises(DeadlockDetected):
            mgr.acquire(3, tags[1], LockMode.SHARE)

    def test_victim_request_removed_from_queue(self):
        mgr = LockManager()
        a, b = ("xid", 1), ("xid", 2)
        mgr.acquire(1, a, LockMode.EXCLUSIVE)
        mgr.acquire(2, b, LockMode.EXCLUSIVE)
        mgr.acquire(1, b, LockMode.SHARE)
        with pytest.raises(DeadlockDetected):
            mgr.acquire(2, a, LockMode.SHARE)
        # After the victim aborts and releases, the survivor is granted.
        mgr.release_all(2)
        assert mgr.holds(1, b, LockMode.SHARE)

    def test_no_false_deadlock_on_chain(self):
        mgr = LockManager()
        a, b = ("xid", 1), ("xid", 2)
        mgr.acquire(1, a, LockMode.EXCLUSIVE)
        mgr.acquire(2, b, LockMode.EXCLUSIVE)
        assert mgr.acquire(3, a, LockMode.SHARE) is not None
        assert mgr.acquire(3, b, LockMode.SHARE) is not None  # no cycle

    def test_deadlock_through_queued_waiters(self):
        # 1 holds REL share; 2 queues exclusive on REL (waits on 1);
        # 1 then waits on something 2 holds -> cycle through the queue.
        mgr = LockManager()
        other = ("xid", 2)
        mgr.acquire(1, REL, LockMode.SHARE)
        mgr.acquire(2, other, LockMode.EXCLUSIVE)
        assert mgr.acquire(2, REL, LockMode.EXCLUSIVE) is not None
        with pytest.raises(DeadlockDetected):
            mgr.acquire(1, other, LockMode.SHARE)

    def test_work_units_accumulate(self):
        mgr = LockManager()
        mgr.acquire(1, REL, LockMode.SHARE)
        assert mgr.work_units > 0
