"""SSI behaviour on the paper's anomaly examples.

* Figure 1 (simple write skew): snapshot isolation lets the invariant
  break; SERIALIZABLE aborts one transaction.
* Figure 2 (batch processing, three transactions incl. a read-only
  one): snapshot isolation violates the report invariant; SERIALIZABLE
  aborts the pivot, and the safe-retry rules make the retried
  transaction succeed.
* Single rw-antidependencies are tolerated (the concurrency advantage
  over S2PL/OCC, section 3.3).
* The commit-ordering and read-only optimizations suppress false
  positives (sections 3.3.1, 4.1).
"""

import pytest

from repro.config import EngineConfig, SSIConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import SerializationFailure

SER = IsolationLevel.SERIALIZABLE
RR = IsolationLevel.REPEATABLE_READ


def doctors_db(**ssi_kwargs):
    db = Database(EngineConfig(ssi=SSIConfig(**ssi_kwargs)))
    db.create_table("doctors", ["name", "oncall"], key="name")
    s = db.session()
    s.insert("doctors", {"name": "alice", "oncall": True})
    s.insert("doctors", {"name": "bob", "oncall": True})
    return db


def take_off_call(session, me):
    """One doctors transaction body: IF oncall >= 2 THEN take me off."""
    rows = session.select("doctors", Eq("oncall", True))
    if len(rows) >= 2:
        session.update("doctors", Eq("name", me), {"oncall": False})


def oncall_count(db):
    return len(db.session().select("doctors", Eq("oncall", True)))


class TestWriteSkewFigure1:
    def test_snapshot_isolation_allows_write_skew(self):
        db = doctors_db()
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        take_off_call(s1, "alice")
        take_off_call(s2, "bob")
        s1.commit()
        s2.commit()
        # The invariant "at least one doctor on call" is broken.
        assert oncall_count(db) == 0

    def test_serializable_aborts_one_transaction(self):
        db = doctors_db()
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        take_off_call(s1, "alice")
        take_off_call(s2, "bob")
        s1.commit()  # first committer wins; pivot s2 is doomed
        with pytest.raises(SerializationFailure):
            s2.commit()
        assert oncall_count(db) == 1  # invariant preserved

    def test_safe_retry_of_the_victim_succeeds(self):
        db = doctors_db()
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        take_off_call(s1, "alice")
        take_off_call(s2, "bob")
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()
        # Immediate retry: not concurrent with s1 anymore, so it must
        # succeed (and correctly observe only one doctor on call).
        s2.begin(SER)
        take_off_call(s2, "bob")
        s2.commit()
        assert oncall_count(db) == 1

    def test_doomed_transaction_fails_at_next_statement(self):
        db = doctors_db()
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        take_off_call(s1, "alice")
        take_off_call(s2, "bob")
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.select("doctors")  # DOOMED flag fires before commit
        s2.rollback()

    def test_sequential_execution_never_aborts(self):
        db = doctors_db()
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        take_off_call(s1, "alice")
        s1.commit()
        s2.begin(SER)
        take_off_call(s2, "bob")
        s2.commit()
        assert oncall_count(db) == 1


def receipts_db(**ssi_kwargs):
    db = Database(EngineConfig(ssi=SSIConfig(**ssi_kwargs)))
    db.create_table("control", ["id", "batch"], key="id")
    db.create_table("receipts", ["rid", "batch", "amount"], key="rid")
    db.create_index("receipts", "batch")
    s = db.session()
    s.insert("control", {"id": 0, "batch": 1})
    s.insert("receipts", {"rid": 0, "batch": 0, "amount": 5})
    return db


def read_batch(session):
    return session.select("control", Eq("id", 0))[0]["batch"]


def report_total(session, batch):
    rows = session.select("receipts", Eq("batch", batch))
    return sum(r["amount"] for r in rows)


class TestBatchProcessingFigure2:
    def _interleave(self, db, *, t1_isolation, expect_t2_insert_fails):
        """The Figure 2 interleaving: T2 reads the batch number; T3
        closes the batch and commits; T1 reports the closed batch and
        commits; T2 then inserts a receipt into the closed batch."""
        t1, t2, t3 = db.session(), db.session(), db.session()
        t2.begin(t1_isolation)
        x2 = read_batch(t2)  # T2: current batch (1)
        t3.begin(t1_isolation)
        t3.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
        t3.commit()
        t1.begin(t1_isolation)
        x1 = read_batch(t1)  # sees 2
        total_before = report_total(t1, x1 - 1)  # report for batch 1
        t1.commit()
        if expect_t2_insert_fails:
            with pytest.raises(SerializationFailure):
                t2.insert("receipts",
                          {"rid": 1, "batch": x2, "amount": 10})
                t2.commit()
            t2.rollback()
            return total_before, total_before
        t2.insert("receipts", {"rid": 1, "batch": x2, "amount": 10})
        t2.commit()
        final = report_total(db.session(), 1)
        return total_before, final

    def test_snapshot_isolation_violates_report_invariant(self):
        db = receipts_db()
        before, after = self._interleave(db, t1_isolation=RR,
                                         expect_t2_insert_fails=False)
        # The report showed 0 for batch 1, but a receipt later appeared
        # in the closed batch: silent violation under SI.
        assert before == 0
        assert after == 10

    def test_serializable_aborts_the_pivot(self):
        db = receipts_db()
        before, after = self._interleave(db, t1_isolation=SER,
                                         expect_t2_insert_fails=True)
        assert before == after == 0

    def test_retried_new_receipt_gets_new_batch_number(self):
        db = receipts_db()
        self._interleave(db, t1_isolation=SER, expect_t2_insert_fails=True)
        # Retry NEW-RECEIPT: it now reads batch 2 and its receipt goes
        # there, preserving the invariant for batch 1's report.
        t2 = db.session()
        t2.begin(SER)
        x = read_batch(t2)
        assert x == 2
        t2.insert("receipts", {"rid": 1, "batch": x, "amount": 10})
        t2.commit()
        assert report_total(db.session(), 1) == 0

    def test_without_read_only_t1_execution_is_allowed(self):
        """Example 2 minus T1 is serializable as <T2, T3>; SSI must
        allow it (single rw-antidependency, section 3.3)."""
        db = receipts_db()
        t2, t3 = db.session(), db.session()
        t2.begin(SER)
        x2 = read_batch(t2)
        t3.begin(SER)
        t3.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
        t3.commit()
        t2.insert("receipts", {"rid": 1, "batch": x2, "amount": 10})
        t2.commit()  # no dangerous structure: just T2 -rw-> T3

    def test_read_only_opt_spares_late_snapshot_report(self):
        """If T1's snapshot predates T3's commit, Theorem 3 says the
        structure is a false positive; with the read-only optimization
        nothing aborts."""
        db = receipts_db()
        t1, t2, t3 = db.session(), db.session(), db.session()
        t2.begin(SER)
        x2 = read_batch(t2)
        t1.begin(SER, read_only=True)  # snapshot BEFORE T3 commits
        x1 = read_batch(t1)
        t3.begin(SER)
        t3.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
        t3.commit()
        report_total(t1, x1 - 1)
        t1.commit()
        t2.insert("receipts", {"rid": 1, "batch": x2, "amount": 10})
        t2.commit()  # allowed: T3 did not commit before T1's snapshot

    def test_no_read_only_opt_aborts_late_snapshot_report(self):
        """Same interleaving with the optimization disabled: the
        dangerous structure fires even though it is a false positive."""
        db = receipts_db(read_only_opt=False)
        t1, t2, t3 = db.session(), db.session(), db.session()
        t2.begin(SER)
        x2 = read_batch(t2)
        t1.begin(SER, read_only=True)
        x1 = read_batch(t1)
        t3.begin(SER)
        t3.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
        t3.commit()
        report_total(t1, x1 - 1)
        t1.commit()
        with pytest.raises(SerializationFailure):
            t2.insert("receipts", {"rid": 1, "batch": x2, "amount": 10})
            t2.commit()


class TestCommitOrderingOptimization:
    def _dangerous_but_t3_not_first(self, db):
        """Build T1 -rw-> T2 -rw-> T3 where T1 commits before T3:
        Theorem 1 says no anomaly is possible, so with the
        commit-ordering optimization nothing aborts.

        Three separate single-row tables keep page-granularity SIREAD
        locks from adding edges beyond the intended structure.
        """
        for name in ("ta", "tb", "tc"):
            db.create_table(name, ["k", "v"], key="k")
            db.session().insert(name, {"k": 0, "v": 0})
        t1, t2, t3 = db.session(), db.session(), db.session()
        t1.begin(SER)
        t2.begin(SER)
        t3.begin(SER)
        # T1 reads ta (which T2 will write): T1 -rw-> T2.
        t1.select("ta", Eq("k", 0))
        t2.update("ta", Eq("k", 0), {"v": 1})
        # T2 reads tb (which T3 will write): T2 -rw-> T3.
        t2.select("tb", Eq("k", 0))
        t3.update("tb", Eq("k", 0), {"v": 1})
        # T1 writes something of its own and commits FIRST.
        t1.update("tc", Eq("k", 0), {"v": 1})
        t1.commit()
        t3.commit()
        t2.commit()

    def test_commit_ordering_avoids_false_positive(self):
        db = Database(EngineConfig(ssi=SSIConfig(commit_ordering_opt=True)))
        self._dangerous_but_t3_not_first(db)  # must not raise

    def test_without_commit_ordering_false_positive_aborts(self):
        db = Database(EngineConfig(ssi=SSIConfig(commit_ordering_opt=False,
                                                 read_only_opt=False)))
        with pytest.raises(SerializationFailure):
            self._dangerous_but_t3_not_first(db)


class TestFlagsTrackingAblation:
    def test_flags_mode_still_prevents_write_skew(self):
        db = doctors_db(conflict_tracking="flags")
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        take_off_call(s1, "alice")
        with pytest.raises(SerializationFailure):
            take_off_call(s2, "bob")
            s1.commit()
            s2.commit()
        assert oncall_count(db) >= 1

    def test_flags_mode_has_more_false_positives(self):
        # The T3-not-first scenario is aborted in flags mode (it cannot
        # apply the commit-ordering optimization)...
        db = Database(EngineConfig(ssi=SSIConfig(conflict_tracking="flags")))
        with pytest.raises(SerializationFailure):
            TestCommitOrderingOptimization._dangerous_but_t3_not_first(
                TestCommitOrderingOptimization(), db)


class TestPhantoms:
    def test_predicate_read_vs_insert_write_skew(self):
        """Write skew through phantoms: two transactions count rows in
        ranges and insert into each other's range. B+-tree page SIREAD
        locks must catch this."""
        db = Database(EngineConfig())
        db.create_table("vals", ["k", "grp"], key="k")
        db.create_index("vals", "grp")
        s = db.session()
        for i in range(8):
            s.insert("vals", {"k": i, "grp": "a" if i % 2 else "b"})
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        n_a = len(s1.select("vals", Eq("grp", "a")))
        n_b = len(s2.select("vals", Eq("grp", "b")))
        s1.insert("vals", {"k": 100 + n_a, "grp": "b"})
        s2.insert("vals", {"k": 200 + n_b, "grp": "a"})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()

    def test_empty_range_gap_lock_catches_phantom(self):
        """Scanning an EMPTY key range must still conflict with a later
        insert into it (gap locking on the leaf page)."""
        db = Database(EngineConfig())
        db.create_table("vals", ["k", "v"], key="k")
        s = db.session()
        for i in (1, 2, 50, 51):
            s.insert("vals", {"k": i, "v": 0})
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        from repro.engine import Between
        assert s1.select("vals", Between("k", 10, 20)) == []
        # s1 writes something based on the emptiness; s2 inserts into
        # the gap and reads something s1 wrote -> cycle.
        s2.select("vals", Eq("k", 50))
        s1.update("vals", Eq("k", 50), {"v": 1})
        s2.insert("vals", {"k": 15, "v": 1})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()
