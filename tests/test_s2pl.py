"""The strict two-phase locking baseline (paper section 8)."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import DeadlockDetected, WouldBlock

S2PL = IsolationLevel.S2PL


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("doctors", ["name", "oncall"], key="name")
    s = database.session()
    s.insert("doctors", {"name": "alice", "oncall": True})
    s.insert("doctors", {"name": "bob", "oncall": True})
    database.create_table("t", ["k", "v"], key="k")
    for k in range(4):
        s.insert("t", {"k": k, "v": 0})
    return database


class TestBlockingReads:
    def test_reader_blocks_on_writer(self, db):
        w, r = db.session(), db.session()
        w.begin(S2PL)
        r.begin(S2PL)
        w.update("t", Eq("k", 1), {"v": 5})
        with pytest.raises(WouldBlock):
            r.select("t", Eq("k", 1))
        w.commit()
        rows = r.resume()
        assert rows == [{"k": 1, "v": 5}]  # sees the committed write
        r.commit()

    def test_writer_blocks_on_reader(self, db):
        w, r = db.session(), db.session()
        r.begin(S2PL)
        w.begin(S2PL)
        assert r.select("t", Eq("k", 1)) == [{"k": 1, "v": 0}]
        with pytest.raises(WouldBlock):
            w.update("t", Eq("k", 1), {"v": 5})
        r.commit()
        assert w.resume() == 1
        w.commit()

    def test_readers_do_not_block_readers(self, db):
        r1, r2 = db.session(), db.session()
        r1.begin(S2PL)
        r2.begin(S2PL)
        assert r1.select("t", Eq("k", 1))
        assert r2.select("t", Eq("k", 1))
        r1.commit()
        r2.commit()

    def test_seqscan_blocks_any_write(self, db):
        r, w = db.session(), db.session()
        r.begin(S2PL)
        w.begin(S2PL)
        from repro.engine import Func
        r.select("t", Func(lambda row: True))  # seqscan: relation S lock
        with pytest.raises(WouldBlock):
            w.insert("t", {"k": 99, "v": 1})
        r.commit()
        w.resume()
        w.commit()


class TestS2plSerializability:
    def test_write_skew_prevented_by_blocking(self, db):
        """Figure 1 under S2PL: the second transaction blocks on the
        first's read locks and the interleaving becomes a deadlock,
        resolved by aborting one transaction."""
        s1, s2 = db.session(), db.session()
        s1.begin(S2PL)
        s2.begin(S2PL)
        n1 = len(s1.select("doctors", Eq("oncall", True)))
        n2 = len(s2.select("doctors", Eq("oncall", True)))
        assert n1 == n2 == 2
        blocked = False
        try:
            s1.update("doctors", Eq("name", "alice"), {"oncall": False})
        except WouldBlock:
            blocked = True
        # s2's symmetric update closes the wait cycle.
        with pytest.raises((DeadlockDetected, WouldBlock)):
            s2.update("doctors", Eq("name", "bob"), {"oncall": False})
            if not blocked:
                pytest.fail("expected blocking or deadlock")
        s2.rollback()
        if blocked:
            s1.resume()
        s1.commit()
        oncall = db.session().select("doctors", Eq("oncall", True))
        assert len(oncall) >= 1  # invariant preserved

    def test_phantom_prevented_by_index_gap_locks(self, db):
        r, w = db.session(), db.session()
        r.begin(S2PL)
        w.begin(S2PL)
        from repro.engine import Between
        assert r.select("t", Between("k", 10, 20)) == []
        # Inserting into the scanned gap must block on the page lock.
        with pytest.raises(WouldBlock):
            w.insert("t", {"k": 15, "v": 1})
        r.commit()
        w.resume()
        w.commit()

    def test_reads_see_latest_committed(self, db):
        # No snapshot staleness under S2PL: a reader that starts
        # before a commit but reads after it sees the newest data.
        r, w = db.session(), db.session()
        r.begin(S2PL)
        w.begin(S2PL)
        w.update("t", Eq("k", 2), {"v": 42})
        w.commit()
        assert r.select("t", Eq("k", 2)) == [{"k": 2, "v": 42}]
        r.commit()

    def test_own_writes_visible(self, db):
        s = db.session()
        s.begin(S2PL)
        s.update("t", Eq("k", 1), {"v": 7})
        assert s.select("t", Eq("k", 1)) == [{"k": 1, "v": 7}]
        s.insert("t", {"k": 50, "v": 1})
        assert s.select("t", Eq("k", 50)) == [{"k": 50, "v": 1}]
        s.rollback()
        assert db.session().select("t", Eq("k", 1)) == [{"k": 1, "v": 0}]

    def test_locks_released_at_commit(self, db):
        a, b = db.session(), db.session()
        a.begin(S2PL)
        a.update("t", Eq("k", 1), {"v": 5})
        a.commit()
        b.begin(S2PL)
        assert b.select("t", Eq("k", 1)) == [{"k": 1, "v": 5}]
        b.commit()

    def test_deadlock_statistics(self, db):
        # Different tables avoid index-page lock coupling, producing a
        # clean two-resource deadlock.
        s1, s2 = db.session(), db.session()
        s1.begin(S2PL)
        s2.begin(S2PL)
        s1.update("t", Eq("k", 0), {"v": 1})
        s2.update("doctors", Eq("name", "bob"), {"oncall": False})
        with pytest.raises(WouldBlock):
            s1.update("doctors", Eq("name", "bob"), {"oncall": True})
        with pytest.raises(DeadlockDetected):
            s2.update("t", Eq("k", 0), {"v": 2})
        assert db.lockmgr.deadlocks_detected >= 1
        s2.rollback()
        s1.resume()
        s1.commit()
