"""Unit tests for xid allocation, the commit log, and snapshots."""

import pytest

from repro.mvcc import (CommitLog, INVALID_XID, Snapshot, XidAllocator,
                        XidStatus)


class TestXidAllocator:
    def test_assigns_increasing_ids(self):
        alloc = XidAllocator()
        a, b, c = alloc.assign(), alloc.assign(), alloc.assign()
        assert a < b < c

    def test_next_xid_is_upper_bound(self):
        alloc = XidAllocator()
        nxt = alloc.next_xid
        assert alloc.assign() == nxt
        assert alloc.next_xid == nxt + 1

    def test_invalid_xid_never_assigned(self):
        alloc = XidAllocator()
        for _ in range(100):
            assert alloc.assign() != INVALID_XID


class TestCommitLog:
    def test_unknown_xid_reported_in_progress(self):
        clog = CommitLog()
        assert clog.status(42) is XidStatus.IN_PROGRESS

    def test_commit_and_abort(self):
        clog = CommitLog()
        clog.register(5)
        clog.register(6)
        clog.set_committed([5])
        clog.set_aborted([6])
        assert clog.did_commit(5)
        assert not clog.did_commit(6)
        assert clog.did_abort(6)
        assert not clog.in_progress(5)

    def test_subtransaction_parent_chain(self):
        clog = CommitLog()
        clog.register(10)
        clog.register(11, parent=10)
        clog.register(12, parent=11)
        assert clog.parent_of(12) == 11
        assert clog.top_level_of(12) == 10
        assert clog.top_level_of(10) == 10

    def test_commit_marks_whole_subtree(self):
        clog = CommitLog()
        clog.register(10)
        clog.register(11, parent=10)
        clog.set_committed([10, 11])
        assert clog.did_commit(11)


class TestSnapshot:
    def test_xid_beyond_xmax_in_progress(self):
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset())
        assert snap.xid_in_progress_at_snapshot(10)
        assert snap.xid_in_progress_at_snapshot(999)
        assert not snap.xid_in_progress_at_snapshot(9)

    def test_xip_members_in_progress(self):
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({7}))
        assert snap.xid_in_progress_at_snapshot(7)
        assert not snap.xid_in_progress_at_snapshot(6)

    def test_committed_visible_requires_commit(self):
        clog = CommitLog()
        clog.register(6)
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({7}))
        assert not snap.committed_visible(6, clog)  # still in progress
        clog.set_committed([6])
        assert snap.committed_visible(6, clog)

    def test_committed_after_snapshot_invisible(self):
        clog = CommitLog()
        clog.register(7)
        clog.set_committed([7])
        # 7 was in progress at snapshot time despite committing later.
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({7}))
        assert not snap.committed_visible(7, clog)

    def test_overlap(self):
        a = Snapshot(xmin=1, xmax=5)
        b = Snapshot(xmin=4, xmax=9)
        c = Snapshot(xmin=5, xmax=9)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_snapshot_is_immutable(self):
        snap = Snapshot(xmin=1, xmax=2)
        with pytest.raises(AttributeError):
            snap.xmin = 7
