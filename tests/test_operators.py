"""Unit tests for the batch relational operators
(repro.engine.operators): every join algorithm must agree with the
nested-loop baseline row-for-row in left-major order, NULL keys must
join nothing, and grouping/aggregation must be deterministic."""

import pytest

from repro.engine.operators import (aggregate_value, hash_group,
                                    hash_join, limit_rows, merge_join,
                                    nested_loop_join, sort_rows)

LEFT = [{"k": 2, "a": "l0"}, {"k": 1, "a": "l1"}, {"k": None, "a": "l2"},
        {"k": 2, "a": "l3"}, {"k": 3, "a": "l4"}]
RIGHT = [{"k": 1, "b": "r0"}, {"k": 2, "b": "r1"}, {"k": 2, "b": "r2"},
         {"k": None, "b": "r3"}, {"k": 5, "b": "r4"}]


def _key(row):
    return row.get("k")


def _combine(l_row, r_row):
    return {"a": l_row["a"], "b": r_row["b"]}


def _true(row):
    return True


BASELINE = nested_loop_join(LEFT, RIGHT, _key, _key, _true, _combine)


class TestJoinAlgorithmsAgree:
    def test_baseline_is_left_major_and_null_free(self):
        # l0/l3 (k=2) each match r1, r2 in right order; l1 (k=1)
        # matches r0; NULL keys on either side join nothing.
        assert BASELINE == [
            {"a": "l0", "b": "r1"}, {"a": "l0", "b": "r2"},
            {"a": "l1", "b": "r0"},
            {"a": "l3", "b": "r1"}, {"a": "l3", "b": "r2"}]

    @pytest.mark.parametrize("build", ["right", "left"])
    def test_hash_join_matches_baseline(self, build):
        got = hash_join(LEFT, RIGHT, _key, _key, _true, _combine,
                        build=build)
        assert got == BASELINE

    def test_merge_join_matches_baseline(self):
        assert merge_join(LEFT, RIGHT, _key, _key, _true, _combine) \
            == BASELINE

    def test_residual_condition_applies_after_combine(self):
        cond = lambda row: row["b"] != "r1"  # noqa: E731
        expect = [r for r in BASELINE if r["b"] != "r1"]
        for got in (
                nested_loop_join(LEFT, RIGHT, _key, _key, cond, _combine),
                hash_join(LEFT, RIGHT, _key, _key, cond, _combine,
                          build="left"),
                merge_join(LEFT, RIGHT, _key, _key, cond, _combine)):
            assert got == expect

    def test_empty_inputs(self):
        assert hash_join([], RIGHT, _key, _key, _true, _combine) == []
        assert hash_join(LEFT, [], _key, _key, _true, _combine) == []
        assert merge_join([], [], _key, _key, _true, _combine) == []

    def test_cross_join_without_keys(self):
        got = nested_loop_join(LEFT[:2], RIGHT[:2], None, None, _true,
                               _combine)
        assert got == [{"a": "l0", "b": "r0"}, {"a": "l0", "b": "r1"},
                       {"a": "l1", "b": "r0"}, {"a": "l1", "b": "r1"}]


class TestGrouping:
    ROWS = [{"g": "x", "v": 3}, {"g": "y", "v": 1}, {"g": "x", "v": None},
            {"g": "y", "v": 5}, {"g": "x", "v": 2}]

    def test_groups_in_first_appearance_order(self):
        groups = hash_group(self.ROWS, ["g"])
        assert [key for key, _ in groups] == [("x",), ("y",)]
        assert [len(grows) for _, grows in groups] == [3, 2]

    def test_aggregate_values_skip_nulls(self):
        (_, xrows), _ = hash_group(self.ROWS, ["g"])
        assert aggregate_value("COUNT", None, xrows) == 3
        assert aggregate_value("COUNT", "v", xrows) == 2
        assert aggregate_value("SUM", "v", xrows) == 5
        assert aggregate_value("MIN", "v", xrows) == 2
        assert aggregate_value("MAX", "v", xrows) == 3
        assert aggregate_value("AVG", "v", xrows) == 2.5

    def test_aggregates_over_all_null_group(self):
        rows = [{"v": None}, {"v": None}]
        assert aggregate_value("COUNT", "v", rows) == 0
        assert aggregate_value("SUM", "v", rows) is None
        assert aggregate_value("MIN", "v", rows) is None
        assert aggregate_value("AVG", "v", rows) is None


class TestSortLimit:
    def test_sort_is_stable(self):
        rows = [{"k": 1, "i": 0}, {"k": 0, "i": 1}, {"k": 1, "i": 2}]
        assert [r["i"] for r in sort_rows(list(rows), "k")] == [1, 0, 2]
        assert [r["i"] for r in sort_rows(list(rows), "k",
                                          descending=True)] == [0, 2, 1]

    def test_limit(self):
        rows = [{"i": i} for i in range(5)]
        assert limit_rows(rows, 2) == rows[:2]
        assert limit_rows(rows, None) == rows
        assert limit_rows(rows, 0) == []
