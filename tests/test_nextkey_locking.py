"""Next-key index-range locking (the section 5.2.1 future work,
implemented): phantoms are still caught, and the page-sharing false
positives of page-granularity locking disappear."""

import pytest

from repro.config import EngineConfig, SSIConfig
from repro.engine import Between, Database, Eq, IsolationLevel
from repro.errors import SerializationFailure

SER = IsolationLevel.SERIALIZABLE


def make_db(index_locking="nextkey", rows=8):
    db = Database(EngineConfig(ssi=SSIConfig(index_locking=index_locking)))
    db.create_table("t", ["k", "v"], key="k")
    s = db.session()
    for k in range(0, rows * 10, 10):
        s.insert("t", {"k": k, "v": 0})
    return db


class TestPhantomsStillCaught:
    def test_insert_into_scanned_gap_conflicts(self):
        db = make_db()
        r, w = db.session(), db.session()
        r.begin(SER)
        w.begin(SER)
        assert r.select("t", Between("k", 11, 19)) == []  # gap scan
        r.update("t", Eq("k", 0), {"v": 1})
        w.select("t", Eq("k", 0))
        w.insert("t", {"k": 15, "v": 1})  # lands in r's scanned gap
        r.commit()
        with pytest.raises(SerializationFailure):
            w.commit()

    def test_insert_beyond_last_key_conflicts_with_open_scan(self):
        db = make_db()
        r, w = db.session(), db.session()
        r.begin(SER)
        w.begin(SER)
        # Scan runs off the right edge: +infinity gap locked.
        rows = r.select("t", Between("k", 60, 10_000))
        assert rows
        r.update("t", Eq("k", 0), {"v": 1})
        w.select("t", Eq("k", 0))
        w.insert("t", {"k": 999, "v": 1})
        r.commit()
        with pytest.raises(SerializationFailure):
            w.commit()

    def test_duplicate_key_insert_conflicts_with_key_reader(self):
        db = Database(EngineConfig(ssi=SSIConfig(index_locking="nextkey")))
        db.create_table("t", ["k", "v"])  # non-unique
        db.create_index("t", "k")
        s = db.session()
        s.insert("t", {"k": 5, "v": 0})
        r, w = db.session(), db.session()
        r.begin(SER)
        w.begin(SER)
        assert len(r.select("t", Eq("k", 5))) == 1
        r.insert("t", {"k": 100, "v": 1})
        w.select("t", Eq("k", 100))
        w.insert("t", {"k": 5, "v": 2})  # another row enters r's k=5 set
        r.commit()
        with pytest.raises(SerializationFailure):
            w.commit()

    def test_empty_equality_lookup_guarded(self):
        db = make_db()
        r, w = db.session(), db.session()
        r.begin(SER)
        w.begin(SER)
        assert r.select("t", Eq("k", 15)) == []
        r.update("t", Eq("k", 0), {"v": 1})
        w.select("t", Eq("k", 0))
        w.insert("t", {"k": 15, "v": 1})
        r.commit()
        with pytest.raises(SerializationFailure):
            w.commit()


class TestFalsePositivesEliminated:
    def _disjoint_key_scenario(self, index_locking):
        """Two transactions reading/writing disjoint keys that happen
        to share a B+-tree leaf page. Page locking flags a (false)
        conflict; next-key locking must not."""
        db = make_db(index_locking)
        t1, t2, t3 = db.session(), db.session(), db.session()
        # T1 -rw-> T2 -rw-> T3 via page-sharing only:
        t1.begin(SER)
        t1.select("t", Eq("k", 0))
        t2.begin(SER)
        t2.select("t", Eq("k", 20))
        t3.begin(SER)
        t3.update("t", Eq("k", 20), {"v": 1})  # t2 -rw-> t3 (real)
        t3.commit()
        # t2 updates k=40: under page locking, the new version's index
        # entry would land on the leaf t1 gap-locked -> false t1->t2
        # edge completing a dangerous structure. Next-key locking sees
        # k=40 != 0, no conflict.
        t2.update("t", Eq("k", 40), {"v": 1})
        outcome = []
        for s in (t1, t2):
            try:
                s.commit()
                outcome.append("committed")
            except SerializationFailure:
                if s.in_transaction():
                    s.rollback()
                outcome.append("aborted")
        return outcome

    def test_nextkey_allows_disjoint_key_updates(self):
        assert self._disjoint_key_scenario("nextkey") == \
            ["committed", "committed"]

    def test_same_key_updates_still_detected(self):
        """Sanity: the real conflicts are unaffected by the mode."""
        db = make_db("nextkey")
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        s1.select("t", Eq("k", 0))
        s2.select("t", Eq("k", 10))
        s1.update("t", Eq("k", 10), {"v": 1})
        s2.update("t", Eq("k", 0), {"v": 1})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()


class TestMaintenance:
    def test_key_locks_promote_to_index_relation(self):
        db = Database(EngineConfig(ssi=SSIConfig(
            index_locking="nextkey", max_pred_locks_per_relation=3)))
        db.create_table("t", ["k", "v"], key="k")
        s = db.session()
        for k in range(20):
            s.insert("t", {"k": k, "v": 0})
        r = db.session()
        r.begin(SER)
        for k in range(6):
            r.select("t", Eq("k", k))
        targets = db.ssi.lockmgr.targets_held(r.txn.sxact)
        assert any(t[0] == "ir" for t in targets)
        assert not any(t[0] == "ik" for t in targets)
        r.rollback()

    def test_drop_index_transfers_key_locks(self):
        db = make_db()
        r = db.session()
        r.begin(SER)
        assert r.select("t", Between("k", 11, 19)) == []
        sx = r.txn.sxact
        assert any(t[0] == "ik" for t in db.ssi.lockmgr.targets_held(sx))
        rel = db.relation("t")
        index = rel.indexes["t_pkey"]
        rel.drop_index("t_pkey")
        db.ssi.lockmgr.transfer_index_to_heap(index.oid, rel.oid)
        targets = db.ssi.lockmgr.targets_held(sx)
        assert not any(t[0] in ("ik", "ik+") for t in targets)
        assert ("r", rel.oid) in targets
        r.rollback()
