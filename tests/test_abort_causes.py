"""Abort-cause taxonomy: every way SSI kills a transaction.

Each SerializationFailure now carries structured fields (AbortCause
enum, the T1/pivot/T3 xids of the dangerous structure, and which
commit-ordering rule confirmed it) and increments the matching
``ssi.aborts{cause=...}`` registry counter. One test per cause:

* PIVOT -- the acting transaction completes a dangerous structure it
  is the pivot of (commit-ordering rule, section 3.3.1);
* rule == "ro_snapshot" -- a read-only T1 is only dangerous when T3
  committed before its snapshot (Theorem 3, section 4.1);
* DOOMED_AT_OP -- marked doomed by another session's commit, noticed
  at the next statement (safe-retry rules, section 5.4);
* DOOMED_AT_COMMIT -- same, noticed at COMMIT;
* UPDATE_CONFLICT -- first-updater-wins under snapshot semantics.

Plus the post-mortem explainer reconstructing the write-skew structure
from the trace.
"""

import pytest

from repro.config import EngineConfig, ObsConfig, SSIConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import AbortCause, SerializationFailure
from repro.obs import explain_failure

SER = IsolationLevel.SERIALIZABLE


def doctors_db(obs: bool = False, **ssi_kwargs) -> Database:
    cfg = EngineConfig(ssi=SSIConfig(**ssi_kwargs))
    if obs:
        cfg.obs = ObsConfig(enabled=True, trace=True)
    db = Database(cfg)
    db.create_table("doctors", ["name", "oncall"], key="name")
    s = db.session()
    s.insert("doctors", {"name": "alice", "oncall": True})
    s.insert("doctors", {"name": "bob", "oncall": True})
    return db


def abort_count(db: Database, cause: AbortCause) -> int:
    return db.obs.metrics.counter("ssi.aborts", cause=cause.value).value


def write_skew(db: Database):
    """Run the Figure 1 interleaving up to (and including) s1's commit,
    which dooms s2. Returns (s1_xid, s2, s2_xid)."""
    s1, s2 = db.session(), db.session()
    s1.begin(SER)
    s2.begin(SER)
    s1.select("doctors", Eq("oncall", True))
    s2.select("doctors", Eq("oncall", True))
    s1.update("doctors", Eq("name", "alice"), {"oncall": False})
    s2.update("doctors", Eq("name", "bob"), {"oncall": False})
    x1, x2 = s1.txn.xid, s2.txn.xid
    assert s1.commit()
    return x1, s2, x2


class TestPivotAbort:
    def test_pivot_commit_order_rule(self):
        """T2 completes the structure itself after T3 already committed:
        aborted on the spot as the pivot, rule = commit_order."""
        db = doctors_db()
        s1, s2, s3 = db.session(), db.session(), db.session()
        s2.begin(SER)
        s2.select("doctors", Eq("name", "bob"))        # T2 reads bob
        s3.begin(SER)
        x3 = s3.txn.xid
        s3.update("doctors", Eq("name", "bob"), {"oncall": False})
        assert s3.commit()                             # T3 commits first
        s1.begin(SER)
        x1 = s1.txn.xid
        s1.select("doctors", Eq("name", "alice"))      # T1 reads alice
        s2txn = s2.txn
        with pytest.raises(SerializationFailure) as ei:
            # T2's write flags T1 -rw-> T2, completing T1 -> T2 -> T3
            # with T3 committed first: T2 is the pivot and the actor.
            s2.update("doctors", Eq("name", "alice"), {"oncall": False})
        exc = ei.value
        assert exc.cause is AbortCause.PIVOT
        assert exc.rule == "commit_order"
        assert exc.pivot_xid == s2txn.xid
        assert exc.t1_xid == x1
        assert exc.t3_xid == x3
        assert abort_count(db, AbortCause.PIVOT) == 1
        s2.rollback()
        s1.commit()

    def test_read_only_theorem3_rule(self):
        """A declared READ ONLY T1 only participates when T3 committed
        before T1's snapshot (Theorem 3): rule = ro_snapshot."""
        db = doctors_db()
        s1, s2, s3 = db.session(), db.session(), db.session()
        s2.begin(SER)
        s2.select("doctors", Eq("name", "alice"))      # pivot reads alice
        s2.update("doctors", Eq("name", "bob"), {"oncall": False})
        x2 = s2.txn.xid
        s3.begin(SER)
        x3 = s3.txn.xid
        s3.update("doctors", Eq("name", "alice"), {"oncall": False})
        assert s3.commit()                             # T3 commits first
        s1.begin(SER, read_only=True)                  # snapshot after T3
        x1 = s1.txn.xid
        assert s2.commit()                             # pivot commits second
        with pytest.raises(SerializationFailure) as ei:
            # T1 reads bob under a snapshot that misses T2's write:
            # T1 -rw-> T2 -rw-> T3 with T3 < T1's snapshot, and both
            # other participants committed, so T1 itself must die.
            s1.select("doctors", Eq("name", "bob"))
        exc = ei.value
        assert exc.rule == "ro_snapshot"
        assert exc.pivot_xid == x2
        assert exc.t1_xid == x1
        # T3's node may already be freed (best-effort xid lookup), but
        # its commit sequence number always survives.
        assert exc.t3_xid in (x3, None)
        assert exc.t3_commit_seq is not None
        assert exc.cause in (AbortCause.PIVOT, AbortCause.UNABORTABLE)
        s1.rollback()

    def test_read_only_snapshot_before_t3_is_safe(self):
        """Same shape, but T1's snapshot predates T3's commit: Theorem 3
        says no anomaly is possible and nothing aborts."""
        db = doctors_db()
        s1, s2, s3 = db.session(), db.session(), db.session()
        s2.begin(SER)
        s2.select("doctors", Eq("name", "alice"))
        s2.update("doctors", Eq("name", "bob"), {"oncall": False})
        s1.begin(SER, read_only=True)                  # snapshot BEFORE T3
        s3.begin(SER)
        s3.update("doctors", Eq("name", "alice"), {"oncall": False})
        assert s3.commit()
        assert s2.commit()
        s1.select("doctors", Eq("name", "bob"))        # no failure
        assert s1.commit()
        assert abort_count(db, AbortCause.PIVOT) == 0
        assert abort_count(db, AbortCause.UNABORTABLE) == 0


class TestDoomedAborts:
    def test_doomed_at_next_operation(self):
        db = doctors_db()
        x1, s2, x2 = write_skew(db)
        with pytest.raises(SerializationFailure) as ei:
            s2.select("doctors", Eq("name", "alice"))
        exc = ei.value
        assert exc.cause is AbortCause.DOOMED_AT_OP
        assert exc.rule == "commit_order"
        assert exc.pivot_xid == x2
        assert exc.t3_xid == x1
        assert abort_count(db, AbortCause.DOOMED_AT_OP) == 1
        assert abort_count(db, AbortCause.DOOMED_AT_COMMIT) == 0
        s2.rollback()

    def test_doomed_at_commit(self):
        db = doctors_db()
        x1, s2, x2 = write_skew(db)
        with pytest.raises(SerializationFailure) as ei:
            s2.commit()
        exc = ei.value
        assert exc.cause is AbortCause.DOOMED_AT_COMMIT
        assert exc.rule == "commit_order"
        assert exc.pivot_xid == x2
        assert exc.t1_xid == x1
        assert exc.t3_xid == x1
        assert abort_count(db, AbortCause.DOOMED_AT_COMMIT) == 1
        assert abort_count(db, AbortCause.DOOMED_AT_OP) == 0


class TestUpdateConflict:
    def test_first_updater_wins_cause(self):
        db = doctors_db()
        s1, s2 = db.session(), db.session()
        s1.begin(IsolationLevel.REPEATABLE_READ)
        s2.begin(IsolationLevel.REPEATABLE_READ)
        s1.select("doctors", Eq("name", "alice"))
        s2.select("doctors", Eq("name", "alice"))
        s1.update("doctors", Eq("name", "alice"), {"oncall": False})
        assert s1.commit()
        with pytest.raises(SerializationFailure) as ei:
            s2.update("doctors", Eq("name", "alice"), {"oncall": True})
        assert ei.value.cause is AbortCause.UPDATE_CONFLICT
        assert abort_count(db, AbortCause.UPDATE_CONFLICT) == 1
        s2.rollback()


class TestPostMortem:
    def test_write_skew_postmortem_names_pivot_and_edges(self):
        db = doctors_db(obs=True)
        x1, s2, x2 = write_skew(db)
        with pytest.raises(SerializationFailure) as ei:
            s2.commit()
        report = explain_failure(db, ei.value)
        assert report.pivot_xid == x2
        assert report.t3_xid == x1
        assert report.rule == "commit_order"
        # Both rw-antidependency edges, recovered from the trace.
        assert len(report.in_edges) == 1
        assert len(report.out_edges) == 1
        assert report.in_edges[0].reader_xid == x1
        assert report.in_edges[0].writer_xid == x2
        assert report.out_edges[0].reader_xid == x2
        assert report.out_edges[0].writer_xid == x1
        text = report.render()
        assert f"pivot: transaction {x2}" in text
        assert "doctors" in text
        assert "-rw->" in text

    def test_postmortem_without_trace_still_names_structure(self):
        db = doctors_db()  # metrics only, no tracer
        x1, s2, x2 = write_skew(db)
        with pytest.raises(SerializationFailure) as ei:
            s2.commit()
        report = explain_failure(db, ei.value)
        assert report.pivot_xid == x2
        assert report.in_edges == [] and report.out_edges == []
        assert "pivot" in report.render()
