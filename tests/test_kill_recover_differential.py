"""Kill-and-recover differential suite (ISSUE 9 satellite).

Every corpus program runs twice under its pinned schedule: once on the
in-memory engine, once on a disk-backed engine. The two runs must be
indistinguishable (same commit verdicts, same committed rows, same
Adya-graph serializability verdict) -- durability may not perturb the
engine. Then the disk-backed run is *killed* (abandoned without a
clean shutdown) and reopened: recovery must reproduce the exact
committed state, under both the anomaly-preserving snapshot-isolation
replay and the abort-inducing SERIALIZABLE replay.

The 2PC tests pin the section 7.1 state machine across a kill: a
prepared serializable transaction survives with its SIREAD locks and
conservative conflict flags, still blocks writers, still dooms
overlapping serializable readers, and can be resolved either way.
"""

from pathlib import Path

import pytest

from repro.config import DurabilityConfig, EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import SerializationFailure, WouldBlock
from repro.explore import load_replay
from repro.explore.explorer import canonical_state, execute_schedule
from repro.explore.replay import FixedSchedulePolicy
from repro.storage.durable import open_database

CORPUS_DIR = Path(__file__).resolve().parent / "explore_corpus"
CORPUS = sorted(CORPUS_DIR.glob("*.json"))
SER = IsolationLevel.SERIALIZABLE


def durable_cfg(data_dir, **kw) -> EngineConfig:
    return EngineConfig.durable(
        str(data_dir), record_history=True,
        durability=DurabilityConfig(fsync=False, **kw))


def run_pair(replay, isolation, data_dir):
    """Execute the pinned schedule on the in-memory and the disk-backed
    engine; returns (mem_record, dur_record, durable_db)."""
    strict = isolation is replay.isolation
    mem_policy = FixedSchedulePolicy(replay.schedule, strict=strict)
    mem = execute_schedule(replay.program, isolation, mem_policy.pick)
    dur_policy = FixedSchedulePolicy(replay.schedule, strict=strict)
    db = replay.program.build_db(config=durable_cfg(data_dir))
    dur = execute_schedule(replay.program, isolation, dur_policy.pick,
                           db=db)
    return mem, dur, db


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_durable_run_matches_in_memory_and_survives_kill(path, tmp_path):
    """Snapshot-isolation replay: the pinned anomaly must reproduce
    identically on disk, and the kill must not lose it."""
    replay = load_replay(str(path))
    mem, dur, db = run_pair(replay, replay.isolation, tmp_path)
    assert mem.complete and dur.complete, (mem.error, dur.error)
    assert dur.committed_txns == mem.committed_txns
    assert dur.state == mem.state
    assert dur.check.serializable == mem.check.serializable
    assert not dur.check.serializable, \
        f"{path.stem}: pinned anomaly vanished under durability"
    # Kill: abandon the db object (no close -- close would checkpoint).
    del db
    recovered = open_database(str(tmp_path), durable_cfg(tmp_path))
    assert canonical_state(recovered, replay.program) == dur.state, \
        f"{path.stem}: recovery lost or invented committed rows"
    recovered.close()


@pytest.mark.parametrize("path", CORPUS, ids=lambda p: p.stem)
def test_serializable_replay_matches_and_survives_kill(path, tmp_path):
    """SERIALIZABLE replay: SSI's abort decisions must be identical on
    the disk-backed engine (same doomed transactions, same survivors),
    and the post-abort state must survive the kill."""
    replay = load_replay(str(path))
    mem, dur, db = run_pair(replay, SER, tmp_path)
    assert mem.complete and dur.complete, (mem.error, dur.error)
    assert dur.committed_txns == mem.committed_txns
    assert dur.serialization_failures == mem.serialization_failures
    assert dur.state == mem.state
    assert dur.check.serializable and mem.check.serializable
    del db
    recovered = open_database(str(tmp_path), durable_cfg(tmp_path))
    assert canonical_state(recovered, replay.program) == dur.state
    recovered.close()


# ---------------------------------------------------------------------------
# prepared-transaction (section 7.1) state across a kill
# ---------------------------------------------------------------------------
def _prepared_db(data_dir) -> Database:
    db = Database(durable_cfg(data_dir))
    db.create_table("r", ["k", "v"], key="k")
    db.create_table("ip", ["k", "v"], key="k")
    s = db.session()
    for k in range(3):
        s.insert("r", {"k": k, "v": 0})
    s.begin(SER)
    s.select("r", Eq("k", 1))
    s.insert("ip", {"k": 1, "v": 10})
    s.update("r", Eq("k", 2), {"v": 1})
    s.prepare_transaction("pp")
    return db


def test_prepared_txn_survives_kill(tmp_path):
    db = _prepared_db(tmp_path)
    del db  # kill
    rec = open_database(str(tmp_path), durable_cfg(tmp_path))
    assert rec.prepared_gids() == ["pp"]
    txn = rec._prepared["pp"]
    # Recovered with the paper's conservative summary flags: treated as
    # having both conflicts in and out, since the graph died with the
    # process.
    assert txn.sxact is not None
    assert txn.sxact.prepared
    assert txn.sxact.summary_conflict_out
    # Its SIREAD locks came back from the prepare record.
    assert txn.persisted_siread
    rec.close()
    # Still prepared after a *clean* cycle too (checkpoint carries it).
    rec2 = open_database(str(tmp_path), durable_cfg(tmp_path))
    assert rec2.prepared_gids() == ["pp"]
    rec2.rollback_prepared("pp")
    rec2.close()


def test_recovered_prepared_txn_still_blocks_and_dooms(tmp_path):
    db = _prepared_db(tmp_path)
    del db
    rec = open_database(str(tmp_path), durable_cfg(tmp_path))
    # Writers targeting its updated row still block on the xid lock.
    w = rec.session()
    w.begin(IsolationLevel.REPEATABLE_READ)
    with pytest.raises(WouldBlock):
        w.update("r", Eq("k", 2), {"v": 99})
    w.rollback()
    # A serializable reader overlapping its SIREAD/write set is doomed
    # by the conservative flags (the section 7.1 trade-off).
    r = rec.session()
    r.begin(SER)
    with pytest.raises(SerializationFailure):
        r.select("ip", Eq("k", 1))
        r.update("r", Eq("k", 1), {"v": 5})
        r.commit()
    rec.rollback_prepared("pp")
    rec.close()


def test_commit_prepared_after_kill(tmp_path):
    db = _prepared_db(tmp_path)
    del db
    rec = open_database(str(tmp_path), durable_cfg(tmp_path))
    rec.commit_prepared("pp")
    s = rec.session()
    s.begin(IsolationLevel.READ_COMMITTED)
    assert s.select("ip", Eq("k", 1)) == [{"k": 1, "v": 10}]
    s.commit()
    del rec  # kill again: the cprep record must be replayed
    rec2 = open_database(str(tmp_path), durable_cfg(tmp_path))
    assert rec2.prepared_gids() == []
    assert rec2.session().select("ip", Eq("k", 1)) == [{"k": 1, "v": 10}]
    rec2.close()


def test_rollback_prepared_after_kill(tmp_path):
    db = _prepared_db(tmp_path)
    del db
    rec = open_database(str(tmp_path), durable_cfg(tmp_path))
    rec.rollback_prepared("pp")
    assert rec.session().select("ip") == []
    del rec
    rec2 = open_database(str(tmp_path), durable_cfg(tmp_path))
    assert rec2.prepared_gids() == []
    assert rec2.session().select("ip") == []
    rec2.close()


def test_recovered_database_answers_programs_identically(tmp_path):
    """End-to-end differential: run a corpus program serially on a
    recovered database and on a fresh in-memory database -- identical
    answers row for row."""
    replay = load_replay(str(CORPUS_DIR / "write_skew.json"))
    program = replay.program
    db = program.build_db(config=durable_cfg(tmp_path))
    del db  # kill right after the initial load
    recovered = open_database(str(tmp_path), durable_cfg(tmp_path))
    fresh = program.build_db()
    for target in (recovered, fresh):
        session = target.session()
        for _name, txn in program.all_txns():
            program.run_txn_directly(session, txn, SER)
    assert (canonical_state(recovered, program)
            == canonical_state(fresh, program))
    recovered.close()
