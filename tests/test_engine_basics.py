"""Integration tests: CRUD, visibility across isolation levels,
autocommit, failed-transaction state, savepoints."""

import pytest

from repro.config import EngineConfig
from repro.engine import (AlwaysTrue, Between, Database, Eq, Func, Ge,
                          IsolationLevel, Lt)
from repro.errors import (InvalidTransactionStateError,
                          ReadOnlyTransactionError, UndefinedColumnError,
                          UndefinedTableError, UniqueViolationError)

RC = IsolationLevel.READ_COMMITTED
RR = IsolationLevel.REPEATABLE_READ
SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("accounts", ["id", "owner", "balance"], key="id")
    return database


def load(db, rows):
    s = db.session()
    for row in rows:
        s.insert("accounts", row)


class TestCrud:
    def test_insert_select_roundtrip(self, db):
        s = db.session()
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 10})
        assert s.select("accounts") == [{"id": 1, "owner": "a", "balance": 10}]

    def test_select_returns_copies(self, db):
        s = db.session()
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 10})
        rows = s.select("accounts")
        rows[0]["balance"] = 999
        assert s.select("accounts")[0]["balance"] == 10

    def test_update_with_dict_and_callable(self, db):
        load(db, [{"id": i, "owner": "o", "balance": 10} for i in (1, 2)])
        s = db.session()
        assert s.update("accounts", Eq("id", 1), {"balance": 20}) == 1
        assert s.update("accounts", Eq("id", 2),
                        lambda row: {"balance": row["balance"] + 5}) == 1
        by_id = {r["id"]: r["balance"] for r in s.select("accounts")}
        assert by_id == {1: 20, 2: 15}

    def test_delete(self, db):
        load(db, [{"id": i, "owner": "o", "balance": 0} for i in range(5)])
        s = db.session()
        assert s.delete("accounts", Lt("id", 2)) == 2
        assert len(s.select("accounts")) == 3

    def test_update_all_rows(self, db):
        load(db, [{"id": i, "owner": "o", "balance": 0} for i in range(4)])
        s = db.session()
        assert s.update("accounts", None, {"balance": 1}) == 4

    def test_index_scan_equality_and_range(self, db):
        load(db, [{"id": i, "owner": "o", "balance": i} for i in range(50)])
        s = db.session()
        assert s.select("accounts", Eq("id", 7))[0]["balance"] == 7
        rows = s.select("accounts", Between("id", 10, 14))
        assert sorted(r["id"] for r in rows) == [10, 11, 12, 13, 14]
        rows = s.select("accounts", Ge("id", 48))
        assert sorted(r["id"] for r in rows) == [48, 49]

    def test_func_predicate_forces_seqscan(self, db):
        load(db, [{"id": i, "owner": "o", "balance": i % 3} for i in range(9)])
        s = db.session()
        rows = s.select("accounts", Func(lambda r: r["balance"] == 2))
        assert len(rows) == 3

    def test_undefined_table(self, db):
        with pytest.raises(UndefinedTableError):
            db.session().select("nope")

    def test_undefined_column(self, db):
        with pytest.raises(UndefinedColumnError):
            db.session().insert("accounts", {"id": 1, "bogus": 2})

    def test_unique_violation(self, db):
        s = db.session()
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        with pytest.raises(UniqueViolationError):
            s.insert("accounts", {"id": 1, "owner": "b", "balance": 0})

    def test_unique_allows_reinsert_after_delete(self, db):
        s = db.session()
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s.delete("accounts", Eq("id", 1))
        s.insert("accounts", {"id": 1, "owner": "b", "balance": 0})
        assert s.select("accounts", Eq("id", 1))[0]["owner"] == "b"


class TestTransactionSemantics:
    def test_uncommitted_changes_invisible_to_others(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RC)
        s1.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        assert s2.select("accounts") == []
        s1.commit()
        assert len(s2.select("accounts")) == 1

    def test_rollback_discards_changes(self, db):
        s = db.session()
        s.begin(RC)
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s.rollback()
        assert s.select("accounts") == []

    def test_own_changes_visible_within_txn(self, db):
        s = db.session()
        s.begin(SER)
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        assert len(s.select("accounts")) == 1
        s.update("accounts", Eq("id", 1), {"balance": 5})
        assert s.select("accounts")[0]["balance"] == 5
        s.commit()

    def test_repeatable_read_ignores_later_commits(self, db):
        load(db, [{"id": 1, "owner": "a", "balance": 0}])
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        assert s1.select("accounts")[0]["balance"] == 0
        s2.update("accounts", Eq("id", 1), {"balance": 100})
        assert s1.select("accounts")[0]["balance"] == 0  # same snapshot
        s1.commit()
        assert s1.select("accounts")[0]["balance"] == 100

    def test_read_committed_sees_later_commits(self, db):
        load(db, [{"id": 1, "owner": "a", "balance": 0}])
        s1, s2 = db.session(), db.session()
        s1.begin(RC)
        assert s1.select("accounts")[0]["balance"] == 0
        s2.update("accounts", Eq("id", 1), {"balance": 100})
        assert s1.select("accounts")[0]["balance"] == 100
        s1.commit()

    def test_begin_twice_rejected(self, db):
        s = db.session()
        s.begin(RC)
        with pytest.raises(InvalidTransactionStateError):
            s.begin(RC)
        s.rollback()

    def test_commit_without_txn_rejected(self, db):
        with pytest.raises(InvalidTransactionStateError):
            db.session().commit()

    def test_read_only_txn_rejects_writes(self, db):
        s = db.session()
        s.begin(SER, read_only=True)
        with pytest.raises(ReadOnlyTransactionError):
            s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s.rollback()

    def test_failed_txn_blocks_statements_until_rollback(self, db):
        s = db.session()
        s.begin(RC)
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        with pytest.raises(UniqueViolationError):
            s.insert("accounts", {"id": 1, "owner": "b", "balance": 0})
        with pytest.raises(InvalidTransactionStateError):
            s.select("accounts")
        s.rollback()
        assert s.select("accounts") == []  # nothing survived

    def test_commit_of_failed_txn_rolls_back(self, db):
        s = db.session()
        s.begin(RC)
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        with pytest.raises(UniqueViolationError):
            s.insert("accounts", {"id": 1, "owner": "b", "balance": 0})
        assert s.commit() is False
        assert s.select("accounts") == []


class TestSavepoints:
    def test_rollback_to_savepoint_discards_inner_changes(self, db):
        s = db.session()
        s.begin(SER)
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s.savepoint("sp")
        s.insert("accounts", {"id": 2, "owner": "b", "balance": 0})
        s.update("accounts", Eq("id", 1), {"balance": 99})
        s.rollback_to_savepoint("sp")
        rows = s.select("accounts")
        assert [r["id"] for r in rows] == [1]
        assert rows[0]["balance"] == 0
        s.commit()
        assert len(db.session().select("accounts")) == 1

    def test_release_savepoint_keeps_changes(self, db):
        s = db.session()
        s.begin(SER)
        s.savepoint("sp")
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s.release_savepoint("sp")
        s.commit()
        assert len(db.session().select("accounts")) == 1

    def test_nested_savepoints(self, db):
        s = db.session()
        s.begin(SER)
        s.savepoint("outer")
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s.savepoint("inner")
        s.insert("accounts", {"id": 2, "owner": "b", "balance": 0})
        s.rollback_to_savepoint("inner")
        s.commit()
        assert [r["id"] for r in db.session().select("accounts")] == [1]

    def test_rollback_to_outer_discards_inner(self, db):
        s = db.session()
        s.begin(SER)
        s.savepoint("outer")
        s.savepoint("inner")
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s.rollback_to_savepoint("outer")
        s.commit()
        assert db.session().select("accounts") == []

    def test_failed_statement_recoverable_via_savepoint(self, db):
        s = db.session()
        s.begin(RC)
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s.savepoint("sp")
        with pytest.raises(UniqueViolationError):
            s.insert("accounts", {"id": 1, "owner": "dup", "balance": 0})
        s.rollback_to_savepoint("sp")
        s.insert("accounts", {"id": 2, "owner": "b", "balance": 0})
        s.commit()
        assert len(db.session().select("accounts")) == 2

    def test_unknown_savepoint(self, db):
        s = db.session()
        s.begin(RC)
        with pytest.raises(InvalidTransactionStateError):
            s.rollback_to_savepoint("nope")


class TestVacuum:
    def test_vacuum_removes_dead_versions(self, db):
        s = db.session()
        s.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        for i in range(5):
            s.update("accounts", Eq("id", 1), {"balance": i})
        rel = db.relation("accounts")
        versions_before = sum(1 for _ in rel.heap.scan())
        assert versions_before == 6
        removed = db.vacuum("accounts")
        assert removed == 5
        assert sum(1 for _ in rel.heap.scan()) == 1
        assert s.select("accounts")[0]["balance"] == 4

    def test_vacuum_respects_active_snapshots(self, db):
        s1, s2 = db.session(), db.session()
        s1.insert("accounts", {"id": 1, "owner": "a", "balance": 0})
        s2.begin(IsolationLevel.REPEATABLE_READ)
        assert s2.select("accounts")[0]["balance"] == 0
        s1.update("accounts", Eq("id", 1), {"balance": 1})
        assert db.vacuum("accounts") == 0  # old version still visible to s2
        assert s2.select("accounts")[0]["balance"] == 0
        s2.commit()
        assert db.vacuum("accounts") == 1
