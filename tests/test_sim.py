"""Unit tests for the deterministic concurrency simulator."""

import random

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.sim import Client, Op, Scheduler, SimResult, ops

SER = IsolationLevel.SERIALIZABLE


class TestSimResult:
    def _empty(self, **overrides):
        fields = dict(ticks=0.0, commits=0, aborts=0,
                      serialization_failures=0, deadlocks=0, retries=0,
                      steps=0)
        fields.update(overrides)
        return SimResult(**fields)

    def test_empty_run_has_zero_throughput(self):
        assert self._empty().throughput == 0.0

    def test_empty_run_has_zero_failure_rate(self):
        assert self._empty().serialization_failure_rate == 0.0

    def test_scheduler_with_no_clients_yields_empty_result(self):
        result = Scheduler(Database(EngineConfig())).run()
        assert result.throughput == 0.0
        assert result.serialization_failure_rate == 0.0

    def test_rates_on_nonempty_run(self):
        result = self._empty(ticks=500.0, commits=3, aborts=1,
                             serialization_failures=1)
        assert result.throughput == pytest.approx(6.0)
        assert result.serialization_failure_rate == pytest.approx(0.25)


def make_db():
    db = Database(EngineConfig())
    db.create_table("t", ["k", "v"], key="k")
    s = db.session()
    for k in range(8):
        s.insert("t", {"k": k, "v": 0})
    return db


def single_txn_source(program_factory, count=1):
    remaining = [count]

    def source():
        if remaining[0] <= 0:
            return None
        remaining[0] -= 1
        return ("txn", program_factory)

    return source


class TestOps:
    def test_op_repr(self):
        op = ops.update("t", Eq("k", 1), {"v": 2})
        assert "update" in repr(op)

    def test_builders(self):
        assert ops.begin().method == "begin"
        assert ops.commit().method == "commit"
        assert ops.select("t").args == ("t", None)


class TestClient:
    def test_runs_transaction_to_completion(self):
        db = make_db()

        def program():
            yield ops.begin(SER)
            rows = yield ops.select("t", Eq("k", 1))
            assert rows[0]["v"] == 0
            yield ops.update("t", Eq("k", 1), {"v": 5})
            yield ops.commit()

        sched = Scheduler(db, seed=1)
        sched.add_client(Client(0, db.session(), single_txn_source(program)))
        result = sched.run()
        assert result.commits == 1
        assert db.session().select("t", Eq("k", 1))[0]["v"] == 5

    def test_retries_on_serialization_failure(self):
        db = make_db()
        # Two clients doing classic write skew; one will be retried.

        def mk(me, other):
            def program():
                yield ops.begin(SER)
                yield ops.select("t", Eq("k", other))
                yield ops.update("t", Eq("k", me), {"v": 1})
                yield ops.commit()
            return program

        sched = Scheduler(db, seed=3)
        sched.add_client(Client(0, db.session(),
                                single_txn_source(mk(1, 2))))
        sched.add_client(Client(1, db.session(),
                                single_txn_source(mk(2, 1))))
        result = sched.run()
        assert result.commits == 2  # both eventually commit
        # The retry is visible iff the interleaving produced a conflict;
        # with this seed it does.
        assert result.retries >= 1
        assert result.serialization_failures >= 1

    def test_forgives_missing_commit(self):
        db = make_db()

        def program():
            yield ops.begin(SER)
            yield ops.select("t", Eq("k", 1))
            # no commit: the client rolls back and counts an abort

        sched = Scheduler(db, seed=1)
        sched.add_client(Client(0, db.session(), single_txn_source(program)))
        result = sched.run()
        assert result.commits == 0
        assert result.aborts == 1

    def test_constraint_failures_not_retried(self):
        db = make_db()

        def program():
            yield ops.begin(SER)
            yield ops.insert("t", {"k": 1, "v": 9})  # duplicate key
            yield ops.commit()

        sched = Scheduler(db, seed=1)
        sched.add_client(Client(0, db.session(), single_txn_source(program)))
        result = sched.run()
        assert result.commits == 0
        stats = result.client_stats[0]
        assert stats.constraint_failures == 1


class TestScheduler:
    def test_deterministic_given_seed(self):
        def run_once():
            db = make_db()
            sched = Scheduler(db, seed=77)
            for cid in range(3):
                rng = random.Random(cid)

                def mk(rng=rng):
                    key = rng.randrange(8)

                    def program(key=key):
                        yield ops.begin(SER)
                        yield ops.update("t", Eq("k", key),
                                         lambda r: {"v": r["v"] + 1})
                        yield ops.commit()
                    return ("bump", program)

                queue = [mk() for _ in range(5)]

                def source(q=queue):
                    return q.pop() if q else None

                sched.add_client(Client(cid, db.session(), source))
            result = sched.run()
            values = tuple(r["v"] for r in db.session().select("t"))
            return result.commits, result.ticks, values

        assert run_once() == run_once()

    def test_clock_advances_per_work(self):
        db = make_db()

        def program():
            yield ops.begin(SER)
            yield ops.select("t")
            yield ops.commit()

        sched = Scheduler(db, seed=1)
        sched.add_client(Client(0, db.session(), single_txn_source(program)))
        result = sched.run()
        assert result.ticks > 0
        assert result.steps >= 3

    def test_max_ticks_stops_run(self):
        db = make_db()

        def endless():
            def program():
                yield ops.begin(SER)
                yield ops.select("t", Eq("k", 0))
                yield ops.commit()
            return ("loop", program)

        sched = Scheduler(db, seed=1)
        sched.add_client(Client(0, db.session(), lambda: endless()))
        result = sched.run(max_ticks=100.0)
        assert result.ticks >= 100.0
        assert result.commits > 0

    def test_blocking_and_wakeup(self):
        db = make_db()
        order = []

        def writer():
            def program():
                yield ops.begin(SER)
                yield ops.update("t", Eq("k", 0), {"v": 1})
                yield ops.update("t", Eq("k", 1), {"v": 1})
                yield ops.commit()
                order.append("writer")
            return ("writer", program)

        def conflicting():
            def program():
                yield ops.begin(SER)
                yield ops.update("t", Eq("k", 0), {"v": 2})
                yield ops.commit()
                order.append("conflicting")
            return ("conflicting", program)

        sched = Scheduler(db, seed=5)
        sched.add_client(Client(0, db.session(),
                                single_txn_source(None) if False else
                                _once(writer)))
        sched.add_client(Client(1, db.session(), _once(conflicting)))
        result = sched.run()
        assert result.commits == 2
        assert len(order) == 2

    def test_stall_detection(self):
        db = make_db()

        class NeverReady:
            ready = False

            def describe(self):
                return "never"

        def program():
            yield ops.begin(SER)
            yield Op("resume")  # bogus; we'll inject the wait directly

        # Simpler: a client blocked on a condition that never clears.
        client = Client(0, db.session(), single_txn_source(program))
        sched = Scheduler(db, seed=1)
        sched.add_client(client)
        client.wait_condition = NeverReady()
        client._program = iter(())  # pretend mid-transaction
        with pytest.raises(RuntimeError, match="stall"):
            sched.run()


def _once(spec_factory):
    fired = [False]

    def source():
        if fired[0]:
            return None
        fired[0] = True
        return spec_factory()

    return source
