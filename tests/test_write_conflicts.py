"""First-updater-wins write conflicts, tuple-lock waits, deadlock
detection, and SELECT FOR UPDATE (paper sections 2.1, 5.1)."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import DeadlockDetected, SerializationFailure, WouldBlock

RC = IsolationLevel.READ_COMMITTED
RR = IsolationLevel.REPEATABLE_READ
SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t", ["k", "v"], key="k")
    s = database.session()
    for k in range(4):
        s.insert("t", {"k": k, "v": 0})
    return database


class TestFirstUpdaterWins:
    def test_second_updater_blocks_then_fails_under_si(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.update("t", Eq("k", 1), {"v": 1})
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 1), {"v": 2})
        s1.commit()
        with pytest.raises(SerializationFailure) as exc:
            s2.resume()
        assert "concurrent update" in str(exc.value)
        s2.rollback()

    def test_second_updater_proceeds_if_first_aborts(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.update("t", Eq("k", 1), {"v": 1})
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 1), {"v": 2})
        s1.rollback()
        assert s2.resume() == 1
        s2.commit()
        assert db.session().select("t", Eq("k", 1))[0]["v"] == 2

    def test_committed_first_updater_fails_second_immediately(self, db):
        # The first updater already committed before the second tries:
        # no wait, immediate serialization failure under RR.
        s1, s2 = db.session(), db.session()
        s2.begin(RR)
        s2.select("t", Eq("k", 1))  # take snapshot before s1's commit
        s1.update("t", Eq("k", 1), {"v": 1})
        with pytest.raises(SerializationFailure):
            s2.update("t", Eq("k", 1), {"v": 2})
        s2.rollback()

    def test_read_committed_follows_update_chain(self, db):
        # READ COMMITTED re-checks the newest version (EvalPlanQual)
        # instead of failing.
        s1, s2 = db.session(), db.session()
        s1.begin(RC)
        s2.begin(RC)
        s1.update("t", Eq("k", 1), {"v": 10})
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 1), lambda r: {"v": r["v"] + 100})
        s1.commit()
        assert s2.resume() == 1
        s2.commit()
        # 0 -> 10 (s1), then 10 -> 110 (s2): no lost update.
        assert db.session().select("t", Eq("k", 1))[0]["v"] == 110

    def test_read_committed_epq_requeues_predicate(self, db):
        # s1 moves the row out of s2's predicate; s2 must skip it.
        s1, s2 = db.session(), db.session()
        s1.begin(RC)
        s2.begin(RC)
        s1.update("t", Eq("k", 1), {"v": 99})
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("v", 0), lambda r: {"v": r["v"] - 1})
        s1.commit()
        s2.resume()
        s2.commit()
        # Row k=1 ended at 99 (not 98): it no longer matched v=0.
        assert db.session().select("t", Eq("k", 1))[0]["v"] == 99

    def test_delete_vs_update_conflict(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.delete("t", Eq("k", 1))
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 1), {"v": 5})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.resume()
        s2.rollback()

    def test_rc_update_of_deleted_row_skips(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RC)
        s2.begin(RC)
        s1.delete("t", Eq("k", 1))
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 1), {"v": 5})
        s1.commit()
        assert s2.resume() == 0  # row gone, skipped
        s2.commit()


class TestWriteWriteDeadlock:
    def test_deadlock_detected_and_victimized(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.update("t", Eq("k", 1), {"v": 1})
        s2.update("t", Eq("k", 2), {"v": 2})
        with pytest.raises(WouldBlock):
            s1.update("t", Eq("k", 2), {"v": 1})
        with pytest.raises(DeadlockDetected):
            s2.update("t", Eq("k", 1), {"v": 2})
        s2.rollback()
        # s1's wait resolves once the victim rolls back.
        assert s1.resume() == 1
        s1.commit()


class TestSelectForUpdate:
    def test_for_update_blocks_writers(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        rows = s1.select_for_update("t", Eq("k", 1))
        assert rows == [{"k": 1, "v": 0}]
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 1), {"v": 2})
        s1.commit()
        # s1 only locked (did not modify), so s2 may proceed even
        # under snapshot isolation.
        assert s2.resume() == 1
        s2.commit()

    def test_for_update_then_own_update(self, db):
        s = db.session()
        s.begin(RR)
        s.select_for_update("t", Eq("k", 1))
        assert s.update("t", Eq("k", 1), {"v": 7}) == 1
        s.commit()
        assert db.session().select("t", Eq("k", 1))[0]["v"] == 7

    def test_for_update_does_not_delete(self, db):
        s = db.session()
        s.begin(RR)
        s.select_for_update("t", Eq("k", 1))
        s.commit()
        assert len(db.session().select("t", Eq("k", 1))) == 1

    def test_two_for_updates_conflict(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.select_for_update("t", Eq("k", 1))
        with pytest.raises(WouldBlock):
            s2.select_for_update("t", Eq("k", 1))
        s1.commit()
        assert s2.resume() == [{"k": 1, "v": 0}]
        s2.commit()


class TestUniqueInsertRace:
    def test_insert_waits_for_inprogress_duplicate(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.insert("t", {"k": 100, "v": 1})
        with pytest.raises(WouldBlock):
            s2.insert("t", {"k": 100, "v": 2})
        s1.commit()
        from repro.errors import UniqueViolationError
        with pytest.raises(UniqueViolationError):
            s2.resume()
        s2.rollback()

    def test_insert_proceeds_if_duplicate_inserter_aborts(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.insert("t", {"k": 100, "v": 1})
        with pytest.raises(WouldBlock):
            s2.insert("t", {"k": 100, "v": 2})
        s1.rollback()
        s2.resume()
        s2.commit()
        assert db.session().select("t", Eq("k", 100))[0]["v"] == 2
