"""The external two-phase-commit coordinator (section 7.1 footnote)."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.engine.coordinator import Coordinator, Decision
from repro.errors import SerializationFailure

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def banks():
    east, west = Database(EngineConfig()), Database(EngineConfig())
    for db in (east, west):
        db.create_table("accounts", ["id", "balance"], key="id")
        s = db.session()
        s.insert("accounts", {"id": 1, "balance": 100})
    return {"east": east, "west": west}


@pytest.fixture
def coordinator(banks):
    return Coordinator(banks)


class TestAtomicCommit:
    def test_cross_database_transfer(self, coordinator, banks):
        dtx = coordinator.transaction()
        dtx.on("east").update("accounts", Eq("id", 1),
                              lambda r: {"balance": r["balance"] - 30})
        dtx.on("west").update("accounts", Eq("id", 1),
                              lambda r: {"balance": r["balance"] + 30})
        dtx.commit()
        assert banks["east"].session().select(
            "accounts", Eq("id", 1))[0]["balance"] == 70
        assert banks["west"].session().select(
            "accounts", Eq("id", 1))[0]["balance"] == 130
        assert coordinator.decision_for("dtx1") is Decision.COMMITTED

    def test_rollback_affects_all_branches(self, coordinator, banks):
        dtx = coordinator.transaction()
        dtx.on("east").update("accounts", Eq("id", 1), {"balance": 0})
        dtx.on("west").update("accounts", Eq("id", 1), {"balance": 0})
        dtx.rollback()
        for db in banks.values():
            assert db.session().select(
                "accounts", Eq("id", 1))[0]["balance"] == 100

    def test_prepare_failure_aborts_everything(self, coordinator, banks):
        """An SSI pre-commit failure on one branch must abort the whole
        distributed transaction -- including branches already
        prepared."""
        east = banks["east"]
        # Build a dangerous structure on east so its PREPARE fails.
        a, b = east.session(), east.session()
        a.begin(SER)
        b.begin(SER)
        a.select("accounts", Eq("id", 1))

        dtx = coordinator.transaction()
        dtx.on("west").update("accounts", Eq("id", 1), {"balance": 55})
        victim = dtx.on("east")
        victim.select("accounts", Eq("id", 1))
        # Make `victim` the pivot: in-edge from a, out-edge to b's
        # committed update.
        b.update("accounts", Eq("id", 1), {"balance": 99})
        b.commit()
        victim_failed = False
        try:
            victim.update("accounts", Eq("id", 1), {"balance": 77})
            dtx.commit()
        except SerializationFailure:
            victim_failed = True
            if not dtx._finished:
                dtx.rollback()
        a.rollback()
        assert victim_failed
        # West's prepared branch must have been rolled back: balance
        # unchanged and no dangling prepared transaction.
        assert banks["west"].session().select(
            "accounts", Eq("id", 1))[0]["balance"] == 100
        assert banks["west"].prepared_gids() == []
        assert banks["east"].prepared_gids() == []


class TestRecovery:
    def test_recover_commits_logged_decisions(self, coordinator, banks):
        """Coordinator crash between the decision record and phase 2:
        recovery completes the commit on every branch."""
        dtx = coordinator.transaction(gid="g")
        dtx.on("east").update("accounts", Eq("id", 1), {"balance": 1})
        dtx.on("west").update("accounts", Eq("id", 1), {"balance": 2})
        # Manually run phase 1 + decision log, then "crash".
        for name in ("east", "west"):
            dtx.on(name).prepare_transaction(f"g:{name}")
        coordinator.log.append(("g", Decision.COMMITTED))
        actions = coordinator.recover()
        assert actions == {"g:east": "committed", "g:west": "committed"}
        assert banks["east"].session().select(
            "accounts", Eq("id", 1))[0]["balance"] == 1
        assert banks["west"].session().select(
            "accounts", Eq("id", 1))[0]["balance"] == 2

    def test_recover_presumes_abort_without_decision(self, coordinator,
                                                     banks):
        dtx = coordinator.transaction(gid="g")
        dtx.on("east").update("accounts", Eq("id", 1), {"balance": 1})
        dtx.on("east").prepare_transaction("g:east")
        # Crash before west prepared and before any decision logged.
        dtx.on("west").rollback()
        actions = coordinator.recover()
        assert actions == {"g:east": "rolled back"}
        assert banks["east"].session().select(
            "accounts", Eq("id", 1))[0]["balance"] == 100

    def test_recover_ignores_foreign_prepared_transactions(self,
                                                           coordinator,
                                                           banks):
        s = banks["east"].session()
        s.begin(SER)
        s.update("accounts", Eq("id", 1), {"balance": 5})
        s.prepare_transaction("manual-2pc")
        assert coordinator.recover() == {}
        assert banks["east"].prepared_gids() == ["manual-2pc"]
        banks["east"].rollback_prepared("manual-2pc")
