"""Failure-injection / stress tests for the memory-bounding claims of
paper section 6: the system must keep accepting transactions under a
long-running transaction and tiny capacity limits, degrading to higher
false-positive rates, never to errors or unbounded state."""

import random

import pytest

from repro.config import EngineConfig, SSIConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import RetryableError
from repro.sim import Client, Scheduler, ops

SER = IsolationLevel.SERIALIZABLE


def small_db(**ssi_kwargs):
    cfg = EngineConfig(ssi=SSIConfig(**ssi_kwargs))
    db = Database(cfg)
    db.create_table("t", ["k", "v"], key="k")
    s = db.session()
    s.begin()
    for k in range(64):
        s.insert("t", {"k": k, "v": 0})
    s.commit()
    return db


class TestLongRunningTransaction:
    def test_pg_dump_scenario_stays_bounded(self):
        """A long read-only transaction (the pg_dump case, section 4.3)
        runs concurrently with heavy write traffic under a tiny
        committed-transaction budget. The retained state must stay at
        the configured bound and everything must keep committing."""
        db = small_db(max_committed_sxacts=4)
        dump = db.session()
        dump.begin(SER, read_only=True)
        dump.select("t", Eq("k", 0))
        writers = db.session()
        for i in range(60):
            writers.begin(SER)
            writers.update("t", Eq("k", i % 64), lambda r: {"v": r["v"] + 1})
            writers.commit()
            assert len(db.ssi.committed_retained()) <= 4
        # The dump transaction is still healthy and consistent.
        assert dump.select("t", Eq("k", 0))[0]["v"] == 0
        dump.commit()
        assert db.ssi.stats.summarized > 0

    def test_declared_read_only_dump_frees_writer_state(self):
        """Because the long transaction is declared READ ONLY, the
        read-only-active optimization (section 6.1) lets committed
        writers drop their SIREAD locks even while it runs."""
        db = small_db()
        dump = db.session()
        dump.begin(SER, read_only=True)
        dump.select("t", Eq("k", 0))
        w = db.session()
        w.begin(SER)
        w.select("t", Eq("k", 1))
        w.update("t", Eq("k", 2), {"v": 1})
        sx = w.txn.sxact
        w.commit()
        assert sx.locks_released
        dump.commit()

    def test_undeclared_long_reader_retains_writer_state(self):
        db = small_db()
        dump = db.session()
        dump.begin(SER)  # NOT declared read-only
        dump.select("t", Eq("k", 0))
        w = db.session()
        w.begin(SER)
        w.select("t", Eq("k", 1))
        w.update("t", Eq("k", 2), {"v": 1})
        sx = w.txn.sxact
        w.commit()
        assert not sx.locks_released  # must be kept: dump might write
        dump.commit()


class TestGracefulDegradationUnderLoad:
    @pytest.mark.parametrize("cap", [0, 2, 8])
    def test_concurrent_load_with_tiny_summary_budget(self, cap):
        """Concurrent clients under aggressive summarization: no
        crashes, no capacity errors, no stalls -- just (possibly) more
        aborts. And the anomaly guarantee must hold throughout, which
        the property suite checks; here we check liveness + bounds."""
        cfg = EngineConfig(ssi=SSIConfig(max_committed_sxacts=cap,
                                         max_pred_locks_per_page=2,
                                         max_pred_locks_per_relation=4))
        db = Database(cfg)
        db.create_table("t", ["k", "v"], key="k")
        setup = db.session()
        setup.begin()
        for k in range(32):
            setup.insert("t", {"k": k, "v": 0})
        setup.commit()
        scheduler = Scheduler(db, seed=cap)
        for cid in range(5):
            rng = random.Random(cap * 100 + cid)

            def source(rng=rng):
                a, b = rng.randrange(32), rng.randrange(32)

                def program(a=a, b=b):
                    yield ops.begin(SER)
                    yield ops.select("t", Eq("k", a))
                    yield ops.update("t", Eq("k", b),
                                     lambda r: {"v": r["v"] + 1})
                    yield ops.commit()

                return ("rw", program)

            scheduler.add_client(Client(cid, db.session(), source))
        result = scheduler.run(max_ticks=4000)
        assert result.commits > 50
        assert len(db.ssi.committed_retained()) <= max(cap, 0) + 1
        # Bounded lock table at all times.
        assert (db.ssi.lockmgr.peak_lock_count
                <= db.config.ssi.max_predicate_locks)

    def test_tighter_budgets_cannot_reduce_aborts(self):
        """Precision is statistically monotone in the budget:
        summarizing more aggressively may only add false positives.
        (Per-run counts are chaotic -- each abort changes the whole
        interleaving -- so compare aggregates over several seeds with
        a small tolerance.)"""
        totals = {}
        for cap in (0, 64):
            failures = 0
            for seed in (9, 10, 11, 12):
                cfg = EngineConfig(ssi=SSIConfig(max_committed_sxacts=cap))
                db = Database(cfg)
                db.create_table("t", ["k", "v"], key="k")
                setup = db.session()
                setup.begin()
                for k in range(32):
                    setup.insert("t", {"k": k, "v": 0})
                setup.commit()
                scheduler = Scheduler(db, seed=seed)
                for cid in range(5):
                    rng = random.Random(17 + cid)

                    def source(rng=rng):
                        a, b = rng.randrange(32), rng.randrange(32)

                        def program(a=a, b=b):
                            yield ops.begin(SER)
                            yield ops.select("t", Eq("k", a))
                            yield ops.update("t", Eq("k", b),
                                             lambda r: {"v": r["v"] + 1})
                            yield ops.commit()

                        return ("rw", program)

                    scheduler.add_client(Client(cid, db.session(), source))
                result = scheduler.run(max_ticks=4000)
                failures += result.serialization_failures
            totals[cap] = failures
        assert totals[0] >= totals[64] * 0.9


class TestVacuumUnderSSI:
    def test_vacuum_with_active_siread_locks_is_safe(self):
        """VACUUM removing dead tuples whose TIDs carry SIREAD locks
        must not break conflict detection: physical tid targets stay
        valid (possibly aliasing re-used slots -- a false positive,
        never a miss)."""
        db = small_db()
        reader = db.session()
        reader.begin(SER)
        reader.select("t", Eq("k", 0))
        w = db.session()
        for i in range(5):
            w.update("t", Eq("k", 1), {"v": i})
        db.vacuum("t")
        # Reader still detects conflicts on what it actually read.
        w2 = db.session()
        w2.begin(SER)
        w2.update("t", Eq("k", 0), {"v": 99})
        assert reader.txn.sxact in w2.txn.sxact.in_conflicts
        w2.rollback()
        reader.commit()

    def test_vacuum_reclaims_after_long_txn_ends(self):
        db = small_db()
        reader = db.session()
        reader.begin(SER)
        reader.select("t", Eq("k", 0))
        w = db.session()
        for i in range(6):
            w.update("t", Eq("k", 1), {"v": i})
        assert db.vacuum("t") == 0  # reader's snapshot pins versions
        reader.commit()
        assert db.vacuum("t") == 6
