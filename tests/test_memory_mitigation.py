"""Memory-usage mitigation (paper section 6): granularity promotion,
aggressive cleanup, summarization, and graceful degradation."""

import pytest

from repro.config import EngineConfig, SSIConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import CapacityExceededError, SerializationFailure

SER = IsolationLevel.SERIALIZABLE


def make_db(**ssi_kwargs):
    cfg = EngineConfig(ssi=SSIConfig(**ssi_kwargs))
    db = Database(cfg)
    db.create_table("t", ["k", "v"], key="k")
    s = db.session()
    for k in range(64):
        s.insert("t", {"k": k, "v": 0})
    return db


class TestGranularityPromotion:
    def test_tuple_locks_promote_to_page(self):
        db = make_db(max_pred_locks_per_page=4)
        s = db.session()
        s.begin(SER)
        # Read many rows on the same heap page via the index (avoiding
        # a seqscan's relation lock).
        for k in range(8):
            s.select("t", Eq("k", k))
        sx = s.txn.sxact
        targets = db.ssi.lockmgr.targets_held(sx)
        kinds = {t[0] for t in targets}
        assert "p" in kinds, "expected promotion to page granularity"
        assert sum(1 for t in targets if t[0] == "t") <= 4
        s.rollback()

    def test_page_locks_promote_to_relation(self):
        db = make_db(max_pred_locks_per_page=1,
                     max_pred_locks_per_relation=1)
        s = db.session()
        s.begin(SER)
        for k in range(40):
            s.select("t", Eq("k", k))
        targets = db.ssi.lockmgr.targets_held(s.txn.sxact)
        heap_targets = [t for t in targets if t[0] in ("t", "p", "r")]
        assert ("r", db.relation("t").oid) in heap_targets
        assert all(t[0] == "r" for t in heap_targets)
        s.rollback()

    def test_promoted_lock_still_detects_conflicts(self):
        db = make_db(max_pred_locks_per_page=1,
                     max_pred_locks_per_relation=1)
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        for k in range(10):
            s1.select("t", Eq("k", k))  # promoted to relation lock
        s2.select("t", Eq("k", 50))
        s1.update("t", Eq("k", 50), {"v": 1})
        s2.update("t", Eq("k", 1), {"v": 1})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()

    def test_hard_capacity_limit(self):
        db = make_db(max_predicate_locks=3,
                     max_pred_locks_per_page=100,
                     max_pred_locks_per_relation=100)
        s = db.session()
        s.begin(SER)
        with pytest.raises(CapacityExceededError):
            for k in range(30):
                s.select("t", Eq("k", k))
        s.rollback()


class TestAggressiveCleanup:
    def test_committed_locks_released_when_no_concurrent_active(self):
        db = make_db()
        s = db.session()
        s.begin(SER)
        s.select("t", Eq("k", 0))
        s.update("t", Eq("k", 1), {"v": 1})
        sx = s.txn.sxact
        s.commit()
        assert sx.locks_released
        assert db.ssi.lockmgr.targets_held(sx) == set()

    def test_committed_locks_retained_while_concurrent_active(self):
        db = make_db()
        other = db.session()
        other.begin(SER)
        other.select("t", Eq("k", 60))  # concurrent, stays open
        s = db.session()
        s.begin(SER)
        s.select("t", Eq("k", 0))
        s.update("t", Eq("k", 1), {"v": 1})
        sx = s.txn.sxact
        s.commit()
        assert not sx.locks_released
        assert db.ssi.lockmgr.targets_held(sx)
        other.commit()
        # Another transaction event triggers cleanup; simplest: begin
        # and commit an empty one.
        e = db.session()
        e.begin(SER)
        e.commit()
        assert sx.locks_released

    def test_read_only_active_optimization(self):
        """When only read-only transactions remain active, committed
        SIREAD locks can all be dropped (section 6.1)."""
        db = make_db()
        ro = db.session()
        w = db.session()
        w.begin(SER)
        w.select("t", Eq("k", 0))
        w.update("t", Eq("k", 1), {"v": 1})
        ro.begin(SER, read_only=True)  # concurrent with w
        sx = w.txn.sxact
        w.commit()
        # ro is still active and was concurrent with w, but ro is
        # declared read-only, so w's SIREAD locks are unnecessary.
        assert sx.locks_released
        ro.commit()


class TestSummarization:
    def test_committed_list_stays_bounded(self):
        db = make_db(max_committed_sxacts=4)
        pin = db.session()
        pin.begin(SER)
        pin.select("t", Eq("k", 63))  # keeps every later commit "needed"
        for i in range(20):
            s = db.session()
            s.begin(SER)
            s.select("t", Eq("k", i))
            s.update("t", Eq("k", i), {"v": 1})
            s.commit()
        assert len(db.ssi.committed_retained()) <= 4
        assert db.ssi.stats.summarized >= 16
        assert db.ssi.old_serxid_table()
        pin.commit()

    def test_summarized_siread_lock_still_detects_conflict(self):
        """A writer touching data read by a summarized committed
        transaction must still see a conflict (conservatively)."""
        db = make_db(max_committed_sxacts=1)
        pin = db.session()
        pin.begin(SER)
        pin.select("t", Eq("k", 63))
        # reader R reads k=0..3, updates k=40, commits; then gets
        # summarized by the flood of later commits.
        r = db.session()
        r.begin(SER)
        r.select("t", Eq("k", 0))
        r.update("t", Eq("k", 40), {"v": 1})
        r.commit()
        for i in range(10, 16):
            s = db.session()
            s.begin(SER)
            s.update("t", Eq("k", i), {"v": 1})
            s.commit()
        assert db.ssi.stats.summarized >= 1
        summary = db.ssi.lockmgr.summary_targets()
        assert summary, "expected consolidated summary locks"
        pin.commit()

    def test_summarization_preserves_write_skew_detection(self):
        """Dangerous structures must still be caught when one
        participant was summarized: graceful degradation means more
        false positives, never missed anomalies."""
        db = make_db(max_committed_sxacts=0)  # summarize immediately
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        # Classic write skew on k=0 / k=1.
        s1.select("t", Eq("k", 0))
        s2.select("t", Eq("k", 1))
        s1.update("t", Eq("k", 1), {"v": 1})
        s2.update("t", Eq("k", 0), {"v": 1})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()

    def test_reader_conflict_out_to_summarized_pivot(self):
        """Conflict out to a summarized committed writer that itself
        had a conflict out: the old-serxid lookup must still catch the
        dangerous structure (section 6.2's second case)."""
        db = make_db(max_committed_sxacts=0)
        # T2 writes into a table T3 never touches, so the only edges
        # are the intended ones (page-granularity gap locks otherwise
        # add more, correctly but distractingly).
        db.create_table("u", ["k", "v"], key="k")
        db.session().insert("u", {"k": 0, "v": 0})
        t1 = db.session()
        t1.begin(SER)  # snapshot taken before everything below; holds
        #                no locks, so no edges form until its read.
        t2 = db.session()
        t2.begin(SER)
        t2.select("t", Eq("k", 21))      # will be T2's conflict out
        t3 = db.session()
        t3.begin(SER)
        t3.update("t", Eq("k", 21), {"v": 1})
        t3.commit()                       # T2 -rw-> T3 (committed)
        t2_xid = t2.txn.xid
        t2.update("u", Eq("k", 0), {"v": 1})
        t2.commit()                       # T2 commits, gets summarized
        assert db.ssi.sxact_for_xid(t2_xid) is None  # summarized
        assert t2_xid in db.ssi.old_serxid_table()
        # T1 now reads the old version of u's row (T2's write is
        # invisible to its snapshot): conflict out to summarized T2,
        # whose recorded earliest-out (T3, committed first) completes
        # the dangerous structure T1 -> T2 -> T3. T1 is read/write, so
        # the read-only rule cannot spare it: it must abort.
        with pytest.raises(SerializationFailure):
            t1.select("u", Eq("k", 0))
            t1.update("t", Eq("k", 23), {"v": 5})
            t1.commit()
        if t1.txn is not None:
            t1.rollback()
