"""Property tests for the next-key gap information the B+-tree reports
(the soundness foundation of next-key locking): for every random tree,
scan range, and hypothetical insert, the key set a reader locks must
intersect the target set an insert checks whenever the insert would
change the reader's result."""

from hypothesis import given, settings, strategies as st

from repro.index import BTreeIndex
from repro.storage.tuple import TID


def build(keys):
    idx = BTreeIndex(1, "i", "k", page_size=5)
    for i, k in enumerate(keys):
        idx.insert_entry(k, TID(i, 0))
    return idx


@settings(max_examples=120, deadline=None)
@given(st.lists(st.integers(0, 60), unique=True, max_size=40),
       st.integers(0, 60), st.integers(0, 60), st.integers(0, 60))
def test_insert_into_scanned_range_always_guarded(keys, a, b, new_key):
    """If inserting ``new_key`` would add a row to the range [lo, hi],
    the reader's lock set (matched keys + guard) must contain either
    the key itself or the insert's successor target."""
    lo, hi = min(a, b), max(a, b)
    idx = build(keys)
    scan = idx.range_search(lo, hi)
    reader_locks = set(scan.matched_keys)
    if scan.guard_needed:
        reader_locks.add(scan.next_key if scan.has_next else "+inf")

    result = idx.insert_entry(new_key, TID(999, 0))
    writer_targets = {new_key}
    writer_targets.add(result.successor_key if result.has_successor
                       else "+inf")

    if lo <= new_key <= hi:
        assert reader_locks & writer_targets, (
            f"phantom: insert {new_key} into [{lo},{hi}] undetected; "
            f"reader={reader_locks} writer={writer_targets}")


@settings(max_examples=120, deadline=None)
@given(st.lists(st.integers(0, 60), unique=True, max_size=40),
       st.integers(0, 60))
def test_gap_info_successor_is_correct(keys, new_key):
    idx = build(keys)
    result = idx.insert_entry(new_key, TID(999, 0))
    existing = sorted(keys)
    above = [k for k in existing if k > new_key]
    if above:
        assert result.has_successor
        assert result.successor_key == above[0]
    else:
        assert not result.has_successor
    assert result.key_existed == (new_key in keys)


@settings(max_examples=120, deadline=None)
@given(st.lists(st.integers(0, 60), unique=True, max_size=40),
       st.integers(0, 60), st.integers(0, 60))
def test_scan_next_key_is_first_beyond_range(keys, a, b):
    lo, hi = min(a, b), max(a, b)
    idx = build(keys)
    scan = idx.range_search(lo, hi)
    assert scan.matched_keys == sorted(k for k in keys if lo <= k <= hi)
    beyond = sorted(k for k in keys if k > hi)
    if scan.has_next:
        assert scan.next_key == beyond[0]
    else:
        assert not beyond or not scan.guard_needed
    # guard_needed is False only in the safe case: the inclusive upper
    # bound itself was matched.
    if not scan.guard_needed:
        assert scan.matched_keys and scan.matched_keys[-1] == hi
