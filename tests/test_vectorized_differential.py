"""Differential vectorized-executor suite: the toggle changes cost,
never answers.

Three layers, mirroring tests/test_planner_differential.py:

* every corpus replay re-runs with ``vectorized_executor`` off and on --
  identical committed rows, identical committed-transaction sets,
  identical serializability verdicts, and (because the batch path pins
  the per-tuple path's yield cadence) identical replay step structure;
* whole workloads (YCSB, the reporting join mix, SIBENCH) run under
  both settings with the same seed -- the simulation must take exactly
  the same schedule: same commit/abort/serialization-failure counts,
  same per-type mix, same final table contents;
* a SQL battery (joins, GROUP BY/HAVING, aggregates including the
  pushdown shapes, NULL keys, string extrema, float sums) where the
  on/off answers must be repr-identical -- same rows, same order, same
  Python types.
"""

from pathlib import Path

import pytest

from repro.config import EngineConfig, PerfConfig
from repro.engine import Database
from repro.engine.isolation import IsolationLevel
from repro.explore import load_replay, run_replay
from repro.sql.executor import SQLSession
from repro.workloads import ReportingWorkload, SIBench, YCSB, run_workload

CORPUS_DIR = Path(__file__).resolve().parent / "explore_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))

VEC_OFF = PerfConfig(vectorized_executor=False)
VEC_ON = PerfConfig(vectorized_executor=True)

SER = IsolationLevel.SERIALIZABLE
RR = IsolationLevel.REPEATABLE_READ


def run_pair(replay, isolation=None):
    off = run_replay(replay, isolation, perf=VEC_OFF)
    on = run_replay(replay, isolation, perf=VEC_ON)
    return off, on


# ---------------------------------------------------------------------------
# corpus replays
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_identical_outcome_under_snapshot_isolation(path):
    replay = load_replay(str(path))
    off, on = run_pair(replay)
    assert off.record.complete and on.record.complete
    assert not off.diverged and not on.diverged, \
        "the batch executor changed the replayable step structure"
    assert off.record.state == on.record.state
    assert off.record.committed_txns == on.record.committed_txns
    assert off.record.check.serializable == on.record.check.serializable
    assert not on.record.check.serializable, \
        f"{path.stem}: pinned anomaly disappeared with batching on"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_identical_ssi_verdict_under_serializable(path):
    replay = load_replay(str(path))
    off, on = run_pair(replay, SER)
    assert off.record.complete and on.record.complete
    assert off.record.state == on.record.state
    assert off.record.check.serializable and on.record.check.serializable
    assert (off.record.serialization_failures
            == on.record.serialization_failures)


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------
def _run_workload_pair(make_workload, tables, *, isolation, n_clients,
                       max_ticks, seed):
    outcomes = []
    for perf in (VEC_OFF, VEC_ON):
        db = Database(EngineConfig(perf=perf))
        result = run_workload(make_workload(), isolation=isolation,
                              n_clients=n_clients, max_ticks=max_ticks,
                              seed=seed, db=db)
        session = db.session()
        state = {t: sorted(tuple(sorted(r.items()))
                           for r in session.select(t)) for t in tables}
        outcomes.append((result, state))
    return outcomes


WORKLOADS = [
    ("ycsb", lambda: YCSB(table_size=60), ["usertable"]),
    ("reporting", lambda: ReportingWorkload(n_customers=12),
     ["customers", "orders"]),
    ("sibench", lambda: SIBench(table_size=25), ["sibench"]),
]


@pytest.mark.parametrize("isolation", [RR, SER], ids=["si", "ssi"])
@pytest.mark.parametrize("name,factory,tables", WORKLOADS,
                         ids=[w[0] for w in WORKLOADS])
def test_workload_schedule_is_identical(name, factory, tables, isolation):
    off, on = _run_workload_pair(factory, tables, isolation=isolation,
                                 n_clients=4, max_ticks=2500, seed=7)
    r_off, s_off = off
    r_on, s_on = on
    assert r_off.commits == r_on.commits
    assert r_off.aborts == r_on.aborts
    assert r_off.serialization_failures == r_on.serialization_failures
    assert r_off.by_type == r_on.by_type
    assert r_off.steps == r_on.steps, \
        "batching changed the yield cadence -- schedules diverged"
    assert s_off == s_on
    assert r_on.commits > 0, "vacuous run: nothing committed"


# ---------------------------------------------------------------------------
# SQL battery
# ---------------------------------------------------------------------------
def _loaded_sql(perf) -> SQLSession:
    db = Database(EngineConfig(perf=perf))
    db.create_table("customers", ["cid", "region", "balance"], key="cid")
    db.create_table("orders", ["oid", "cid", "amount", "note"], key="oid")
    # (no secondary index on cid: some cids are NULL below, and the
    # btree does not index NULL keys; the pk index on oid still
    # exercises the batch index-scan path via the BETWEEN query.)
    session = db.session()
    session.begin()
    regions = ["north", "south", None, "east"]
    for cid in range(8):
        session.insert("customers", {"cid": cid,
                                     "region": regions[cid % 4],
                                     "balance": cid * 2.5})
    for oid in range(30):
        session.insert("orders", {
            # cid 7 never ordered; some orders have a NULL cid (SQL
            # semantics: a NULL key joins nothing).
            "oid": oid,
            "cid": None if oid % 9 == 5 else oid % 7,
            "amount": (oid * 3) % 11 + 0.25,
            "note": None if oid % 4 == 2 else f"n{oid % 3}"})
    session.commit()
    db.vacuum()
    sql = SQLSession(db.session())
    sql.execute("ANALYZE")
    return sql


QUERIES = [
    # joins: hash/merge/nestloop chosen by the planner on the on side,
    # always nested-loop on the off side -- answers must not move.
    "SELECT * FROM orders JOIN customers ON orders.cid = customers.cid",
    "SELECT customers.cid, amount FROM customers "
    "JOIN orders ON customers.cid = orders.cid WHERE balance > 5",
    "SELECT region, SUM(amount) AS total FROM orders "
    "JOIN customers ON orders.cid = customers.cid "
    "GROUP BY region HAVING SUM(amount) > 1 ORDER BY region",
    "SELECT oid FROM orders JOIN customers ON orders.cid = customers.cid "
    "WHERE region = 'north' ORDER BY oid LIMIT 5",
    # grouping without a join
    "SELECT cid, COUNT(*) AS n, AVG(amount) AS avg_amount FROM orders "
    "GROUP BY cid ORDER BY cid",
    "SELECT note, COUNT(note) FROM orders GROUP BY note",
    # aggregates -- the pushdown shapes, plus the ones pushdown must
    # decline (ORDER BY present) and NULL/empty/string edge cases
    "SELECT COUNT(*) FROM orders",
    "SELECT COUNT(cid) FROM orders",
    "SELECT SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM orders",
    "SELECT SUM(amount) FROM orders WHERE cid = 3",
    "SELECT COUNT(*) FROM orders WHERE amount < 0",
    "SELECT MIN(note), MAX(note) FROM orders",
    "SELECT MIN(region) FROM customers WHERE balance > 100",
    "SELECT COUNT(*) AS n FROM orders WHERE oid BETWEEN 5 AND 25",
    # plain scans / projections
    "SELECT * FROM customers ORDER BY cid",
    "SELECT region FROM customers WHERE balance >= 10",
]


def test_sql_battery_byte_identical():
    off, on = _loaded_sql(VEC_OFF), _loaded_sql(VEC_ON)
    for query in QUERIES:
        r_off = off.execute(query)
        r_on = on.execute(query)
        assert repr(r_off) == repr(r_on), \
            f"on/off answers diverged for {query!r}"


def test_sql_battery_empty_table():
    for query in ["SELECT COUNT(*), SUM(balance) FROM customers",
                  "SELECT * FROM customers JOIN orders "
                  "ON customers.cid = orders.cid"]:
        results = []
        for perf in (VEC_OFF, VEC_ON):
            db = Database(EngineConfig(perf=perf))
            db.create_table("customers", ["cid", "balance"], key="cid")
            db.create_table("orders", ["oid", "cid"], key="oid")
            results.append(SQLSession(db.session()).execute(query))
        assert repr(results[0]) == repr(results[1])


def test_float_sum_is_bit_identical():
    """Partial per-page sums must chain exactly like one flat sum()
    (BatchAggregator uses sum(values, acc) for this); floats expose
    any regrouping immediately."""
    answers = []
    for perf in (VEC_OFF, VEC_ON):
        db = Database(EngineConfig(perf=perf))
        db.create_table("t", ["k", "x"], key="k")
        s = db.session()
        s.begin()
        for k in range(500):
            s.insert("t", {"k": k, "x": 0.1 * ((k * 7919) % 97)})
        s.commit()
        db.vacuum()
        sql = SQLSession(db.session())
        answers.append(sql.execute(
            "SELECT SUM(x), AVG(x) FROM t WHERE k > 3"))
    assert repr(answers[0]) == repr(answers[1])


def test_scan_aggregate_matches_select_fold():
    """Engine-level: session.scan_aggregate equals aggregating the
    select() output by hand, for every supported func."""
    db = Database(EngineConfig(perf=VEC_ON))
    db.create_table("t", ["k", "v"], key="k")
    s = db.session()
    s.begin()
    for k in range(40):
        s.insert("t", {"k": k, "v": None if k % 5 == 0 else k * 1.5})
    s.commit()
    db.vacuum()
    s = db.session()
    specs = [("COUNT", None), ("COUNT", "v"), ("SUM", "v"),
             ("MIN", "v"), ("MAX", "v"), ("AVG", "v")]
    got = s.scan_aggregate("t", specs)
    rows = s.select("t")
    values = [r["v"] for r in rows if r["v"] is not None]
    expect = [len(rows), len(values), sum(values), min(values),
              max(values), sum(values) / len(values)]
    assert got == expect
