"""pg_dump-style consistent dumps on deferrable safe snapshots."""

import random

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel, Overlaps
from repro.engine.dump import dump_sql, restore_sql
from repro.errors import WouldBlock
from repro.sim import Client, Op, Scheduler, ops

SER = IsolationLevel.SERIALIZABLE


def populated_db():
    db = Database(EngineConfig())
    db.create_table("accounts", ["id", "owner", "balance"], key="id")
    db.create_index("accounts", "owner", using="hash")
    db.create_table("bookings", ["bid", "span"], key="bid")
    db.create_index("bookings", "span", using="gist")
    s = db.session()
    for i in range(5):
        s.insert("accounts", {"id": i, "owner": f"u{i}", "balance": i * 10})
    s.insert("bookings", {"bid": 1, "span": (9, 17)})
    s.insert("accounts", {"id": 99, "owner": "o'hara", "balance": None})
    return db


class TestDumpRestore:
    def test_round_trip(self):
        src = populated_db()
        script = dump_sql(src)
        dst = Database(EngineConfig())
        restore_sql(dst, script)
        s_src, s_dst = src.session(), dst.session()
        assert s_dst.select("accounts") == s_src.select("accounts")
        assert s_dst.select("bookings") == s_src.select("bookings")
        # Index kinds preserved (the hash index and GiST still work).
        assert s_dst.select("accounts", Eq("owner", "u2"))[0]["id"] == 2
        assert s_dst.select("bookings", Overlaps("span", 10, 11))

    def test_string_escaping(self):
        src = populated_db()
        script = dump_sql(src)
        assert any("o''hara" in stmt for stmt in script)
        dst = Database(EngineConfig())
        restore_sql(dst, script)
        rows = dst.session().select("accounts", Eq("id", 99))
        assert rows[0]["owner"] == "o'hara"
        assert rows[0]["balance"] is None

    def test_unique_constraint_survives_restore(self):
        src = populated_db()
        dst = Database(EngineConfig())
        restore_sql(dst, dump_sql(src))
        from repro.errors import UniqueViolationError
        with pytest.raises(UniqueViolationError):
            dst.session().insert("accounts",
                                 {"id": 0, "owner": "x", "balance": 0})

    def test_dump_blocks_until_safe_snapshot(self):
        db = populated_db()
        writer = db.session()
        writer.begin(SER)
        writer.update("accounts", Eq("id", 0), {"balance": 1})
        dumper = db.session()
        with pytest.raises(WouldBlock):
            dump_sql(db, session=dumper)
        writer.commit()
        # Direct mode: resume the suspended BEGIN, then re-dump on the
        # now-open session path by finishing manually.
        dumper.resume()
        assert dumper.txn.sxact.ro_safe
        dumper.rollback()

    def test_dump_consistent_under_concurrent_load(self):
        """Transfers move money between accounts while a dump runs; the
        dump must capture a state where the total is invariant."""
        db = Database(EngineConfig())
        db.create_table("accounts", ["id", "balance"], key="id")
        setup = db.session()
        setup.begin()
        for i in range(8):
            setup.insert("accounts", {"id": i, "balance": 100})
        setup.commit()
        scheduler = Scheduler(db, seed=5)
        for cid in range(3):
            rng = random.Random(cid)

            def source(rng=rng):
                a, b = rng.sample(range(8), 2)

                def program(a=a, b=b):
                    yield ops.begin(SER)
                    yield ops.update("accounts", Eq("id", a),
                                     lambda r: {"balance": r["balance"] - 7})
                    yield ops.update("accounts", Eq("id", b),
                                     lambda r: {"balance": r["balance"] + 7})
                    yield ops.commit()

                return ("transfer", program)

            scheduler.add_client(Client(cid, db.session(), source))

        dumps = []

        def dump_source():
            if dumps:
                return None

            def program():
                yield ops.begin(SER, read_only=True, deferrable=True)
                rows = yield ops.select("accounts")
                yield ops.commit()
                dumps.append(rows)

            return ("dump", program)

        scheduler.add_client(Client(99, db.session(), dump_source))
        scheduler.run(max_ticks=4000)
        assert dumps, "dump never obtained a safe snapshot"
        total = sum(r["balance"] for r in dumps[0])
        assert total == 800  # the invariant, despite concurrent churn
