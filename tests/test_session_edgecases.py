"""Session API edge cases: statement lifecycle, resume misuse,
autocommit interactions, run_transaction retries, mixed isolation."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import (InvalidTransactionStateError,
                          SerializationFailure, WouldBlock)

RC = IsolationLevel.READ_COMMITTED
RR = IsolationLevel.REPEATABLE_READ
SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t", ["k", "v"], key="k")
    s = database.session()
    for k in range(4):
        s.insert("t", {"k": k, "v": 0})
    return database


class TestStatementLifecycle:
    def test_resume_without_pending_rejected(self, db):
        s = db.session()
        with pytest.raises(InvalidTransactionStateError):
            s.resume()

    def test_new_statement_while_suspended_rejected(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.update("t", Eq("k", 0), {"v": 1})
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 0), {"v": 2})
        with pytest.raises(InvalidTransactionStateError):
            s2.select("t")
        s1.rollback()
        s2.resume()
        s2.rollback()

    def test_rollback_while_suspended_cancels_wait(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.update("t", Eq("k", 0), {"v": 1})
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 0), {"v": 2})
        s2.rollback()  # cancels the queued lock request
        assert not db.lockmgr.waiters()
        s1.commit()

    def test_blocked_flag(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s2.begin(RR)
        s1.update("t", Eq("k", 0), {"v": 1})
        assert not s2.blocked
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 0), {"v": 2})
        assert s2.blocked
        s1.rollback()
        s2.resume()
        assert not s2.blocked
        s2.commit()

    def test_autocommit_statement_with_block(self, db):
        """An implicit (autocommit) statement that must wait commits
        transparently on resume."""
        s1, s2 = db.session(), db.session()
        s1.begin(RR)
        s1.update("t", Eq("k", 0), {"v": 1})
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 0), {"v": 2})  # autocommit, RC default
        s1.commit()
        assert s2.resume() == 1
        assert not s2.in_transaction()  # committed automatically
        assert db.session().select("t", Eq("k", 0))[0]["v"] == 2


class TestRunTransaction:
    def test_retries_until_success(self, db):
        looser = db.session()
        attempts = []

        def body(s):
            attempts.append(1)
            rows = s.select("t", Eq("k", 1))
            if len(attempts) == 1:
                # Sabotage the first attempt: another session updates
                # k=1 and commits, dooming us via write skew.
                other = db.session()
                other.begin(SER)
                other.select("t", Eq("k", 2))
                other.update("t", Eq("k", 1), {"v": 9})
                s.update("t", Eq("k", 2), {"v": 9})
                other.commit()
            else:
                s.update("t", Eq("k", 2), {"v": 5})
            return rows[0]["v"]

        result = looser.run_transaction(body, SER)
        assert len(attempts) >= 2
        assert result == 9  # second attempt saw the committed update

    def test_gives_up_after_max_retries(self, db):
        s = db.session()

        def always_fails(session):
            raise SerializationFailure("synthetic")

        with pytest.raises(SerializationFailure):
            s.run_transaction(always_fails, SER, max_retries=3)
        assert not s.in_transaction()


class TestMixedIsolation:
    def test_rc_and_serializable_coexist(self, db):
        """Weaker-isolation writers do not corrupt SSI state; the
        serializable guarantee covers serializable transactions."""
        rc = db.session()
        ser = db.session()
        ser.begin(SER)
        ser.select("t", Eq("k", 0))
        rc.begin(RC)
        rc.update("t", Eq("k", 0), {"v": 42})  # non-serializable writer
        rc.commit()
        # The serializable reader keeps its snapshot and commits fine.
        assert ser.select("t", Eq("k", 0))[0]["v"] == 0
        ser.commit()
        assert db.session().select("t", Eq("k", 0))[0]["v"] == 42

    def test_rc_sees_per_statement_snapshots(self, db):
        rc = db.session()
        other = db.session()
        rc.begin(RC)
        assert rc.select("t", Eq("k", 0))[0]["v"] == 0
        other.update("t", Eq("k", 0), {"v": 7})
        assert rc.select("t", Eq("k", 0))[0]["v"] == 7
        rc.commit()


class TestSnapshotEdgeCases:
    def test_serializable_snapshot_fixed_at_begin(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.update("t", Eq("k", 0), {"v": 5})  # commits after s1's BEGIN
        assert s1.select("t", Eq("k", 0))[0]["v"] == 0
        s1.commit()

    def test_delete_then_select_in_same_txn(self, db):
        s = db.session()
        s.begin(SER)
        s.delete("t", Eq("k", 0))
        assert s.select("t", Eq("k", 0)) == []
        s.rollback()
        assert len(db.session().select("t", Eq("k", 0))) == 1

    def test_update_visible_to_later_command_not_same(self, db):
        s = db.session()
        s.begin(SER)
        # One statement: the update's own writes are invisible to its
        # scan (Halloween protection) -> applied exactly once.
        n = s.update("t", None, lambda r: {"v": r["v"] + 1})
        assert n == 4
        assert all(r["v"] == 1 for r in s.select("t"))
        s.commit()

    def test_insert_then_update_same_txn(self, db):
        s = db.session()
        s.begin(SER)
        s.insert("t", {"k": 100, "v": 0})
        assert s.update("t", Eq("k", 100), {"v": 9}) == 1
        s.commit()
        assert db.session().select("t", Eq("k", 100))[0]["v"] == 9

    def test_double_update_same_row_same_txn(self, db):
        s = db.session()
        s.begin(SER)
        s.update("t", Eq("k", 0), {"v": 1})
        s.update("t", Eq("k", 0), {"v": 2})
        s.commit()
        assert db.session().select("t", Eq("k", 0))[0]["v"] == 2
