"""The offline serializability checker (repro.verify) against known
histories, including the paper's Figure 3 serialization graphs."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import SerializationFailure
from repro.verify import build_graph, check_serializable

RC = IsolationLevel.READ_COMMITTED
RR = IsolationLevel.REPEATABLE_READ
SER = IsolationLevel.SERIALIZABLE


def recording_db():
    db = Database(EngineConfig(record_history=True))
    db.create_table("doctors", ["name", "oncall"], key="name")
    s = db.session()
    s.insert("doctors", {"name": "alice", "oncall": True})
    s.insert("doctors", {"name": "bob", "oncall": True})
    return db


def run_write_skew(db, isolation):
    s1, s2 = db.session(), db.session()
    s1.begin(isolation)
    s2.begin(isolation)
    xids = (s1.txn.xid, s2.txn.xid)
    for s, name in ((s1, "alice"), (s2, "bob")):
        rows = s.select("doctors", Eq("oncall", True))
        if len(rows) >= 2:
            s.update("doctors", Eq("name", name), {"oncall": False})
    outcomes = []
    for s in (s1, s2):
        try:
            s.commit()
            outcomes.append("committed")
        except SerializationFailure:
            outcomes.append("aborted")
    return xids, outcomes


class TestWriteSkewGraphs:
    def test_si_write_skew_history_has_cycle(self):
        db = recording_db()
        (x1, x2), outcomes = run_write_skew(db, RR)
        assert outcomes == ["committed", "committed"]
        result = check_serializable(db.recorder)
        assert not result.serializable
        assert set(result.cycle) >= {x1, x2}
        # Figure 3a: the cycle is two rw-antidependencies.
        graph = result.graph
        assert "rw" in graph.edge_kinds(x1, x2)
        assert "rw" in graph.edge_kinds(x2, x1)

    def test_ssi_write_skew_history_is_serializable(self):
        db = recording_db()
        _, outcomes = run_write_skew(db, SER)
        assert outcomes == ["committed", "aborted"]
        result = check_serializable(db.recorder)
        assert result.serializable
        assert result.serial_order is not None

    def test_serial_execution_is_serializable(self):
        db = recording_db()
        s = db.session()
        for name in ("alice", "bob"):
            s.begin(RR)
            rows = s.select("doctors", Eq("oncall", True))
            if len(rows) >= 2:
                s.update("doctors", Eq("name", name), {"oncall": False})
            s.commit()
        assert check_serializable(db.recorder).serializable


class TestBatchProcessingGraph:
    def test_figure2_graph_shape(self):
        """The SI run of the Figure 2 interleaving must produce the
        Figure 3b graph: T1 -rw-> T2 -rw-> T3 -wr-> T1."""
        db = Database(EngineConfig(record_history=True))
        db.create_table("control", ["id", "batch"], key="id")
        db.create_table("receipts", ["rid", "batch", "amount"], key="rid")
        s = db.session()
        s.insert("control", {"id": 0, "batch": 1})
        t1, t2, t3 = db.session(), db.session(), db.session()
        t2.begin(RR)
        xid2 = t2.txn.xid
        x2 = t2.select("control", Eq("id", 0))[0]["batch"]
        t3.begin(RR)
        xid3 = t3.txn.xid
        t3.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
        t3.commit()
        t1.begin(RR)
        xid1 = t1.txn.xid
        x1 = t1.select("control", Eq("id", 0))[0]["batch"]
        t1.select("receipts", Eq("batch", x1 - 1))
        t1.commit()
        t2.insert("receipts", {"rid": 1, "batch": x2, "amount": 10})
        t2.commit()
        result = check_serializable(db.recorder)
        assert not result.serializable
        graph = result.graph
        assert "rw" in graph.edge_kinds(xid1, xid2)  # report missed receipt
        assert "rw" in graph.edge_kinds(xid2, xid3)  # read old batch number
        assert "wr" in graph.edge_kinds(xid3, xid1)  # report saw increment

    def test_figure2_under_ssi_stays_acyclic(self):
        db = Database(EngineConfig(record_history=True))
        db.create_table("control", ["id", "batch"], key="id")
        db.create_table("receipts", ["rid", "batch", "amount"], key="rid")
        s = db.session()
        s.insert("control", {"id": 0, "batch": 1})
        t1, t2, t3 = db.session(), db.session(), db.session()
        t2.begin(SER)
        x2 = t2.select("control", Eq("id", 0))[0]["batch"]
        t3.begin(SER)
        t3.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
        t3.commit()
        t1.begin(SER)
        x1 = t1.select("control", Eq("id", 0))[0]["batch"]
        t1.select("receipts", Eq("batch", x1 - 1))
        t1.commit()
        with pytest.raises(SerializationFailure):
            t2.insert("receipts", {"rid": 1, "batch": x2, "amount": 10})
            t2.commit()
        if t2.txn is not None:
            t2.rollback()
        assert check_serializable(db.recorder).serializable


class TestGraphEdges:
    def test_wr_and_ww_edges(self):
        db = Database(EngineConfig(record_history=True))
        db.create_table("t", ["k", "v"], key="k")
        a, b, c = db.session(), db.session(), db.session()
        a.begin(RR)
        xa = a.txn.xid
        a.insert("t", {"k": 1, "v": 0})
        a.commit()
        b.begin(RR)
        xb = b.txn.xid
        b.update("t", Eq("k", 1), {"v": 1})  # ww after a
        b.commit()
        c.begin(RR)
        xc = c.txn.xid
        assert c.select("t", Eq("k", 1))[0]["v"] == 1  # wr from b
        c.commit()
        graph = build_graph(db.recorder)
        assert "ww" in graph.edge_kinds(xa, xb)
        assert "wr" in graph.edge_kinds(xb, xc)
        order = graph.serial_order()
        assert order.index(xa) < order.index(xb) < order.index(xc)

    def test_aborted_transactions_excluded(self):
        db = Database(EngineConfig(record_history=True))
        db.create_table("t", ["k", "v"], key="k")
        s = db.session()
        s.insert("t", {"k": 1, "v": 0})
        bad = db.session()
        bad.begin(RR)
        bad_xid = bad.txn.xid
        bad.update("t", Eq("k", 1), {"v": 99})
        bad.rollback()
        graph = build_graph(db.recorder)
        assert bad_xid not in graph.graph.nodes


class TestEdgeBreakdown:
    """Per-edge-type counts on CheckResult (the rw count is the
    antidependency load SSI had to police)."""

    def test_counts_cover_every_kind(self):
        db = recording_db()
        run_write_skew(db, RR)
        result = check_serializable(db.recorder)
        assert set(result.edge_counts) == {"ww", "wr", "rw"}
        assert result.edge_counts["rw"] >= 2  # Figure 3a: both rw edges
        assert result.rw_edge_count == result.edge_counts["rw"]

    def test_cycle_edges_name_the_offending_kinds(self):
        db = recording_db()
        (x1, x2), outcomes = run_write_skew(db, RR)
        assert outcomes == ["committed", "committed"]
        result = check_serializable(db.recorder)
        assert not result.serializable
        assert len(result.cycle_edges) == len(result.cycle)
        pairs = {(src, dst): kinds for src, dst, kinds in result.cycle_edges}
        assert {x1, x2} <= {x for pair in pairs for x in pair}
        assert all("rw" in kinds for (src, dst), kinds in pairs.items()
                   if {src, dst} == {x1, x2})

    def test_serializable_history_has_no_cycle_edges(self):
        db = recording_db()
        run_write_skew(db, SER)
        result = check_serializable(db.recorder)
        assert result.serializable
        assert result.cycle_edges == []
        # The aborted pivot's reads are excluded from the committed
        # history, so no antidependency survives.
        assert result.rw_edge_count == 0
