"""Unit and integration tests for the schedule-exploration harness."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine.isolation import IsolationLevel
from repro.explore import (FixedSchedulePolicy, Program, Replay, Stmt,
                           StepMeta, TableSpec, Txn, add, batch_processing,
                           builtin, execute_schedule, explore_exhaustive,
                           explore_predicate, explore_random, independent,
                           load_replay, ref, run_replay, save_replay,
                           shrink_program, shrink_to_replay, write_skew)
from repro.sim import Client, Scheduler, ops

SI = IsolationLevel.REPEATABLE_READ
SER = IsolationLevel.SERIALIZABLE
S2PL = IsolationLevel.S2PL

REPO = Path(__file__).resolve().parent.parent


# ---------------------------------------------------------------------------
# program model
# ---------------------------------------------------------------------------
class TestProgramModel:
    def test_round_trips_through_json(self):
        for name in ("write_skew", "batch_processing", "receipt_report",
                     "read_only_anomaly"):
            program = builtin(name)
            blob = json.dumps(program.to_dict(), sort_keys=True)
            again = Program.from_dict(json.loads(blob))
            assert again.to_dict() == program.to_dict()
            assert json.dumps(again.to_dict(), sort_keys=True) == blob

    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError, match="unknown statement op"):
            Stmt.from_dict({"op": "truncate", "table": "t"})

    def test_guard_blocks_statement(self):
        stmt = Stmt("update", "t", guard={"stmt": 0, "min_rows": 2})
        assert stmt.guard_passes([[{"k": 1}, {"k": 2}]])
        assert not stmt.guard_passes([[{"k": 1}]])
        assert not stmt.guard_passes([None])  # guarded on a skipped stmt

    def test_ref_and_add_resolve_during_execution(self):
        program = batch_processing()
        db = program.build_db()
        session = db.session()
        # NEW-RECEIPT then CLOSE-BATCH serially: receipt lands in batch 1.
        program.run_txn_directly(session, program.clients[0][0], SI)
        program.run_txn_directly(session, program.clients[1][0], SI)
        rows = {r["rid"]: r for r in session.select("receipts")}
        assert rows[1]["batch"] == 1
        control = session.select("control")[0]
        assert control["batch"] == 2

    def test_builtin_unknown_name(self):
        with pytest.raises(ValueError, match="unknown builtin"):
            builtin("nope")


# ---------------------------------------------------------------------------
# scheduler policy plug (the satellite refactor)
# ---------------------------------------------------------------------------
class TestSchedulerPolicy:
    def _db_and_clients(self, scheduler_policy=None, seed=0):
        program = write_skew()
        db = program.build_db()
        scheduler = Scheduler(db, seed=seed, policy=scheduler_policy)
        from repro.explore.explorer import attach_clients
        attach_clients(program, db, scheduler, SI)
        return db, scheduler

    def test_default_policy_is_seed_deterministic(self):
        def trace(seed):
            choices = []
            def spy(runnable, choices=choices):
                # Delegate to the scheduler's own default policy.
                client = scheduler.rng.choice(runnable)
                choices.append(client.client_id)
                return client
            db, scheduler = self._db_and_clients(spy, seed=seed)
            scheduler.run(max_steps=500)
            return choices
        assert trace(42) == trace(42)
        assert trace(42) != trace(43)  # different seed, different trace

    def test_round_robin_policy_is_honoured(self):
        state = {"i": 0}
        def round_robin(runnable):
            state["i"] += 1
            return runnable[state["i"] % len(runnable)]
        db, scheduler = self._db_and_clients(round_robin)
        result = scheduler.run(max_steps=500)
        assert result.commits == 2

    def test_policy_none_stops_the_run(self):
        calls = {"n": 0}
        def stop_after_three(runnable):
            calls["n"] += 1
            return runnable[0] if calls["n"] <= 3 else None
        db, scheduler = self._db_and_clients(stop_after_three)
        scheduler.run(max_steps=500)
        assert scheduler.steps == 3


# ---------------------------------------------------------------------------
# independence relation
# ---------------------------------------------------------------------------
class TestIndependence:
    def test_boundary_commutes_with_everything(self):
        assert independent(StepMeta("boundary"), StepMeta("commit"))
        assert independent(StepMeta("update", "t"), StepMeta("boundary"))

    def test_control_steps_are_dependent(self):
        assert not independent(StepMeta("commit"), StepMeta("select", "t"))
        assert not independent(StepMeta("begin"), StepMeta("begin"))

    def test_reads_commute_writes_conflict(self):
        r1, r2 = StepMeta("select", "t"), StepMeta("select", "t")
        w = StepMeta("update", "t")
        assert independent(r1, r2)
        assert not independent(r1, w)
        assert not independent(w, w)

    def test_disjoint_tables_commute(self):
        assert independent(StepMeta("update", "a"), StepMeta("update", "b"))
        assert independent(StepMeta("insert", "a"), StepMeta("delete", "b"))


# ---------------------------------------------------------------------------
# exhaustive exploration (the tentpole)
# ---------------------------------------------------------------------------
class TestExhaustiveExploration:
    def test_write_skew_si_anomaly_found_ssi_clean(self):
        """The acceptance scenario: full enumeration of the 2-client
        write-skew program finds the SI anomaly and proves SSI and S2PL
        commit no non-serializable history."""
        program = write_skew()
        si = explore_exhaustive(program, SI)
        assert si.exhausted
        assert si.anomalies, "exhaustive SI exploration missed write skew"
        assert not si.violations
        for level in (SER, S2PL):
            rep = explore_exhaustive(program, level)
            assert rep.exhausted
            assert not rep.violations, rep.violations
            assert not rep.anomalies

    def test_pruning_is_sound_and_effective(self):
        """Sleep sets must not lose outcomes (same distinct final
        states, same anomaly verdict) and must actually shrink the
        number of executed complete schedules."""
        program = write_skew()
        full = explore_exhaustive(program, SI, prune=False)
        pruned = explore_exhaustive(program, SI, prune=True)
        assert full.exhausted and pruned.exhausted
        assert pruned.distinct_states == full.distinct_states
        assert bool(pruned.anomalies) == bool(full.anomalies)
        assert pruned.schedules_complete < full.schedules_complete

    def test_schedule_budget_is_respected(self):
        report = explore_exhaustive(write_skew(), SI, max_schedules=5)
        assert report.runs == 5
        assert not report.exhausted

    def test_anomaly_witness_replays_exactly(self):
        """Any reported schedule must reproduce its verdict when fed
        back through a fixed-schedule policy -- the engine is
        deterministic."""
        report = explore_exhaustive(write_skew(), SI)
        witness = report.anomalies[0]
        policy = FixedSchedulePolicy(witness.schedule, strict=True)
        record = execute_schedule(write_skew(), SI, policy.pick)
        assert record.complete and not policy.diverged
        assert not record.check.serializable

    def test_execute_schedule_is_deterministic(self):
        witness = explore_exhaustive(write_skew(), SI).anomalies[0]
        states = set()
        for _ in range(3):
            policy = FixedSchedulePolicy(witness.schedule)
            record = execute_schedule(write_skew(), SI, policy.pick)
            states.add(record.state)
        assert len(states) == 1


# ---------------------------------------------------------------------------
# seeded random exploration
# ---------------------------------------------------------------------------
class TestRandomExploration:
    def test_finds_write_skew_and_records_schedules(self):
        report = explore_random(write_skew(), SI, trials=40, seed=11)
        assert report.schedules_complete == 40
        assert report.anomalies
        for finding in report.anomalies:
            assert finding.schedule  # full choice sequence recorded

    def test_same_seed_same_findings(self):
        a = explore_random(write_skew(), SI, trials=20, seed=3)
        b = explore_random(write_skew(), SI, trials=20, seed=3)
        assert ([f.schedule for f in a.anomalies]
                == [f.schedule for f in b.anomalies])

    def test_random_witness_replays(self):
        report = explore_random(write_skew(), SI, trials=40, seed=11)
        witness = report.anomalies[0]
        policy = FixedSchedulePolicy(witness.schedule)
        record = execute_schedule(write_skew(), SI, policy.pick)
        assert record.complete and not record.check.serializable


# ---------------------------------------------------------------------------
# shrinker
# ---------------------------------------------------------------------------
class TestShrinker:
    def test_shrinks_seeded_failure_to_minimum(self):
        """A deliberately bloated write-skew program (3 clients, spare
        re-reads) must shrink to at most 3 transactions and 6
        statements while still failing."""
        bloated = write_skew(n_clients=3, recheck=True)
        assert bloated.txn_count() == 3 and bloated.stmt_count() == 9
        out = shrink_to_replay(bloated, SI, max_schedules=300)
        assert out is not None
        replay, finding = out
        assert replay.program.txn_count() <= 3
        assert replay.program.stmt_count() <= 6
        assert finding.kind == "non-serializable-commit"
        # The minimized replay still reproduces the anomaly.
        assert run_replay(replay, sanitize=False).ok

    def test_shrunk_program_is_one_minimal(self):
        fails = explore_predicate(SI, max_schedules=300)
        minimal = shrink_program(write_skew(n_clients=3, recheck=True),
                                 fails)
        # Write skew needs two writers: dropping any whole transaction
        # must make the failure vanish.
        assert minimal.txn_count() == 2
        for cid in range(len(minimal.clients)):
            pruned = Program.from_dict(minimal.to_dict())
            del pruned.clients[cid]
            assert fails(pruned) is None

    def test_nothing_to_shrink_returns_none(self):
        # A single-client program cannot produce an anomaly.
        program = write_skew()
        program.clients = program.clients[:1]
        assert shrink_to_replay(program, SI, max_schedules=100) is None


# ---------------------------------------------------------------------------
# replay files
# ---------------------------------------------------------------------------
class TestReplayFiles:
    def _witness_replay(self):
        witness = explore_exhaustive(write_skew(), SI).anomalies[0]
        return Replay(program=write_skew(), isolation=SI,
                      schedule=witness.schedule,
                      expect={"anomaly": True, "serializable_aborts": True},
                      description="test witness")

    def test_save_load_round_trip(self, tmp_path):
        replay = self._witness_replay()
        path = tmp_path / "ws.json"
        save_replay(str(path), replay)
        again = load_replay(str(path))
        assert again.to_dict() == replay.to_dict()

    def test_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ValueError, match="not a repro-explore-replay"):
            load_replay(str(path))

    def test_strict_replay_flags_divergence(self):
        replay = self._witness_replay()
        # Corrupt the schedule: client 9 never exists, so strict replay
        # diverges and the anomaly expectation fails.
        replay.schedule = [9] * len(replay.schedule)
        result = run_replay(replay, sanitize=False)
        assert result.diverged
        assert result.checks.get("anomaly") is False

    def test_expectations_across_levels(self):
        replay = self._witness_replay()
        assert run_replay(replay, sanitize=False).ok
        ser = run_replay(replay, SER, sanitize=False)
        assert ser.checks == {"serializable_aborts": True}


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
class TestCli:
    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro.explore", *argv],
            capture_output=True, text=True, cwd=str(REPO),
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"})

    def test_explore_subcommand(self):
        proc = self._run("explore", "--program", "write_skew",
                         "--isolation", "si")
        assert proc.returncode == 0, proc.stderr
        assert "anomalies" in proc.stdout

    def test_replay_subcommand_on_corpus(self):
        corpus = REPO / "tests" / "explore_corpus" / "write_skew.json"
        proc = self._run("replay", str(corpus), "--all-levels")
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "anomaly=ok" in proc.stdout
        assert "serializable_aborts=ok" in proc.stdout

    def test_shrink_subcommand_writes_replay(self, tmp_path):
        out = tmp_path / "min.json"
        proc = self._run("shrink", "--program", "write_skew_3",
                         "--max-schedules", "200", "-o", str(out))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        replay = load_replay(str(out))
        assert replay.program.txn_count() <= 3
