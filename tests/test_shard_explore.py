"""Sharded differential exploration: pinned schedules must admit the
same histories on 1-shard and 2-shard deployments, and SERIALIZABLE
must admit zero non-serializable commits (merged Adya graphs)."""

import pytest

from repro.engine.isolation import IsolationLevel
from repro.explore.corpus import BUILTIN_PROGRAMS, cross_shard_write_skew
from repro.shard.explore import (client_steps, differential_sweep,
                                 run_schedule, schedules_for)
from repro.shard.partition import shard_for

SER = IsolationLevel.SERIALIZABLE
RR = IsolationLevel.REPEATABLE_READ


def overlap_schedule(program):
    """All statements interleaved, commits last -- the anomaly shape."""
    n = len(program.clients)
    schedule = []
    for cid in range(n):
        schedule.extend([cid] * (client_steps(program, cid) - 1))
    schedule.extend(range(n))
    return schedule


class TestScheduleGeneration:
    def test_schedules_are_deterministic(self):
        program = BUILTIN_PROGRAMS["write_skew"]()
        a = schedules_for(program, max_interleavings=8)
        b = schedules_for(program, max_interleavings=8)
        assert a == b
        assert len(a) == len({tuple(s) for s in a})  # deduped

    def test_every_schedule_covers_all_steps(self):
        program = BUILTIN_PROGRAMS["write_skew"]()
        steps = [client_steps(program, cid)
                 for cid in range(len(program.clients))]
        for schedule in schedules_for(program, max_interleavings=8):
            for cid, n in enumerate(steps):
                assert schedule.count(cid) == n


class TestCrossShardWriteSkew:
    def test_program_spans_both_shards(self):
        program = cross_shard_write_skew()
        rows = program.tables[0].rows
        shards = {shard_for(r["id"], 2) for r in rows}
        assert shards == {0, 1}

    def test_serializable_aborts_the_anomaly_on_two_shards(self):
        program = cross_shard_write_skew()
        run = run_schedule(program, 2, overlap_schedule(program), SER)
        assert sorted(run.verdicts.values()) == ["aborted", "committed"]
        assert run.check.serializable

    def test_snapshot_isolation_commits_the_anomaly_on_two_shards(self):
        """Plain SI + 2PC admits the cross-shard write skew: both
        commit and the merged Adya graph is cyclic. This is the case
        distributed SSI exists to kill."""
        program = cross_shard_write_skew()
        run = run_schedule(program, 2, overlap_schedule(program), RR)
        assert sorted(run.verdicts.values()) == ["committed", "committed"]
        assert not run.check.serializable
        assert run.check.cycle

    def test_differential_sweep_holds_parity(self):
        report = differential_sweep(cross_shard_write_skew(),
                                    max_interleavings=12)
        assert report["schedules"] >= 4
        assert report["anomalies"] == 0


@pytest.mark.parametrize("name", ["write_skew", "read_only_anomaly",
                                  "receipt_report"])
def test_corpus_program_parity_under_serializable(name):
    report = differential_sweep(BUILTIN_PROGRAMS[name](),
                                max_interleavings=6)
    assert report["anomalies"] == 0


def test_sweep_counts_si_anomalies_without_failing():
    """Under REPEATABLE_READ anomalies are counted, not fatal -- the
    sweep still demands 1-shard/2-shard parity."""
    report = differential_sweep(cross_shard_write_skew(), isolation=RR,
                                max_interleavings=6,
                                schedules=[overlap_schedule(
                                    cross_shard_write_skew())])
    assert report["anomalies"] == 2  # both deployments admit it
