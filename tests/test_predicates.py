"""Unit and property tests for WHERE-clause predicates and planner
sargability."""

from hypothesis import given, settings, strategies as st

from repro.engine.predicate import (AlwaysTrue, And, Between, Eq, Func, Ge,
                                    Gt, Le, Lt, Ne, Or)


class TestMatching:
    def test_always_true(self):
        assert AlwaysTrue().matches({})

    def test_comparisons(self):
        row = {"k": 5}
        assert Eq("k", 5).matches(row)
        assert not Eq("k", 6).matches(row)
        assert Ne("k", 6).matches(row)
        assert Lt("k", 6).matches(row)
        assert Le("k", 5).matches(row)
        assert Gt("k", 4).matches(row)
        assert Ge("k", 5).matches(row)
        assert not Gt("k", 5).matches(row)

    def test_missing_column_is_never_less(self):
        assert not Lt("absent", 10).matches({"k": 1})
        assert not Ge("absent", 10).matches({"k": 1})
        assert not Eq("absent", 10).matches({"k": 1})
        assert Ne("absent", 10).matches({"k": 1})  # None != 10

    def test_between(self):
        assert Between("k", 1, 3).matches({"k": 2})
        assert Between("k", 1, 3).matches({"k": 1})
        assert Between("k", 1, 3).matches({"k": 3})
        assert not Between("k", 1, 3).matches({"k": 4})

    def test_and_or(self):
        pred = And(Ge("k", 1), Le("k", 3))
        assert pred.matches({"k": 2}) and not pred.matches({"k": 0})
        pred = Or(Eq("k", 1), Eq("k", 9))
        assert pred.matches({"k": 9}) and not pred.matches({"k": 5})

    def test_operator_sugar(self):
        pred = Eq("a", 1) & Eq("b", 2)
        assert pred.matches({"a": 1, "b": 2})
        assert not pred.matches({"a": 1, "b": 3})
        pred = Eq("a", 1) | Eq("b", 2)
        assert pred.matches({"a": 0, "b": 2})

    def test_func(self):
        pred = Func(lambda r: r["k"] % 2 == 0)
        assert pred.matches({"k": 4}) and not pred.matches({"k": 3})


class TestSargability:
    def test_eq_is_equality_range(self):
        rng = Eq("k", 5).index_range()
        assert rng.is_equality and rng.column == "k"

    def test_inequalities_are_open_ranges(self):
        assert Lt("k", 5).index_range().hi == 5
        assert not Lt("k", 5).index_range().hi_incl
        assert Le("k", 5).index_range().hi_incl
        assert Gt("k", 5).index_range().lo == 5
        assert not Gt("k", 5).index_range().lo_incl
        assert Ge("k", 5).index_range().lo_incl

    def test_between_range(self):
        rng = Between("k", 1, 9).index_range()
        assert (rng.lo, rng.hi) == (1, 9)
        assert not rng.is_equality

    def test_and_uses_first_sargable_conjunct(self):
        pred = And(Func(lambda r: True), Eq("k", 5))
        assert pred.index_range().column == "k"

    def test_or_and_func_not_sargable(self):
        assert Or(Eq("k", 1), Eq("k", 2)).index_range() is None
        assert Func(lambda r: True).index_range() is None
        assert AlwaysTrue().index_range() is None


class TestProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
    def test_between_equals_conjunction(self, lo, hi, value):
        row = {"k": value}
        assert Between("k", lo, hi).matches(row) == \
            And(Ge("k", lo), Le("k", hi)).matches(row)

    @settings(max_examples=80, deadline=None)
    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_trichotomy(self, bound, value):
        row = {"k": value}
        outcomes = [Lt("k", bound).matches(row), Eq("k", bound).matches(row),
                    Gt("k", bound).matches(row)]
        assert sum(outcomes) == 1

    @settings(max_examples=50, deadline=None)
    @given(st.integers(-50, 50), st.integers(-50, 50))
    def test_demorgan_over_rows(self, a, value):
        row = {"k": value}
        left = Or(Eq("k", a), Ne("k", a)).matches(row)
        assert left  # tautology
        both = And(Eq("k", a), Ne("k", a)).matches(row)
        assert not both  # contradiction
