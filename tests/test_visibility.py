"""Unit tests for MVCC tuple visibility (HeapTupleSatisfiesMVCC rules),
including the SSI-relevant classification of concurrent writers."""

import pytest

from repro.mvcc import CommitLog, Snapshot, tuple_visibility
from repro.mvcc.visibility import TxnView, tuple_is_dead
from repro.storage import TID, HeapTuple


def make_tuple(xmin, cmin=0, xmax=0, cmax=0, lock_only=False):
    return HeapTuple(tid=TID(0, 0), data={"k": 1}, xmin=xmin, cmin=cmin,
                     xmax=xmax, cmax=cmax, xmax_lock_only=lock_only)


@pytest.fixture
def clog():
    log = CommitLog()
    for xid in range(3, 30):
        log.register(xid)
    return log


def view(*xids, cid=1):
    return TxnView(xids=frozenset(xids), curcid=cid)


class TestCreatorVisibility:
    def test_committed_before_snapshot_visible(self, clog):
        clog.set_committed([5])
        snap = Snapshot(xmin=6, xmax=10)
        res = tuple_visibility(make_tuple(5), snap, view(9), clog)
        assert res.visible

    def test_in_progress_creator_invisible_and_concurrent(self, clog):
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({7}))
        res = tuple_visibility(make_tuple(7), snap, view(9), clog)
        assert not res.visible
        assert res.creator_concurrent
        assert res.creator_xid == 7

    def test_committed_after_snapshot_invisible_and_concurrent(self, clog):
        clog.set_committed([7])
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({7}))
        res = tuple_visibility(make_tuple(7), snap, view(9), clog)
        assert not res.visible
        assert res.creator_concurrent

    def test_aborted_creator_invisible_not_concurrent(self, clog):
        clog.set_aborted([7])
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({7}))
        res = tuple_visibility(make_tuple(7), snap, view(9), clog)
        assert not res.visible
        assert not res.creator_concurrent  # dead, not a conflict

    def test_own_insert_from_earlier_command_visible(self, clog):
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({9}))
        res = tuple_visibility(make_tuple(9, cmin=0), snap, view(9, cid=1), clog)
        assert res.visible

    def test_own_insert_from_current_command_invisible(self, clog):
        # Halloween protection: a command cannot see its own inserts.
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({9}))
        res = tuple_visibility(make_tuple(9, cmin=1), snap, view(9, cid=1), clog)
        assert not res.visible

    def test_own_aborted_subxact_insert_invisible(self, clog):
        clog.set_aborted([8])  # subxact 8 rolled back
        snap = Snapshot(xmin=5, xmax=10, xip=frozenset({9}))
        res = tuple_visibility(make_tuple(8, cmin=0), snap, view(9), clog)
        assert not res.visible


class TestDeleterVisibility:
    def test_deleted_by_committed_visible_txn_invisible(self, clog):
        clog.set_committed([5, 6])
        snap = Snapshot(xmin=7, xmax=10)
        res = tuple_visibility(make_tuple(5, xmax=6), snap, view(9), clog)
        assert not res.visible
        assert not res.deleter_concurrent

    def test_deleted_by_in_progress_txn_still_visible_concurrent(self, clog):
        clog.set_committed([5])
        snap = Snapshot(xmin=6, xmax=10, xip=frozenset({7}))
        res = tuple_visibility(make_tuple(5, xmax=7), snap, view(9), clog)
        assert res.visible
        assert res.deleter_concurrent
        assert res.deleter_xid == 7

    def test_deleted_by_txn_committed_after_snapshot_visible(self, clog):
        clog.set_committed([5, 7])
        snap = Snapshot(xmin=6, xmax=10, xip=frozenset({7}))
        res = tuple_visibility(make_tuple(5, xmax=7), snap, view(9), clog)
        assert res.visible
        assert res.deleter_concurrent

    def test_deleter_aborted_visible(self, clog):
        clog.set_committed([5])
        clog.set_aborted([7])
        snap = Snapshot(xmin=6, xmax=10, xip=frozenset({7}))
        res = tuple_visibility(make_tuple(5, xmax=7), snap, view(9), clog)
        assert res.visible
        assert not res.deleter_concurrent

    def test_lock_only_xmax_does_not_delete(self, clog):
        # SELECT FOR UPDATE stores the locker in xmax without deleting.
        clog.set_committed([5])
        snap = Snapshot(xmin=6, xmax=10, xip=frozenset({7}))
        res = tuple_visibility(make_tuple(5, xmax=7, lock_only=True),
                               snap, view(9), clog)
        assert res.visible
        assert not res.deleter_concurrent

    def test_own_delete_earlier_command_invisible(self, clog):
        clog.set_committed([5])
        snap = Snapshot(xmin=6, xmax=10, xip=frozenset({9}))
        res = tuple_visibility(make_tuple(5, xmax=9, cmax=0), snap,
                               view(9, cid=1), clog)
        assert not res.visible

    def test_own_delete_current_command_still_visible(self, clog):
        clog.set_committed([5])
        snap = Snapshot(xmin=6, xmax=10, xip=frozenset({9}))
        res = tuple_visibility(make_tuple(5, xmax=9, cmax=1), snap,
                               view(9, cid=1), clog)
        assert res.visible


class TestDeadness:
    def test_aborted_creator_is_dead(self, clog):
        clog.set_aborted([5])
        assert tuple_is_dead(make_tuple(5), horizon_xmin=3, clog=clog)

    def test_live_tuple_not_dead(self, clog):
        clog.set_committed([5])
        assert not tuple_is_dead(make_tuple(5), horizon_xmin=100, clog=clog)

    def test_deleted_before_horizon_dead(self, clog):
        clog.set_committed([5, 6])
        assert tuple_is_dead(make_tuple(5, xmax=6), horizon_xmin=7, clog=clog)

    def test_deleted_after_horizon_not_dead(self, clog):
        clog.set_committed([5, 6])
        assert not tuple_is_dead(make_tuple(5, xmax=6), horizon_xmin=6,
                                 clog=clog)

    def test_lock_only_xmax_not_dead(self, clog):
        clog.set_committed([5, 6])
        assert not tuple_is_dead(make_tuple(5, xmax=6, lock_only=True),
                                 horizon_xmin=10, clog=clog)
