"""Safe snapshots and deferrable transactions (paper sections 4.2-4.3)."""

import pytest

from repro.config import EngineConfig, SSIConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import WouldBlock
from repro.waits import SafeSnapshotWait

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t", ["k", "v"], key="k")
    s = database.session()
    for k in range(4):
        s.insert("t", {"k": k, "v": 0})
    return database


class TestSafeSnapshots:
    def test_ro_with_no_concurrent_rw_is_immediately_safe(self, db):
        s = db.session()
        s.begin(SER, read_only=True)
        assert s.txn.sxact.ro_safe
        # A safe-snapshot transaction acquires no SIREAD locks.
        s.select("t")
        assert db.ssi.lockmgr.targets_held(s.txn.sxact) == set()
        s.commit()
        assert db.ssi.stats.safe_snapshots == 1

    def test_ro_with_concurrent_rw_not_immediately_safe(self, db):
        w = db.session()
        w.begin(SER)
        w.select("t", Eq("k", 0))  # keep it active
        r = db.session()
        r.begin(SER, read_only=True)
        assert not r.txn.sxact.ro_safe
        assert w.txn.sxact in r.txn.sxact.possible_unsafe_conflicts
        w.commit()
        r.commit()

    def test_snapshot_becomes_safe_when_writers_finish_cleanly(self, db):
        w = db.session()
        w.begin(SER)
        w.update("t", Eq("k", 0), {"v": 1})
        r = db.session()
        r.begin(SER, read_only=True)
        r.select("t", Eq("k", 1))
        sx = r.txn.sxact
        assert not sx.ro_safe
        assert db.ssi.lockmgr.targets_held(sx)  # tracking SIREADs so far
        w.commit()  # no conflict out to anything before r's snapshot
        assert sx.ro_safe
        # SIREAD locks were dropped mid-flight (section 4.2).
        assert db.ssi.lockmgr.targets_held(sx) == set()
        r.select("t")  # keeps working, now as plain SI
        r.commit()

    def test_snapshot_becomes_safe_when_writer_aborts(self, db):
        w = db.session()
        w.begin(SER)
        w.update("t", Eq("k", 0), {"v": 1})
        r = db.session()
        r.begin(SER, read_only=True)
        w.rollback()
        assert r.txn.sxact.ro_safe
        r.commit()

    def test_unsafe_snapshot_detected(self, db):
        """A concurrent r/w transaction commits with a conflict out to
        a transaction that committed before the RO snapshot: unsafe.

        Uses a second table for T2's own write so page-granularity
        SIREAD locks do not add extra edges.
        """
        db.create_table("other", ["k", "v"], key="k")
        db.session().insert("other", {"k": 0, "v": 0})
        w = db.session()       # will be T2
        closer = db.session()  # will be T3
        w.begin(SER)
        w.select("t", Eq("k", 0))  # T2 reads k=0
        closer.begin(SER)
        closer.update("t", Eq("k", 0), {"v": 9})  # T3 writes it
        closer.commit()  # T2 -rw-> T3(committed)
        r = db.session()
        r.begin(SER, read_only=True)  # snapshot AFTER T3's commit
        sx = r.txn.sxact
        w.update("other", Eq("k", 0), {"v": 1})  # make w a real writer
        w.commit()  # commits with conflict out to pre-snapshot commit
        assert sx.ro_unsafe
        assert not sx.ro_safe
        assert db.ssi.stats.unsafe_snapshots == 1
        r.commit()

    def test_read_only_writer_cannot_make_unsafe(self, db):
        """A concurrent transaction that never writes cannot endanger
        the snapshot even if it has conflicts out."""
        w = db.session()
        closer = db.session()
        w.begin(SER)
        w.select("t", Eq("k", 0))
        closer.begin(SER)
        closer.update("t", Eq("k", 0), {"v": 9})
        closer.commit()
        r = db.session()
        r.begin(SER, read_only=True)
        w.commit()  # w never wrote anything
        assert r.txn.sxact.ro_safe
        r.commit()

    def test_safe_ro_cannot_be_aborted_by_later_conflicts(self, db):
        w = db.session()
        w.begin(SER)
        r = db.session()
        r.begin(SER, read_only=True)
        rows = r.select("t")
        w.commit()
        assert r.txn.sxact.ro_safe
        # A new writer updates everything r read; r must still commit.
        w2 = db.session()
        w2.begin(SER)
        w2.update("t", None, {"v": 42})
        w2.commit()
        r.select("t")
        r.commit()  # no SerializationFailure possible

    def test_config_can_disable_safe_snapshots(self):
        db = Database(EngineConfig(ssi=SSIConfig(safe_snapshots=False)))
        db.create_table("t", ["k"], key="k")
        r = db.session()
        r.begin(SER, read_only=True)
        assert not r.txn.sxact.ro_safe
        r.commit()


class TestDeferrableTransactions:
    def test_deferrable_with_idle_system_starts_immediately(self, db):
        s = db.session()
        s.begin(SER, read_only=True, deferrable=True)
        assert s.txn.sxact.ro_safe
        s.select("t")
        s.commit()

    def test_deferrable_blocks_until_writers_finish(self, db):
        w = db.session()
        w.begin(SER)
        w.update("t", Eq("k", 0), {"v": 1})
        d = db.session()
        with pytest.raises(WouldBlock) as exc:
            d.begin(SER, read_only=True, deferrable=True)
        assert isinstance(exc.value.condition, SafeSnapshotWait)
        w.commit()
        txn = d.resume()
        assert txn.sxact.ro_safe
        d.select("t")
        d.commit()

    def test_deferrable_retries_after_unsafe_snapshot(self, db):
        # Arrange an unsafe first snapshot: w has a conflict out to a
        # transaction that commits before the deferrable snapshot.
        db.create_table("other", ["k", "v"], key="k")
        db.session().insert("other", {"k": 0, "v": 0})
        w = db.session()
        closer = db.session()
        w.begin(SER)
        w.select("t", Eq("k", 0))
        closer.begin(SER)
        closer.update("t", Eq("k", 0), {"v": 9})
        closer.commit()
        d = db.session()
        with pytest.raises(WouldBlock):
            d.begin(SER, read_only=True, deferrable=True)
        w.update("other", Eq("k", 0), {"v": 1})
        w.commit()  # first snapshot becomes unsafe -> retry
        txn = d.resume()  # second snapshot: no writers left -> safe
        assert txn.sxact.ro_safe
        assert db.stats.deferrable_retries >= 1
        d.commit()

    def test_deferrable_requires_read_only(self, db):
        from repro.errors import InvalidTransactionStateError
        s = db.session()
        with pytest.raises(InvalidTransactionStateError):
            s.begin(SER, deferrable=True)
