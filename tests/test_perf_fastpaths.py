"""The performance layer (hint bits, visibility map, FSM, SSI fast
paths) must change cost, never behaviour.

* Hint bits are only ever set to a status that agrees with the commit
  log, across commits, aborts, subtransactions and two-phase commit.
* Visibility-map bits are set only by VACUUM, cleared by every write
  path, and scans over all-visible pages never surface dead tuples or
  rows invisible to old snapshots.
* The FSM picks the same page (and slot) the seed's linear probe
  picked, so TIDs are identical with the toggle on or off.
* The SSI read fast paths leave outcomes, abort causes, and the SIREAD
  lock table exactly as the slow path does.
* With every toggle off, the engine behaves exactly like the seed.
"""

import random

import pytest

from repro.config import EngineConfig, PerfConfig, SSIConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import SerializationFailure
from repro.mvcc.snapshot import Snapshot
from repro.storage.page import HeapPage
from repro.storage.tuple import TID, HeapTuple
from repro.storage.vismap import VisibilityMap

SER = IsolationLevel.SERIALIZABLE
RR = IsolationLevel.REPEATABLE_READ


def config(fast: bool, **engine_kwargs) -> EngineConfig:
    return EngineConfig(
        perf=PerfConfig(hint_bits=fast, visibility_map=fast, fsm=fast),
        ssi=SSIConfig(siread_fast_path=fast), **engine_kwargs)


def all_tuples(db):
    for rel in db.relations().values():
        for tup in rel.heap.scan():
            yield tup


def assert_hints_sound(db):
    """Every set hint bit agrees with the commit log."""
    clog = db.clog
    for tup in all_tuples(db):
        if tup.xmin_committed:
            assert clog.did_commit(tup.xmin)
        if tup.xmin_aborted:
            assert clog.did_abort(tup.xmin)
        if tup.xmax_committed:
            assert clog.did_commit(tup.xmax)
        if tup.xmax_aborted:
            assert clog.did_abort(tup.xmax)
        assert not (tup.xmin_committed and tup.xmin_aborted)
        assert not (tup.xmax_committed and tup.xmax_aborted)


# ----------------------------------------------------------------------
# __slots__ (no per-instance __dict__ on the hot structures)
# ----------------------------------------------------------------------
class TestSlots:
    @pytest.mark.parametrize("obj", [
        HeapTuple(tid=TID(0, 0), data={}, xmin=1, cmin=0),
        TID(0, 0),
        Snapshot(xmin=1, xmax=2),
        HeapPage(0, 8),
        VisibilityMap(),
    ], ids=lambda o: type(o).__name__)
    def test_no_instance_dict(self, obj):
        assert not hasattr(obj, "__dict__")
        # Frozen slotted dataclasses raise TypeError on some CPython
        # versions instead of AttributeError/FrozenInstanceError.
        with pytest.raises((AttributeError, TypeError)):
            obj.bogus_attribute = 1

    def test_sxact_and_target_are_slotted(self):
        from repro.ssi.sxact import SerializableXact
        from repro.ssi.targets import rel_target
        sx = SerializableXact(1, Snapshot(xmin=1, xmax=2), snapshot_seq=0)
        assert not hasattr(sx, "__dict__")
        # Targets are plain tuples: no per-instance dict by construction.
        assert not hasattr(rel_target(7), "__dict__")


# ----------------------------------------------------------------------
# hint bits
# ----------------------------------------------------------------------
class TestHintBits:
    def test_scan_sets_bits_that_agree_with_clog(self):
        db = Database(config(True))
        db.create_table("t", ["k"])
        s = db.session()
        for k in range(5):
            s.insert("t", {"k": k})
        s.begin(RR)
        s.insert("t", {"k": 99})
        s.rollback()
        db.session().select("t")  # first scan sets xmin hints
        assert_hints_sound(db)
        hinted = [t for t in all_tuples(db)
                  if t.xmin_committed or t.xmin_aborted]
        assert len(hinted) == 6
        before = db.obs.metrics.counter("perf.hint_hits").value
        db.session().select("t")  # second scan answers from the hints
        assert db.obs.metrics.counter("perf.hint_hits").value > before

    def test_no_bit_set_for_in_progress_xid(self):
        db = Database(config(True))
        db.create_table("t", ["k"])
        writer = db.session()
        writer.begin(RR)
        writer.insert("t", {"k": 1})
        db.session().select("t")  # concurrent scan: xmin in progress
        tup = next(all_tuples(db))
        assert not (tup.xmin_committed or tup.xmin_aborted)
        writer.commit()
        db.session().select("t")
        assert next(all_tuples(db)).xmin_committed

    def test_restamped_xmax_resets_hint(self):
        db = Database(config(True))
        db.create_table("t", ["k", "v"])
        s = db.session()
        s.insert("t", {"k": 1, "v": 0})
        s.begin(RR)
        s.update("t", Eq("k", 1), {"v": 1})
        s.rollback()
        db.vacuum()  # hints the aborted deleter
        old = [t for t in all_tuples(db) if t.data["v"] == 0][0]
        assert old.xmax_aborted
        s.begin(RR)
        s.update("t", Eq("k", 1), {"v": 2})  # restamps xmax
        assert not old.xmax_aborted and not old.xmax_committed
        s.commit()
        assert_hints_sound(db)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_randomized_mix_sound_and_equivalent(self, seed):
        """Random commits/aborts/subxacts/2PC: bits stay sound and
        hinted visibility equals unhinted visibility."""
        def run(fast):
            db = Database(config(fast))
            db.create_table("t", ["k", "v"], key="k")
            rng = random.Random(seed)
            sessions = [db.session() for _ in range(3)]
            reads = []
            for step in range(120):
                s = rng.choice(sessions)
                op = rng.random()
                try:
                    if not s.in_transaction:
                        s.begin(rng.choice([RR, SER]))
                    if op < 0.35:
                        s.insert("t", {"k": rng.randrange(60),
                                       "v": step})
                    elif op < 0.55:
                        s.update("t", Eq("k", rng.randrange(60)),
                                 {"v": step})
                    elif op < 0.65:
                        s.delete("t", Eq("k", rng.randrange(60)))
                    elif op < 0.80:
                        s.savepoint("sp")
                        s.insert("t", {"k": rng.randrange(60, 90),
                                       "v": step})
                        if rng.random() < 0.5:
                            s.rollback_to_savepoint("sp")
                    elif op < 0.9:
                        rows = s.select("t")
                        reads.append(sorted((r["k"], r["v"])
                                            for r in rows))
                    else:
                        if rng.random() < 0.3:
                            s.prepare_transaction(f"g{step}")
                            if rng.random() < 0.5:
                                db.commit_prepared(f"g{step}")
                            else:
                                db.rollback_prepared(f"g{step}")
                        elif rng.random() < 0.5:
                            s.commit()
                        else:
                            s.rollback()
                except Exception:
                    pass
                if rng.random() < 0.1:
                    db.vacuum()
            for s in sessions:
                if s.in_transaction:
                    try:
                        s.rollback()
                    except Exception:
                        pass
            final = sorted((r["k"], r["v"])
                           for r in db.session().select("t"))
            return db, reads, final

        db_fast, reads_fast, final_fast = run(True)
        assert_hints_sound(db_fast)
        db_slow, reads_slow, final_slow = run(False)
        assert reads_fast == reads_slow
        assert final_fast == final_slow


# ----------------------------------------------------------------------
# visibility map
# ----------------------------------------------------------------------
class TestVisibilityMap:
    def setup_db(self, fast=True, rows=12):
        db = Database(config(fast))
        db.create_table("t", ["k", "v"])
        s = db.session()
        for k in range(rows):
            s.insert("t", {"k": k, "v": 0})
        db.vacuum()
        return db

    def vm(self, db):
        return db.relation("t").heap.vismap

    def test_vacuum_sets_bits_and_scan_skips(self):
        db = self.setup_db()
        heap = db.relation("t").heap
        assert len(self.vm(db)) == heap.page_count
        before = db.obs.metrics.counter("perf.vismap_skips").value
        rows = db.session().select("t")
        assert len(rows) == 12
        assert db.obs.metrics.counter("perf.vismap_skips").value > before

    @pytest.mark.parametrize("write", ["insert", "update", "delete",
                                       "for_update"])
    def test_every_write_path_clears_the_bit(self, write):
        db = self.setup_db()
        s = db.session()
        s.begin(RR)
        if write == "insert":
            tid = s.insert("t", {"k": 99, "v": 0})
            touched = {tid.page}
        elif write == "update":
            s.update("t", Eq("k", 3), {"v": 1})
            touched = {t.tid.page for t in all_tuples(db)
                       if t.data["k"] == 3}
        elif write == "delete":
            s.delete("t", Eq("k", 3))
            touched = {t.tid.page for t in all_tuples(db)
                       if t.data["k"] == 3}
        else:
            rows = s.select_for_update("t", Eq("k", 3))
            assert rows
            touched = {t.tid.page for t in all_tuples(db)
                       if t.data["k"] == 3}
        assert touched
        for page_no in touched:
            assert not self.vm(db).is_all_visible(page_no)
        s.rollback()

    def test_old_snapshot_still_correct_after_vacuum(self):
        """A reader whose snapshot predates a newer insert: vacuum must
        not mark the newcomer's page all-visible while the old reader
        is active, so the reader keeps not seeing it."""
        db = self.setup_db()
        old = db.session()
        old.begin(RR)
        old.select("t")  # materialize the old snapshot
        s = db.session()
        s.insert("t", {"k": 100, "v": 7})
        db.vacuum()
        new_page = [t.tid.page for t in all_tuples(db)
                    if t.data["k"] == 100][0]
        assert not self.vm(db).is_all_visible(new_page)
        assert all(r["k"] != 100 for r in old.select("t"))
        old.commit()

    def test_dead_tuples_never_returned(self):
        db = self.setup_db()
        s = db.session()
        s.delete("t", Eq("k", 5))
        db.vacuum()
        rows = db.session().select("t")
        assert sorted(r["k"] for r in rows) == [k for k in range(12)
                                                if k != 5]
        # Pages are all-visible again and the fast path agrees.
        heap = db.relation("t").heap
        assert len(self.vm(db)) == heap.page_count

    def test_rewrite_starts_with_empty_vismap(self):
        db = self.setup_db()
        db.session().recluster_table("t")
        assert len(self.vm(db)) == 0
        assert len(db.session().select("t")) == 12


# ----------------------------------------------------------------------
# free-space map
# ----------------------------------------------------------------------
class TestFSM:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_placement_identical_with_and_without_fsm(self, seed):
        def run(fsm):
            db = Database(EngineConfig(perf=PerfConfig(fsm=fsm)))
            db.create_table("t", ["k"])
            s = db.session()
            rng = random.Random(seed)
            tids = []
            live = set()
            for step in range(300):
                op = rng.random()
                if op < 0.6 or not live:
                    k = step
                    tids.append(tuple(s.insert("t", {"k": k})))
                    live.add(k)
                elif op < 0.9:
                    k = rng.choice(sorted(live))
                    s.delete("t", Eq("k", k))
                    live.discard(k)
                else:
                    db.vacuum()
            db.vacuum()
            contents = sorted((tuple(t.tid), t.data["k"])
                              for t in db.relation("t").heap.scan())
            return tids, contents

        assert run(True) == run(False)


# ----------------------------------------------------------------------
# SSI read fast paths
# ----------------------------------------------------------------------
def siread_table(db):
    """Comparable view of the SIREAD lock table: (target, holder xid)."""
    out = set()
    for row in db.ssi.lockmgr.iter_locks():
        holder = row["holder"]
        out.add((row["target"],
                 holder.xid if holder is not None else None))
    return out


def write_skew(fast):
    """The doctors write-skew, driven deterministically; returns
    (outcomes, abort causes, SIREAD table before commits)."""
    db = Database(config(fast))
    db.create_table("doctors", ["name", "oncall"])
    s = db.session()
    s.insert("doctors", {"name": "alice", "oncall": True})
    s.insert("doctors", {"name": "bob", "oncall": True})
    db.vacuum()  # all-visible pages: the fast paths actually engage
    s1, s2 = db.session(), db.session()
    s1.begin(SER)
    s2.begin(SER)
    for sess, me in ((s1, "alice"), (s2, "bob")):
        if len(sess.select("doctors", Eq("oncall", True))) >= 2:
            sess.update("doctors", Eq("name", me), {"oncall": False})
    locks = siread_table(db)
    outcomes, causes = [], []
    for sess in (s1, s2):
        try:
            sess.commit()
            outcomes.append("commit")
            causes.append(None)
        except SerializationFailure as exc:
            outcomes.append("abort")
            causes.append(exc.cause)
    final = len(db.session().select("doctors", Eq("oncall", True)))
    return outcomes, causes, locks, final


class TestSSIFastPath:
    def test_write_skew_identical_with_fast_paths(self):
        fast = write_skew(True)
        slow = write_skew(False)
        assert fast == slow
        outcomes, _, _, final = fast
        assert sorted(outcomes) == ["abort", "commit"]
        assert final >= 1  # the invariant held

    def test_fast_path_fires_under_covering_relation_lock(self):
        db = Database(config(True))
        db.create_table("t", ["k"])
        s = db.session()
        for k in range(8):
            s.insert("t", {"k": k})
        db.vacuum()
        reader = db.session()
        reader.begin(SER)
        reader.select("t", Eq("k", -1))  # relation SIREAD lock
        # The vismap seq-scan shortcut bypasses on_read_tuple wholesale,
        # so exercise the covered-read path via repeated scans with the
        # vismap bit cleared by a write.
        db.session().insert("t", {"k": 99})
        counter = db.obs.metrics.counter("perf.siread_fastpath_hits")
        before = counter.value
        reader.select("t", Eq("k", -1))
        assert counter.value > before
        reader.commit()

    def test_conflict_memo_counts_and_preserves_outcome(self):
        def run(fast):
            db = Database(config(fast))
            db.create_table("t", ["k", "v"], key="k")
            s = db.session()
            for k in range(6):
                s.insert("t", {"k": k, "v": 0})
            writer = db.session()
            writer.begin(SER)
            writer.update("t", Eq("k", 0), {"v": 1})
            writer.update("t", Eq("k", 1), {"v": 1})
            reader = db.session()
            reader.begin(SER)
            rows = reader.select("t")  # sees the same writer twice
            memo = db.obs.metrics.counter("perf.conflict_memo_hits").value
            rows2 = reader.select("t")
            memo2 = db.obs.metrics.counter("perf.conflict_memo_hits").value
            writer.commit()
            reader.commit()
            return (sorted(r["v"] for r in rows),
                    sorted(r["v"] for r in rows2),
                    memo2 > memo if fast else memo2 == memo == 0)

        fast = run(True)
        slow = run(False)
        assert fast[0] == slow[0] and fast[1] == slow[1]
        assert fast[2] and slow[2]


# ----------------------------------------------------------------------
# toggles off == seed behaviour
# ----------------------------------------------------------------------
class TestTogglesOff:
    def test_all_off_matches_defaults_on_scripted_run(self):
        def run(fast):
            db = Database(config(fast))
            db.create_table("acct", ["owner", "bal"], key="owner")
            s = db.session()
            s.insert("acct", {"owner": "x", "bal": 60})
            s.insert("acct", {"owner": "y", "bal": 60})
            db.vacuum()
            s1, s2 = db.session(), db.session()
            s1.begin(SER)
            s2.begin(SER)
            total1 = sum(r["bal"] for r in s1.select("acct"))
            total2 = sum(r["bal"] for r in s2.select("acct"))
            s1.update("acct", Eq("owner", "x"), {"bal": total1 - 100})
            s2.update("acct", Eq("owner", "y"), {"bal": total2 - 100})
            outcome = []
            for sess in (s1, s2):
                try:
                    sess.commit()
                    outcome.append("commit")
                except SerializationFailure as exc:
                    outcome.append(exc.cause)
            rows = sorted((r["owner"], r["bal"])
                          for r in db.session().select("acct"))
            return outcome, rows

        assert run(False) == run(True)

    def test_all_off_takes_no_fast_paths(self):
        db = Database(config(False))
        db.create_table("t", ["k"])
        s = db.session()
        for k in range(10):
            s.insert("t", {"k": k})
        db.vacuum()
        db.session().select("t")
        db.session().select("t")
        m = db.obs.metrics
        assert m.counter("perf.hint_hits").value == 0
        assert m.counter("perf.vismap_skips").value == 0
        assert m.counter("perf.siread_fastpath_hits").value == 0
        assert m.counter("perf.conflict_memo_hits").value == 0
        assert len(db.relation("t").heap.vismap) == 0
        for tup in all_tuples(db):
            assert not (tup.xmin_committed or tup.xmin_aborted
                        or tup.xmax_committed or tup.xmax_aborted)
