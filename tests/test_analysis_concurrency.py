"""The interprocedural concurrency analyzer and its runtime twin.

Covers :mod:`repro.analysis.concurrency` (call-graph construction,
latch-rank proof LATCH001/LATCH002, Eraser-style lockset races
RACE001/RACE002, fail-open unresolved edges), the pinned known-race
fixtures under ``tests/concurrency_fixtures/`` (the analyzer must find
every seeded bug; the per-file linter must find none), the CLI
exit-code contract of ``python -m repro.analysis``, and the dynamic
lockset sanitizer (:mod:`repro.analysis.sanitize.latch_check`).
"""

import json
import os
import textwrap
import threading

import pytest

from repro.analysis.__main__ import main as analysis_main
from repro.analysis.concurrency import analyze_paths
from repro.analysis.lint import lint_paths
from repro.analysis.sanitize import SanitizerViolation, latch_check
from repro.engine.latches import (RANK_ENGINE, EngineLatch, Latch,
                                  held_latches, holds_rank)
from repro.storage.vismap import VisibilityMap

TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(TESTS_DIR, "concurrency_fixtures")
SRC_REPRO = os.path.join(os.path.dirname(TESTS_DIR), "src", "repro")


def analyze_snippet(tmp_path, source, relpath="repro/mod.py", extra=(),
                    entries=None, shared=None):
    """Write dedented ``source`` at ``relpath`` (plus ``extra``
    (relpath, source) files) under tmp_path and analyze them."""
    paths = []
    for rel, text in [(relpath, source)] + list(extra):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
        paths.append(str(path))
    return analyze_paths(paths, entries=entries, shared_classes=shared)


def rule_ids(report):
    return [f.rule for f in report.findings]


def marker_line(path, marker):
    """1-based line of the first source line containing ``marker``."""
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            if marker in line:
                return lineno
    raise AssertionError(f"marker {marker!r} not found in {path}")


def run_in_thread(fn):
    """Run ``fn`` on a fresh thread; return {'result': ...} or
    {'error': exc}."""
    box = {}

    def runner():
        try:
            box["result"] = fn()
        except BaseException as exc:
            box["error"] = exc

    thread = threading.Thread(target=runner, name="probe")
    thread.start()
    thread.join()
    return box


LATCHY = """
    from repro.engine.latches import (EngineLatch, Latch, RANK_METRICS)


    class Waiter:
        def __init__(self, rank):
            self.latch = EngineLatch()
            self.metrics_latch = Latch("metrics", RANK_METRICS)
            self.odd = Latch("odd", rank)

        def ordered(self):
            with self.latch:
                with self.metrics_latch:
                    pass

        def inverted(self):
            with self.metrics_latch:
                with self.latch:
                    pass

        def bad_notify(self):
            self.latch.notify_all()

        def parks_fine(self, cond):
            with self.latch:
                self.latch.park(cond, deadline=None)

        def parks_nested(self, cond):
            with self.latch:
                with self.metrics_latch:
                    self.latch.park(cond, deadline=None)

        def unknown(self):
            with self.odd:
                pass
    """


def analyze_latchy(tmp_path, *methods):
    return analyze_snippet(
        tmp_path, LATCHY,
        entries=[f"repro.mod.Waiter.{m}" for m in methods])


class TestLatchOrderProof:
    def test_in_order_acquisitions_prove_clean(self, tmp_path):
        report = analyze_latchy(tmp_path, "ordered")
        assert report.ok
        assert report.findings == []
        assert report.proven_sites >= 2

    def test_inverted_acquisition_is_latch001(self, tmp_path):
        report = analyze_latchy(tmp_path, "inverted")
        assert rule_ids(report) == ["LATCH001"]
        finding = report.findings[0]
        assert "rank" in finding.message
        assert finding.trace  # the example path from the entry
        assert "Waiter.inverted" in finding.trace[0]

    def test_notify_without_hold_is_latch002(self, tmp_path):
        report = analyze_latchy(tmp_path, "bad_notify")
        assert rule_ids(report) == ["LATCH002"]
        assert "notify_all" in report.findings[0].message

    def test_park_with_latch_held_is_clean(self, tmp_path):
        report = analyze_latchy(tmp_path, "parks_fine")
        assert report.ok, report.render()

    def test_park_reacquisition_hazard_is_latch002(self, tmp_path):
        # park() drops the engine latch and re-acquires it on wakeup;
        # holding a higher-ranked latch across the park makes the
        # re-acquisition out of order.
        report = analyze_latchy(tmp_path, "parks_nested")
        assert rule_ids(report) == ["LATCH002"]
        assert "re-acqui" in report.findings[0].message

    def test_unknown_rank_is_unproven_not_silent(self, tmp_path):
        # A rank the analyzer cannot resolve must surface as an
        # unproven site (and fail the run), never be skipped.
        report = analyze_latchy(tmp_path, "unknown")
        assert report.findings == []
        assert len(report.unproven) == 1
        assert not report.ok
        assert "not statically resolvable" in report.unproven[0]["reason"]

    def test_unreachable_code_is_not_checked(self, tmp_path):
        # Only paths from entry points are proven; `inverted` exists
        # but nothing reaches it when `ordered` is the sole entry.
        report = analyze_latchy(tmp_path, "ordered")
        assert report.ok


class TestCallGraph:
    def test_thread_target_becomes_auto_entry(self, tmp_path):
        report = analyze_snippet(tmp_path, """
            import threading

            from repro.engine.latches import Latch, RANK_METRICS


            class Box:
                def __init__(self):
                    self.metrics_latch = Latch("metrics", RANK_METRICS)
                    self.latch = Latch("engine", 10)

                def loop(self):
                    with self.metrics_latch:
                        with self.latch:
                            pass


            def start(box: Box):
                t = threading.Thread(target=box.loop)
                t.start()
                return t
            """)
        assert "repro.mod.Box.loop" in report.auto_entries
        assert rule_ids(report) == ["LATCH001"]

    def test_ambiguous_receiver_fails_open(self, tmp_path):
        # Two classes define step(); an untyped receiver cannot be
        # resolved, and the analyzer must *report* the dropped edge.
        report = analyze_snippet(tmp_path, """
            class A:
                def step(self):
                    return 1


            class B:
                def step(self):
                    return 2


            def drive(thing):
                return thing.step()
            """, entries=["repro.mod.drive"])
        assert report.findings == []
        assert len(report.unresolved) == 1
        edge = report.unresolved[0]
        assert edge["caller"] == "repro.mod.drive"
        assert "fails open" in edge["reason"]

    def test_annotated_receiver_resolves_across_calls(self, tmp_path):
        # The two-call chain: drive -> Worker.enter -> Worker._inner,
        # with the held set propagated through both edges.
        report = analyze_snippet(tmp_path, """
            from repro.engine.latches import Latch, RANK_CONNECTIONS


            class Worker:
                def __init__(self):
                    self.conn_latch = Latch("conn", RANK_CONNECTIONS)
                    self.latch = Latch("engine", 10)

                def enter(self):
                    with self.conn_latch:
                        self._inner()

                def _inner(self):
                    with self.latch:
                        pass


            def drive(worker: Worker):
                worker.enter()
            """, entries=["repro.mod.drive"])
        assert rule_ids(report) == ["LATCH001"]
        trace = report.findings[0].trace
        assert len(trace) == 3  # drive -> enter -> _inner
        assert "drive" in trace[0]
        assert "_inner" in trace[-1]


RACY = """
    from repro.engine.latches import EngineLatch


    class Shared:
        def __init__(self):
            self.latch = EngineLatch()
            self.good = 0  # repro: guarded-by(ENGINE)
            self.bad = 0  # repro: guarded-by(ENGINE)
            self.owned = 0  # repro: confined(set before threads start)
            self.seen = 0

        def fine(self):
            with self.latch:
                self.good += 1

        def sloppy(self):
            self.bad += 1

        def local(self):
            self.owned += 1

        def peek(self):
            return self.seen


    def drive(shared: Shared):
        shared.fine()
        shared.sloppy()
        shared.local()
        shared.peek()
    """


class TestLocksetRaces:
    def analyze(self, tmp_path, source=RACY):
        return analyze_snippet(tmp_path, source,
                               entries=["repro.mod.drive"])

    def test_guarded_access_under_latch_is_proven(self, tmp_path):
        report = self.analyze(tmp_path)
        by_attr = {row["attr"]: row for row in report.audit
                   if row["class"] == "Shared"}
        assert by_attr["good"]["status"] == "proven"

    def test_latch_free_access_to_guarded_field_is_race002(self, tmp_path):
        report = self.analyze(tmp_path)
        races = [f for f in report.findings if f.rule == "RACE002"]
        assert len(races) == 1
        assert "Shared.bad" in races[0].message
        assert any("sloppy" in hop for hop in races[0].trace)

    def test_confined_fields_are_audited_not_flagged(self, tmp_path):
        report = self.analyze(tmp_path)
        by_attr = {row["attr"]: row for row in report.audit
                   if row["class"] == "Shared"}
        assert by_attr["owned"]["status"] == "confined"
        assert all("owned" not in f.message for f in report.findings)

    def test_read_only_fields_are_not_race001(self, tmp_path):
        # Eraser needs at least one write outside __init__; `seen` is
        # only read, so it is audited read-only, not flagged.
        report = self.analyze(tmp_path)
        by_attr = {row["attr"]: row for row in report.audit
                   if row["class"] == "Shared"}
        assert by_attr["seen"]["status"] == "read-only"
        assert all(f.rule != "RACE001" or "seen" not in f.message
                   for f in report.findings)

    def test_unknown_guard_name_is_race002_at_declaration(self, tmp_path):
        report = analyze_snippet(tmp_path, """
            class Shared:
                def __init__(self):
                    self.x = 0  # repro: guarded-by(TURNSTILE)
            """, entries=[], shared=["Shared"])
        races = [f for f in report.findings if f.rule == "RACE002"]
        assert len(races) == 1
        assert "TURNSTILE" in races[0].message

    def test_noqa_suppresses_a_concurrency_finding(self, tmp_path):
        source = RACY.replace(
            "self.bad += 1",
            "self.bad += 1  # repro: noqa(RACE002) -- fixture")
        report = self.analyze(tmp_path, source)
        assert all(f.rule != "RACE002" for f in report.findings)


class TestKnownRaceFixtures:
    """The ISSUE-pinned contract: both seeded fixtures are found by the
    interprocedural analyzer -- with file, line, and call path -- and
    missed by the per-file linter."""

    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([FIXTURES])

    def test_all_three_seeded_bugs_found(self, report):
        assert sorted(rule_ids(report)) == ["LATCH001", "RACE001",
                                            "RACE002"]

    def test_race_findings_point_at_the_seeded_lines(self, report):
        path = os.path.join(FIXTURES, "guarded_field_race.py")
        by_rule = {f.rule: f for f in report.findings}
        assert by_rule["RACE002"].path == path
        assert by_rule["RACE002"].line == marker_line(path,
                                                      "SEEDED RACE002")
        assert by_rule["RACE001"].path == path
        assert by_rule["RACE001"].line == marker_line(path,
                                                      "SEEDED RACE001")

    def test_latch_finding_points_at_the_seeded_line(self, report):
        path = os.path.join(FIXTURES, "rank_chain.py")
        by_rule = {f.rule: f for f in report.findings}
        assert by_rule["LATCH001"].path == path
        assert by_rule["LATCH001"].line == marker_line(path,
                                                       "SEEDED LATCH001")

    def test_every_finding_carries_a_call_path(self, report):
        for finding in report.findings:
            assert finding.trace, finding.render()
            assert "entry" in finding.trace[0]
            assert all("(called at line" in hop
                       for hop in finding.trace[1:])

    def test_latch001_trace_spans_the_two_call_chain(self, report):
        trace = next(f for f in report.findings
                     if f.rule == "LATCH001").trace
        assert [hop.split(" ")[0].rsplit(".", 1)[-1] for hop in trace] \
            == ["serve", "run_forever", "_admit"]

    def test_thread_targets_were_auto_detected(self, report):
        assert any(e.endswith(".drive") for e in report.auto_entries)
        assert any(e.endswith(".serve") for e in report.auto_entries)

    def test_intraprocedural_linter_finds_neither(self):
        lint = lint_paths([FIXTURES])
        assert lint.parse_errors == []
        assert lint.findings == [], lint.render()


class TestRealTree:
    """The acceptance gate: src/repro analyzes clean -- zero findings,
    zero unproven acquisition paths -- with real coverage, not a
    vacuous run."""

    @pytest.fixture(scope="class")
    def report(self):
        return analyze_paths([SRC_REPRO])

    def test_src_repro_is_clean_and_fully_proven(self, report):
        assert report.parse_errors == []
        assert report.findings == [], report.render()
        assert report.unproven == [], report.render()
        assert report.ok

    def test_the_proof_has_teeth(self, report):
        # Guard against the analyzer rotting into a no-op: the server
        # entries must be wired, paths reached, acquisitions proven.
        assert report.files > 50
        assert len(report.entries) >= 8
        assert report.auto_entries  # thread targets were detected
        assert report.reachable_functions > 50
        assert report.proven_sites >= 10

    def test_unresolved_edges_are_reported_not_hidden(self, report):
        # The getattr statement dispatch is a documented fail-open
        # boundary; the report must disclose the dropped edges.
        assert report.unresolved
        for edge in report.unresolved[:5]:
            assert edge["caller"] and edge["reason"]

    def test_audit_covers_the_declared_facts(self, report):
        statuses = {row["status"] for row in report.audit}
        assert "proven" in statuses
        assert "confined" in statuses
        assert "violated" not in statuses
        audited = {(row["class"], row["attr"]) for row in report.audit}
        assert ("SSIManager", "_by_xid") in audited
        assert ("VisibilityMap", "_all_visible") in audited


class TestCLIContract:
    """Exit codes: 0 clean, 1 findings/unproven, 2 usage; --json and
    --out change the output, never the status."""

    def test_no_subcommand_is_a_usage_error(self, capsys):
        assert analysis_main([]) == 2
        assert "exit status" in capsys.readouterr().out

    def test_lint_clean_json(self, tmp_path, capsys):
        path = tmp_path / "ok.py"
        path.write_text("x = 1\n")
        assert analysis_main(["lint", str(path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"] == []
        assert payload["files_checked"] == 1
        assert payload["parse_errors"] == []
        assert "version" in payload

    def test_lint_findings_exit_1_with_and_without_json(
            self, tmp_path, capsys):
        path = tmp_path / "repro" / "mod.py"
        path.parent.mkdir()
        path.write_text("def f(clog, x):\n    return clog.status(x)\n")
        assert analysis_main(["lint", str(path)]) == 1
        assert "CLOG001" in capsys.readouterr().out
        assert analysis_main(["lint", str(path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert [f["rule"] for f in payload["findings"]] == ["CLOG001"]

    def test_concurrency_fixture_run_exits_1_and_writes_artifact(
            self, tmp_path, capsys):
        out = tmp_path / "concurrency.json"
        assert analysis_main(["concurrency", FIXTURES, "--json",
                              "--out", str(out)]) == 1
        printed = json.loads(capsys.readouterr().out)
        on_disk = json.loads(out.read_text())
        assert printed == on_disk
        assert on_disk["ok"] is False
        assert sorted(f["rule"] for f in on_disk["findings"]) \
            == ["LATCH001", "RACE001", "RACE002"]
        for finding in on_disk["findings"]:
            assert finding["trace"], "JSON findings must keep the path"

    def test_concurrency_clean_run_exits_0(self, tmp_path, capsys):
        path = tmp_path / "repro" / "mod.py"
        path.parent.mkdir()
        path.write_text("def quiet():\n    return 1\n")
        assert analysis_main(["concurrency", str(path)]) == 0
        assert "concurrency: clean" in capsys.readouterr().out


class TestHeldLatchIntrospection:
    def test_held_latches_tracks_the_with_block(self):
        latch = Latch("probe-engine", RANK_ENGINE)
        assert latch not in held_latches()
        with latch:
            assert held_latches()[-1] is latch
            assert holds_rank(RANK_ENGINE)
        assert latch not in held_latches()
        assert not holds_rank(RANK_ENGINE)

    def test_holds_rank_is_per_rank(self):
        with Latch("probe-engine", RANK_ENGINE):
            assert not holds_rank(RANK_ENGINE + 1)


class TestDynamicLocksetSanitizer:
    @pytest.fixture
    def armed(self):
        guard = latch_check.LocksetSanitizer().arm()
        try:
            yield guard
        finally:
            guard.disarm()
            latch_check.uninstall_all()

    def test_static_facts_are_recovered_from_the_annotations(self):
        facts = latch_check.static_guard_facts()
        assert facts[("VisibilityMap", "_all_visible")] == \
            ("ENGINE", "repro.storage.vismap")
        assert ("SSIManager", "_by_xid") in facts
        assert len(facts) >= 20

    def test_unguarded_thread_access_raises(self, armed):
        vm = VisibilityMap()
        box = run_in_thread(lambda: vm.is_all_visible(1))
        violation = box["error"]
        assert isinstance(violation, SanitizerViolation)
        assert violation.sanitizer == "latchset"
        assert "guarded-by(ENGINE)" in str(violation)
        assert latch_check.stats()["violations"] >= 1

    def test_unguarded_thread_write_raises(self, armed):
        vm = VisibilityMap()

        def write():
            vm.set_all_visible(3)

        assert isinstance(run_in_thread(write)["error"],
                          SanitizerViolation)

    def test_access_under_the_declared_latch_passes(self, armed):
        vm = VisibilityMap()
        latch = EngineLatch()

        def guarded():
            with latch:
                vm.set_all_visible(3)
                return vm.is_all_visible(3)

        box = run_in_thread(guarded)
        assert box.get("result") is True

    def test_main_thread_is_exempt(self, armed):
        # The deterministic single-threaded engine runs latch-free on
        # the main thread by design.
        vm = VisibilityMap()
        vm.set_all_visible(7)
        assert vm.is_all_visible(7)

    def test_construction_is_exempt_but_use_after_is_not(self, armed):
        # __init__ populates guarded fields before the object is
        # published; the first post-construction access races again.
        def construct_then_use():
            vm = VisibilityMap()  # must not raise
            return vm.is_all_visible(1)

        assert isinstance(run_in_thread(construct_then_use)["error"],
                          SanitizerViolation)

    def test_uninstall_restores_pristine_classes(self):
        guard = latch_check.LocksetSanitizer().arm()
        try:
            assert guard.stats()["instrumented"] >= 20
        finally:
            guard.disarm()
            latch_check.uninstall_all()
        assert latch_check.stats()["instrumented"] == 0
        assert not isinstance(VisibilityMap.__dict__["_all_visible"],
                              latch_check._GuardedAttribute)
        vm = VisibilityMap()
        assert run_in_thread(lambda: vm.is_all_visible(1))["result"] \
            is False

    def test_arm_is_refcounted_per_handle(self):
        first = latch_check.LocksetSanitizer().arm()
        second = latch_check.LocksetSanitizer().arm()
        try:
            second.arm()  # double-arm of one handle is a no-op
            assert latch_check.stats()["armed"] == 2
            second.disarm()
            assert latch_check.stats()["armed"] == 1
            assert first.armed
        finally:
            first.disarm()
            second.disarm()
            latch_check.uninstall_all()
        assert latch_check.stats()["armed"] == 0

    def test_threadsafe_engine_arms_and_disarms_the_sanitizer(self):
        from repro.config import EngineConfig, SanitizerConfig
        from repro.engine.database import Database
        from repro.server.engine import ThreadSafeEngine

        config = EngineConfig()
        config.sanitize = SanitizerConfig.all_on()
        engine = ThreadSafeEngine(Database(config))
        try:
            assert engine._lockset_guard is not None
            assert engine._lockset_guard.armed
            assert latch_check.stats()["instrumented"] >= 20
        finally:
            engine.shutdown()
            latch_check.uninstall_all()
        assert engine._lockset_guard is not None
        assert not engine._lockset_guard.armed

    def test_unsanitized_engine_does_not_arm(self, monkeypatch):
        from repro.analysis.sanitize import ENV_FLAG
        from repro.config import EngineConfig
        from repro.engine.database import Database
        from repro.server.engine import ThreadSafeEngine

        monkeypatch.delenv(ENV_FLAG, raising=False)
        engine = ThreadSafeEngine(Database(EngineConfig()))
        assert engine._lockset_guard is None
        engine.shutdown()
