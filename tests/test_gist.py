"""GiST interval index: structure, planner integration, and the
internal-node predicate locking of paper section 7.4."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import EngineConfig, SSIConfig
from repro.engine import Database, Eq, IsolationLevel, Overlaps
from repro.errors import SerializationFailure
from repro.index.gist import GiSTIndex, _as_interval, _overlaps
from repro.storage.tuple import TID

SER = IsolationLevel.SERIALIZABLE


def tid(i):
    return TID(i // 32, i % 32)


class TestGiSTStructure:
    def test_insert_and_overlap_search(self):
        idx = GiSTIndex(1, "g", "span", node_size=4)
        idx.insert_entry((0, 10), tid(1))
        idx.insert_entry((20, 30), tid(2))
        idx.insert_entry((5, 25), tid(3))
        hits = set(idx.range_search(8, 22).tids)
        assert hits == {tid(1), tid(2), tid(3)}
        assert set(idx.range_search(11, 19).tids) == {tid(3)}
        assert idx.range_search(40, 50).tids == []

    def test_scalar_keys_are_degenerate_intervals(self):
        idx = GiSTIndex(1, "g", "p", node_size=4)
        idx.insert_entry(7, tid(1))
        assert idx.range_search(5, 10).tids == [tid(1)]
        assert idx.search(7).tids == [tid(1)]
        assert idx.search(8).tids == []

    def test_splits_reported_and_bounds_maintained(self):
        idx = GiSTIndex(1, "g", "span", node_size=4)
        splits = []
        for i in range(40):
            result = idx.insert_entry((i * 3, i * 3 + 5), tid(i))
            splits.extend(result.splits)
        assert splits
        idx.check_invariants()
        assert idx.entry_count() == 40

    def test_scan_visits_internal_nodes(self):
        idx = GiSTIndex(1, "g", "span", node_size=4)
        for i in range(30):
            idx.insert_entry((i, i + 1), tid(i))
        result = idx.range_search(10, 12)
        # More pages visited than a single leaf: internal nodes count.
        assert len(result.visited_pages) >= 2

    def test_insert_reports_whole_path(self):
        idx = GiSTIndex(1, "g", "span", node_size=4)
        for i in range(30):
            idx.insert_entry((i, i + 1), tid(i))
        result = idx.insert_entry((15, 16), tid(99))
        assert len(result.leaf_pages) >= 2  # leaf + ancestors

    def test_remove_entry(self):
        idx = GiSTIndex(1, "g", "span", node_size=4)
        for i in range(20):
            idx.insert_entry((i, i + 2), tid(i))
        idx.remove_entry((5, 7), tid(5))
        assert tid(5) not in idx.range_search(5, 7).tids
        assert idx.entry_count() == 19
        idx.check_invariants()

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 100)),
                    max_size=80),
           st.integers(0, 100), st.integers(0, 100))
    def test_overlap_search_matches_reference(self, intervals, a, b):
        lo, hi = min(a, b), max(a, b)
        idx = GiSTIndex(1, "g", "span", node_size=4)
        for i, pair in enumerate(intervals):
            idx.insert_entry(pair, tid(i))
        idx.check_invariants()
        got = sorted(idx.range_search(lo, hi).tids)
        want = sorted(tid(i) for i, pair in enumerate(intervals)
                      if _overlaps(_as_interval(pair), (lo, hi)))
        assert got == want


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("bookings", ["bid", "room", "span"], key="bid")
    database.create_index("bookings", "span", using="gist")
    s = database.session()
    s.insert("bookings", {"bid": 1, "room": "A", "span": (0, 10)})
    s.insert("bookings", {"bid": 2, "room": "B", "span": (20, 30)})
    return database


class TestEngineIntegration:
    def test_overlaps_predicate_uses_gist(self, db):
        s = db.session()
        rows = s.select("bookings", Overlaps("span", 5, 8))
        assert [r["bid"] for r in rows] == [1]
        rows = s.select("bookings", Overlaps("span", 0, 100))
        assert len(rows) == 2

    def test_gist_phantom_detection(self, db):
        """The booking write-skew: two transactions check an interval
        is free and both insert overlapping bookings. The GiST
        node-level SIREAD locks must catch it."""
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        assert s1.select("bookings", Overlaps("span", 12, 18)) == []
        assert s2.select("bookings", Overlaps("span", 12, 18)) == []
        s1.insert("bookings", {"bid": 3, "room": "A", "span": (12, 15)})
        s2.insert("bookings", {"bid": 4, "room": "A", "span": (14, 18)})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()

    def test_gist_under_nextkey_config_still_uses_node_locks(self):
        """GiST has no linear key order, so the nextkey setting falls
        back to node locking for it -- phantoms are still caught."""
        database = Database(EngineConfig(
            ssi=SSIConfig(index_locking="nextkey")))
        database.create_table("bookings", ["bid", "span"], key="bid")
        database.create_index("bookings", "span", using="gist")
        s1, s2 = database.session(), database.session()
        s1.begin(SER)
        s2.begin(SER)
        assert s1.select("bookings", Overlaps("span", 0, 10)) == []
        assert s2.select("bookings", Overlaps("span", 0, 10)) == []
        s1.insert("bookings", {"bid": 1, "span": (1, 2)})
        s2.insert("bookings", {"bid": 2, "span": (3, 4)})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.commit()

    def test_serial_bookings_never_abort(self, db):
        s = db.session()
        s.begin(SER)
        if s.select("bookings", Overlaps("span", 12, 18)) == []:
            s.insert("bookings", {"bid": 3, "room": "A", "span": (12, 15)})
        s.commit()
        s.begin(SER)
        assert s.select("bookings", Overlaps("span", 12, 18)) != []
        s.commit()

    def test_replication_mirrors_gist(self, db):
        from repro.replication import Replica
        replica = Replica(db)
        db.session().insert("bookings",
                            {"bid": 5, "room": "C", "span": (40, 50)})
        replica.catch_up()
        rows = replica.query("bookings", Overlaps("span", 45, 46))
        assert [r["bid"] for r in rows] == [5]
