"""Tests for the cost-based query planner: ANALYZE statistics and
histogram selectivity, the engine plan cache and its epoch-based
invalidation on ANALYZE/DDL, the SQL parse + prepared-statement caches,
and EXPLAIN output stability."""

import pytest

from repro.config import EngineConfig, PerfConfig, SSIConfig
from repro.engine import Database
from repro.engine.planner import PlanNode, explain_scan
from repro.engine.predicate import (AlwaysTrue, And, Between, Eq, Gt, Lt,
                                    Or, plan_shape)
from repro.errors import UserError
from repro.sql import SQLSession, SQLSyntaxError
from repro.storage.stats import (DEFAULT_EQ_SEL, DEFAULT_INEQ_SEL,
                                 ColumnStats, RelationStats, StatsCatalog)


def make_db(**perf) -> Database:
    return Database(EngineConfig(perf=PerfConfig(**perf)))


def load(db: Database, rows: int = 200) -> None:
    """t(k primary, grp indexed 2-distinct, v unindexed)."""
    db.create_table("t", ["k", "grp", "v"], key="k")
    db.create_index("t", "grp")
    session = db.session()
    session.begin()
    for i in range(rows):
        session.insert("t", {"k": i, "grp": i % 2, "v": i * 10})
    session.commit()


# ---------------------------------------------------------------------------
# histogram selectivity
# ---------------------------------------------------------------------------
class TestColumnStats:
    def test_from_values_basics(self):
        stats = ColumnStats.from_values(list(range(100)))
        assert stats.n_distinct == 100
        assert stats.min_value == 0 and stats.max_value == 99
        assert stats.histogram[0] == 0 and stats.histogram[-1] == 99
        assert stats.sample_rows == 100

    def test_eq_selectivity_is_value_independent(self):
        stats = ColumnStats.from_values([i % 4 for i in range(100)])
        assert stats.eq_selectivity() == pytest.approx(0.25)

    def test_eq_selectivity_default_without_values(self):
        assert ColumnStats.from_values([]).eq_selectivity() == DEFAULT_EQ_SEL
        assert ColumnStats.from_values([None]).eq_selectivity() \
            == DEFAULT_EQ_SEL

    def test_range_selectivity_uniform(self):
        stats = ColumnStats.from_values(list(range(100)))
        half = stats.range_selectivity(None, 49)
        assert 0.4 < half < 0.6
        tenth = stats.range_selectivity(None, 9)
        assert tenth < half / 2

    def test_range_selectivity_clamps(self):
        stats = ColumnStats.from_values(list(range(100)))
        assert stats.range_selectivity(None, None) == 1.0
        assert stats.range_selectivity(1000, None) == 0.0
        assert stats.range_selectivity(None, -5) == 0.0
        assert stats.range_selectivity(-5, 1000) == 1.0

    def test_range_selectivity_interpolates_between_bounds(self):
        stats = ColumnStats.from_values(list(range(0, 1000, 10)))
        quarter = stats.range_selectivity(None, 249)
        assert 0.15 < quarter < 0.35

    def test_incomparable_types_never_raise(self):
        stats = ColumnStats.from_values([1, "a", (2, 3), None])
        assert stats.n_distinct == 3
        # A bound incomparable to the histogram falls back to defaults.
        assert stats.range_selectivity(object(), None) == DEFAULT_INEQ_SEL

    def test_string_histogram_charges_half_bucket(self):
        stats = ColumnStats.from_values(["a", "b", "c", "d"])
        sel = stats.range_selectivity(None, "b")
        assert 0.0 < sel < 1.0


class TestStatsCatalog:
    def test_note_write_tracks_live_rows(self):
        cat = StatsCatalog()
        cat.install(RelationStats(oid=7, name="t", analyzed_rows=10))
        cat.note_write(7, "insert")
        cat.note_write(7, "insert")
        cat.note_write(7, "delete")
        cat.note_write(7, "update")  # net zero
        assert cat.get(7).live_rows == 11

    def test_note_write_unknown_oid_is_noop(self):
        cat = StatsCatalog()
        cat.note_write(99, "insert")  # must not raise
        assert cat.get(99) is None

    def test_live_rows_never_negative(self):
        cat = StatsCatalog()
        cat.install(RelationStats(oid=7, name="t", analyzed_rows=1))
        for _ in range(5):
            cat.note_write(7, "delete")
        assert cat.get(7).live_rows == 0

    def test_install_and_forget_bump_epoch(self):
        cat = StatsCatalog()
        e0 = cat.epoch
        cat.install(RelationStats(oid=7, name="t"))
        assert cat.epoch == e0 + 1
        cat.forget(7)
        assert cat.epoch == e0 + 2 and cat.get(7) is None


class TestAnalyze:
    def test_analyze_builds_stats_for_indexed_columns_only(self):
        db = make_db()
        load(db, rows=50)
        (stats,) = db.analyze("t")
        assert stats.analyzed_rows == 50
        assert set(stats.columns) == {"k", "grp"}  # v is unindexed
        assert stats.columns["grp"].n_distinct == 2
        assert stats.columns["k"].n_distinct == 50

    def test_analyze_sees_only_committed_rows(self):
        db = make_db()
        load(db, rows=20)
        open_txn = db.session()
        open_txn.begin()
        open_txn.insert("t", {"k": 999, "grp": 0, "v": 0})
        (stats,) = db.analyze("t")
        assert stats.analyzed_rows == 20
        open_txn.rollback()

    def test_analyze_all_covers_every_table(self):
        db = make_db()
        load(db)
        db.create_table("u", ["a"], key="a")
        names = {s.name for s in db.analyze()}
        assert names == {"t", "u"}


# ---------------------------------------------------------------------------
# cost-based choice
# ---------------------------------------------------------------------------
class TestCostPlanner:
    def test_rule_based_without_stats(self):
        db = make_db()
        load(db)
        choice = db.planner.choose(db.relation("t"), Eq("grp", 1))
        assert choice.source == "rule" and choice.index_name is not None

    def test_cost_picks_most_selective_conjunct(self):
        """The low-cardinality conjunct comes FIRST in the AND; the
        seed rule would scan half the table through t_grp. With stats
        the planner must pick the unique key instead."""
        db = make_db()
        load(db)
        db.analyze()
        pred = And(Eq("grp", 1), Eq("k", 7))
        choice = db.planner.choose(db.relation("t"), pred)
        assert choice.source == "cost"
        assert choice.column == "k"
        assert choice.index_name == "t_pkey"
        assert choice.est_rows == pytest.approx(1.0)

    def test_cost_falls_back_to_seq_scan_when_unselective(self):
        db = make_db()
        load(db)
        db.analyze()
        choice = db.planner.choose(db.relation("t"), Between("grp", 0, 1))
        assert choice.source == "cost" and choice.is_seq_scan

    def test_toggle_off_keeps_rule_plans_even_with_stats(self):
        db = make_db(cost_planner=False)
        load(db)
        db.analyze()
        pred = And(Eq("grp", 1), Eq("k", 7))
        choice = db.planner.choose(db.relation("t"), pred)
        assert choice.source == "rule"
        assert choice.column == "grp"  # first equality conjunct wins

    def test_plan_is_deterministic(self):
        def plan_once():
            db = make_db()
            load(db)
            db.analyze()
            c = db.planner.choose(db.relation("t"),
                                  And(Gt("k", 10), Eq("grp", 0)))
            return (c.index_name, c.column, c.cost, c.source)
        assert plan_once() == plan_once()


class TestIndexRangePreference:
    """Satellite fix: And.index_range must prefer an equality conjunct
    over an earlier open range (even with the cost planner off)."""

    def test_equality_beats_earlier_range(self):
        rng = And(Gt("v", 5), Eq("k", 3)).index_range()
        assert rng.column == "k" and rng.is_equality

    def test_first_range_when_no_equality(self):
        rng = And(Gt("v", 5), Lt("k", 9)).index_range()
        assert rng.column == "v"

    def test_plan_shape_excludes_eq_values(self):
        assert plan_shape(Eq("k", 1)) == plan_shape(Eq("k", 2))
        assert plan_shape(Eq("k", 1)) != plan_shape(Eq("grp", 1))

    def test_plan_shape_includes_range_bounds(self):
        assert plan_shape(Gt("k", 1)) != plan_shape(Gt("k", 2))

    def test_plan_shape_uncacheable_forms(self):
        assert plan_shape(Or(Eq("k", 1), Eq("k", 2))) is None
        assert plan_shape(Lt("k", [1, 2])) is None  # unhashable bound
        assert plan_shape(And(Eq("k", 1),
                              Or(Eq("v", 1), Eq("v", 2)))) is None

    def test_plan_shape_always_true(self):
        assert plan_shape(AlwaysTrue()) == ("true",)


# ---------------------------------------------------------------------------
# plan cache + invalidation
# ---------------------------------------------------------------------------
class TestPlanCache:
    def test_same_shape_different_value_hits(self):
        db = make_db()
        load(db)
        hits = db.obs.metrics.counter("perf.plan_cache_hits")
        rel = db.relation("t")
        db.planner.plan_scan(rel, Eq("k", 1))
        before = hits.value
        index, rng = db.planner.plan_scan(rel, Eq("k", 2))
        assert hits.value == before + 1
        assert rng.lo == 2  # cached plan, live predicate's bounds

    def test_analyze_invalidates_cached_plans(self):
        db = make_db()
        load(db)
        misses = db.obs.metrics.counter("perf.plan_cache_misses")
        rel = db.relation("t")
        db.planner.plan_scan(rel, Eq("k", 1))
        db.analyze()
        before = misses.value
        db.planner.plan_scan(rel, Eq("k", 1))
        assert misses.value == before + 1

    def test_ddl_invalidates_cached_plans(self):
        db = make_db()
        load(db)
        misses = db.obs.metrics.counter("perf.plan_cache_misses")
        rel = db.relation("t")
        db.planner.plan_scan(rel, Eq("v", 1))
        db.create_index("t", "v")
        before = misses.value
        index, rng = db.planner.plan_scan(rel, Eq("v", 1))
        assert misses.value == before + 1
        assert index is not None  # the new access path is picked up

    def test_cache_disabled_never_counts(self):
        db = make_db(plan_cache=False)
        load(db)
        rel = db.relation("t")
        for _ in range(3):
            db.planner.plan_scan(rel, Eq("k", 1))
        assert db.obs.metrics.counter("perf.plan_cache_hits").value == 0
        assert db.obs.metrics.counter("perf.plan_cache_misses").value == 0

    def test_cached_and_fresh_plans_agree(self):
        db = make_db()
        load(db)
        db.analyze()
        rel = db.relation("t")
        pred = And(Eq("grp", 0), Eq("k", 3))
        first = db.planner.plan_scan(rel, pred)
        second = db.planner.plan_scan(rel, pred)  # served from cache
        assert first[0] is second[0]
        assert first[1] == second[1]


# ---------------------------------------------------------------------------
# EXPLAIN
# ---------------------------------------------------------------------------
class TestExplain:
    def test_output_is_stable(self):
        db = make_db()
        load(db)
        db.analyze()
        rel = db.relation("t")
        pred = And(Eq("grp", 1), Eq("k", 7))
        assert str(explain_scan(db, rel, pred)) \
            == str(explain_scan(db, rel, pred))

    def test_source_flips_from_rule_to_cost_after_analyze(self):
        db = make_db()
        load(db)
        rel = db.relation("t")
        assert explain_scan(db, rel, Eq("k", 7)).source == "rule"
        db.analyze()
        assert explain_scan(db, rel, Eq("k", 7)).source == "cost"

    def test_seq_scan_locks_whole_relation(self):
        db = make_db()
        load(db)
        node = explain_scan(db, db.relation("t"), AlwaysTrue())
        assert node.node == "Seq Scan"
        assert node.lock_granularity == "relation"

    def test_index_scan_lock_granularity_tracks_config(self):
        for locking, expected in (("page", "page"), ("nextkey", "key-range")):
            db = Database(EngineConfig(ssi=SSIConfig(index_locking=locking)))
            load(db)
            node = explain_scan(db, db.relation("t"), Eq("k", 7))
            assert node.node == "Index Scan"
            assert node.lock_granularity == expected, locking

    def test_to_dict_round_trips_key_fields(self):
        db = make_db()
        load(db)
        db.analyze()
        d = explain_scan(db, db.relation("t"), Eq("k", 7)).to_dict()
        assert d["node"] == "Index Scan" and d["index"] == "t_pkey"
        assert d["source"] == "cost" and "cost" in d


# ---------------------------------------------------------------------------
# SQL layer: ANALYZE/EXPLAIN statements, parse + plan caches
# ---------------------------------------------------------------------------
@pytest.fixture
def sql():
    db = make_db()
    session = SQLSession(db.session())
    session.execute("CREATE TABLE t (k PRIMARY KEY, grp, v)")
    session.execute("CREATE INDEX ON t (grp)")
    session.execute("BEGIN")
    for i in range(40):
        session.execute(
            f"INSERT INTO t (k, grp, v) VALUES ({i}, {i % 2}, {i * 10})")
    session.execute("COMMIT")
    return session


class TestSQLPlanner:
    def test_analyze_statement(self, sql):
        names = [s.name for s in sql.execute("ANALYZE t")]
        assert names == ["t"]
        names = [s.name for s in sql.execute("ANALYZE")]
        assert "t" in names

    def test_explain_is_stable_text(self, sql):
        sql.execute("ANALYZE t")
        q = "EXPLAIN SELECT * FROM t WHERE grp = 1 AND k = 7"
        first, second = sql.execute(q), sql.execute(q)
        assert first == second
        assert any("Index Scan using t_pkey" in line for line in first)
        assert any("plan=cost" in line for line in first)

    def test_explain_analyze_reports_actuals(self, sql):
        lines = sql.execute("EXPLAIN ANALYZE SELECT * FROM t WHERE k = 7")
        assert any(line.strip().startswith("Actual: rows=1")
                   for line in lines)

    def test_parse_cache_hits_on_repeat(self, sql):
        hits = sql.session.db.obs.metrics.counter("perf.parse_cache_hits")
        sql.execute("SELECT * FROM t WHERE k = 7")
        before = hits.value
        sql.execute("SELECT * FROM t WHERE k = 7")
        assert hits.value == before + 1

    def test_prepare_execute_deallocate(self, sql):
        sql.execute("PREPARE q AS SELECT * FROM t WHERE k = $1")
        rows = sql.execute("EXECUTE q(7)")
        assert [r["k"] for r in rows] == [7]
        rows = sql.execute("EXECUTE q(8)")
        assert [r["k"] for r in rows] == [8]
        sql.execute("DEALLOCATE q")
        with pytest.raises(UserError):
            sql.execute("EXECUTE q(7)")

    def test_duplicate_prepare_rejected(self, sql):
        sql.execute("PREPARE q AS SELECT * FROM t")
        with pytest.raises(UserError):
            sql.execute("PREPARE q AS SELECT * FROM t")

    def test_missing_param_rejected(self, sql):
        sql.execute("PREPARE q AS SELECT * FROM t WHERE k = $1")
        with pytest.raises(UserError):
            sql.execute("EXECUTE q")

    def test_param_outside_prepare_rejected(self, sql):
        with pytest.raises(SQLSyntaxError):
            sql.execute("SELECT * FROM t WHERE k = $0")

    def test_prepared_plan_replans_after_analyze(self, sql):
        sql.execute("PREPARE q AS SELECT * FROM t WHERE k = $1")
        sql.execute("EXECUTE q(1)")
        replans = sql.session.db.obs.metrics.counter("sql.prepared_replans")
        before = replans.value
        sql.execute("EXECUTE q(2)")       # same epoch: cached plan
        assert replans.value == before
        sql.execute("ANALYZE t")          # epoch bump invalidates it
        sql.execute("EXECUTE q(3)")
        assert replans.value == before + 1

    def test_deallocate_all(self, sql):
        sql.execute("PREPARE a AS SELECT * FROM t")
        sql.execute("PREPARE b AS SELECT * FROM t")
        sql.execute("DEALLOCATE ALL")
        for name in ("a", "b"):
            with pytest.raises(UserError):
                sql.execute(f"EXECUTE {name}")

    def test_explain_execute_uses_bound_args(self, sql):
        sql.execute("ANALYZE t")
        sql.execute("PREPARE q AS SELECT * FROM t WHERE grp = $1 AND k = $2")
        lines = sql.execute("EXPLAIN EXECUTE q(1, 7)")
        assert any("Index Scan using t_pkey" in line for line in lines)
