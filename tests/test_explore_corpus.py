"""Anomaly regression corpus: every checked-in replay file must keep
reproducing its anomaly, and the serializable implementations must keep
preventing it.

Each file under tests/explore_corpus/ pins one witness schedule for a
canonical anomaly from the paper. The contract per file:

* replayed strictly at its own isolation level (snapshot isolation),
  the exact committed history is NOT serializable -- the anomaly is
  still there, deterministically;
* replayed under SERIALIZABLE, at least one transaction hits a
  serialization failure (SSI breaks the dangerous structure) and the
  committed history IS serializable;
* replayed under S2PL, the committed history is serializable.

If an engine change breaks any of these, the failing replay file is
the smallest known reproducer -- debug with
``python -m repro.explore replay tests/explore_corpus/<name>.json``.
"""

from pathlib import Path

import pytest

from repro.engine.isolation import IsolationLevel
from repro.explore import load_replay, run_replay

CORPUS_DIR = Path(__file__).resolve().parent / "explore_corpus"
CORPUS_FILES = sorted(CORPUS_DIR.glob("*.json"))

#: The canonical anomalies that must always be present.
REQUIRED = {"write_skew", "batch_processing", "receipt_report",
            "read_only_anomaly", "phantom_under_join",
            "write_skew_via_aggregate"}


def test_corpus_is_complete():
    names = {path.stem for path in CORPUS_FILES}
    assert REQUIRED <= names, f"missing corpus files: {REQUIRED - names}"


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_replay_file_is_well_formed(path):
    replay = load_replay(str(path))
    assert replay.isolation is IsolationLevel.REPEATABLE_READ
    assert replay.schedule, "empty schedule"
    assert replay.expect.get("anomaly"), \
        "corpus files must expect an anomaly (else they are vacuous)"
    assert replay.description


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_anomaly_reproduces_under_snapshot_isolation(path):
    replay = load_replay(str(path))
    result = run_replay(replay)  # strict, sanitized, own isolation
    assert result.record.complete, result.record.error
    assert not result.diverged, \
        "schedule no longer replays exactly -- engine nondeterminism?"
    assert not result.record.check.serializable, \
        f"{path.stem}: pinned SI anomaly disappeared"
    assert result.ok, result.summary()


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_replay_is_deterministic(path):
    replay = load_replay(str(path))
    first = run_replay(replay)
    second = run_replay(replay)
    assert first.record.state == second.record.state
    assert first.record.schedule == second.record.schedule
    assert (first.record.check.serializable
            == second.record.check.serializable)


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_ssi_prevents_the_anomaly(path):
    replay = load_replay(str(path))
    result = run_replay(replay, IsolationLevel.SERIALIZABLE)
    assert result.record.complete, result.record.error
    assert result.record.check.serializable, \
        f"{path.stem}: SSI committed the anomaly!"
    assert result.record.serialization_failures >= 1, \
        f"{path.stem}: SSI never aborted -- how did it stay serializable?"
    assert result.ok, result.summary()


@pytest.mark.parametrize("path", CORPUS_FILES, ids=lambda p: p.stem)
def test_s2pl_prevents_the_anomaly(path):
    replay = load_replay(str(path))
    result = run_replay(replay, IsolationLevel.S2PL)
    assert result.record.complete, result.record.error
    assert result.record.check.serializable, \
        f"{path.stem}: S2PL committed the anomaly!"
    assert result.ok, result.summary()
