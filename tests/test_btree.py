"""Unit and property-based tests for the B+-tree index."""

from hypothesis import given, settings, strategies as st

from repro.index import BTreeIndex, HashIndex
from repro.storage import TID

import pytest


def tid(i):
    return TID(i // 32, i % 32)


class TestBTreeBasics:
    def test_insert_and_search(self):
        idx = BTreeIndex(1, "i", "k", page_size=4)
        idx.insert_entry(10, tid(1))
        idx.insert_entry(20, tid(2))
        assert idx.search(10).tids == [tid(1)]
        assert idx.search(15).tids == []
        assert idx.entry_count() == 2

    def test_duplicate_keys_different_tids(self):
        idx = BTreeIndex(1, "i", "k", page_size=4)
        for i in range(5):
            idx.insert_entry(7, tid(i))
        assert sorted(idx.search(7).tids) == sorted(tid(i) for i in range(5))

    def test_duplicate_key_tid_pair_is_idempotent(self):
        idx = BTreeIndex(1, "i", "k", page_size=4)
        idx.insert_entry(7, tid(1))
        idx.insert_entry(7, tid(1))
        assert idx.entry_count() == 1

    def test_range_search_inclusive_exclusive(self):
        idx = BTreeIndex(1, "i", "k", page_size=4)
        for i in range(10):
            idx.insert_entry(i, tid(i))
        assert [idx.search(i).tids for i in range(10)]
        r = idx.range_search(3, 6)
        assert sorted(t.slot for t in r.tids) == [3, 4, 5, 6]
        r = idx.range_search(3, 6, lo_incl=False, hi_incl=False)
        assert sorted(t.slot for t in r.tids) == [4, 5]

    def test_open_ended_ranges(self):
        idx = BTreeIndex(1, "i", "k", page_size=4)
        for i in range(10):
            idx.insert_entry(i, tid(i))
        assert len(idx.range_search(None, 4).tids) == 5
        assert len(idx.range_search(5, None).tids) == 5
        assert len(idx.range_search(None, None).tids) == 10

    def test_empty_range_still_visits_gap_page(self):
        # Phantom detection: scanning an empty range must report the
        # page where matching keys would land.
        idx = BTreeIndex(1, "i", "k", page_size=4)
        for i in (1, 2, 8, 9):
            idx.insert_entry(i, tid(i))
        r = idx.range_search(4, 6)
        assert r.tids == []
        assert r.visited_pages

    def test_splits_reported(self):
        idx = BTreeIndex(1, "i", "k", page_size=4)
        splits = []
        for i in range(20):
            splits.extend(idx.insert_entry(i, tid(i)).splits)
        assert splits, "expected at least one page split"
        old_pages = {s[0] for s in splits}
        new_pages = {s[1] for s in splits}
        assert old_pages and new_pages

    def test_remove_entry(self):
        idx = BTreeIndex(1, "i", "k", page_size=4)
        for i in range(10):
            idx.insert_entry(i % 3, tid(i))
        idx.remove_entry(0, tid(0))
        assert tid(0) not in idx.search(0).tids
        assert idx.entry_count() == 9
        idx.remove_entry(0, tid(999))  # absent tid: no-op
        assert idx.entry_count() == 9

    def test_string_keys(self):
        idx = BTreeIndex(1, "i", "k", page_size=4)
        for word in ["pear", "apple", "fig", "date", "cherry", "banana"]:
            idx.insert_entry(word, tid(hash(word) % 100))
        r = idx.range_search("b", "d")
        assert len(r.tids) == 2  # banana, cherry


class TestBTreeProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=200), max_size=300))
    def test_invariants_after_inserts(self, keys):
        idx = BTreeIndex(1, "i", "k", page_size=5)
        for i, k in enumerate(keys):
            idx.insert_entry(k, tid(i))
        idx.check_invariants()
        assert idx.entry_count() == len(keys)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=100), max_size=200),
           st.integers(min_value=0, max_value=100),
           st.integers(min_value=0, max_value=100))
    def test_range_search_matches_reference(self, keys, a, b):
        lo, hi = min(a, b), max(a, b)
        idx = BTreeIndex(1, "i", "k", page_size=5)
        for i, k in enumerate(keys):
            idx.insert_entry(k, tid(i))
        got = sorted(idx.range_search(lo, hi).tids)
        want = sorted(tid(i) for i, k in enumerate(keys) if lo <= k <= hi)
        assert got == want

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 50), st.booleans()),
                    max_size=150))
    def test_invariants_with_deletes(self, ops):
        idx = BTreeIndex(1, "i", "k", page_size=5)
        present = {}
        for i, (k, is_delete) in enumerate(ops):
            if is_delete and present:
                dk, dt = next(iter(present.items()))
                idx.remove_entry(dt, TID(dk, 0))
                del present[dk]
            else:
                idx.insert_entry(k, TID(i, 0))
                present[i] = k
        idx.check_invariants()
        assert idx.entry_count() == len(present)


class TestHashIndex:
    def test_equality_lookup(self):
        idx = HashIndex(2, "h", "k")
        idx.insert_entry("x", tid(1))
        idx.insert_entry("x", tid(2))
        assert sorted(idx.search("x").tids) == sorted([tid(1), tid(2)])
        assert idx.search("y").tids == []

    def test_no_range_scans(self):
        idx = HashIndex(2, "h", "k")
        with pytest.raises(NotImplementedError):
            idx.range_search(1, 2)

    def test_no_predicate_lock_support(self):
        assert HashIndex.supports_predicate_locks is False
        assert BTreeIndex.supports_predicate_locks is True

    def test_remove(self):
        idx = HashIndex(2, "h", "k")
        idx.insert_entry("x", tid(1))
        idx.remove_entry("x", tid(1))
        assert idx.search("x").tids == []
        assert idx.entry_count() == 0
