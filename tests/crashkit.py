"""Crash-point fault-injection harness for the durability tests.

The durability layer funnels every durable byte through
:class:`repro.storage.durable.io.DurableIO`, whose ``fault_hook`` sees
each write/fsync/truncate *before* it happens. :class:`CrashInjector`
counts those operations and cuts power at a chosen one -- either a
clean power cut (the operation never happens) or a torn write (a
prefix of the bytes lands, then the machine dies). Counting a fresh
run's operations enumerates every crash point, which is what the
exhaustive sweep in test_crash_injection.py iterates over.

The crash model is process-kill + lost-partial-write: bytes the engine
successfully wrote (``f.write`` + flush) survive, the injected
operation and everything after it never happen. Torn-write injection
covers the stronger power-loss case where a sector-spanning write is
cut mid-way.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from typing import Callable, List, Optional, Tuple

from repro.config import DurabilityConfig, EngineConfig
from repro.engine.isolation import IsolationLevel
from repro.explore.explorer import canonical_state
from repro.explore.program import Program
from repro.storage.durable import SimulatedCrash, open_database

#: When set (CI does), a failing crash point's whole data directory --
#: page files, checkpoint.json, the WAL, plus report.json and a hex
#: dump of the WAL tail -- is copied under this directory before the
#: sweep's tempdir cleanup, so the exact broken byte state ships as a
#: build artifact instead of evaporating with the tempdir.
ARTIFACT_ENV = "REPRO_CRASH_ARTIFACTS"


def preserve_failure(data_dir: str, report: dict, *,
                     torn: bool = False) -> Optional[str]:
    """Copy a failing crash point's data dir into $REPRO_CRASH_ARTIFACTS
    (no-op when unset). Returns the destination path, also recorded in
    ``report["artifact"]``."""
    dest_root = os.environ.get(ARTIFACT_ENV)
    if not dest_root:
        return None
    name = f"crash-{report.get('crash_at', 'unknown')}" + \
        ("-torn" if torn else "")
    dest = os.path.join(dest_root, name)
    shutil.copytree(data_dir, dest, dirs_exist_ok=True)
    wal_path = os.path.join(data_dir, "wal.log")
    if os.path.exists(wal_path):
        size = os.path.getsize(wal_path)
        with open(wal_path, "rb") as fh:
            fh.seek(max(0, size - 4096))
            tail = fh.read()
        with open(os.path.join(dest, "wal.tail.hex"), "w") as fh:
            fh.write(f"# last {len(tail)} of {size} WAL bytes\n")
            fh.write(tail.hex())
    report["artifact"] = dest
    with open(os.path.join(dest, "report.json"), "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True, default=str)
    return dest


class CrashInjector:
    """DurableIO fault hook that cuts power at IO operation number
    ``crash_at`` (1-based). With ``torn=True`` and the fatal operation
    being a multi-byte write, only the first half of the bytes land
    (a torn write) before the crash."""

    def __init__(self, crash_at: int, *, torn: bool = False) -> None:
        self.crash_at = crash_at
        self.torn = torn
        self.count = 0
        self.fired = False

    def __call__(self, op: str, path: str, nbytes: int) -> Optional[int]:
        self.count += 1
        if self.count == self.crash_at:
            self.fired = True
            if self.torn and op == "write" and nbytes > 1:
                return nbytes // 2
            raise SimulatedCrash(op, path, f"(op #{self.count})")
        return None


class OpCounter:
    """Fault hook that only counts (the dry run that sizes the sweep)."""

    def __init__(self) -> None:
        self.count = 0

    def __call__(self, op: str, path: str, nbytes: int) -> Optional[int]:
        self.count += 1
        return None


def durable_config(data_dir: str, **durability_kw) -> EngineConfig:
    """Test config: durability on, OS-level fsync off (the crash model
    is process-kill, so os.fsync only costs time), small auto-checkpoint
    threshold so sweeps cross checkpoint boundaries."""
    durability_kw.setdefault("fsync", False)
    durability_kw.setdefault("checkpoint_wal_bytes", 2000)
    cfg = EngineConfig.durable(
        data_dir,
        durability=DurabilityConfig(**durability_kw))
    return cfg


def run_serial_workload(program: Program, data_dir: str,
                        isolation: IsolationLevel,
                        hook: Optional[Callable] = None,
                        **durability_kw) -> Tuple[int, bool, object]:
    """Build a durable database for ``program`` and run its
    transactions serially (client order). The fault hook is installed
    *after* the initial load, so crash points index the workload's own
    IO. Returns ``(completed_txn_count, crashed, db)``; on a
    SimulatedCrash the on-disk state is frozen -- the crashed db must
    be abandoned, never closed (close would checkpoint and repair it).
    """
    cfg = durable_config(data_dir, **durability_kw)
    db = program.build_db(config=cfg)
    if hook is not None:
        db.durability.io.fault_hook = hook
    session = db.session()
    done = 0
    try:
        for _name, txn in program.all_txns():
            program.run_txn_directly(session, txn, isolation)
            done += 1
    except SimulatedCrash:
        return done, True, db
    return done, False, db


def reference_states(program: Program,
                     isolation: IsolationLevel) -> List[tuple]:
    """Canonical state after each serially-committed transaction on the
    in-memory engine: ``states[i]`` is the state once the first ``i``
    transactions committed (``states[0]`` = initial load)."""
    db = program.build_db()
    session = db.session()
    states = [canonical_state(db, program)]
    for _name, txn in program.all_txns():
        program.run_txn_directly(session, txn, isolation)
        states.append(canonical_state(db, program))
    return states


def sweep_crash_points(program: Program, isolation: IsolationLevel, *,
                       crash_points, torn: bool = False,
                       **durability_kw) -> List[dict]:
    """Crash the serial workload at each crash point, recover, and
    check the recovered database:

    * the recovered state is a *committed prefix* of the uncrashed
      run: equal to the reference state after ``c`` or ``c+1``
      transactions, where ``c`` transactions had committed before the
      power cut (only the in-flight commit may go either way);
    * re-running the remaining transactions on the recovered database
      reproduces the uncrashed run's final state exactly.

    Returns one report dict per crash point (tests assert on them).
    """
    states = reference_states(program, isolation)
    txns = program.all_txns()
    reports = []
    for crash_at in crash_points:
        data_dir = tempfile.mkdtemp(prefix="repro-crash-")
        try:
            injector = CrashInjector(crash_at, torn=torn)
            completed, crashed, _db = run_serial_workload(
                program, data_dir, isolation, hook=injector,
                **durability_kw)
            recovered = open_database(
                data_dir, durable_config(data_dir, **durability_kw))
            state = canonical_state(recovered, program)
            if state == states[completed + 1 if crashed else completed]:
                resume_from = completed + 1 if crashed else completed
            elif crashed and state == states[completed]:
                resume_from = completed
            else:
                report = {"crash_at": crash_at, "ok": False,
                          "why": "recovered state is not a "
                                 "committed prefix",
                          "completed": completed}
                preserve_failure(data_dir, report, torn=torn)
                reports.append(report)
                recovered.close()
                continue
            session = recovered.session()
            for _name, txn in txns[resume_from:]:
                program.run_txn_directly(session, txn, isolation)
            final = canonical_state(recovered, program)
            report = {
                "crash_at": crash_at, "ok": final == states[-1],
                "why": "" if final == states[-1]
                       else "resumed run diverged from uncrashed final "
                            "state",
                "completed": completed, "resume_from": resume_from,
                "crashed": crashed,
                "recovery": recovered.durability.last_recovery,
            }
            if not report["ok"]:
                preserve_failure(data_dir, report, torn=torn)
            recovered.close()
            reports.append(report)
        finally:
            shutil.rmtree(data_dir, ignore_errors=True)
    return reports


def count_workload_ops(program: Program,
                       isolation: IsolationLevel,
                       **durability_kw) -> int:
    """Size the exhaustive sweep: total fault-hook operations in one
    uncrashed serial run of the workload."""
    data_dir = tempfile.mkdtemp(prefix="repro-count-")
    try:
        counter = OpCounter()
        _done, _crashed, db = run_serial_workload(
            program, data_dir, isolation, hook=counter, **durability_kw)
        db.durability.io.fault_hook = None
        db.close()
        return counter.count
    finally:
        shutil.rmtree(data_dir, ignore_errors=True)
