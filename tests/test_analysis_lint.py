"""The AST invariant linter (repro.analysis.lint): rule fixtures,
noqa suppression, fix-it hints, and a clean run over the real tree."""

import os
import textwrap

from repro.analysis.lint import all_rules, lint_paths
from repro.analysis.lint.core import (ProjectIndex, build_contexts,
                                      module_name_for)

SRC_REPRO = os.path.join(os.path.dirname(os.path.dirname(__file__)),
                         "src", "repro")


def lint_snippet(tmp_path, source, relpath="repro/mod.py", extra=()):
    """Write dedented ``source`` at ``relpath`` (plus any ``extra``
    (relpath, source) files) under tmp_path and lint them together."""
    paths = []
    for rel, text in [(relpath, source)] + list(extra):
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text))
        paths.append(str(path))
    return lint_paths(paths)


def rule_ids(report):
    return [f.rule for f in report.findings]


class TestCatalog:
    def test_rule_ids_unique_and_hinted(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert len(ids) == len(set(ids))
        for rule in rules:
            assert rule.hint, f"{rule.id} has no fix-it hint"
            assert rule.description, f"{rule.id} has no description"

    def test_module_name_anchors_on_repro(self):
        assert module_name_for("src/repro/mvcc/clog.py") == "repro.mvcc.clog"
        assert module_name_for("src/repro/engine/__init__.py") == \
            "repro.engine"
        assert module_name_for("/tmp/whatever/scratch.py") == "scratch"


class TestClogDiscipline:
    def test_flags_status_methods_in_engine_module(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def visible(clog, tup):
                return clog.did_commit(tup.xmin)
            """)
        assert rule_ids(report) == ["CLOG001"]

    def test_flags_clog_status_call(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def peek(clog, xid):
                return clog.status(xid)
            """)
        assert rule_ids(report) == ["CLOG001"]

    def test_visibility_layer_is_allowed(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def visible(clog, tup):
                return clog.did_commit(tup.xmin)
            """, relpath="repro/mvcc/visibility.py")
        assert report.ok

    def test_non_engine_module_is_ignored(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def poke(clog, xid):
                return clog.did_abort(xid)
            """, relpath="scripts/poke.py")
        assert report.ok

    def test_hint_names_visibility_layer(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def f(clog, x):
                return clog.in_progress(x)
            """)
        rendered = report.findings[0].render()
        assert "hint:" in rendered
        assert "repro.mvcc.visibility" in rendered


class TestDurabilityDiscipline:
    def test_flags_page_write_outside_durable_layer(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def sneak(store, payload):
                store.write_page(1, 2, 0, 99, payload)
            """, relpath="repro/engine/hack.py")
        assert rule_ids(report) == ["DUR001"]

    def test_flags_raw_pwrite(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def sneak(io, f):
                io.pwrite(f, "x.pg", 0, b"data")
            """, relpath="repro/storage/heap_patch.py")
        assert rule_ids(report) == ["DUR001"]

    def test_durable_layer_owns_the_entry_points(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def write_back(store, payload):
                store.write_page(1, 2, 0, 99, payload)
            """, relpath="repro/storage/durable/manager.py")
        assert report.ok

    def test_tests_and_scripts_are_ignored(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def poke(store):
                store.write_page(1, 2, 0, 99, {})
            """, relpath="scripts/poke.py")
        assert report.ok

    def test_hint_mentions_pagelsn_rule(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def sneak(store):
                store.write_page(1, 2, 0, 99, {})
            """, relpath="repro/engine/hack.py")
        assert "pageLSN" in report.findings[0].render()


class TestDeterminism:
    def test_flags_time_and_random_imports(self, tmp_path):
        report = lint_snippet(tmp_path, """
            import random
            from time import monotonic
            """)
        assert rule_ids(report) == ["DET001", "DET001"]

    def test_allowlisted_module_passes(self, tmp_path):
        report = lint_snippet(tmp_path, "import time\n",
                              relpath="repro/obs/trace.py")
        assert report.ok

    def test_sim_prefix_passes(self, tmp_path):
        report = lint_snippet(tmp_path, "import random\n",
                              relpath="repro/sim/scheduler.py")
        assert report.ok

    def test_planner_id_dependence_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def choose(candidates):
                return min(candidates, key=lambda c: id(c))
            """, relpath="repro/engine/planner.py")
        assert rule_ids(report) == ["DET001"]
        assert "object identity" in report.findings[0].message

    def test_planner_dict_view_iteration_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def choose(indexes):
                for index in indexes.values():
                    return index
            """, relpath="repro/engine/planner.py")
        assert rule_ids(report) == ["DET001"]
        assert "insertion order" in report.findings[0].message

    def test_planner_min_over_dict_view_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def choose(costs):
                return min(costs.items())
            """, relpath="repro/engine/planner.py")
        assert rule_ids(report) == ["DET001"]

    def test_planner_explicit_key_passes(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def choose(candidates):
                return min(candidates,
                           key=lambda c: (c.cost, c.column, c.index_name))
            """, relpath="repro/engine/planner.py")
        assert report.ok

    def test_dict_views_fine_outside_pure_choice_modules(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def walk(indexes):
                for index in indexes.values():
                    index.touch()
            """, relpath="repro/storage/relation.py")
        assert report.ok


class TestSlotsConsistency:
    def test_flags_undeclared_attribute(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Node:
                __slots__ = ("left", "right")

                def __init__(self):
                    self.left = None
                    self.rigth = None
            """)
        findings = report.findings
        assert rule_ids(report) == ["SLOT001"]
        assert "self.rigth" in findings[0].message

    def test_inherited_slots_resolve_across_files(self, tmp_path):
        base = ("repro/base.py", """
            class Base:
                __slots__ = ("a",)
            """)
        report = lint_snippet(tmp_path, """
            from repro.base import Base

            class Child(Base):
                __slots__ = ("b",)

                def __init__(self):
                    self.a = 1
                    self.b = 2
                    self.c = 3
            """, extra=[base])
        assert rule_ids(report) == ["SLOT001"]
        assert "self.c" in report.findings[0].message

    def test_slotted_dataclass_fields_count(self, tmp_path):
        report = lint_snippet(tmp_path, """
            from dataclasses import dataclass

            @dataclass(slots=True)
            class Point:
                x: int
                y: int

                def shift(self):
                    self.x += 1
                    self.z = 0
            """)
        assert rule_ids(report) == ["SLOT001"]
        assert "self.z" in report.findings[0].message

    def test_unslotted_class_is_ignored(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Bag:
                def __init__(self):
                    self.anything = 1
            """)
        assert report.ok

    def test_name_collision_merges_fail_open(self, tmp_path):
        # Two files define a private helper with the same name but
        # different slots; neither may be checked against the other's
        # slot set (the regression that once flagged index/gist._Node).
        other = ("repro/btree.py", """
            class _Node:
                __slots__ = ("keys", "children")

                def __init__(self):
                    self.keys = []
                    self.children = []
            """)
        report = lint_snippet(tmp_path, """
            class _Node:
                __slots__ = ("entries", "bounds")

                def __init__(self):
                    self.entries = []
                    self.bounds = None
            """, relpath="repro/gist.py", extra=[other])
        assert report.ok

    def test_collision_with_unslotted_twin_fails_open(self, tmp_path):
        index = ProjectIndex()
        contexts, _ = build_contexts([str(p) for p in []])
        assert contexts == []
        # Direct index check: slotted + unslotted twins -> closure None.
        from repro.analysis.lint.core import ClassFacts
        index.record(ClassFacts("X", "repro.a", {"a"}))
        index.record(ClassFacts("X", "repro.b", None))
        assert index.slots_closure("X") is None


class TestLockRules:
    def test_private_member_access_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def hack(lockmgr, sx, target):
                lockmgr._add(sx, target)
            """)
        assert "LOCK001" in rule_ids(report)

    def test_owner_package_may_touch_internals(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def cleanup(lockmgr, sx):
                lockmgr._held.pop(sx, None)
            """, relpath="repro/ssi/cleanup.py")
        assert report.ok

    def test_acquire_without_release_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def grab(lockmgr, xid, tag, mode):
                return lockmgr.acquire(xid, tag, mode)
            """)
        assert rule_ids(report) == ["LOCK002"]

    def test_acquire_with_release_path_passes(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def grab(lockmgr, xid, tag, mode):
                lockmgr.acquire(xid, tag, mode)
                try:
                    pass
                finally:
                    lockmgr.release_all(xid)
            """)
        assert report.ok

    def test_latch_private_state_flagged_in_server(self, tmp_path):
        # Seeded violation: repro.server code reaching into a latch's
        # condition variable instead of using park/notify_all.
        report = lint_snippet(tmp_path, """
            def sneaky_wakeup(latch):
                latch._cond.notify_all()
            """, relpath="repro/server/hack.py")
        assert "LOCK001" in rule_ids(report)

    def test_latch_module_owns_its_internals(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def notify_all(latch):
                latch._cond.notify_all()
            """, relpath="repro/engine/latches.py")
        assert report.ok

    def test_latch_acquire_without_release_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def enter(wire_latch):
                wire_latch.acquire()
            """, relpath="repro/server/hack.py")
        assert rule_ids(report) == ["LOCK002"]

    def test_latch_acquire_with_release_passes(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def enter(wire_latch):
                wire_latch.acquire()
                try:
                    pass
                finally:
                    wire_latch.release()
            """, relpath="repro/server/hack.py")
        assert report.ok

    def test_park_and_bow_are_not_acquisitions(self, tmp_path):
        # CV parking releases and re-acquires the latch internally;
        # park()/bow() must not trip the acquire/release pairing rule
        # even though the function never mentions a release.
        report = lint_snippet(tmp_path, """
            def wait_ready(latch, condition, deadline):
                if latch.park(lambda: condition.ready, deadline=deadline):
                    return True
                latch.bow()
                return False
            """, relpath="repro/server/hack.py")
        assert report.ok, report.render()

    def test_leaked_acquire_on_timeout_path_flagged(self, tmp_path):
        # A bare acquire whose only exits are early returns leaks the
        # latch on the timeout path: no release anywhere in the
        # function, so LOCK002 fires.
        report = lint_snippet(tmp_path, """
            def begin_wait(latch, deadline_passed):
                latch.acquire()
                if deadline_passed():
                    return False
                return True
            """, relpath="repro/server/hack.py")
        assert rule_ids(report) == ["LOCK002"]


class TestTogglePurity:
    def test_work_units_in_fast_path_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Scan:
                def run(self):
                    if self.config.siread_fast_path:
                        self.work_units += 1
            """)
        assert rule_ids(report) == ["CFG001"]
        assert "siread_fast_path" in report.findings[0].message

    def test_negated_toggle_flags_else_branch(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Scan:
                def run(self):
                    if not self.config.hint_bits:
                        pass
                    else:
                        self.work_units += 1
            """)
        assert rule_ids(report) == ["CFG001"]

    def test_cost_planner_toggle_covered(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Planner:
                def plan(self):
                    if self.use_cost:
                        self.work_units += 1
            """)
        assert rule_ids(report) == ["CFG001"]
        assert "use_cost" in report.findings[0].message

    def test_plan_cache_toggle_covered(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Planner:
                def plan(self, config):
                    if config.perf.plan_cache:
                        self.work_units += 1
            """)
        assert rule_ids(report) == ["CFG001"]

    def test_slow_path_accounting_is_fine(self, tmp_path):
        report = lint_snippet(tmp_path, """
            class Scan:
                def run(self):
                    if not self.config.hint_bits:
                        self.work_units += 1
            """)
        assert report.ok


class TestHygieneRules:
    def test_mutable_default_flagged_everywhere(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def f(acc=[]):
                return acc

            def g(*, acc=dict()):
                return acc
            """, relpath="scripts/util.py")
        assert rule_ids(report) == ["MUT001", "MUT001"]

    def test_bare_except_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def f():
                try:
                    return 1
                except:
                    return 2
            """, relpath="scripts/util.py")
        assert rule_ids(report) == ["EXC001"]


class TestNoqa:
    SOURCE = """
        def visible(clog, tup):
            return clog.did_commit(tup.xmin){comment}
        """

    def test_named_noqa_suppresses(self, tmp_path):
        report = lint_snippet(
            tmp_path,
            self.SOURCE.format(comment="  # repro: noqa(CLOG001) -- test"))
        assert report.ok

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        report = lint_snippet(
            tmp_path, self.SOURCE.format(comment="  # repro: noqa"))
        assert report.ok

    def test_wrong_rule_noqa_does_not_suppress(self, tmp_path):
        # The CLOG001 finding survives, and the DET001 suppression --
        # which excuses nothing -- is itself flagged as rotted.
        report = lint_snippet(
            tmp_path,
            self.SOURCE.format(comment="  # repro: noqa(DET001)"))
        assert rule_ids(report) == ["NOQA001", "CLOG001"]

    def test_noqa_is_line_scoped(self, tmp_path):
        # The suppression on its own line covers nothing, so the
        # finding stands -- and the off-target noqa is flagged stale.
        report = lint_snippet(tmp_path, """
            # repro: noqa(CLOG001)
            def visible(clog, tup):
                return clog.did_commit(tup.xmin)
            """)
        assert rule_ids(report) == ["NOQA001", "CLOG001"]

    def test_unused_bare_noqa_flagged(self, tmp_path):
        report = lint_snippet(tmp_path, """
            def fine():
                return 1  # repro: noqa
            """)
        assert rule_ids(report) == ["NOQA001"]

    def test_other_commands_rules_left_alone(self, tmp_path):
        # RACE002 belongs to the concurrency analyzer's run set; a
        # plain lint run must not declare its suppressions rotted.
        report = lint_snippet(tmp_path, """
            def fine():
                return 1  # repro: noqa(RACE002)
            """)
        assert report.ok, report.render()


class TestRealTree:
    def test_src_repro_lints_clean(self):
        report = lint_paths([SRC_REPRO])
        assert report.parse_errors == []
        assert report.findings == [], report.render()
        assert report.files_checked > 50

    def test_report_renders_summary_line(self):
        report = lint_paths([SRC_REPRO])
        assert report.render().endswith(
            f"0 finding(s) in {report.files_checked} file(s)")
