"""Two-phase commit and its SSI interactions (paper section 7.1)."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import InvalidTransactionStateError, SerializationFailure

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t", ["k", "v"], key="k")
    s = database.session()
    for k in range(4):
        s.insert("t", {"k": k, "v": 0})
    return database


class TestBasicTwoPhase:
    def test_prepare_then_commit(self, db):
        s = db.session()
        s.begin(SER)
        s.insert("t", {"k": 10, "v": 1})
        s.prepare_transaction("tx1")
        # Invisible until COMMIT PREPARED.
        assert db.session().select("t", Eq("k", 10)) == []
        db.commit_prepared("tx1")
        assert len(db.session().select("t", Eq("k", 10))) == 1

    def test_prepare_then_rollback(self, db):
        s = db.session()
        s.begin(SER)
        s.insert("t", {"k": 10, "v": 1})
        s.prepare_transaction("tx1")
        db.rollback_prepared("tx1")
        assert db.session().select("t", Eq("k", 10)) == []

    def test_session_detaches_after_prepare(self, db):
        s = db.session()
        s.begin(SER)
        s.insert("t", {"k": 10, "v": 1})
        s.prepare_transaction("tx1")
        assert not s.in_transaction()
        s.begin(SER)  # session is free for new work
        s.rollback()
        db.rollback_prepared("tx1")

    def test_duplicate_gid_rejected(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s1.insert("t", {"k": 10, "v": 1})
        s1.prepare_transaction("dup")
        s2.begin(SER)
        s2.insert("t", {"k": 11, "v": 1})
        with pytest.raises(InvalidTransactionStateError):
            s2.prepare_transaction("dup")
        db.rollback_prepared("dup")

    def test_unknown_gid(self, db):
        with pytest.raises(InvalidTransactionStateError):
            db.commit_prepared("nope")

    def test_prepared_transaction_still_blocks_writers(self, db):
        from repro.errors import WouldBlock
        s = db.session()
        s.begin(SER)
        s.update("t", Eq("k", 0), {"v": 1})
        s.prepare_transaction("tx1")
        w = db.session()
        w.begin(IsolationLevel.REPEATABLE_READ)
        with pytest.raises(WouldBlock):
            w.update("t", Eq("k", 0), {"v": 2})
        db.commit_prepared("tx1")
        with pytest.raises(SerializationFailure):
            w.resume()
        w.rollback()


class TestSSIInteraction:
    def test_precommit_check_runs_at_prepare(self, db):
        """A pivot with a committed T3 must fail at PREPARE, not later:
        after PREPARE it could never be aborted."""
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        s1.select("t", Eq("k", 0))
        s2.select("t", Eq("k", 1))
        s1.update("t", Eq("k", 1), {"v": 1})
        s2.update("t", Eq("k", 0), {"v": 1})
        s1.commit()
        with pytest.raises(SerializationFailure):
            s2.prepare_transaction("bad")
        assert db.prepared_gids() == []

    def test_prepared_pivot_forces_active_reader_abort(self, db):
        """Section 7.1: dangerous structure Tactive -> Tprepared ->
        Tcommitted can only be resolved by aborting Tactive, and safe
        retry cannot be guaranteed."""
        db.create_table("u", ["k", "v"], key="k")
        db.session().insert("u", {"k": 0, "v": 0})
        active, pivot, committed = db.session(), db.session(), db.session()
        pivot.begin(SER)
        pivot.select("t", Eq("k", 1))           # pivot reads k=1
        committed.begin(SER)
        committed.update("t", Eq("k", 1), {"v": 9})
        committed.commit()                       # pivot -rw-> committed
        pivot.update("u", Eq("k", 0), {"v": 9})  # pivot writes u
        pivot.prepare_transaction("pp")          # now unabortable
        active.begin(SER)
        # Snapshot taken before the prepared txn commits: reading u
        # sees the old version -> active -rw-> pivot completes the
        # structure; the only abortable participant is `active`.
        with pytest.raises(SerializationFailure):
            active.select("u", Eq("k", 0))
        active.rollback()
        db.commit_prepared("pp")

    def test_crash_recovery_preserves_prepared_siread_locks(self, db):
        """After a crash, a prepared transaction's SIREAD locks are
        recovered from disk and keep detecting conflicts."""
        s = db.session()
        s.begin(SER)
        s.select("t", Eq("k", 1))                 # SIREAD on k=1
        s.update("t", Eq("k", 2), {"v": 1})
        s.prepare_transaction("pp")
        db.simulate_crash_recovery()
        assert db.prepared_gids() == ["pp"]
        recovered = db._prepared["pp"].sxact
        # The SIREAD locks survived (restored from the 2PC state file).
        assert any(t[0] in ("t", "p", "r", "ip", "ir")
                   for t in db.ssi.lockmgr.targets_held(recovered))
        # A writer touching what the prepared transaction read gains an
        # in-conflict edge from it.
        w = db.session()
        w.begin(SER)
        w.update("t", Eq("k", 1), {"v": 5})
        assert recovered in w.txn.sxact.in_conflicts
        w.rollback()
        db.commit_prepared("pp")

    def test_recovered_prepared_pivot_is_conservatively_dangerous(self, db):
        """Post-recovery the prepared transaction is assumed to have
        conflicts both in and out (section 7.1), so any reader that
        gains an edge into it completes a dangerous structure and must
        abort."""
        s = db.session()
        s.begin(SER)
        s.update("t", Eq("k", 2), {"v": 1})
        s.prepare_transaction("pp")
        db.simulate_crash_recovery()
        r = db.session()
        r.begin(SER)
        # r's snapshot predates the prepared commit: reading k=2 sees
        # the old version -> r -rw-> prepared, whose assumed conflict
        # out "committed first" makes the structure fire; the prepared
        # pivot cannot be the victim, so r aborts.
        with pytest.raises(SerializationFailure):
            r.select("t", Eq("k", 2))
        r.rollback()
        db.commit_prepared("pp")
        assert db.session().select("t", Eq("k", 2))[0]["v"] == 1

    def test_crash_aborts_unprepared_transactions(self, db):
        s = db.session()
        s.begin(SER)
        s.insert("t", {"k": 50, "v": 1})
        db.simulate_crash_recovery()
        assert db.session().select("t", Eq("k", 50)) == []

    def test_recovery_assumes_conflicts_in_and_out(self, db):
        s = db.session()
        s.begin(SER)
        s.update("t", Eq("k", 2), {"v": 1})
        s.prepare_transaction("pp")
        db.simulate_crash_recovery()
        gid_txn = db._prepared["pp"]
        sx = gid_txn.sxact
        assert sx.summary_in_max_seq is not None
        assert sx.summary_conflict_out
        assert sx.earliest_out_commit_seq == 0.0
        db.rollback_prepared("pp")
