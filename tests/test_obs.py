"""Unit tests for repro.obs: metrics registry, tracer, and the public
lock-table accessors the monitoring views now use."""

import json

import pytest

from repro.config import EngineConfig, ObsConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.locks.modes import LockMode
from repro.obs import (MetricsRegistry, StatsView, Tracer, format_key,
                       install_counter_properties)

SER = IsolationLevel.SERIALIZABLE


def traced_db() -> Database:
    db = Database(EngineConfig(obs=ObsConfig(enabled=True, trace=True)))
    db.create_table("t", ["k", "v"], key="k")
    db.session().insert("t", {"k": 1, "v": "a"})
    return db


class TestMetricsRegistry:
    def test_counter_get_or_create_and_labels(self):
        reg = MetricsRegistry()
        c1 = reg.counter("ssi.aborts", cause="pivot")
        c2 = reg.counter("ssi.aborts", cause="pivot")
        c3 = reg.counter("ssi.aborts", cause="doomed_at_op")
        assert c1 is c2 and c1 is not c3
        c1.inc()
        c1.inc(2)
        assert c1.value == 3 and c3.value == 0

    def test_snapshot_diff_and_nonzero(self):
        reg = MetricsRegistry()
        c = reg.counter("a")
        reg.counter("b")
        c.inc(5)
        before = reg.snapshot()
        c.inc(2)
        delta = reg.snapshot().diff(before)
        assert delta["a"] == 2 and delta["b"] == 0
        assert delta.nonzero() == {"a": 2}

    def test_reset_keeps_bound_points_valid(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        c.inc(7)
        reg.reset()
        assert c.value == 0
        c.inc()
        assert reg.counter("x").value == 1

    def test_callback_gauge_lazy_and_reset_proof(self):
        reg = MetricsRegistry()
        state = {"n": 10}
        g = reg.gauge("live")
        g.set_function(lambda: state["n"])
        assert reg.snapshot()["live"] == 10
        state["n"] = 3
        reg.reset()  # callback gauges mirror external state: untouched
        assert reg.snapshot()["live"] == 3

    def test_histogram_buckets_and_diff(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait", buckets=(10, 100))
        for v in (5, 50, 500):
            h.observe(v)
        read = h.read()
        assert read["count"] == 3 and read["sum"] == 555
        assert read["buckets"][10] == 1
        assert read["buckets"][100] == 1
        assert read["buckets"][float("inf")] == 1
        before = reg.snapshot()
        h.observe(7)
        delta = reg.snapshot().diff(before)
        assert delta["wait"]["count"] == 1
        assert delta["wait"]["buckets"][10] == 1

    def test_format_key(self):
        reg = MetricsRegistry()
        reg.counter("plain")
        reg.counter("lab", b="2", a="1")
        snap = reg.snapshot()
        assert "plain" in snap
        assert "lab{a=1,b=2}" in snap  # labels sorted

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("m")
        with pytest.raises(TypeError):
            reg.gauge("m")

    def test_stats_view_attribute_api(self):
        class V(StatsView):
            _PREFIX = "v."
            _FIELDS = ("hits",)

        install_counter_properties(V)
        reg = MetricsRegistry()
        v = V(reg)
        v.hits += 1
        v.hits += 1
        assert v.hits == 2
        assert reg.counter("v.hits").value == 2
        assert v.as_dict() == {"hits": 2}
        v.raw("hits").inc()
        assert v.hits == 3


class TestTracer:
    def test_ring_buffer_and_filters(self):
        tr = Tracer(capacity=4)
        for i in range(6):
            tr.emit("tick", i, n=i)
        events = tr.events()
        assert len(events) == 4
        assert [e.xid for e in events] == [2, 3, 4, 5]
        assert tr.emitted == 6
        tr.emit("other", 5)
        assert [e.kind for e in tr.events(kind="other")] == ["other"]
        assert all(e.xid == 5 or e.data.get("n") == 5
                   for e in tr.events(xid=5))

    def test_xid_filter_matches_payload_xids(self):
        tr = Tracer()
        tr.emit("rw.conflict", 1, reader_xid=7, writer_xid=8)
        tr.emit("rw.conflict", 2, reader_xid=3, writer_xid=4)
        assert len(tr.events(xid=7)) == 1
        assert len(tr.events(kind="rw.conflict", xid=8)) == 1
        assert tr.events(xid=99) == []

    def test_export_jsonl(self, tmp_path):
        tr = Tracer()
        tr.emit("txn.begin", 1, isolation="serializable")
        tr.emit("write.tuple", 1, site=("t", 5, 0, 1))
        path = tmp_path / "trace.jsonl"
        tr.export_jsonl(path)
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[0]["kind"] == "txn.begin"
        assert lines[0]["xid"] == 1
        assert lines[1]["site"] == ["t", 5, 0, 1]

    def test_monotonic_seq_and_ts(self):
        tr = Tracer()
        tr.emit("a")
        tr.emit("b")
        e1, e2 = tr.events()
        assert e2.seq == e1.seq + 1
        assert e2.ts_ns >= e1.ts_ns


class TestEngineIntegration:
    def test_disabled_by_default_no_tracer(self):
        db = Database()
        assert db.obs.tracer is None
        assert db.trace_events() == []
        # metrics are still live even with obs disabled
        db.create_table("t", ["k"], key="k")
        db.session().insert("t", {"k": 1})
        assert db.obs.metrics.counter("engine.commits").value >= 1
        assert db.stats.commits == db.obs.metrics.counter(
            "engine.commits").value

    def test_txn_lifecycle_traced(self):
        db = traced_db()
        s = db.session()
        s.begin(SER)
        xid = s.txn.xid
        s.select("t", Eq("k", 1))
        s.update("t", Eq("k", 1), {"v": "b"})
        s.commit()
        kinds = [e.kind for e in db.obs.trace_events(xid=xid)]
        for expected in ("txn.begin", "txn.snapshot", "read.tuple",
                         "write.tuple", "txn.commit", "wal.ship"):
            assert expected in kinds, expected
        commit = db.obs.trace_events(kind="txn.commit", xid=xid)[-1]
        assert commit.data["commit_seq"] is not None

    def test_stat_ssi_and_gauges(self):
        db = traced_db()
        s = db.session()
        s.begin(SER)
        s.select("t")
        stats = db.stat_ssi()
        assert stats["sireads.live"] > 0
        assert stats["engine.begins"] >= 1
        assert stats["pages.touched"] >= stats["pages.missed"] > 0
        s.commit()
        assert db.stat_ssi()["wal.records"] == db.stat_ssi()["engine.commits"]

    def test_trace_events_view_returns_dicts(self):
        db = traced_db()
        s = db.session()
        s.begin(SER)
        s.select("t")
        s.commit()
        rows = db.trace_events(kind="txn.begin")
        assert rows and isinstance(rows[0], dict)
        assert rows[0]["kind"] == "txn.begin"


class TestIterLocks:
    def test_heavyweight_iter_locks(self):
        db = Database()
        db.lockmgr.acquire(1, ("rel", 42), LockMode.SHARE)
        pending = db.lockmgr.acquire(2, ("rel", 42), LockMode.EXCLUSIVE)
        assert pending is not None and not pending.granted
        rows = list(db.lockmgr.iter_locks())
        granted = [r for r in rows if r["granted"]]
        waiting = [r for r in rows if not r["granted"]]
        assert [(r["owner_xid"], r["mode"]) for r in granted] == [
            (1, LockMode.SHARE)]
        assert [(r["owner_xid"], r["mode"]) for r in waiting] == [
            (2, LockMode.EXCLUSIVE)]
        assert all(r["tag"] == ("rel", 42) for r in rows)

    def test_siread_iter_locks(self):
        db = traced_db()
        s = db.session()
        s.begin(SER)
        s.select("t", Eq("k", 1))
        sx = s.txn.sxact
        rows = list(db.ssi.lockmgr.iter_locks())
        assert any(r["holder"] is sx for r in rows)
        assert all(r["summary_commit_seq"] is None
                   for r in rows if r["holder"] is not None)
        s.commit()

    def test_lock_status_view_matches_iter(self):
        db = Database()
        db.lockmgr.acquire(9, ("rel", 1), LockMode.ROW_EXCLUSIVE)
        rows = db.lock_status()
        assert {"tag": ("rel", 1), "mode": LockMode.ROW_EXCLUSIVE.value,
                "owner_xid": 9, "granted": True} in rows
