"""Tests for the monitoring views (pg_stat_activity / pg_locks style)."""

import pytest

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.errors import WouldBlock

SER = IsolationLevel.SERIALIZABLE


@pytest.fixture
def db():
    database = Database(EngineConfig())
    database.create_table("t", ["k", "v"], key="k")
    s = database.session()
    for k in range(4):
        s.insert("t", {"k": k, "v": 0})
    return database


class TestStatActivity:
    def test_reflects_active_transactions(self, db):
        s = db.session()
        s.begin(SER, read_only=True)
        rows = db.stat_activity()
        assert len(rows) == 1
        row = rows[0]
        assert row["xid"] == s.txn.xid
        assert row["isolation"] == "serializable"
        assert row["read_only"] is True
        assert row["safe_snapshot"] is True  # no concurrent writers
        s.commit()
        assert db.stat_activity() == []

    def test_shows_doomed_flag(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        s1.select("t", Eq("k", 0))
        s2.select("t", Eq("k", 1))
        s1.update("t", Eq("k", 1), {"v": 1})
        s2.update("t", Eq("k", 0), {"v": 1})
        s1.commit()
        doomed = [r for r in db.stat_activity() if r["doomed"]]
        assert [r["xid"] for r in doomed] == [s2.txn.xid]
        s2.rollback()

    def test_subxact_depth(self, db):
        s = db.session()
        s.begin(SER)
        s.savepoint("a")
        s.savepoint("b")
        assert db.stat_activity()[0]["subxact_depth"] == 2
        s.rollback()


class TestLockViews:
    def test_lock_status_granted_and_waiting(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(IsolationLevel.REPEATABLE_READ)
        s2.begin(IsolationLevel.REPEATABLE_READ)
        s1.update("t", Eq("k", 0), {"v": 1})
        with pytest.raises(WouldBlock):
            s2.update("t", Eq("k", 0), {"v": 2})
        rows = db.lock_status()
        waiting = [r for r in rows if not r["granted"]]
        assert any(r["owner_xid"] == s2.txn.xid for r in waiting)
        granted_xids = {r["owner_xid"] for r in rows if r["granted"]}
        assert s1.txn.xid in granted_xids
        s1.commit()
        from repro.errors import SerializationFailure
        with pytest.raises(SerializationFailure):
            s2.resume()  # first-updater-wins after the wait
        s2.rollback()

    def test_siread_locks_view(self, db):
        s = db.session()
        s.begin(SER)
        s.select("t", Eq("k", 0))
        rows = db.siread_locks()
        assert any(r["holder_xid"] == s.txn.xid for r in rows)
        s.rollback()
        assert all(r["holder_xid"] != s.txn.xid for r in db.siread_locks())

    def test_prepared_xacts_view(self, db):
        s = db.session()
        s.begin(SER)
        s.update("t", Eq("k", 0), {"v": 1})
        s.prepare_transaction("g1")
        assert db.prepared_xacts() == [{"gid": "g1", "xid": s.txn.xid
                                        if s.txn else db._prepared["g1"].xid}]
        db.commit_prepared("g1")
        assert db.prepared_xacts() == []


class TestSSISummary:
    def test_counters_populate(self, db):
        s1, s2 = db.session(), db.session()
        s1.begin(SER)
        s2.begin(SER)
        s1.select("t", Eq("k", 0))
        s2.update("t", Eq("k", 0), {"v": 1})
        summary = db.ssi_summary()
        assert summary["active_sxacts"] == 2
        assert summary["conflicts_flagged"] >= 1
        assert summary["siread_locks"] >= 1
        s1.rollback()
        s2.rollback()
