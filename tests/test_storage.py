"""Unit tests for heap pages, heaps, the buffer manager, and relations."""

import pytest

from repro.mvcc import CommitLog
from repro.storage import BufferManager, Heap, HeapPage, Relation, TID
from repro.storage.tuple import HeapTuple


class TestHeapPage:
    def test_add_and_get(self):
        page = HeapPage(0, 4)
        tup = HeapTuple(tid=TID(0, 0), data={}, xmin=3)
        slot = page.add(tup)
        assert page.get(slot) is tup

    def test_fills_up(self):
        page = HeapPage(0, 2)
        page.add(HeapTuple(tid=TID(0, 0), data={}, xmin=3))
        page.add(HeapTuple(tid=TID(0, 0), data={}, xmin=3))
        assert not page.has_room()
        with pytest.raises(ValueError):
            page.add(HeapTuple(tid=TID(0, 0), data={}, xmin=3))

    def test_slot_reuse_after_remove(self):
        page = HeapPage(0, 2)
        s0 = page.add(HeapTuple(tid=TID(0, 0), data={}, xmin=3))
        page.add(HeapTuple(tid=TID(0, 0), data={}, xmin=3))
        page.remove(s0)
        assert page.has_room()
        assert page.add(HeapTuple(tid=TID(0, 0), data={}, xmin=4)) == s0

    def test_len_counts_live(self):
        page = HeapPage(0, 4)
        s0 = page.add(HeapTuple(tid=TID(0, 0), data={}, xmin=3))
        page.add(HeapTuple(tid=TID(0, 0), data={}, xmin=3))
        page.remove(s0)
        assert len(page) == 1


class TestHeap:
    def test_insert_assigns_tids(self):
        heap = Heap(page_size=2)
        tids = [heap.insert({"k": i}, xid=3, cid=0).tid for i in range(5)]
        assert len(set(tids)) == 5
        assert heap.page_count == 3

    def test_fetch_round_trip(self):
        heap = Heap(page_size=4)
        tup = heap.insert({"k": 42}, xid=3, cid=0)
        assert heap.fetch(tup.tid) is tup
        assert heap.fetch(TID(99, 0)) is None

    def test_scan_order_is_physical(self):
        heap = Heap(page_size=2)
        for i in range(5):
            heap.insert({"k": i}, xid=3, cid=0)
        assert [t.data["k"] for t in heap.scan()] == [0, 1, 2, 3, 4]

    def test_insert_copies_data(self):
        heap = Heap(page_size=4)
        src = {"k": 1}
        tup = heap.insert(src, xid=3, cid=0)
        src["k"] = 2
        assert tup.data["k"] == 1

    def test_vacuum_removes_dead_versions(self):
        heap = Heap(page_size=4)
        clog = CommitLog()
        clog.register(3)
        clog.register(4)
        clog.set_committed([3, 4])
        old = heap.insert({"k": 1}, xid=3, cid=0)
        old.set_deleter(4, 0)
        live = heap.insert({"k": 2}, xid=4, cid=0)
        removed = heap.vacuum(horizon_xmin=10, clog=clog)
        assert [t.tid for t in removed] == [old.tid]
        assert heap.fetch(old.tid) is None
        assert heap.fetch(live.tid) is live

    def test_vacuum_respects_horizon(self):
        heap = Heap(page_size=4)
        clog = CommitLog()
        clog.register(3)
        clog.register(4)
        clog.set_committed([3, 4])
        old = heap.insert({"k": 1}, xid=3, cid=0)
        old.set_deleter(4, 0)
        # An active snapshot with xmin=4 can still see the old version.
        assert heap.vacuum(horizon_xmin=4, clog=clog) == []

    def test_rewrite_moves_tuples(self):
        heap = Heap(page_size=2)
        for i in range(6):
            heap.insert({"k": i}, xid=3, cid=0)
        new = heap.rewrite(keep=lambda t: t.data["k"] % 2 == 0)
        assert sorted(t.data["k"] for t in new.scan()) == [0, 2, 4]
        assert new.page_count < heap.page_count


class TestBufferManager:
    def test_unlimited_cache_first_touch_misses(self):
        buf = BufferManager(capacity=None)
        assert buf.touch(1, 0) is True
        assert buf.touch(1, 0) is False
        assert buf.misses == 1 and buf.hits == 1

    def test_lru_eviction(self):
        buf = BufferManager(capacity=2)
        buf.touch(1, 0)
        buf.touch(1, 1)
        buf.touch(1, 2)  # evicts (1,0)
        assert buf.touch(1, 0) is True

    def test_touch_refreshes_lru_position(self):
        buf = BufferManager(capacity=2)
        buf.touch(1, 0)
        buf.touch(1, 1)
        buf.touch(1, 0)  # refresh
        buf.touch(1, 2)  # evicts (1,1), not (1,0)
        assert buf.touch(1, 0) is False
        assert buf.touch(1, 1) is True


class TestRelation:
    def test_index_registry(self):
        rel = Relation(oid=1, name="t", columns=["k", "v"], page_size=8)

        class FakeIndex:
            def __init__(self, name, column):
                self.name, self.column = name, column

        idx = FakeIndex("t_k_idx", "k")
        rel.add_index(idx)
        assert rel.index_on("k") is idx
        assert rel.index_on("v") is None
        rel.drop_index("t_k_idx")
        assert rel.index_on("k") is None
