"""Section 8.4: deferrable transaction latency.

The paper started a deferrable transaction repeatedly while the
disk-bound DBT-2++ mix ran, measuring the time to obtain a safe
snapshot: median 1.98 s, 90th percentile within 6 s, maximum under
20 s. The shape to reproduce: deferrable transactions usually obtain a
safe snapshot within a few read/write transaction lifetimes, with a
bounded tail, and never starve -- measured here in simulated ticks and
normalized by the mean read/write transaction duration.
"""

import random

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import Eq
from repro.sim import Client, Scheduler, ops
from repro.workloads import DBT2PP

SER = IsolationLevel.SERIALIZABLE


def run(seed: int = 17, max_ticks: float = 20_000.0):
    db = Database(EngineConfig())
    workload = DBT2PP(read_only_fraction=0.08, items=200,
                      items_per_order=(2, 4))
    workload.setup(db, random.Random(seed))
    scheduler = Scheduler(db, seed=seed)
    for cid in range(4):
        rng = random.Random(seed * 977 + cid)
        scheduler.add_client(Client(
            cid, db.session(),
            lambda rng=rng: workload.next_transaction(rng, SER)))

    def deferrable_spec():
        def program():
            yield ops.begin(SER, read_only=True, deferrable=True)
            yield ops.select("district", Eq("d_key", 0))
            yield ops.commit()

        return ("deferrable", program)

    scheduler.add_client(Client(99, db.session(), deferrable_spec))
    result = scheduler.run(max_ticks=max_ticks)
    waits = sorted(end - start for name, start, end, _att in result.latencies
                   if name == "deferrable")
    rw_durations = [end - start for name, start, end, att in result.latencies
                    if name in ("new_order", "payment") and att == 1]
    mean_rw = sum(rw_durations) / max(1, len(rw_durations))
    return waits, mean_rw, result


def percentile(sorted_values, p):
    if not sorted_values:
        return float("nan")
    idx = min(len(sorted_values) - 1, int(p * len(sorted_values)))
    return sorted_values[idx]


def test_sec84_deferrable_latency(benchmark, report):
    state = {}

    def run_all():
        state["waits"], state["mean_rw"], state["result"] = run()

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    waits, mean_rw = state["waits"], state["mean_rw"]
    med = percentile(waits, 0.5)
    p90 = percentile(waits, 0.9)
    worst = waits[-1]

    rep = report("Section 8.4: time for a DEFERRABLE transaction to "
                 "obtain a safe snapshot under the DBT-2++ load",
                 "sec84_deferrable.txt")
    rep.table(
        ["metric", "ticks", "in mean r/w txn durations"],
        [["samples", len(waits), ""],
         ["median", f"{med:.0f}", f"{med / mean_rw:.1f}x"],
         ["p90", f"{p90:.0f}", f"{p90 / mean_rw:.1f}x"],
         ["max", f"{worst:.0f}", f"{worst / mean_rw:.1f}x"],
         ["mean r/w txn", f"{mean_rw:.0f}", "1x"]])
    rep.emit()

    assert len(waits) >= 20, "deferrable transactions starved"
    # Shape: usually a handful of r/w transaction lifetimes (paper:
    # median ~2 s against ~subsecond transactions), bounded tail.
    assert med <= 12 * mean_rw
    assert worst <= 80 * mean_rw
