"""Shared benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index): it runs the workload series, prints the
same rows/series the paper reports, saves them under
``benchmarks/results/``, and asserts the qualitative *shape* (who wins,
by roughly what factor) since absolute numbers come from the simulated
cost model, not the authors' hardware.
"""

from __future__ import annotations

import os
import shutil
import tempfile
from typing import Dict, List, Optional, Sequence

import pytest

from repro.config import DurabilityConfig, EngineConfig, PerfConfig, SSIConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.workloads.base import Workload, run_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Per-series metric deltas collected by run_series, printed in the
#: terminal summary: {(test nodeid-ish label, series): MetricsSnapshot}.
_METRIC_DELTAS: Dict[tuple, object] = {}


def _config(series: str, disk_bound: bool = False) -> EngineConfig:
    # The figure benchmarks compare *simulated* mechanism costs, so the
    # SIREAD fast paths are pinned off: they skip exactly the per-read
    # bookkeeping work these series exist to measure (wall-clock effect
    # of the fast paths is benchmarks/perf/run.py's job instead).
    if series == "SSI (no r/o opt.)":
        ssi = SSIConfig(read_only_opt=False, safe_snapshots=False,
                        siread_fast_path=False)
    elif series == "SSI (flags)":
        ssi = SSIConfig(conflict_tracking="flags", siread_fast_path=False)
    else:
        ssi = SSIConfig(siread_fast_path=False)
    # The cost planner and plan cache are likewise pinned off: the
    # figure series never run ANALYZE (so both would be no-ops today),
    # but pinning keeps the simulated page/tuple counts byte-stable
    # even if statistics collection ever becomes automatic.
    perf = PerfConfig(cost_planner=False, plan_cache=False)
    if disk_bound:
        cfg = EngineConfig.disk_bound(io_miss=10.0, buffer_pages=96, ssi=ssi,
                                      perf=perf)
        # The disk configuration does *real* IO too: the durability
        # layer writes pages and WAL underneath the simulated cost
        # model. fsync stays off (the simulated scheduler serializes
        # clients, so per-commit fsync stalls would measure the host
        # disk, not the engine) -- the differential suite pins that
        # durability never perturbs simulated outcomes either way.
        cfg.durability = DurabilityConfig(
            enabled=True, data_dir=tempfile.mkdtemp(prefix="repro-bench-"),
            fsync=False, max_dirty_pages=96, checkpoint_wal_bytes=1 << 20)
    else:
        cfg = EngineConfig(ssi=ssi, perf=perf)
    return cfg


SERIES_ISOLATION = {
    "SI": IsolationLevel.REPEATABLE_READ,
    "SSI": IsolationLevel.SERIALIZABLE,
    "SSI (no r/o opt.)": IsolationLevel.SERIALIZABLE,
    "SSI (flags)": IsolationLevel.SERIALIZABLE,
    "S2PL": IsolationLevel.S2PL,
}


def run_series(workload_factory, series: Sequence[str], *,
               n_clients: int = 4, max_ticks: float = 8000.0, seed: int = 7,
               disk_bound: bool = False,
               label: Optional[str] = None) -> Dict[str, object]:
    """Run one workload under each concurrency-control series.

    ``workload_factory`` builds a fresh Workload per run (workloads
    carry counters). Returns {series name: SimResult}. Each run's
    metric delta (repro.obs registry snapshot, setup included) is
    stashed on the SimResult as ``.metrics`` and echoed in the pytest
    terminal summary.
    """
    results = {}
    for name in series:
        workload = workload_factory()
        cfg = _config(name, disk_bound=disk_bound)
        db = Database(cfg)
        try:
            before = db.obs.metrics.snapshot()
            result = run_workload(
                workload,
                isolation=SERIES_ISOLATION[name],
                n_clients=n_clients,
                max_ticks=max_ticks,
                seed=seed,
                db=db,
            )
            delta = db.obs.metrics.snapshot().diff(before).nonzero()
        finally:
            if cfg.durability.enabled:
                db.close()
                shutil.rmtree(cfg.durability.data_dir, ignore_errors=True)
        result.metrics = delta
        _METRIC_DELTAS[(label or type(workload).__name__, name)] = delta
        results[name] = result
    return results


def pytest_terminal_summary(terminalreporter, exitstatus, config) -> None:
    """Print each benchmark run's engine/SSI metric deltas (the
    pg_stat-style counters backing the figures) after the test summary."""
    if not _METRIC_DELTAS:
        return
    terminalreporter.section("benchmark metric deltas")
    for (label, series), delta in _METRIC_DELTAS.items():
        terminalreporter.write_line(f"{label} [{series}]")
        for key, value in delta.items():
            if isinstance(value, dict):
                value = f"count={value['count']} sum={value['sum']:.3g}"
            terminalreporter.write_line(f"    {key} = {value}")
    fastpath = {(label, series): {k: v for k, v in delta.items()
                                  if k.startswith("perf.") and "cache" not in k}
                for (label, series), delta in _METRIC_DELTAS.items()}
    if any(fastpath.values()):
        terminalreporter.section("fast-path counters (perf.*)")
        for (label, series), counters in fastpath.items():
            if not counters:
                continue
            summary = "  ".join(f"{k.removeprefix('perf.')}={v}"
                                for k, v in sorted(counters.items()))
            terminalreporter.write_line(f"{label} [{series}]  {summary}")
    planner = {(label, series): {k: v for k, v in delta.items()
                                 if k.startswith("planner.")
                                 or (k.startswith("perf.") and "cache" in k)}
               for (label, series), delta in _METRIC_DELTAS.items()}
    if any(planner.values()):
        terminalreporter.section("planner / cache counters")
        for (label, series), counters in planner.items():
            if not counters:
                continue
            summary = "  ".join(f"{k}={v}"
                                for k, v in sorted(counters.items()))
            terminalreporter.write_line(f"{label} [{series}]  {summary}")


def normalized(results: Dict[str, object],
               baseline: str = "SI") -> Dict[str, float]:
    base = results[baseline].throughput
    return {name: (res.throughput / base if base else 0.0)
            for name, res in results.items()}


class Report:
    """Collects printable rows and persists them."""

    def __init__(self, title: str, filename: str) -> None:
        self.title = title
        self.filename = filename
        self.lines: List[str] = [title, "=" * len(title)]

    def row(self, text: str) -> None:
        self.lines.append(text)

    def table(self, header: Sequence[str], rows: Sequence[Sequence]) -> None:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
                  for i, h in enumerate(header)]
        fmt = "  ".join(f"{{:>{w}}}" for w in widths)
        self.lines.append(fmt.format(*header))
        self.lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            self.lines.append(fmt.format(*[str(x) for x in r]))

    def emit(self) -> str:
        text = "\n".join(self.lines) + "\n"
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, self.filename)
        with open(path, "w") as fh:
            fh.write(text)
        print("\n" + text)
        return text


@pytest.fixture
def report():
    """Factory fixture for Report objects."""
    return Report
