"""Shared benchmark harness.

Every benchmark regenerates one of the paper's tables or figures (see
DESIGN.md's experiment index): it runs the workload series, prints the
same rows/series the paper reports, saves them under
``benchmarks/results/``, and asserts the qualitative *shape* (who wins,
by roughly what factor) since absolute numbers come from the simulated
cost model, not the authors' hardware.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

import pytest

from repro.config import EngineConfig, SSIConfig
from repro.engine.isolation import IsolationLevel
from repro.workloads.base import Workload, run_workload

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def _config(series: str, disk_bound: bool = False) -> EngineConfig:
    if series == "SSI (no r/o opt.)":
        ssi = SSIConfig(read_only_opt=False, safe_snapshots=False)
    elif series == "SSI (flags)":
        ssi = SSIConfig(conflict_tracking="flags")
    else:
        ssi = SSIConfig()
    if disk_bound:
        cfg = EngineConfig.disk_bound(io_miss=10.0, buffer_pages=96, ssi=ssi)
    else:
        cfg = EngineConfig(ssi=ssi)
    return cfg


SERIES_ISOLATION = {
    "SI": IsolationLevel.REPEATABLE_READ,
    "SSI": IsolationLevel.SERIALIZABLE,
    "SSI (no r/o opt.)": IsolationLevel.SERIALIZABLE,
    "SSI (flags)": IsolationLevel.SERIALIZABLE,
    "S2PL": IsolationLevel.S2PL,
}


def run_series(workload_factory, series: Sequence[str], *,
               n_clients: int = 4, max_ticks: float = 8000.0, seed: int = 7,
               disk_bound: bool = False) -> Dict[str, object]:
    """Run one workload under each concurrency-control series.

    ``workload_factory`` builds a fresh Workload per run (workloads
    carry counters). Returns {series name: SimResult}.
    """
    results = {}
    for name in series:
        results[name] = run_workload(
            workload_factory(),
            isolation=SERIES_ISOLATION[name],
            n_clients=n_clients,
            max_ticks=max_ticks,
            seed=seed,
            config=_config(name, disk_bound=disk_bound),
        )
    return results


def normalized(results: Dict[str, object],
               baseline: str = "SI") -> Dict[str, float]:
    base = results[baseline].throughput
    return {name: (res.throughput / base if base else 0.0)
            for name, res in results.items()}


class Report:
    """Collects printable rows and persists them."""

    def __init__(self, title: str, filename: str) -> None:
        self.title = title
        self.filename = filename
        self.lines: List[str] = [title, "=" * len(title)]

    def row(self, text: str) -> None:
        self.lines.append(text)

    def table(self, header: Sequence[str], rows: Sequence[Sequence]) -> None:
        widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
                  for i, h in enumerate(header)]
        fmt = "  ".join(f"{{:>{w}}}" for w in widths)
        self.lines.append(fmt.format(*header))
        self.lines.append("  ".join("-" * w for w in widths))
        for r in rows:
            self.lines.append(fmt.format(*[str(x) for x in r]))

    def emit(self) -> str:
        text = "\n".join(self.lines) + "\n"
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, self.filename)
        with open(path, "w") as fh:
            fh.write(text)
        print("\n" + text)
        return text


@pytest.fixture
def report():
    """Factory fixture for Report objects."""
    return Report
