"""Figure 4 / section 8.1: SIBENCH transaction throughput for SSI and
S2PL as a fraction of SI throughput, across table sizes.

Paper shape: S2PL pays a clear penalty (update transactions cannot run
concurrently with the scanning query transactions); SSI stays close to
SI, with its read-dependency tracking overhead shrinking as tables
grow because long queries are released onto safe snapshots by the
read-only optimization (the "SSI (no r/o opt.)" series keeps paying).
"""

from conftest import normalized, run_series

from repro.workloads import SIBench

TABLE_SIZES = [10, 50, 100, 250, 500]
SERIES = ["SI", "SSI", "SSI (no r/o opt.)", "S2PL"]


def test_fig4_sibench(benchmark, report):
    table = {}

    def run_all():
        for size in TABLE_SIZES:
            results = run_series(lambda s=size: SIBench(table_size=s),
                                 SERIES, n_clients=4, max_ticks=6000,
                                 seed=7)
            table[size] = (normalized(results), results)
        return table

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rep = report("Figure 4: SIBENCH throughput normalized to SI, by "
                 "table size", "fig4_sibench.txt")
    rows = []
    for size in TABLE_SIZES:
        norm, results = table[size]
        rows.append([size] + [f"{norm[s]:.3f}" for s in SERIES]
                    + [f"{results['SI'].throughput:.1f}"])
    rep.table(["rows"] + SERIES + ["SI txns/ktick"], rows)
    rep.emit()

    for size in TABLE_SIZES:
        norm, _ = table[size]
        # SSI close to SI (paper: within 10-20% worst case).
        assert norm["SSI"] >= 0.85, (size, norm)
        # S2PL clearly below both SI and SSI.
        assert norm["S2PL"] < norm["SSI"], (size, norm)
        assert norm["S2PL"] < 0.9, (size, norm)
    # The read-only optimization matters more for larger tables:
    # at the largest size the no-opt series must trail plain SSI.
    big_norm, _ = table[TABLE_SIZES[-1]]
    assert big_norm["SSI (no r/o opt.)"] < big_norm["SSI"], big_norm
