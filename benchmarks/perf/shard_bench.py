#!/usr/bin/env python
"""DBT-2++ scale-up across 1/2/4/8 shards (wall-clock).

Runs the DBT-2++ mix (TPC-C + Cahill's credit check) against a
:class:`ThreadedShardedDatabase` whose shard engines are durable, with
``synchronous_commit`` on, group commit off, and a **modeled WAL flush
latency**: every fsync sleeps a fixed few milliseconds with the GIL
released, standing in for a dedicated storage device per shard. That
makes the measurement disk-bound and host-independent -- N shards mean
N WAL devices flushing in parallel, which is the resource sharding
actually scales on one machine (the Python interpreter itself is still
one GIL).

Load scales with the deployment, exactly as TPC-C drives terminals in
proportion to configured warehouses: ``--clients-per-shard`` client
threads per shard (total clients = per_shard x n_shards), each running
the same number of transactions. Throughput (commits/s) is the
comparable metric. The modeled latency is applied *after* seed loading
so setup cost never pollutes the measurement; fsync counters are
likewise reported as measured-phase deltas.

Tables are distributed by warehouse (the shard-key extractor of
``repro.shard.partition``), so most transactions are single-shard and
take the fast path; item lookups and range scans still fan out, so the
run also exercises 2PC + global certification under SERIALIZABLE.

Results go into BENCH_PERF.json under the "shards" key
(read-modify-write, like the other perf suites). The companion gate
(shard_gate.py) fails CI if 4-shard throughput falls under 2x 1-shard.

Usage:
    python benchmarks/perf/shard_bench.py [--quick] [-o OUTPUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from repro.analysis.sanitize import ENV_FLAG  # noqa: E402
from repro.config import DurabilityConfig, EngineConfig  # noqa: E402
from repro.engine.isolation import IsolationLevel  # noqa: E402
from repro.errors import RetryableError  # noqa: E402
from repro.shard.database import ShardedDatabase  # noqa: E402
from repro.shard.threaded import ThreadedShardedDatabase  # noqa: E402
from repro.workloads.dbt2pp import DBT2PP  # noqa: E402

#: Warehouse extractors for DBT-2++'s flattened integer keys (see the
#: key-layout table in repro/workloads/dbt2pp.py). `item` is a shared
#: catalog and stays hashed by i_id.
AFFINITY = {
    "warehouse": lambda k: k,
    "district": lambda k: k // 100,
    "customer": lambda k: k // 100_000,
    "stock": lambda k: k // 100_000,
    "orders": lambda k: k // 10_000_000,
    "order_line": lambda k: k // 1_000_000_000,
    "new_order": lambda k: k // 10_000_000,
}


class _AffinityDDL:
    """Setup-time proxy: injects the warehouse shard key into the
    workload's unchanged ``create_table`` calls."""

    def __init__(self, sdb: ShardedDatabase) -> None:
        self._sdb = sdb

    def create_table(self, name, columns, key=None):
        return self._sdb.create_table(name, columns, key,
                                      shard_key=AFFINITY.get(name))

    def __getattr__(self, attr):
        return getattr(self._sdb, attr)


def build(n_shards: int, data_dir: str, scale: dict,
          flush_latency: float) -> ShardedDatabase:
    configs = [
        EngineConfig(durability=DurabilityConfig(
            enabled=True,
            data_dir=os.path.join(data_dir, f"s{i}"),
            synchronous_commit=True,
            group_commit=False,
            # The modeled latency is the device; a real fsync on the CI
            # runner's page cache would just add noise under it.
            fsync=False))
        for i in range(n_shards)]
    sdb = ShardedDatabase(n_shards, configs)
    workload = DBT2PP(**scale)
    workload.setup(_AffinityDDL(sdb), random.Random(7))
    # Seed loading ran at zero latency; the modeled device kicks in
    # only for the measured phase.
    for db in sdb.shards:
        db.durability.io.flush_latency = flush_latency
    sdb.workload = workload  # type: ignore[attr-defined]
    return sdb


def run_program(session, program) -> None:
    """Drive one ops-generator transaction against a sharded session."""
    gen = program()
    value = None
    while True:
        try:
            op = gen.send(value)
        except StopIteration:
            return
        value = getattr(session, op.method)(*op.args, **op.kwargs)


def bench(n_shards: int, *, scale: dict, clients_per_shard: int,
          txns_per_client: int, flush_latency: float,
          max_retries: int = 40) -> dict:
    clients = clients_per_shard * n_shards
    data_dir = tempfile.mkdtemp(prefix=f"shardbench{n_shards}_")
    sdb = build(n_shards, data_dir, scale, flush_latency)
    tdb = ThreadedShardedDatabase(sdb)
    workload: DBT2PP = sdb.workload  # type: ignore[attr-defined]
    iso = IsolationLevel.SERIALIZABLE
    fsync_base = sum(db.durability.io.fsyncs for db in sdb.shards
                     if db.durability is not None)
    start_gate = threading.Barrier(clients + 1)
    committed = [0] * clients
    retried = [0] * clients
    errors = []

    def client(idx: int) -> None:
        rng = random.Random(1000 + idx)
        session = tdb.session(iso)
        try:
            start_gate.wait()
            for _ in range(txns_per_client):
                _kind, program = workload.next_transaction(rng, iso)
                attempts = 0
                while True:
                    try:
                        run_program(session, program)
                        committed[idx] += 1
                        break
                    except RetryableError:
                        if session.in_transaction():
                            session.rollback()
                        attempts += 1
                        retried[idx] += 1
                        if attempts > max_retries:
                            raise
        except BaseException as exc:  # noqa: BLE001 - reported below
            errors.append(exc)

    threads = [threading.Thread(target=client, args=(i,), daemon=True)
               for i in range(clients)]
    for t in threads:
        t.start()
    start_gate.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    seconds = time.perf_counter() - t0
    if errors:
        raise errors[0]

    total = sum(committed)
    fsyncs = sum(db.durability.io.fsyncs for db in sdb.shards
                 if db.durability is not None) - fsync_base
    two_pc = len(sdb.coordinator.log)
    stats = sdb.certifier.stats()
    tdb.close()
    sdb.close()
    shutil.rmtree(data_dir, ignore_errors=True)
    return {
        "shards": n_shards,
        "clients": clients,
        "commits": total,
        "retries": sum(retried),
        "seconds": seconds,
        "commits_per_s": total / seconds if seconds else 0.0,
        "wal_fsyncs": fsyncs,
        "two_phase_commits": two_pc,
        "fast_path_commits": total - two_pc,
        "certifier_txns": stats.get("txns", 0),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small scale for CI smoke")
    parser.add_argument("--shards", type=int, nargs="*",
                        default=[1, 2, 4, 8])
    parser.add_argument("--clients-per-shard", type=int, default=2,
                        help="client threads per shard (load scales with "
                             "the deployment, like TPC-C terminals)")
    parser.add_argument("--txns", type=int, default=None,
                        help="transactions per client")
    parser.add_argument("--flush-latency", type=float, default=0.02,
                        help="modeled WAL device sync latency (s)")
    parser.add_argument("-o", "--output",
                        default=os.path.join(
                            os.path.dirname(os.path.abspath(__file__)),
                            os.pardir, os.pardir, "BENCH_PERF.json"))
    args = parser.parse_args(argv)

    assert os.environ.get(ENV_FLAG) is None, (
        f"sanitizers are enabled (unset {ENV_FLAG} before benchmarking)")

    if args.quick:
        scale = dict(warehouses=8, districts=4, customers_per_district=20,
                     items=100)
        txns = args.txns if args.txns is not None else 12
    else:
        # ~20x the seed row counts (the issue's 10-100x band).
        scale = dict(warehouses=16, districts=10,
                     customers_per_district=100, items=500)
        txns = args.txns if args.txns is not None else 25

    results = {}
    for n in args.shards:
        r = bench(n, scale=scale, clients_per_shard=args.clients_per_shard,
                  txns_per_client=txns, flush_latency=args.flush_latency)
        base = results.get(1)
        speedup = (r["commits_per_s"] / base["commits_per_s"]
                   if base and base is not r else 1.0)
        r["speedup_vs_1"] = speedup
        r["per_shard_efficiency"] = speedup / n
        results[n] = r
        print(f"shards={n}: {r['commits_per_s']:.1f} commits/s "
              f"({r['commits']} commits, {r['retries']} retries, "
              f"{r['two_phase_commits']} 2PC, "
              f"{r['wal_fsyncs']} fsyncs) "
              f"speedup {speedup:.2f}x eff {r['per_shard_efficiency']:.2f}")

    payload = {
        "params": {"scale": scale,
                   "clients_per_shard": args.clients_per_shard,
                   "txns_per_client": txns,
                   "flush_latency": args.flush_latency,
                   "isolation": "SERIALIZABLE",
                   "quick": bool(args.quick)},
        "host": {"python": platform.python_version(),
                 "platform": platform.platform()},
        "results": {str(n): results[n] for n in sorted(results)},
    }
    out_path = os.path.abspath(args.output)
    data = {}
    if os.path.exists(out_path):
        with open(out_path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    data["shards"] = payload
    with open(out_path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out_path} ['shards']")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
