"""Dump EXPLAIN plans for the figure benchmarks (CI artifact).

Builds each figure workload's schema + initial data (seeded, so the
dump is deterministic), runs ANALYZE, and writes the EXPLAIN tree for
a representative predicate per table -- once rule-based (planner
before ANALYZE semantics) and once cost-based. CI uploads the dumps so
a reviewer can see exactly which scan -- and therefore which
predicate-lock granularity -- each figure's workload runs with.
"""

from __future__ import annotations

import argparse
import os
import random
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from repro.config import EngineConfig  # noqa: E402
from repro.engine.database import Database  # noqa: E402
from repro.engine.planner import explain_scan  # noqa: E402
from repro.engine.predicate import AlwaysTrue, Eq  # noqa: E402
from repro.workloads.dbt2pp import DBT2PP  # noqa: E402
from repro.workloads.doctors import DoctorsWorkload  # noqa: E402
from repro.workloads.receipts import ReceiptsWorkload  # noqa: E402
from repro.workloads.rubis import RubisBidding  # noqa: E402
from repro.workloads.sibench import SIBench  # noqa: E402

WORKLOADS = {
    "sibench": lambda: SIBench(table_size=100),
    "dbt2pp": DBT2PP,
    "rubis": RubisBidding,
    "doctors": DoctorsWorkload,
    "receipts": ReceiptsWorkload,
}


def probe_predicates(db, rel):
    """Representative predicates per table: full scan, plus an
    equality on every indexed column (first committed row's value when
    one exists, else 0)."""
    rows = []
    session = db.session()
    session.begin()
    rows = session.select(rel.name, AlwaysTrue())
    session.commit()
    sample = rows[0] if rows else {}
    preds = [AlwaysTrue()]
    seen = set()
    for index in sorted(rel.indexes.values(), key=lambda i: i.name):
        if index.column in seen:
            continue
        seen.add(index.column)
        preds.append(Eq(index.column, sample.get(index.column, 0)))
    return preds


def dump_workload(name: str, factory, out_dir: str) -> str:
    db = Database(EngineConfig())
    factory().setup(db, random.Random(7))
    lines = [f"EXPLAIN dump: {name}", "=" * (14 + len(name)), ""]
    for phase in ("rule", "cost"):
        if phase == "cost":
            db.analyze()
        lines.append(f"-- {phase}-based (ANALYZE "
                     f"{'run' if phase == 'cost' else 'not run'}) --")
        for rel_name in sorted(db.relations()):
            rel = db.relation(rel_name)
            for pred in probe_predicates(db, rel):
                lines.append(f"EXPLAIN SELECT * FROM {rel_name} "
                             f"WHERE {pred!r}")
                for line in explain_scan(db, rel, pred).render(1):
                    lines.append(line)
        lines.append("")
    path = os.path.join(out_dir, f"{name}.txt")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--out-dir", default="explain-dumps")
    args = parser.parse_args(argv)
    os.makedirs(args.out_dir, exist_ok=True)
    for name, factory in WORKLOADS.items():
        path = dump_workload(name, factory, args.out_dir)
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
