"""CI gate: the cost planner must not slow SIBENCH down.

Runs SIBENCH twice with *identical* configurations except the planner
toggles (``cost_planner`` + ``plan_cache`` + ``parse_cache``) and
fails (exit 1) if the planner-on wall-clock regresses more than the
allowed fraction versus planner-off. SIBENCH's predicates are all
single-key equalities, so the planner cannot *win* here -- the gate
pins that planning + cache probes stay in the noise on the statement
hot path.

Each side runs ``--reps`` times and the minimum elapsed time is
compared (minimum, not mean: CI-runner noise only ever adds time).
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from repro.config import EngineConfig, PerfConfig  # noqa: E402
from repro.engine.database import Database  # noqa: E402
from repro.engine.isolation import IsolationLevel  # noqa: E402
from repro.workloads.base import run_workload  # noqa: E402
from repro.workloads.sibench import SIBench  # noqa: E402


def run_once(planner_on: bool, *, table_size: int, max_ticks: float) -> float:
    perf = PerfConfig(cost_planner=planner_on, plan_cache=planner_on,
                      parse_cache=planner_on)
    db = Database(EngineConfig(perf=perf))
    start = time.perf_counter()
    run_workload(SIBench(table_size=table_size),
                 isolation=IsolationLevel.SERIALIZABLE,
                 n_clients=4, max_ticks=max_ticks, seed=7, db=db)
    return time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=3)
    parser.add_argument("--table-size", type=int, default=100)
    parser.add_argument("--max-ticks", type=float, default=4000.0)
    parser.add_argument("--max-regression", type=float, default=0.10,
                        help="allowed fractional slowdown (default 10%%)")
    args = parser.parse_args(argv)

    reps = max(1, args.reps)  # min() over zero reps has no value to compare
    off = min(run_once(False, table_size=args.table_size,
                       max_ticks=args.max_ticks) for _ in range(reps))
    on = min(run_once(True, table_size=args.table_size,
                      max_ticks=args.max_ticks) for _ in range(reps))
    if not off or on is None:  # degenerate timing: nothing to gate on
        print(f"planner-off {off!r}s unusable as a baseline; skipping "
              f"ratio check")
        return 0
    ratio = on / off
    limit = 1.0 + args.max_regression
    verdict = "OK" if ratio <= limit else "FAIL"
    print(f"planner-off {off:.3f}s  planner-on {on:.3f}s  "
          f"ratio {ratio:.3f} (limit {limit:.2f})  {verdict}")
    if ratio > limit:
        print(f"cost planner regressed SIBENCH wall-clock by "
              f"{(ratio - 1.0) * 100:.1f}% (> "
              f"{args.max_regression * 100:.0f}% allowed)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
