#!/usr/bin/env python
"""Wall-clock microbenchmarks for the performance layer.

Dependency-free (stdlib only): each benchmark runs the same work twice,
once with every fast path enabled (hint bits, visibility map, FSM,
SIREAD fast paths -- the defaults) and once with all of them off (the
seed code paths), under both SI (REPEATABLE READ) and SSI
(SERIALIZABLE), and reports wall seconds plus the speedup. Results are
written as JSON to BENCH_PERF.json at the repo root.

Unlike benchmarks/ (which measures *simulated* cost-model ticks), this
suite measures real Python wall time: the fast paths do not change
simulated outcomes, they make the interpreter do less work per tuple.

Usage:
    python benchmarks/perf/run.py [--quick] [-o OUTPUT.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import sys
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

import shutil  # noqa: E402
import tempfile  # noqa: E402

from repro.analysis import ANALYSIS_VERSION  # noqa: E402
from repro.analysis.sanitize import ENV_FLAG  # noqa: E402
from repro.config import (DurabilityConfig, EngineConfig,  # noqa: E402
                          PerfConfig, SSIConfig)
from repro.engine.database import Database  # noqa: E402
from repro.engine.isolation import IsolationLevel  # noqa: E402
from repro.engine.predicate import And, Eq  # noqa: E402
from repro.server import ReproServer, ServerConfig, connect  # noqa: E402
from repro.workloads.base import run_workload  # noqa: E402
from repro.workloads.dbt2pp import DBT2PP  # noqa: E402
from repro.workloads.rubis import RubisBidding  # noqa: E402
from repro.workloads.sibench import SIBench  # noqa: E402

ISOLATION = {
    "SI": IsolationLevel.REPEATABLE_READ,
    "SSI": IsolationLevel.SERIALIZABLE,
}


def make_config(fast: bool) -> EngineConfig:
    """All fast paths on (the defaults) or all off (seed behaviour).

    The planner toggles (cost_planner / plan_cache / parse_cache) ride
    with the same switch: the "slow" run is the seed's rule-based,
    plan-every-statement behaviour.
    """
    return EngineConfig(
        perf=PerfConfig(hint_bits=fast, visibility_map=fast, fsm=fast,
                        cost_planner=fast, plan_cache=fast,
                        parse_cache=fast),
        ssi=SSIConfig(siread_fast_path=fast))


def make_db(fast: bool) -> Database:
    db = Database(make_config(fast))
    # Sanitizer sweeps are O(heap + lock table) per transaction end and
    # would silently dominate any wall-clock number.
    assert db.sanitizers is None, (
        f"sanitizers are enabled (is {ENV_FLAG} exported?); "
        f"unset it before benchmarking")
    return db


def _perf_counters(db: Database) -> dict:
    """The perf.*/planner.* hit counters accumulated by one run."""
    snap = db.obs.metrics.snapshot().nonzero()
    return {k: v for k, v in snap.items()
            if k.startswith(("perf.", "planner."))}


def _plan_cache_hit_rate(counters: dict):
    """Hit rate, or the explicit string "n/a" when the run never
    touched the plan cache (the toggles-off series) -- a bare JSON
    null made downstream tooling do None arithmetic."""
    hits = counters.get("perf.plan_cache_hits", 0)
    misses = counters.get("perf.plan_cache_misses", 0)
    return hits / (hits + misses) if hits + misses else "n/a"


# ----------------------------------------------------------------------
# benchmark 1: CLOG-heavy repeated sequential scan
# ----------------------------------------------------------------------
def repeated_seq_scan(isolation: IsolationLevel, fast: bool, *,
                      rows: int, repeats: int) -> dict:
    """Load ``rows`` rows, each committed by its own transaction (so
    every tuple has a distinct xid and the unhinted path pays a commit
    log lookup per tuple per scan), VACUUM once, then time ``repeats``
    full sequential scans. The predicate matches nothing and the value
    column has no index, so each scan walks every tuple."""
    db = make_db(fast)
    db.create_table("t", ["k", "v"])
    session = db.session()
    for k in range(rows):
        session.begin(isolation)
        session.insert("t", {"k": k, "v": k})
        session.commit()
    db.vacuum()
    start = time.perf_counter()
    for _ in range(repeats):
        session.begin(isolation)
        session.select("t", Eq("v", -1))
        session.commit()
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "rows": rows, "repeats": repeats,
            "tuples_scanned": rows * repeats,
            "perf_counters": _perf_counters(db)}


# ----------------------------------------------------------------------
# benchmark 2: insert churn (FSM / free-space reuse)
# ----------------------------------------------------------------------
def insert_churn(isolation: IsolationLevel, fast: bool, *,
                 rows: int, churn_rounds: int) -> dict:
    """Fill a table, delete every other row (leaving free slots spread
    over every page), VACUUM, then time rounds of re-inserting and
    re-deleting that half. Every insert must find a page with room
    among many partially-full pages -- the FSM's job."""
    db = make_db(fast)
    db.create_table("t", ["k", "m"])
    session = db.session()
    session.begin(isolation)
    for k in range(rows):
        session.insert("t", {"k": k, "m": k % 2})
    session.commit()
    session.begin(isolation)
    session.delete("t", Eq("m", 1))
    session.commit()
    db.vacuum()
    start = time.perf_counter()
    for _ in range(churn_rounds):
        session.begin(isolation)
        for k in range(1, rows, 2):
            session.insert("t", {"k": k, "m": 1})
        session.commit()
        session.begin(isolation)
        session.delete("t", Eq("m", 1))
        session.commit()
        db.vacuum()
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "rows": rows, "churn_rounds": churn_rounds,
            "perf_counters": _perf_counters(db)}


# ----------------------------------------------------------------------
# benchmark 3: skewed-selectivity multi-conjunct filter (the planner's
# showcase: first-sargable picks the wrong index)
# ----------------------------------------------------------------------
def skewed_filter(isolation: IsolationLevel, fast: bool, *,
                  rows: int, queries: int) -> dict:
    """Point lookups with a two-conjunct predicate where the *first*
    equality conjunct (grp, 2 distinct values) is far less selective
    than the second (k, the primary key). The rule-based planner scans
    half the table through the grp index on every query; the
    cost-based planner (after ANALYZE) picks the key index and touches
    one tuple."""
    db = make_db(fast)
    db.create_table("t", ["k", "grp", "v"], key="k")
    db.create_index("t", "grp")
    session = db.session()
    session.begin(isolation)
    for k in range(rows):
        session.insert("t", {"k": k, "grp": k % 2, "v": k})
    session.commit()
    db.vacuum()
    db.analyze()  # the slow config ignores the stats (planner off)
    start = time.perf_counter()
    for i in range(queries):
        session.begin(isolation)
        session.select("t", And(Eq("grp", i % 2),
                                Eq("k", (i * 37) % rows)))
        session.commit()
    elapsed = time.perf_counter() - start
    counters = _perf_counters(db)
    return {"seconds": elapsed, "rows": rows, "queries": queries,
            "stats_epoch": db.statscat.epoch,
            "plan_cache_hit_rate": _plan_cache_hit_rate(counters),
            "perf_counters": counters}


# ----------------------------------------------------------------------
# benchmarks 4-6: the paper's workloads, wall-clocked
# ----------------------------------------------------------------------
def _workload_bench(factory, isolation: IsolationLevel, fast: bool, *,
                    max_ticks: float, n_clients: int, seed: int = 7) -> dict:
    db = make_db(fast)
    start = time.perf_counter()
    result = run_workload(factory(), isolation=isolation,
                          n_clients=n_clients, max_ticks=max_ticks,
                          seed=seed, db=db)
    elapsed = time.perf_counter() - start
    counters = _perf_counters(db)
    return {"seconds": elapsed,
            "committed": result.commits,
            "txns_per_ktick": result.throughput,
            "stats_epoch": db.statscat.epoch,
            "plan_cache_hit_rate": _plan_cache_hit_rate(counters),
            "perf_counters": counters}


def sibench(isolation: IsolationLevel, fast: bool, *, max_ticks: float,
            table_size: int) -> dict:
    return _workload_bench(lambda: SIBench(table_size=table_size),
                           isolation, fast, max_ticks=max_ticks,
                           n_clients=4)


def dbt2pp(isolation: IsolationLevel, fast: bool, *,
           max_ticks: float) -> dict:
    return _workload_bench(lambda: DBT2PP(), isolation, fast,
                           max_ticks=max_ticks, n_clients=4)


def rubis(isolation: IsolationLevel, fast: bool, *,
          max_ticks: float) -> dict:
    return _workload_bench(lambda: RubisBidding(), isolation, fast,
                           max_ticks=max_ticks, n_clients=4)


# ----------------------------------------------------------------------
# benchmarks: vectorized executor series (on vs off; all other fast
# paths stay at their defaults on both sides, so the delta is the
# batch executor alone)
# ----------------------------------------------------------------------
def _vectorized_db(on: bool, *, heap_page_size: int = 256) -> Database:
    # The seed's 32-tuple pages are sized so page-granularity SIREAD
    # locks and promotion stay meaningful in small anomaly schedules;
    # the scan benchmarks use database-realistic page sizes instead so
    # per-page costs (buffer touch, vismap probe, batch setup) amortize
    # the way they would over an 8KB heap page. Both sides of each
    # on/off pair get the same page size, so the delta stays the
    # executor alone.
    config = EngineConfig(perf=PerfConfig(vectorized_executor=on),
                          heap_page_size=heap_page_size)
    db = Database(config)
    assert db.sanitizers is None, (
        f"sanitizers are enabled (is {ENV_FLAG} exported?); "
        f"unset it before benchmarking")
    return db


def million_row_scan(isolation: IsolationLevel, on: bool, *,
                     rows: int, repeats: int) -> dict:
    """Aggregate scans over one wide table through the SQL layer:
    COUNT(*), a filtered COUNT matching nothing, and a filtered SUM.
    The vectorized path amortizes visibility + SIREAD coverage per
    page and feeds aggregates zero-copy rows; the off path is the
    per-tuple executor with a dict copy per row."""
    from repro.sql.executor import SQLSession

    db = _vectorized_db(on)
    # A wide (11-column) analytic table: the per-tuple path pays a
    # full-row dict copy per tuple, the vectorized path aliases the
    # stored payload, so the gap grows with row width.
    filler = [f"c{i}" for i in range(8)]
    db.create_table("big", ["k", "v", "grp"] + filler, key="k")
    session = db.session()
    session.begin(isolation)
    for k in range(rows):
        row = {"k": k, "v": k % 1000, "grp": k % 7}
        for i, name in enumerate(filler):
            row[name] = k + i
        session.insert("big", row)
    session.commit()
    db.vacuum()
    sql = SQLSession(db.session())
    sql.execute("ANALYZE big")
    queries = [
        "SELECT COUNT(*) FROM big",
        "SELECT COUNT(*) FROM big WHERE v < 0",
        "SELECT SUM(v) FROM big WHERE grp = 3",
        "SELECT MIN(v), MAX(v) FROM big WHERE v BETWEEN 100 AND 900",
    ]
    level = ("SERIALIZABLE" if isolation is IsolationLevel.SERIALIZABLE
             else "REPEATABLE READ")
    start = time.perf_counter()
    for _ in range(repeats):
        sql.execute(f"BEGIN ISOLATION LEVEL {level}")
        for q in queries:
            sql.execute(q)
        sql.execute("COMMIT")
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "rows": rows, "repeats": repeats,
            "queries": len(queries),
            "tuples_scanned": rows * repeats * len(queries),
            "perf_counters": _perf_counters(db)}


def reporting_join(isolation: IsolationLevel, on: bool, *,
                   customers: int, orders: int, repeats: int) -> dict:
    """The reporting query shape: JOIN + GROUP BY + HAVING + ORDER BY
    under the requested isolation. Vectorized on runs the planner's
    hash/merge join; off runs the per-row nested loop (same rows, same
    order -- the differential suite pins that)."""
    from repro.sql.executor import SQLSession

    db = _vectorized_db(on)
    rng = random.Random(11)
    db.create_table("customers", ["cid", "region", "balance"], key="cid")
    db.create_table("orders", ["oid", "cid", "amount"], key="oid")
    db.create_index("orders", "cid")
    session = db.session()
    session.begin(isolation)
    regions = ("north", "south", "east", "west")
    for cid in range(customers):
        session.insert("customers", {"cid": cid,
                                     "region": regions[cid % 4],
                                     "balance": 0})
    for oid in range(orders):
        session.insert("orders", {"oid": oid,
                                  "cid": rng.randrange(customers),
                                  "amount": rng.randrange(1, 100)})
    session.commit()
    db.vacuum()
    sql = SQLSession(db.session())
    sql.execute("ANALYZE")
    query = ("SELECT region, COUNT(*) AS cnt, SUM(amount) AS total "
             "FROM orders JOIN customers ON orders.cid = customers.cid "
             "GROUP BY region HAVING COUNT(*) > 0 ORDER BY region")
    level = ("SERIALIZABLE" if isolation is IsolationLevel.SERIALIZABLE
             else "REPEATABLE READ")
    start = time.perf_counter()
    for _ in range(repeats):
        sql.execute(f"BEGIN ISOLATION LEVEL {level}")
        sql.execute(query)
        sql.execute("COMMIT")
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "customers": customers, "orders": orders,
            "repeats": repeats, "perf_counters": _perf_counters(db)}


# ----------------------------------------------------------------------
# benchmark 7: SIBENCH through the real network server (multi-client
# latency: p50/p95/p99 per transaction plus end-to-end throughput)
# ----------------------------------------------------------------------
def _quantile_ms(sorted_seconds, q: float) -> float:
    idx = min(len(sorted_seconds) - 1,
              max(0, int(q * len(sorted_seconds) + 0.999999) - 1))
    return sorted_seconds[idx] * 1000.0


def server_sibench(*, n_clients: int, txns_per_client: int,
                   table_size: int, mode: str = "threaded") -> dict:
    """The SIBENCH mix (half single-key updates, half full-table
    min-scans, all SERIALIZABLE) driven by ``n_clients`` real OS
    threads through the TCP server. Latency is measured client-side
    per committed transaction, *including* any serialization-failure
    retries the client library performed -- that is the latency an
    application experiences under SSI (paper section 8.1)."""
    db = make_db(True)
    server = ReproServer(db, ServerConfig(
        port=0, mode=mode, max_connections=n_clients + 2)).start()
    boot = connect(server.address)
    boot.sql("CREATE TABLE sibench (k INT PRIMARY KEY, v INT)")
    seed_rng = random.Random(7)
    boot.sql("INSERT INTO sibench (k, v) VALUES "
             + ", ".join(f"({k}, {seed_rng.randrange(10_000)})"
                         for k in range(table_size)))
    boot.close()

    latencies = [[] for _ in range(n_clients)]
    retries = [0] * n_clients
    errors = []
    barrier = threading.Barrier(n_clients + 1)

    def worker(i: int) -> None:
        rng = random.Random(100 + i)
        try:
            client = connect(server.address, isolation="serializable",
                             backoff_base=0.001, backoff_cap=0.05)
            barrier.wait()
            for _ in range(txns_per_client):
                t0 = time.perf_counter()
                if rng.random() < 0.5:
                    key = rng.randrange(table_size)
                    value = rng.randrange(10_000)
                    client.run_transaction(
                        lambda c, k=key, v=value: c.sql(
                            f"UPDATE sibench SET v = {v} WHERE k = {k}"),
                        max_retries=100)
                else:
                    client.run_transaction(
                        lambda c: min(c.sql("SELECT * FROM sibench"),
                                      key=lambda r: (r["v"], r["k"])),
                        read_only=True, max_retries=100)
                latencies[i].append(time.perf_counter() - t0)
            retries[i] = client.retries
            client.close()
        except Exception as exc:
            errors.append((i, exc))
            try:
                barrier.abort()
            except Exception:
                pass

    threads = [threading.Thread(target=worker, args=(i,),
                                name=f"bench-client-{i}")
               for i in range(n_clients)]
    for t in threads:
        t.start()
    barrier.wait()  # all clients connected: clock only the steady state
    start = time.perf_counter()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - start
    leaks = server.stop()
    if errors:
        raise RuntimeError(f"server bench clients failed: {errors}")
    if leaks["threads"] or leaks["connections"]:
        raise RuntimeError(f"server bench leaked: {leaks}")

    all_lat = sorted(lat for per_client in latencies for lat in per_client)
    total = len(all_lat)
    return {
        "mode": mode,
        "clients": n_clients,
        "transactions": total,
        "seconds": elapsed,
        "throughput_txn_s": total / elapsed if elapsed else None,
        "latency_ms": {
            "p50": _quantile_ms(all_lat, 0.50),
            "p95": _quantile_ms(all_lat, 0.95),
            "p99": _quantile_ms(all_lat, 0.99),
            "mean": sum(all_lat) / total * 1000.0,
            "max": all_lat[-1] * 1000.0,
        },
        "retries": sum(retries),
    }


# ----------------------------------------------------------------------
# benchmark 8: group-commit throughput (real fsyncs, threaded server)
# ----------------------------------------------------------------------
def group_commit_bench(*, n_clients: int, txns_per_client: int,
                       group_commit: bool) -> dict:
    """Concurrent single-row-insert committers through the TCP server
    against a *really durable* database (synchronous_commit on, real
    fsync per commit). With group commit, backends queue behind one
    fsync leader (the server releases the engine latch around the
    flush); without it every commit pays its own fsync. The delta is
    the paper's walwriter batching win."""
    data_dir = tempfile.mkdtemp(prefix="repro-groupcommit-")
    db = Database(EngineConfig.durable(
        data_dir,
        durability=DurabilityConfig(group_commit=group_commit)))
    assert db.sanitizers is None, (
        f"sanitizers are enabled (is {ENV_FLAG} exported?); "
        f"unset it before benchmarking")
    server = ReproServer(db, ServerConfig(
        port=0, max_connections=n_clients + 2)).start()
    try:
        boot = connect(server.address)
        boot.sql("CREATE TABLE gc (k INT PRIMARY KEY, c INT)")
        boot.close()
        errors = []
        barrier = threading.Barrier(n_clients + 1)

        def worker(i: int) -> None:
            try:
                client = connect(server.address)
                barrier.wait()
                for j in range(txns_per_client):
                    client.sql(f"INSERT INTO gc (k, c) VALUES "
                               f"({i * 1_000_000 + j}, {i})")
                client.close()
            except Exception as exc:
                errors.append((i, exc))
                try:
                    barrier.abort()
                except Exception:
                    pass

        threads = [threading.Thread(target=worker, args=(i,),
                                    name=f"gc-client-{i}")
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        barrier.wait()
        start = time.perf_counter()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - start
        if errors:
            raise RuntimeError(f"group-commit clients failed: {errors}")
        mgr = db.durability
        commits = n_clients * txns_per_client
        stats = {
            "group_commit": group_commit,
            "clients": n_clients,
            "commits": commits,
            "seconds": elapsed,
            "commits_per_s": commits / elapsed if elapsed else None,
            "wal_records": mgr.wal.records,
            "wal_fsyncs": mgr.wal.flushes,
            "piggybacked": mgr.wal.piggybacked,
            "commits_per_fsync": (commits / mgr.wal.flushes
                                  if mgr.wal.flushes else None),
        }
    finally:
        server.stop()
        db.close()
        shutil.rmtree(data_dir, ignore_errors=True)
    return stats


# ----------------------------------------------------------------------
# benchmark 9: fig5b DBT-2++ disk configuration on the real durability
# layer (the simulated disk-bound series, now doing actual page/WAL IO)
# ----------------------------------------------------------------------
def fig5b_disk_durable(isolation: IsolationLevel, *,
                       max_ticks: float) -> dict:
    """The paper's figure 5(b) disk-bound DBT-2++ point, run against a
    disk-backed engine: small buffer pool + per-miss charge for the
    *simulated* throughput figure, with the durability layer doing real
    page-file and WAL writes underneath (fsync off: the simulated
    scheduler serializes clients, so per-commit fsync stalls would
    measure the disk, not the engine)."""
    data_dir = tempfile.mkdtemp(prefix="repro-fig5b-")
    cfg = EngineConfig.disk_bound(
        io_miss=10.0, buffer_pages=96,
        ssi=SSIConfig(siread_fast_path=False),
        perf=PerfConfig(cost_planner=False, plan_cache=False))
    cfg.durability = DurabilityConfig(
        enabled=True, data_dir=data_dir, fsync=False,
        max_dirty_pages=96, checkpoint_wal_bytes=1 << 20)
    db = Database(cfg)
    assert db.sanitizers is None, (
        f"sanitizers are enabled (is {ENV_FLAG} exported?); "
        f"unset it before benchmarking")
    try:
        start = time.perf_counter()
        result = run_workload(DBT2PP(), isolation=isolation, n_clients=4,
                              max_ticks=max_ticks, seed=7, db=db)
        elapsed = time.perf_counter() - start
        mgr = db.durability
        io = mgr.io
        stats = {
            "seconds": elapsed,
            "committed": result.commits,
            "txns_per_ktick": result.throughput,
            "durable_io": {
                "wal_records": mgr.wal.records,
                "wal_bytes": mgr.wal.end_lsn,
                "wal_fsyncs": mgr.wal.flushes,
                "page_writes": io.writes,
                "bytes_written": io.bytes_written,
                "checkpoints": mgr.checkpoints,
            },
        }
    finally:
        db.close()
        shutil.rmtree(data_dir, ignore_errors=True)
    return stats


# ----------------------------------------------------------------------
# driver
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller sizes (CI smoke run)")
    parser.add_argument("-o", "--output", default=None,
                        help="output path (default: BENCH_PERF.json at "
                             "the repo root)")
    args = parser.parse_args(argv)

    if args.quick:
        params = {"scan_rows": 400, "scan_repeats": 30,
                  "churn_rows": 400, "churn_rounds": 3,
                  "workload_ticks": 2000.0, "sibench_table": 50,
                  "skew_rows": 400, "skew_queries": 60,
                  "server_txns": 12, "server_table": 30,
                  "vec_rows": 4000, "vec_repeats": 4,
                  "join_customers": 60, "join_orders": 1200,
                  "join_repeats": 4,
                  "gc_clients": 3, "gc_txns": 10,
                  "fig5b_disk_ticks": 2000.0}
    else:
        params = {"scan_rows": 1500, "scan_repeats": 80,
                  "churn_rows": 1500, "churn_rounds": 6,
                  "workload_ticks": 8000.0, "sibench_table": 100,
                  "skew_rows": 1500, "skew_queries": 200,
                  "server_txns": 40, "server_table": 100,
                  "vec_rows": 40_000, "vec_repeats": 6,
                  "join_customers": 200, "join_orders": 8000,
                  "join_repeats": 6,
                  "gc_clients": 8, "gc_txns": 25,
                  "fig5b_disk_ticks": 8000.0}

    benchmarks = {
        "repeated_seq_scan": lambda iso, fast: repeated_seq_scan(
            iso, fast, rows=params["scan_rows"],
            repeats=params["scan_repeats"]),
        "insert_churn": lambda iso, fast: insert_churn(
            iso, fast, rows=params["churn_rows"],
            churn_rounds=params["churn_rounds"]),
        "skewed_filter": lambda iso, fast: skewed_filter(
            iso, fast, rows=params["skew_rows"],
            queries=params["skew_queries"]),
        "sibench": lambda iso, fast: sibench(
            iso, fast, max_ticks=params["workload_ticks"],
            table_size=params["sibench_table"]),
        "dbt2pp": lambda iso, fast: dbt2pp(
            iso, fast, max_ticks=params["workload_ticks"]),
        "rubis": lambda iso, fast: rubis(
            iso, fast, max_ticks=params["workload_ticks"]),
        # "fast"/"slow" here = vectorized executor on/off (all other
        # fast paths at their defaults on both sides).
        "million_row_scan": lambda iso, on: million_row_scan(
            iso, on, rows=params["vec_rows"],
            repeats=params["vec_repeats"]),
        "reporting_join": lambda iso, on: reporting_join(
            iso, on, customers=params["join_customers"],
            orders=params["join_orders"],
            repeats=params["join_repeats"]),
    }

    results: dict = {}
    for name, bench in benchmarks.items():
        results[name] = {}
        for series, iso in ISOLATION.items():
            fast = bench(iso, True)
            slow = bench(iso, False)
            entry = {
                "fast": fast,
                "slow": slow,
                "speedup": (slow["seconds"] / fast["seconds"]
                            if fast["seconds"] else None),
            }
            if "txns_per_ktick" in fast:
                base = slow["txns_per_ktick"]
                entry["sim_throughput_ratio"] = (
                    fast["txns_per_ktick"] / base if base else None)
            results[name][series] = entry
            speedup = entry["speedup"]
            speedup_txt = (f"{speedup:.2f}x" if speedup is not None
                           else "n/a")
            print(f"{name:>18} [{series:>3}]  fast {fast['seconds']:8.3f}s  "
                  f"slow {slow['seconds']:8.3f}s  "
                  f"speedup {speedup_txt}")

    # SIBENCH through the real TCP server at 1/4/16 concurrent clients
    # (fast config; the interesting axis here is concurrency, not the
    # perf toggles).
    server_results = {}
    for n in (1, 4, 16):
        result = server_sibench(n_clients=n,
                                txns_per_client=params["server_txns"],
                                table_size=params["server_table"])
        server_results[str(n)] = result
        lat = result["latency_ms"]
        print(f"    server_sibench [{n:>2} clients]  "
              f"p50 {lat['p50']:7.2f}ms  p95 {lat['p95']:7.2f}ms  "
              f"p99 {lat['p99']:7.2f}ms  "
              f"{result['throughput_txn_s']:7.1f} txn/s  "
              f"retries {result['retries']}")

    # Group commit on vs off: same concurrent commit load with real
    # per-commit fsyncs; the delta is one leader fsync amortizing many
    # waiters vs one fsync per commit.
    group_commit_results = {}
    for flag in (True, False):
        result = group_commit_bench(n_clients=params["gc_clients"],
                                    txns_per_client=params["gc_txns"],
                                    group_commit=flag)
        group_commit_results["on" if flag else "off"] = result
        cpf = result["commits_per_fsync"]
        print(f"      group_commit [{'on ' if flag else 'off'}]  "
              f"{result['commits_per_s']:8.1f} commit/s  "
              f"fsyncs {result['wal_fsyncs']:5d}  "
              f"commits/fsync {cpf:6.2f}")
    on, off = group_commit_results["on"], group_commit_results["off"]
    group_commit_results["speedup"] = (
        on["commits_per_s"] / off["commits_per_s"]
        if off["commits_per_s"] else None)

    # Figure 5(b): the disk-bound DBT-2++ series with the durability
    # layer doing real page/WAL IO underneath the simulated cost model.
    fig5b_disk = {}
    for series, iso in ISOLATION.items():
        result = fig5b_disk_durable(iso, max_ticks=params["fig5b_disk_ticks"])
        fig5b_disk[series] = result
        io = result["durable_io"]
        print(f"       fig5b_disk [{series:>3}]  "
              f"{result['txns_per_ktick']:6.2f} txn/ktick  "
              f"wal {io['wal_bytes'] / 1024:7.0f}KiB  "
              f"page writes {io['page_writes']:5d}  "
              f"wall {result['seconds']:.2f}s")

    defaults = PerfConfig()
    out = {
        "meta": {
            "quick": args.quick,
            "analysis_version": ANALYSIS_VERSION,
            "sanitizers": "off (asserted)",
            "python": platform.python_version(),
            "platform": platform.platform(),
            "params": params,
            "series": list(ISOLATION),
            # The planner toggles: "fast" runs use the defaults below,
            # "slow" runs pin all three off (seed plans). Per-run stats
            # epochs live in each benchmark entry ("stats_epoch").
            "planner": {
                "cost_planner": defaults.cost_planner,
                "plan_cache": defaults.plan_cache,
                "parse_cache": defaults.parse_cache,
            },
            # The million_row_scan / reporting_join series toggle this
            # instead of the fast-path switches.
            "vectorized_executor": defaults.vectorized_executor,
        },
        "benchmarks": results,
        # Multi-client latency through the real network server
        # (keyed by client count; latency_ms has p50/p95/p99).
        "server": {"sibench": server_results},
        # Durable WAL group commit: on vs off under concurrent
        # committers with real fsyncs.
        "group_commit": group_commit_results,
        # Figure 5(b) disk configuration on the real durability layer
        # (simulated txn/ktick + the actual IO the run performed).
        "fig5b_disk": fig5b_disk,
    }
    repo_root = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                             os.pardir, os.pardir)
    path = args.output or os.path.join(repo_root, "BENCH_PERF.json")
    with open(path, "w") as fh:
        json.dump(out, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {os.path.abspath(path)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
