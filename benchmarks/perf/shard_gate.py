"""CI gate: sharding must keep its scale-up.

Runs the DBT-2++ shard benchmark (shard_bench.py) at 1 and 4 shards
under the quick scale and fails (exit 1) if 4-shard throughput falls
below the pinned floor over 1-shard. The floor (2x) is deliberately
below the recorded full-size speedup in BENCH_PERF.json["shards"]
(>= 3x at 4 shards): shared CI runners add noise, but a drop under
the floor means cross-shard coordination (2PC, global certification,
snapshot-coherence restarts) started eating the parallel-WAL win.

The benchmark is disk-bound by construction -- every WAL fsync sleeps
a modeled device latency with the GIL released -- so the gate measures
scaling of the sharding architecture, not the CI host's disk.
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from shard_bench import bench  # noqa: E402

QUICK_SCALE = dict(warehouses=8, districts=4, customers_per_district=20,
                   items=100)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=2)
    parser.add_argument("--txns", type=int, default=12,
                        help="transactions per client")
    parser.add_argument("--clients-per-shard", type=int, default=2)
    parser.add_argument("--flush-latency", type=float, default=0.02,
                        help="modeled WAL device sync latency (s)")
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="pinned floor for 4-shard/1-shard throughput "
                             "(default 2.0; full-size runs record >=3x)")
    args = parser.parse_args(argv)

    reps = max(1, args.reps)

    def best(n_shards: int) -> float:
        # Maximum over reps (noise only ever subtracts throughput).
        return max(
            bench(n_shards, scale=QUICK_SCALE,
                  clients_per_shard=args.clients_per_shard,
                  txns_per_client=args.txns,
                  flush_latency=args.flush_latency)["commits_per_s"]
            for _ in range(reps))

    base = best(1)
    wide = best(4)
    if not base:  # degenerate timing: nothing to gate on
        print(f"1-shard throughput {base!r} unusable as a baseline; "
              "skipping")
        return 0
    speedup = wide / base
    verdict = "OK" if speedup >= args.min_speedup else "FAIL"
    print(f"1-shard {base:.1f} commits/s  4-shard {wide:.1f} commits/s  "
          f"speedup {speedup:.2f}x (floor {args.min_speedup:.2f}x)  "
          f"{verdict}")
    if speedup < args.min_speedup:
        print(f"4-shard scale-up {speedup:.2f}x fell below the "
              f"{args.min_speedup:.2f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
