"""CI gate: the vectorized executor must keep its scan speedup.

Runs the million_row_scan benchmark (aggregate scans through the SQL
layer) with the vectorized executor on and off -- identical
configurations otherwise -- and fails (exit 1) if on/off speedup falls
below the pinned floor. The floor is deliberately below the recorded
full-size speedup in BENCH_PERF.json (>= 3x): shared CI runners add
noise, but a drop under the floor means the batch path lost its
reason to exist.

Each side runs ``--reps`` times; minimum elapsed times are compared
(minimum, not mean: runner noise only ever adds time).
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                os.pardir, os.pardir, "src"))

from repro.engine.isolation import IsolationLevel  # noqa: E402

from run import million_row_scan  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--reps", type=int, default=2)
    parser.add_argument("--rows", type=int, default=8000)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--min-speedup", type=float, default=2.0,
                        help="pinned floor for on/off speedup "
                             "(default 2.0; full-size runs record >=3x)")
    args = parser.parse_args(argv)

    reps = max(1, args.reps)
    iso = IsolationLevel.SERIALIZABLE
    on = min(million_row_scan(iso, True, rows=args.rows,
                              repeats=args.repeats)["seconds"]
             for _ in range(reps))
    off = min(million_row_scan(iso, False, rows=args.rows,
                               repeats=args.repeats)["seconds"]
              for _ in range(reps))
    if not on:  # degenerate timing: nothing to gate on
        print(f"vectorized-on {on!r}s unusable as a baseline; skipping")
        return 0
    speedup = off / on
    verdict = "OK" if speedup >= args.min_speedup else "FAIL"
    print(f"vectorized-off {off:.3f}s  vectorized-on {on:.3f}s  "
          f"speedup {speedup:.2f}x (floor {args.min_speedup:.2f}x)  "
          f"{verdict}")
    if speedup < args.min_speedup:
        print(f"vectorized executor speedup {speedup:.2f}x fell below "
              f"the {args.min_speedup:.2f}x floor", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
