"""Ablation (section 5.2.1 future work): page-granularity vs next-key
index-range locking.

PostgreSQL 9.1 locked B+-tree gaps at page granularity; the paper says
"we intend to refine this to next-key locking in a future release".
Both are implemented (SSIConfig.index_locking). This microbenchmark
isolates what the refinement buys: clients repeatedly range-scan their
own closed key neighbourhood and insert fresh keys *outside* every
scanned range but on the *same leaf pages*. Page-granularity gap locks
flag every such insert against every neighbour's scan (false
rw-antidependencies that assemble into dangerous structures); next-key
locks, guarding only the scanned keys, flag none.

A second run on the receipts mix shows the flip side: when conflicts
are genuine (Figure 2 structures), the granularity does not matter.
"""

import random

from repro.config import EngineConfig, SSIConfig
from repro.engine import Between, IsolationLevel
from repro.engine.database import Database
from repro.sim import Client, Scheduler, ops
from repro.workloads import ReceiptsWorkload
from repro.workloads.base import run_workload

SER = IsolationLevel.SERIALIZABLE
SLOT_WIDTH = 1000
READ_KEYS = 8  # even keys 0,2,...,14 within the slot


def run_neighbourhood(index_locking: str, seed: int = 31,
                      n_clients: int = 6, n_slots: int = 24):
    db = Database(EngineConfig(ssi=SSIConfig(index_locking=index_locking)))
    db.create_table("t", ["k", "v"], key="k")
    setup = db.session()
    setup.begin()
    for slot in range(n_slots):
        base = slot * SLOT_WIDTH
        for i in range(READ_KEYS):
            setup.insert("t", {"k": base + 2 * i, "v": 0})
        # Fence key nobody reads: keeps inserts' next-key successors
        # inside the slot.
        setup.insert("t", {"k": base + SLOT_WIDTH - 1, "v": 0})
    setup.commit()
    counters = {slot: 0 for slot in range(n_slots)}
    scheduler = Scheduler(db, seed=seed)
    hi = 2 * (READ_KEYS - 1)
    for cid in range(n_clients):
        rng = random.Random(seed * 131 + cid)

        def source(rng=rng):
            slot = rng.randrange(n_slots)
            counters[slot] += 1
            new_key = slot * SLOT_WIDTH + hi + 2 + counters[slot]

            def program(slot=slot, new_key=new_key):
                base = slot * SLOT_WIDTH
                yield ops.begin(SER)
                yield ops.select("t", Between("k", base, base + hi))
                yield ops.insert("t", {"k": new_key, "v": 1})
                yield ops.commit()

            return ("neighbourhood", program)

        scheduler.add_client(Client(cid, db.session(), source))
    return scheduler.run(max_ticks=8000)


def test_ablation_nextkey_locking(benchmark, report):
    state = {}

    def run_all():
        for mode in ("page", "nextkey"):
            state[("micro", mode)] = run_neighbourhood(mode)
            cfg = EngineConfig(ssi=SSIConfig(index_locking=mode))
            state[("receipts", mode)] = run_workload(
                ReceiptsWorkload(), isolation=SER, n_clients=5,
                max_ticks=8000, seed=31, config=cfg)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rep = report("Ablation: index-range locking granularity "
                 "(page vs next-key)", "ablation_nextkey.txt")
    rows = []
    for workload in ("micro", "receipts"):
        for mode in ("page", "nextkey"):
            res = state[(workload, mode)]
            rows.append([workload, mode, res.commits,
                         res.serialization_failures,
                         f"{res.serialization_failure_rate:.2%}",
                         f"{res.throughput:.1f}"])
    rep.table(["workload", "index locking", "commits", "failures",
               "failure rate", "txns/ktick"], rows)
    rep.emit()

    micro_page = state[("micro", "page")]
    micro_next = state[("micro", "nextkey")]
    # Next-key locking removes the leaf-sharing false positives
    # entirely on this pattern. (It pays with more lock-manager work --
    # one lock per key instead of per page -- which is precisely the
    # memory/CPU trade-off behind PostgreSQL 9.1 shipping page
    # granularity first.)
    assert (micro_next.serialization_failure_rate
            < micro_page.serialization_failure_rate)
    assert micro_next.serialization_failures == 0
    # Genuine conflicts (the receipts mix) are unaffected by the mode.
    page_rate = state[("receipts", "page")].serialization_failure_rate
    next_rate = state[("receipts", "nextkey")].serialization_failure_rate
    assert abs(page_rate - next_rate) < 0.03
