"""Figure 3 / section 3.1: serialization graphs for Examples 1 and 2.

Re-executes both anomaly interleavings under snapshot isolation with
history recording on, rebuilds the Adya multiversion serialization
graphs, and prints their edges -- reproducing Figure 3's two cycles:

* 3(a): T1 <-rw-> T2 (two antidependencies);
* 3(b): T1 -rw-> T2 -rw-> T3 -wr-> T1.
"""

from repro.config import EngineConfig
from repro.engine import Database, Eq, IsolationLevel
from repro.verify import build_graph, check_serializable

RR = IsolationLevel.REPEATABLE_READ


def run_example1():
    db = Database(EngineConfig(record_history=True))
    db.create_table("doctors", ["name", "oncall"], key="name")
    s = db.session()
    s.insert("doctors", {"name": "alice", "oncall": True})
    s.insert("doctors", {"name": "bob", "oncall": True})
    t1, t2 = db.session(), db.session()
    t1.begin(RR)
    t2.begin(RR)
    names = {}
    names[t1.txn.xid] = "T1"
    names[t2.txn.xid] = "T2"
    for s_, doc in ((t1, "alice"), (t2, "bob")):
        rows = s_.select("doctors", Eq("oncall", True))
        if len(rows) >= 2:
            s_.update("doctors", Eq("name", doc), {"oncall": False})
    t1.commit()
    t2.commit()
    return db.recorder, names


def run_example2():
    db = Database(EngineConfig(record_history=True))
    db.create_table("control", ["id", "batch"], key="id")
    db.create_table("receipts", ["rid", "batch", "amount"], key="rid")
    db.session().insert("control", {"id": 0, "batch": 1})
    t1, t2, t3 = db.session(), db.session(), db.session()
    names = {}
    t2.begin(RR)
    names[t2.txn.xid] = "T2"
    x2 = t2.select("control", Eq("id", 0))[0]["batch"]
    t3.begin(RR)
    names[t3.txn.xid] = "T3"
    t3.update("control", Eq("id", 0), lambda r: {"batch": r["batch"] + 1})
    t3.commit()
    t1.begin(RR)
    names[t1.txn.xid] = "T1"
    x1 = t1.select("control", Eq("id", 0))[0]["batch"]
    t1.select("receipts", Eq("batch", x1 - 1))
    t1.commit()
    t2.insert("receipts", {"rid": 1, "batch": x2, "amount": 10})
    t2.commit()
    return db.recorder, names


def describe(graph, names):
    rows = []
    for u, v, kinds in graph.graph.edges(data="kinds"):
        if u in names and v in names:
            for kind in sorted(kinds):
                rows.append([names[u], f"-{kind}->", names[v]])
    return sorted(rows)


def test_fig3_serialization_graphs(benchmark, report):
    state = {}

    def run_all():
        state["rec1"], state["names1"] = run_example1()
        state["rec2"], state["names2"] = run_example2()

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    res1 = check_serializable(state["rec1"])
    res2 = check_serializable(state["rec2"])
    g1 = describe(res1.graph, state["names1"])
    g2 = describe(res2.graph, state["names2"])

    rep = report("Figure 3: serialization graphs for the SI runs of "
                 "Examples 1 and 2", "fig3_serialization_graphs.txt")
    rep.row("")
    rep.row("(a) Example 1 -- simple write skew:")
    rep.table(["from", "edge", "to"], g1)
    rep.row(f"cycle detected: {not res1.serializable}")
    rep.row("")
    rep.row("(b) Example 2 -- batch processing:")
    rep.table(["from", "edge", "to"], g2)
    rep.row(f"cycle detected: {not res2.serializable}")
    rep.emit()

    assert ["T1", "-rw->", "T2"] in g1 and ["T2", "-rw->", "T1"] in g1
    assert not res1.serializable
    assert ["T1", "-rw->", "T2"] in g2
    assert ["T2", "-rw->", "T3"] in g2
    assert ["T3", "-wr->", "T1"] in g2
    assert not res2.serializable
