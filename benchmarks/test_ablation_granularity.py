"""Ablation (section 6, technique 2): predicate-lock granularity
promotion trades memory for precision.

Aggressive thresholds bound the SIREAD table tightly but coarse locks
create false rw-conflicts; lax thresholds keep tuple-granularity
precision at a memory cost. Measured on the RUBiS bidding mix, whose
read-only browsing takes many fine-grained locks per transaction.
"""

from repro.config import EngineConfig, SSIConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.workloads import RubisBidding
from repro.workloads.base import run_workload

SER = IsolationLevel.SERIALIZABLE

SETTINGS = [
    ("aggressive (1/page, 2/rel)", 1, 2),
    ("default (4/page, 32/rel)", 4, 32),
    ("lax (64/page, 1024/rel)", 64, 1024),
]


def run_one(per_page: int, per_rel: int):
    cfg = EngineConfig(ssi=SSIConfig(max_pred_locks_per_page=per_page,
                                     max_pred_locks_per_relation=per_rel))
    db = Database(cfg)
    result = run_workload(RubisBidding(read_only_fraction=0.7),
                          isolation=SER, n_clients=5,
                          max_ticks=8000, seed=29, config=cfg, db=db)
    return result, db.ssi.lockmgr.peak_lock_count


def test_ablation_granularity_promotion(benchmark, report):
    state = {}

    def run_all():
        state["rows"] = [(name,) + run_one(pp, pr)
                         for name, pp, pr in SETTINGS]

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rep = report("Ablation: SIREAD granularity promotion thresholds "
                 "(RUBiS bidding mix, 70% read-only)",
                 "ablation_granularity.txt")
    rows = []
    for name, result, peak in state["rows"]:
        rows.append([name, result.commits, result.serialization_failures,
                     f"{result.serialization_failure_rate:.2%}", peak])
    rep.table(["thresholds", "commits", "failures", "failure rate",
               "peak SIREAD locks"], rows)
    rep.emit()

    by_name = {name: (result, peak) for name, result, peak in state["rows"]}
    aggr_res, aggr_peak = by_name[SETTINGS[0][0]]
    lax_res, lax_peak = by_name[SETTINGS[2][0]]
    # The memory bound is real...
    assert aggr_peak < lax_peak
    # ...and coarser locks can only add false positives, never remove
    # real conflicts.
    assert (aggr_res.serialization_failures
            >= lax_res.serialization_failures)
