"""Figure 2 / section 2.1.2: the batch-processing (receipts) anomaly.

Runs the receipts workload and counts invariant violations: a REPORT
whose batch total later changed (the "silent data corruption" the
paper warns about). SI exhibits them; SSI and S2PL never do. Also
reports throughput so the price of the guarantee is visible.
"""

from repro.config import EngineConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.workloads import ReceiptsWorkload, run_workload

SEEDS = range(12)


def run_one(isolation: IsolationLevel):
    total_violations = 0
    total_reports = 0
    total_commits = 0
    total_ticks = 0.0
    failures = 0
    for seed in SEEDS:
        workload = ReceiptsWorkload()
        db = Database(EngineConfig())
        result = run_workload(workload, isolation=isolation, n_clients=5,
                              max_ticks=6000, seed=seed, db=db)
        total_violations += len(workload.violations(db))
        total_reports += len(workload.reports)
        total_commits += result.commits
        total_ticks += result.ticks
        failures += result.serialization_failures
    return {
        "violations": total_violations,
        "reports": total_reports,
        "throughput": total_commits / total_ticks * 1000.0,
        "serialization_failures": failures,
    }


def test_fig2_batch_processing(benchmark, report):
    outcomes = {}

    def run_all():
        outcomes["SI"] = run_one(IsolationLevel.REPEATABLE_READ)
        outcomes["SSI"] = run_one(IsolationLevel.SERIALIZABLE)
        outcomes["S2PL"] = run_one(IsolationLevel.S2PL)
        return outcomes

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rep = report("Figure 2: batch-processing report invariant "
                 "(12 seeded runs; violation = a committed REPORT whose "
                 "batch total later changed)", "fig2_batch_processing.txt")
    rep.table(
        ["series", "reports", "violations", "serialization failures",
         "throughput/ktick"],
        [[name, o["reports"], o["violations"], o["serialization_failures"],
          f"{o['throughput']:.1f}"] for name, o in outcomes.items()])
    rep.emit()

    assert outcomes["SI"]["violations"] > 0, \
        "expected SI to violate the report invariant"
    assert outcomes["SSI"]["violations"] == 0
    assert outcomes["S2PL"]["violations"] == 0
    # SSI pays with aborted/retried transactions instead.
    assert outcomes["SSI"]["serialization_failures"] > 0
