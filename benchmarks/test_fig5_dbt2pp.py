"""Figure 5 / section 8.2: DBT-2++ throughput for SSI and S2PL as a
fraction of SI throughput, across read-only transaction fractions.

5(a) in-memory: SSI costs a few percent of CPU (dependency tracking);
S2PL falls well behind, especially as the read-only fraction grows
(more rw-conflicts for locking to block on); at 100% read-only all
modes converge (no lock conflicts, all snapshots safe).

5(b) disk-bound: a small buffer pool plus a per-miss I/O charge makes
I/O dominate; CPU overhead stops mattering and SSI becomes
indistinguishable from SI, with serialization failures staying rare.
"""

from conftest import normalized, run_series

from repro.workloads import DBT2PP

RO_FRACTIONS = [0.0, 0.25, 0.5, 0.75, 1.0]
SERIES_A = ["SI", "SSI", "SSI (no r/o opt.)", "S2PL"]
SERIES_B = ["SI", "SSI", "S2PL"]  # the paper's 5(b) omits the no-opt series


def make_workload(ro_fraction):
    return DBT2PP(read_only_fraction=ro_fraction, items=200,
                  items_per_order=(2, 4))


def _run_figure(series, disk_bound, max_ticks):
    table = {}
    for frac in RO_FRACTIONS:
        results = run_series(lambda f=frac: make_workload(f), series,
                             n_clients=4, max_ticks=max_ticks, seed=11,
                             disk_bound=disk_bound)
        table[frac] = (normalized(results), results)
    return table


def test_fig5a_dbt2pp_in_memory(benchmark, report):
    table = {}

    def run_all():
        table.update(_run_figure(SERIES_A, disk_bound=False,
                                 max_ticks=6000))

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rep = report("Figure 5a: DBT-2++ throughput normalized to SI "
                 "(in-memory configuration), by read-only fraction",
                 "fig5a_dbt2pp_inmem.txt")
    rows = []
    for frac in RO_FRACTIONS:
        norm, results = table[frac]
        rows.append([f"{frac:.0%}"] + [f"{norm[s]:.3f}" for s in SERIES_A]
                    + [f"{results['SSI'].serialization_failure_rate:.3%}"])
    rep.table(["read-only"] + SERIES_A + ["SSI failure rate"], rows)
    rep.emit()

    for frac in RO_FRACTIONS:
        norm, results = table[frac]
        assert norm["SSI"] >= 0.8, (frac, norm)
        assert norm["S2PL"] <= norm["SSI"], (frac, norm)
        # Serialization failures stay a small fraction of transactions.
        assert results["SSI"].serialization_failure_rate < 0.10
    # Mixed workloads: S2PL suffers clearly; 100% read-only converges.
    assert table[0.5][0]["S2PL"] < 0.85
    assert table[1.0][0]["S2PL"] > table[0.5][0]["S2PL"]
    assert table[1.0][0]["SSI"] > 0.9


def test_fig5b_dbt2pp_disk_bound(benchmark, report):
    table = {}

    def run_all():
        table.update(_run_figure(SERIES_B, disk_bound=True,
                                 max_ticks=12000))

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rep = report("Figure 5b: DBT-2++ throughput normalized to SI "
                 "(disk-bound configuration), by read-only fraction",
                 "fig5b_dbt2pp_disk.txt")
    rows = []
    for frac in RO_FRACTIONS:
        norm, results = table[frac]
        rows.append([f"{frac:.0%}"] + [f"{norm[s]:.3f}" for s in SERIES_B]
                    + [f"{results['SSI'].serialization_failure_rate:.3%}"])
    rep.table(["read-only"] + SERIES_B + ["SSI failure rate"], rows)
    rep.emit()

    for frac in RO_FRACTIONS:
        norm, results = table[frac]
        # Paper: "the performance of SSI is indistinguishable from that
        # of SI" once I/O dominates; allow a small margin.
        assert norm["SSI"] >= 0.85, (frac, norm)
        assert results["SSI"].serialization_failure_rate < 0.10
    # The SI-vs-SSI gap must be smaller here than in the CPU-bound
    # configuration at the standard 8%-read-only-adjacent point.
    in_mem = _run_figure(["SI", "SSI"], disk_bound=False, max_ticks=4000)
    assert (1 - table[0.0][0]["SSI"]) <= (1 - in_mem[0.0][0]["SSI"]) + 0.05
