"""Figure 6 / section 8.3: RUBiS bidding-mix performance.

The paper's table: SI 435 req/s (0.004% serialization failures),
SSI 422 req/s (0.03%), S2PL 208 req/s (0.76%, mostly deadlocks). The
shape to reproduce: SSI within a few percent of SI with a small but
higher failure rate; S2PL roughly half of SI with the highest failure
rate, driven by lock contention and deadlocks on the bid-vs-browse
conflict pattern.
"""

from conftest import normalized, run_series

from repro.workloads import RubisBidding

SERIES = ["SI", "SSI", "S2PL"]


def test_fig6_rubis(benchmark, report):
    state = {}

    def run_all():
        state["results"] = run_series(
            lambda: RubisBidding(), SERIES,
            n_clients=4, max_ticks=10_000, seed=13)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    results = state["results"]
    norm = normalized(results)

    rep = report("Figure 6: RUBiS bidding mix", "fig6_rubis.txt")
    rows = []
    for name in SERIES:
        res = results[name]
        rows.append([
            name,
            f"{res.throughput:.1f}",
            f"{norm[name]:.3f}",
            f"{res.serialization_failure_rate:.4%}",
            res.deadlocks,
        ])
    rep.table(["series", "txns/ktick", "normalized",
               "serialization failures", "deadlocks"], rows)
    rep.emit()

    # SSI within a few percent of SI.
    assert norm["SSI"] >= 0.90, norm
    # S2PL pays heavily (paper: ~0.48x SI).
    assert norm["S2PL"] < norm["SSI"] - 0.05, norm
    # Failure-rate ordering: SI <= SSI, and S2PL is the only mode with
    # deadlocks.
    assert (results["SI"].serialization_failure_rate
            <= results["SSI"].serialization_failure_rate + 1e-9)
    assert results["S2PL"].deadlocks > 0
    assert results["SSI"].serialization_failure_rate < 0.02
