"""Ablation (section 5.3): full in/out conflict lists vs the original
SSI paper's two single-bit flags per transaction.

PostgreSQL 9.1 chose full lists because pointers enable the
commit-ordering optimization (section 3.3.1) and the read-only
optimizations (section 4); the flag-only variant aborts on every pivot
regardless of commit order, inflating the false-positive rate. The
receipts workload (Figure 2's mix) generates exactly the pivot
structures where the optimizations matter: NEW-RECEIPT sits between
REPORT readers and CLOSE-BATCH writers.
"""

from conftest import run_series

from repro.workloads import ReceiptsWorkload


def test_ablation_conflict_tracking(benchmark, report):
    state = {}

    def run_all():
        state["results"] = run_series(
            lambda: ReceiptsWorkload(),
            ["SI", "SSI", "SSI (no r/o opt.)", "SSI (flags)"],
            n_clients=5, max_ticks=8000, seed=23)

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    results = state["results"]
    rows = []
    for name in ("SI", "SSI", "SSI (no r/o opt.)", "SSI (flags)"):
        res = results[name]
        rows.append([name, res.commits,
                     res.serialization_failures,
                     f"{res.serialization_failure_rate:.2%}",
                     f"{res.throughput:.1f}"])
    rep = report("Ablation: conflict tracking fidelity on the receipts "
                 "mix (full rw-antidependency lists with the commit "
                 "ordering + read-only optimizations, without the "
                 "read-only optimizations, and single-bit flags)",
                 "ablation_conflict_tracking.txt")
    rep.table(["tracking", "commits", "serialization failures",
               "failure rate", "txns/ktick"], rows)
    rep.emit()

    full = results["SSI"]
    noro = results["SSI (no r/o opt.)"]
    flags = results["SSI (flags)"]
    # Each dropped optimization costs precision: flags > no-r/o >= full.
    assert flags.serialization_failure_rate \
        > full.serialization_failure_rate
    assert noro.serialization_failure_rate \
        >= full.serialization_failure_rate
    assert flags.serialization_failure_rate \
        >= noro.serialization_failure_rate
    # And throughput pays for it.
    assert flags.throughput < full.throughput
