"""Figure 1 / section 2.1.1: the simple write-skew anomaly.

Regenerates the paper's motivating example as a measurement: running
the doctors workload over many seeds, snapshot isolation violates the
"at least one doctor on call" invariant in a measurable fraction of
runs, while SERIALIZABLE (SSI) and S2PL never do.
"""

from repro.config import EngineConfig
from repro.engine.isolation import IsolationLevel
from repro.workloads import DoctorsWorkload, run_workload

SEEDS = range(20)


def violation_rate(isolation: IsolationLevel) -> float:
    violations = 0
    for seed in SEEDS:
        workload = DoctorsWorkload(n_doctors=3, transactions_per_client=3)
        from repro.engine.database import Database
        db = Database(EngineConfig())
        run_workload(workload, isolation=isolation, n_clients=4,
                     max_ticks=50_000, seed=seed, db=db)
        if not workload.invariant_holds(db):
            violations += 1
    return violations / len(list(SEEDS))


def test_fig1_write_skew(benchmark, report):
    rates = {}

    def run_all():
        rates["SI"] = violation_rate(IsolationLevel.REPEATABLE_READ)
        rates["SSI"] = violation_rate(IsolationLevel.SERIALIZABLE)
        rates["S2PL"] = violation_rate(IsolationLevel.S2PL)
        return rates

    benchmark.pedantic(run_all, rounds=1, iterations=1)

    rep = report("Figure 1: write-skew invariant violations "
                 "(fraction of 20 seeded runs ending with zero doctors "
                 "on call)", "fig1_write_skew.txt")
    rep.table(["series", "violation rate"],
              [[k, f"{v:.2f}"] for k, v in rates.items()])
    rep.emit()

    # Paper shape: SI allows the anomaly, serializable modes never do.
    assert rates["SI"] > 0.0, "expected SI to exhibit write skew"
    assert rates["SSI"] == 0.0
    assert rates["S2PL"] == 0.0
