"""repro.obs — unified observability: metrics, tracing, post-mortems.

The paper's evaluation (section 8) and memory-mitigation story
(section 6) both depend on *observing* the SSI machinery: counting
aborts by cause, separating true dangerous structures from false
positives, and watching SIREAD lock footprint under pressure.
PostgreSQL shipped this as ``pg_stat_*`` counters and DBA views; this
package is the engine-wide equivalent:

* :mod:`repro.obs.metrics` -- a registry of named counters, gauges and
  histograms with labels, plus snapshot/diff/reset for per-phase
  benchmark deltas.  Always on: the legacy ``SSIStats``/``EngineStats``
  blocks are thin views over it.
* :mod:`repro.obs.trace` -- a ring-buffered structured event tracer
  (transaction lifecycle, rw-conflict edges, dangerous-structure
  checks, dooms, lock waits, WAL shipping) with per-xid filtering and
  JSONL export.  Off by default; enabled via
  ``EngineConfig.obs = ObsConfig(enabled=True)``.
* :mod:`repro.obs.postmortem` -- reconstructs the
  ``T1 -rw-> T2 -rw-> T3`` structure behind any SerializationFailure
  and renders a report naming the pivot, the conflicting targets and
  the rule that fired.

Instrumentation sites throughout the engine hold an
:class:`Observability` handle; when tracing is disabled the per-event
cost is a single ``is not None`` test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               MetricsSnapshot, StatsView, format_key,
                               install_counter_properties)
from repro.obs.postmortem import (PostMortem, RWEdge, describe_target,
                                  explain_failure)
from repro.obs.trace import TraceEvent, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.config import ObsConfig


class Observability:
    """One engine's observability handle: a metrics registry (always
    live) plus an optional tracer.

    The metrics registry must exist even with observability "disabled"
    because the engine's own stat blocks live on it; the ``enabled``
    toggle gates everything with per-event hot-path cost beyond a
    counter increment (tracing, lock-wait timing)."""

    __slots__ = ("config", "enabled", "metrics", "tracer")

    def __init__(self, config: Optional["ObsConfig"] = None) -> None:
        if config is None:
            from repro.config import ObsConfig
            config = ObsConfig()
        self.config = config
        self.enabled = config.enabled
        self.metrics = MetricsRegistry()
        self.tracer: Optional[Tracer] = (
            Tracer(capacity=config.trace_capacity)
            if config.enabled and config.trace else None)

    def emit(self, kind: str, xid: Optional[int] = None, **data) -> None:
        """Trace an event if tracing is on (hot paths should guard with
        ``if obs.tracer is not None`` and call ``obs.tracer.emit``
        directly instead of paying this extra call)."""
        if self.tracer is not None:
            self.tracer.emit(kind, xid, **data)

    def trace_events(self, kind: Optional[str] = None,
                     xid: Optional[int] = None):
        return [] if self.tracer is None else self.tracer.events(kind, xid)


__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "MetricsSnapshot",
    "StatsView", "format_key", "install_counter_properties",
    "Observability", "PostMortem", "RWEdge", "describe_target",
    "explain_failure", "TraceEvent", "Tracer",
]
