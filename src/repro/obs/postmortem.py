"""Abort post-mortems: reconstruct *why* a transaction failed.

Given a :class:`~repro.errors.SerializationFailure` (now carrying
structured fields) plus the trace buffer and whatever sxact state is
still retained, rebuild the dangerous structure
``T1 -rw-> T2 -rw-> T3`` behind the abort and render a human-readable
report naming the pivot, the conflicting predicate-lock targets
(relation / page / tuple / index key), and which commit-ordering rule
fired.  This answers, after the fact, the question the paper's
evaluation had to answer with ``pg_stat``-style counters and ad-hoc
logging: was this abort a true anomaly or a false positive, and which
reads and writes produced it?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import AbortCause, SerializationFailure

_RULE_TEXT = {
    "commit_order": ("commit-ordering rule (section 3.3.1): T3 was the "
                     "first of the three to commit"),
    "ro_snapshot": ("read-only rule (Theorem 3 / section 4.1): T1 is read-"
                    "only and T3 committed before T1 took its snapshot"),
    "basic": "basic SSI rule: pivot with both in- and out-edges "
             "(commit-ordering optimization disabled)",
    "flags": "flag-tracking ablation: both conflict bits set on the pivot",
}

_CAUSE_TEXT = {
    AbortCause.PIVOT: "aborted on the spot as the pivot of a dangerous "
                      "structure",
    AbortCause.UNABORTABLE: "had to abort itself: every other participant "
                            "already committed or prepared",
    AbortCause.DOOMED_AT_OP: "was marked DOOMED by another session and "
                             "failed at its next operation",
    AbortCause.DOOMED_AT_COMMIT: "was marked DOOMED by another session and "
                                 "failed at commit",
    AbortCause.UPDATE_CONFLICT: "lost a first-updater-wins write/write "
                                "conflict (snapshot isolation rule, not a "
                                "dangerous structure)",
}


@dataclass
class RWEdge:
    """One rw-antidependency edge reader -rw-> writer, with the
    predicate-lock target that witnessed it (when traced)."""

    reader_xid: int
    writer_xid: int
    site: Optional[tuple] = None
    site_desc: str = "unknown target"
    trace_seq: Optional[int] = None

    def describe(self) -> str:
        where = f" on {self.site_desc}" if self.site is not None else ""
        ref = f"  [trace #{self.trace_seq}]" if self.trace_seq else ""
        return (f"T{{{self.reader_xid}}} -rw-> T{{{self.writer_xid}}}"
                f"{where}{ref}")


@dataclass
class PostMortem:
    """Everything recoverable about one serialization failure."""

    cause: Optional[AbortCause]
    rule: Optional[str]
    pivot_xid: Optional[int]
    t1_xid: Optional[int]
    t3_xid: Optional[int]
    t3_commit_seq: Optional[float]
    message: str
    #: Edges into the pivot (T1 -rw-> pivot) seen in the trace.
    in_edges: List[RWEdge] = field(default_factory=list)
    #: Edges out of the pivot (pivot -rw-> T3) seen in the trace.
    out_edges: List[RWEdge] = field(default_factory=list)
    #: Trace events involving the pivot, oldest first (dicts).
    timeline: List[Dict[str, Any]] = field(default_factory=list)

    # -- derived ---------------------------------------------------------
    @property
    def structure(self) -> str:
        t1 = f"T{{{self.t1_xid}}}" if self.t1_xid is not None else "T1(summary)"
        t3 = (f"T{{{self.t3_xid}}}" if self.t3_xid is not None
              else f"T3(commit_seq={self.t3_commit_seq})")
        pivot = (f"T{{{self.pivot_xid}}}" if self.pivot_xid is not None
                 else "T2(?)")
        return f"{t1} -rw-> {pivot} -rw-> {t3}"

    def render(self) -> str:
        lines = ["serialization failure post-mortem",
                 "=" * 33]
        cause_val = self.cause.value if self.cause else "unknown"
        lines.append(f"cause: {cause_val}")
        if self.cause in _CAUSE_TEXT and self.pivot_xid is not None:
            lines.append(f"  transaction {self.pivot_xid} "
                         f"{_CAUSE_TEXT[self.cause]}")
        if self.cause is not AbortCause.UPDATE_CONFLICT:
            lines.append(f"dangerous structure: {self.structure}")
            if self.pivot_xid is not None:
                lines.append(f"  pivot: transaction {self.pivot_xid}")
            if self.t1_xid == self.t3_xid and self.t1_xid is not None:
                lines.append("  (T1 and T3 are the same transaction: a "
                             "two-transaction write-skew cycle)")
            if self.rule:
                lines.append(f"rule fired: "
                             f"{_RULE_TEXT.get(self.rule, self.rule)}")
            if self.in_edges:
                lines.append("rw-antidependencies into the pivot:")
                for edge in self.in_edges:
                    lines.append(f"  {edge.describe()}")
            if self.out_edges:
                lines.append("rw-antidependencies out of the pivot:")
                for edge in self.out_edges:
                    lines.append(f"  {edge.describe()}")
            if not self.in_edges and not self.out_edges:
                lines.append("(no rw-conflict trace events retained: "
                             "enable ObsConfig.trace or raise "
                             "trace_capacity for edge-level detail)")
        lines.append(f"error: {self.message}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _oid_names(db) -> Dict[int, str]:
    """Map relation and index oids to human-readable names."""
    names: Dict[int, str] = {}
    if db is None:
        return names
    for name, rel in db.relations().items():
        names[rel.oid] = name
        for index in rel.indexes.values():
            names[index.oid] = index.name
    return names


def describe_target(target: Optional[tuple],
                    names: Optional[Dict[int, str]] = None) -> str:
    """Render a predicate-lock target (repro.ssi.targets) readably."""
    if target is None:
        return "unknown target"
    names = names or {}
    target = tuple(target)
    kind = target[0]
    oid = target[1] if len(target) > 1 else None
    name = names.get(oid, f"oid {oid}")
    if kind == "r":
        return f"relation {name}"
    if kind == "p":
        return f"page {target[2]} of {name}"
    if kind == "t":
        return f"tuple ({target[2]},{target[3]}) of {name}"
    if kind == "ir":
        return f"index {name}"
    if kind == "ip":
        return f"index page {target[2]} of {name}"
    if kind == "ik":
        return f"index key {target[2]!r} of {name}"
    if kind == "ik+":
        return f"+infinity gap of index {name}"
    return repr(target)


def dump_state(db) -> str:
    """Compact text dump of the engine's live state, for attaching to
    sanitizer violations (repro.analysis): active transactions, SSI
    tracking, lock tables, and -- when a history recorder is present --
    the serialization graph's per-edge-type breakdown, so a violation
    report can cite the dependency edges in play."""
    if db is None:
        return ""
    lines: List[str] = []
    active = db.active_transactions()
    lines.append(f"active transactions: "
                 f"{sorted(t.xid for t in active) or 'none'}")
    ssi = getattr(db, "ssi", None)
    if ssi is not None:
        lines.append(f"ssi: {len(ssi.active_sxacts())} active, "
                     f"{len(ssi.committed_retained())} committed-retained, "
                     f"{len(ssi.old_serxid_table())} summarized, "
                     f"{ssi.lockmgr.lock_count} SIREAD locks")
        for sx in sorted(ssi.active_sxacts(), key=lambda s: s.xid):
            flags = []
            if sx.doomed:
                flags.append("DOOMED")
            if sx.prepared:
                flags.append("prepared")
            if sx.declared_read_only:
                flags.append("RO")
            lines.append(
                f"  sxact {sx.xid}{' [' + ' '.join(flags) + ']' if flags else ''}: "
                f"in={sorted(p.xid for p in sx.in_conflicts)} "
                f"out={sorted(p.xid for p in sx.out_conflicts)}")
    held = {}
    for row in db.lockmgr.iter_locks():
        if row["granted"]:
            held.setdefault(row["owner_xid"], []).append(row["tag"])
    lines.append(f"heavyweight locks: "
                 f"{sum(len(tags) for tags in held.values())} held by "
                 f"{sorted(held) or 'nobody'}")
    if db.recorder is not None:
        try:
            from repro.verify.checker import check_serializable
            result = check_serializable(db.recorder)
            lines.append("dependency edges: " + (
                ", ".join(f"{kind}={count}" for kind, count
                          in sorted(result.edge_counts.items()))
                or "none"))
            if not result.serializable and result.cycle_edges:
                lines.append("offending cycle edges:")
                for src, dst, kind in result.cycle_edges:
                    lines.append(f"  T{{{src}}} -{kind}-> T{{{dst}}}")
        except Exception as exc:  # recorder mid-transaction, etc.
            lines.append(f"dependency edges: unavailable ({exc})")
    return "\n".join(lines)


def explain_failure(db, exc: SerializationFailure) -> PostMortem:
    """Build a :class:`PostMortem` for ``exc`` from the database's
    trace buffer and retained SSI state.

    Works with tracing disabled too -- the structured error fields
    alone name the structure -- but edge sites and the timeline need
    ``ObsConfig(enabled=True, trace=True)``.
    """
    pm = PostMortem(
        cause=getattr(exc, "cause", None),
        rule=getattr(exc, "rule", None),
        pivot_xid=getattr(exc, "pivot_xid", None),
        t1_xid=getattr(exc, "t1_xid", None),
        t3_xid=getattr(exc, "t3_xid", None),
        t3_commit_seq=getattr(exc, "t3_commit_seq", None),
        message=str(exc),
    )
    tracer = getattr(getattr(db, "obs", None), "tracer", None)
    if tracer is None or pm.pivot_xid is None:
        return pm
    names = _oid_names(db)
    seen = set()
    for ev in tracer.events(kind="rw.conflict"):
        reader = ev.data.get("reader_xid")
        writer = ev.data.get("writer_xid")
        if pm.pivot_xid not in (reader, writer):
            continue
        site = ev.data.get("site")
        key = (reader, writer, site)
        if key in seen:
            continue
        seen.add(key)
        edge = RWEdge(reader_xid=reader, writer_xid=writer, site=site,
                      site_desc=describe_target(site, names),
                      trace_seq=ev.seq)
        if writer == pm.pivot_xid:
            pm.in_edges.append(edge)
        else:
            pm.out_edges.append(edge)
    # Resolve T3 by commit sequence if only the number survived.
    if pm.t3_xid is None and pm.t3_commit_seq is not None:
        for ev in tracer.events(kind="txn.commit"):
            if ev.data.get("commit_seq") == pm.t3_commit_seq:
                pm.t3_xid = ev.xid
                break
    pm.timeline = [ev.to_dict() for ev in tracer.events(xid=pm.pivot_xid)]
    return pm
