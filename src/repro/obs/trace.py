"""Structured event tracer: a ring buffer of engine events.

Every interesting step of the SSI machinery (transaction lifecycle,
reads, writes, rw-antidependency edges, dangerous-structure checks,
dooms, summarization, lock waits, WAL shipping) can emit one
:class:`TraceEvent`.  The buffer is bounded (``collections.deque`` with
``maxlen``), so tracing a long benchmark keeps the most recent window.

The tracer exists only when enabled (``ObsConfig.enabled`` and
``ObsConfig.trace``); instrumentation sites guard with
``if obs.tracer is not None`` so the disabled cost is one attribute
test.

Event kinds used by the engine (see DESIGN.md "Observability"):

==================  =====================================================
kind                emitted when
==================  =====================================================
``txn.begin``       a transaction starts (isolation, read_only, deferrable)
``txn.snapshot``    a snapshot is taken for a transaction
``txn.commit``      a transaction commits (``commit_seq`` for SSI ones)
``txn.abort``       a transaction rolls back
``read.tuple``      a serializable transaction examines a heap tuple
``scan.rel``        a sequential scan takes a relation SIREAD lock
``write.tuple``     a heap write checks SIREAD holders
``rw.conflict``     an rw-antidependency edge is recorded (reader, writer,
                    site = the predicate-lock target that witnessed it)
``danger.check``    a dangerous structure T1->T2->T3 is confirmed
``doom``            a victim is marked DOOMED by another session
``abort.raise``     a SerializationFailure is raised (cause, rule)
``ro.safe``         a READ ONLY snapshot is proven safe
``ro.unsafe``       a READ ONLY snapshot is proven unsafe
``summarize``       a committed sxact is consolidated (section 6.2)
``lock.wait``       a heavyweight lock request queues
``lock.grant``      a queued request is granted (``wait_ns``)
``lock.cancel``     a queued request is cancelled (owner aborted)
``buf.miss``        a buffer-cache miss
``wal.ship``        a commit record enters the logical WAL stream
==================  =====================================================
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any, Dict, List, Optional


class TraceEvent:
    """One structured event: sequence number, monotonic timestamp,
    kind, optional transaction id, and free-form payload."""

    __slots__ = ("seq", "ts_ns", "kind", "xid", "data")

    def __init__(self, seq: int, ts_ns: int, kind: str,
                 xid: Optional[int], data: Dict[str, Any]) -> None:
        self.seq = seq
        self.ts_ns = ts_ns
        self.kind = kind
        self.xid = xid
        self.data = data

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"seq": self.seq, "ts_ns": self.ts_ns,
                               "kind": self.kind}
        if self.xid is not None:
            out["xid"] = self.xid
        out.update(self.data)
        return out

    def __repr__(self) -> str:
        extra = "".join(f" {k}={v!r}" for k, v in self.data.items())
        who = f" xid={self.xid}" if self.xid is not None else ""
        return f"<#{self.seq} {self.kind}{who}{extra}>"


class Tracer:
    """Bounded in-memory event log with filtering and JSONL export."""

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self._buf: "deque[TraceEvent]" = deque(maxlen=capacity)
        self._seq = 0
        #: Total events ever emitted (>= len(self) once the ring wraps).
        self.emitted = 0

    def emit(self, kind: str, xid: Optional[int] = None,
             **data: Any) -> TraceEvent:
        self._seq += 1
        self.emitted += 1
        event = TraceEvent(self._seq, time.monotonic_ns(), kind, xid, data)
        self._buf.append(event)
        return event

    # -- reading ---------------------------------------------------------
    def events(self, kind: Optional[str] = None,
               xid: Optional[int] = None) -> List[TraceEvent]:
        """Events currently buffered, oldest first, optionally filtered
        by kind and/or by transaction id (matching either the event's
        ``xid`` or any xid-valued payload field, so per-transaction
        filtering also finds edges where it was the counterparty)."""
        out = []
        for ev in self._buf:
            if kind is not None and ev.kind != kind:
                continue
            if xid is not None and not self._involves(ev, xid):
                continue
            out.append(ev)
        return out

    @staticmethod
    def _involves(ev: TraceEvent, xid: int) -> bool:
        if ev.xid == xid:
            return True
        for key, value in ev.data.items():
            if key.endswith("xid") and value == xid:
                return True
        return False

    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self):
        return iter(list(self._buf))

    def clear(self) -> None:
        self._buf.clear()

    # -- export ----------------------------------------------------------
    def export_jsonl(self, destination) -> int:
        """Write buffered events as JSON Lines to a path or file object;
        returns the number of events written. Non-JSON-native payload
        values (tuples, enums) are stringified."""
        if isinstance(destination, (str, bytes, os.PathLike)):
            with open(destination, "w") as fh:
                return self.export_jsonl(fh)
        n = 0
        for ev in self._buf:
            destination.write(json.dumps(ev.to_dict(), default=str) + "\n")
            n += 1
        return n
