"""Metrics registry: named counters, gauges, and histograms with labels.

The registry is the permanent home of every operational counter in the
engine (the role ``pg_stat_*`` plays for PostgreSQL, whose counters the
paper's evaluation section relies on to count aborts and watch SIREAD
footprint).  Design constraints:

* **hot-path cost is one bound-method call**: callers fetch the metric
  point object once (``c = registry.counter("ssi.aborts", cause="pivot")``)
  and then only ever call ``c.inc()``, which is a plain attribute
  increment -- no dict lookup, no label hashing per event;
* ``snapshot()`` / ``MetricsSnapshot.diff()`` / ``reset()`` let
  benchmarks report per-phase deltas;
* ``reset()`` zeroes values *in place* so bound points stay valid;
* legacy stat blocks (``SSIStats``, ``EngineStats``) are thin attribute
  views over registry counters (:class:`StatsView`), so code written
  against ``stats.commits += 1`` keeps working unchanged.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Tuple

LabelSet = Tuple[Tuple[str, str], ...]

#: Default histogram buckets: half-decade steps covering ~1us..10s in ns.
DEFAULT_BUCKETS = (1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10)


def _labelset(labels: Dict[str, object]) -> LabelSet:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def format_key(name: str, labels: LabelSet) -> str:
    """Render ``name{k=v,...}`` (the key format snapshots use)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonic counter point. ``value`` is directly settable so the
    thin attribute views can support ``stats.field += 1`` and tests can
    zero individual counters."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, n: int = 1) -> None:
        self.value += n

    def read(self):
        return self.value

    def zero(self) -> None:
        self.value = 0


class Gauge:
    """Point-in-time value. Either set explicitly (``set``) or backed by
    a callback (``set_function``) evaluated lazily at snapshot time --
    the zero-hot-path-overhead option for values the engine already
    tracks (live SIREAD count, buffer misses, WAL length)."""

    __slots__ = ("name", "labels", "value", "fn")
    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.fn: Optional[Callable[[], float]] = None

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta

    def set_function(self, fn: Callable[[], float]) -> None:
        self.fn = fn

    def read(self):
        return self.fn() if self.fn is not None else self.value

    def zero(self) -> None:
        if self.fn is None:
            self.value = 0.0


class Histogram:
    """Fixed-bucket histogram (cumulative-style buckets plus count/sum)."""

    __slots__ = ("name", "labels", "buckets", "counts", "count", "sum")
    kind = "histogram"

    def __init__(self, name: str, labels: LabelSet = (),
                 buckets: Iterable[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.labels = labels
        self.buckets = tuple(sorted(buckets))
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for +inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value

    def read(self) -> Dict[str, object]:
        out: Dict[str, object] = {"count": self.count, "sum": self.sum}
        buckets = {}
        for bound, n in zip(self.buckets, self.counts):
            buckets[bound] = n
        buckets[float("inf")] = self.counts[-1]
        out["buckets"] = buckets
        return out

    def zero(self) -> None:
        self.counts = [0] * (len(self.buckets) + 1)
        self.count = 0
        self.sum = 0.0


class MetricsSnapshot(dict):
    """``{formatted key: value}`` at one instant; histograms appear as
    ``{"count": ..., "sum": ..., "buckets": {...}}`` dicts."""

    def diff(self, before: "MetricsSnapshot") -> "MetricsSnapshot":
        """Per-phase delta: self - before. Counter and histogram values
        subtract; keys absent from ``before`` count from zero; gauges
        (any non-accumulating value) also subtract, which reads as "net
        change over the phase"."""
        out = MetricsSnapshot()
        for key, after in self.items():
            prev = before.get(key)
            if isinstance(after, dict):
                prev = prev or {"count": 0, "sum": 0.0, "buckets": {}}
                out[key] = {
                    "count": after["count"] - prev["count"],
                    "sum": after["sum"] - prev.get("sum", 0.0),
                    "buckets": {b: n - prev.get("buckets", {}).get(b, 0)
                                for b, n in after.get("buckets", {}).items()},
                }
            else:
                out[key] = after - (prev or 0)
        return out

    def nonzero(self) -> "MetricsSnapshot":
        out = MetricsSnapshot()
        for key, value in self.items():
            if isinstance(value, dict):
                if value.get("count"):
                    out[key] = value
            elif value:
                out[key] = value
        return out


class MetricsRegistry:
    """Get-or-create registry of metric points keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}

    # -- point accessors (call once, keep the returned object) ----------
    def _get(self, cls, name: str, labels: Dict[str, object], **kw):
        key = (name, _labelset(labels))
        point = self._metrics.get(key)
        if point is None:
            point = cls(name, key[1], **kw)
            self._metrics[key] = point
        elif not isinstance(point, cls):
            raise TypeError(f"metric {name!r} already registered as "
                            f"{type(point).__name__}")
        return point

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Iterable[float] = DEFAULT_BUCKETS,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, buckets=buckets)

    # -- bulk operations -------------------------------------------------
    def points(self) -> List[object]:
        return list(self._metrics.values())

    def snapshot(self) -> MetricsSnapshot:
        snap = MetricsSnapshot()
        for (name, labels), point in sorted(self._metrics.items()):
            snap[format_key(name, labels)] = point.read()
        return snap

    def reset(self) -> None:
        """Zero every point in place (bound references stay valid).
        Callback gauges are left alone: they mirror external state."""
        for point in self._metrics.values():
            point.zero()


class StatsView:
    """Base for legacy stat blocks re-homed onto the registry.

    Subclasses list their counter fields in ``_FIELDS`` and a metric
    name prefix in ``_PREFIX``; :func:`install_counter_properties` then
    attaches a read/write property per field, so the public attribute
    API (``stats.commits``, ``stats.commits += 1``) is preserved while
    the values live in registry counters (``engine.commits``).
    """

    _PREFIX = ""
    _FIELDS: Tuple[str, ...] = ()

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters = {f: self.registry.counter(self._PREFIX + f)
                          for f in self._FIELDS}

    def raw(self, field: str) -> Counter:
        """The bound Counter behind ``field`` (hot-path increments)."""
        return self._counters[field]

    def as_dict(self) -> Dict[str, int]:
        return {f: c.value for f, c in self._counters.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{f}={c.value}" for f, c in self._counters.items())
        return f"{type(self).__name__}({inner})"


def install_counter_properties(cls) -> None:
    """Attach one read/write property per ``_FIELDS`` entry to a
    StatsView subclass (kept out of the class body so subclasses stay
    declarative)."""
    for field in cls._FIELDS:
        def getter(self, _f=field):
            return self._counters[_f].value

        def setter(self, value, _f=field):
            self._counters[_f].value = value

        setattr(cls, field, property(getter, setter))
