"""Engine configuration.

Groups the tunables the paper calls out:

* SSI behaviour switches (commit-ordering optimization of section 3.3.1,
  the read-only optimizations of section 4) so benchmarks can run the
  "SSI (no r/o opt.)" series of Figures 4 and 5a;
* memory-bounding knobs (section 6): predicate-lock granularity
  promotion thresholds and the capacity of the committed-transaction
  list that triggers summarization;
* the simulator cost model standing in for the paper's hardware
  (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class SSIConfig:
    """Behaviour and capacity knobs for the SSI implementation."""

    # Optimizations -----------------------------------------------------
    #: Commit-ordering optimization (section 3.3.1): a dangerous
    #: structure is a false positive unless T3 committed first.
    commit_ordering_opt: bool = True
    #: Read-only snapshot ordering rule (Theorem 3 / section 4.1): if T1
    #: is read-only the structure is a false positive unless T3
    #: committed before T1's snapshot.
    read_only_opt: bool = True
    #: Safe snapshot detection for read-only transactions (section 4.2).
    safe_snapshots: bool = True
    #: Drop a transaction's own SIREAD lock on a tuple it later writes
    #: (section 7.3); automatically disabled inside subtransactions.
    own_write_drops_siread: bool = True

    # Memory bounding (section 6) --------------------------------------
    #: Tuple-granularity SIREAD locks on one page held by one
    #: transaction are promoted to a single page lock past this count.
    max_pred_locks_per_page: int = 4
    #: Page-granularity locks on one relation held by one transaction
    #: are promoted to a relation lock past this count.
    max_pred_locks_per_relation: int = 32
    #: Hard cap on predicate-lock table entries (simulated shared
    #: memory). Promotion keeps us under it; exceeding it even after
    #: maximal promotion raises CapacityExceededError.
    max_predicate_locks: int = 100_000
    #: Committed SerializableXacts retained before the oldest is
    #: summarized into the OldCommittedSxact dummy (section 6.2).
    max_committed_sxacts: int = 64

    # Index-range locking granularity (section 5.2.1) -------------------
    #: "page": SIREAD gap locks on B+-tree leaf pages (what PostgreSQL
    #: 9.1 shipped). "nextkey": ARIES/KVL-style next-key locking -- the
    #: refinement the paper names as future work -- which locks the
    #: keys read plus the key bounding each scanned gap, eliminating
    #: page-sharing false positives (see the ablation benchmark).
    index_locking: str = "page"

    # Conflict tracking fidelity (section 5.3) --------------------------
    #: "full" keeps complete in/out rw-antidependency lists (the
    #: PostgreSQL 9.1 choice). "flags" keeps only two booleans per
    #: transaction (the original SSI paper's choice) which forfeits the
    #: commit-ordering and read-only optimizations; used by the ablation
    #: benchmark.
    conflict_tracking: str = "full"

    # Read fast paths (performance layer; see DESIGN.md) ----------------
    #: Skip SIREAD acquisition and rw-conflict bookkeeping for a tuple
    #: read already covered by a page- or relation-granularity SIREAD
    #: lock this transaction holds, and memoize the MVCC conflict-out
    #: check per (reader, writer xid) pair. Both are pure shortcuts:
    #: the covered acquisition would be a no-op and the repeated
    #: conflict-out check would hit the existing-edge early return.
    #: Automatically disabled while event tracing is active so traces
    #: stay complete.
    siread_fast_path: bool = True


@dataclass
class PerfConfig:
    """Storage/MVCC fast-path toggles (the performance layer).

    Each mechanism mirrors a PostgreSQL counterpart (see DESIGN.md,
    "Performance layer") and is individually toggleable so the
    ablation benchmarks can quantify it. All default on; with every
    toggle off the engine takes exactly the seed code paths.
    """

    #: Infomask hint bits (HEAP_XMIN_COMMITTED & co.): cache the commit
    #: log's verdict on a tuple's xmin/xmax in the tuple header the
    #: first time it is looked up, so repeat visibility checks skip the
    #: CLOG entirely. Bits are only ever set to a *final* status, so
    #: they can never disagree with the commit log.
    hint_bits: bool = True
    #: Per-relation visibility map: one all-visible bit per heap page,
    #: set by VACUUM when every remaining tuple on the page is visible
    #: to every current and future snapshot, cleared by any write to
    #: the page. Scans skip per-tuple visibility checks (and, under a
    #: covering relation SIREAD lock, per-tuple SSI bookkeeping) on
    #: all-visible pages.
    visibility_map: bool = True
    #: Free-space map: track pages with vacuumed slots in a min-heap so
    #: Heap inserts find the lowest page with room in O(1) instead of
    #: scanning. Off, inserts fall back to a linear probe that starts
    #: at a lowest-page-with-room hint (never a full rescan).
    fsm: bool = True
    #: Cost-based scan planning: when ANALYZE statistics exist for a
    #: relation, price seq-scan against every candidate index scan
    #: (page touches + tuple visibility checks) and pick the cheapest
    #: -- in particular the *most selective* sargable conjunct rather
    #: than the first. Off (or with no stats), plans are exactly the
    #: rule-based seed behaviour. Pure: toggling may change which scan
    #: runs, never which rows result.
    cost_planner: bool = True
    #: Engine-level plan cache: memoize the scan choice per (relation,
    #: stats epoch, predicate shape), so the statement hot path skips
    #: re-planning. ANALYZE/DDL bump the stats epoch, which invalidates
    #: every cached entry by key mismatch.
    plan_cache: bool = True
    #: SQL-layer parse cache: LRU of SQL text -> parsed AST, so
    #: repeated statement strings skip the lexer and parser.
    parse_cache: bool = True
    #: Vectorized (batch-at-a-time) execution: sequential scans pull a
    #: whole slotted page into a TupleBatch, apply a compiled batch
    #: filter, hoist the SSI read-coverage check to once per page, and
    #: the SQL layer runs joins with hash/merge algorithms and
    #: aggregates over zero-copy row views. Off, every scan takes the
    #: seed per-tuple loop byte-for-byte and SQL joins fall back to a
    #: per-row nested loop; results are identical either way (see
    #: DESIGN.md, "Vectorized execution"). Automatically disabled
    #: while event tracing is active so per-tuple read events keep
    #: appearing in traces.
    vectorized_executor: bool = True
    #: Rows per batch for operators not naturally page-bounded (index
    #: scans chunk their tid lists by this; joins and aggregation
    #: consume whole inputs). Sequential-scan batches are always one
    #: heap page.
    batch_size: int = 256


@dataclass
class SanitizerConfig:
    """Runtime invariant sanitizers (the repro.analysis subsystem).

    A TSan/ASan analog for the engine: with a sanitizer on, the
    corresponding invariants are re-checked at transaction boundaries
    and any breach raises
    :class:`repro.analysis.sanitize.SanitizerViolation` with an obs
    post-mortem dump. All default off -- they are debugging/CI tools,
    and the benchmark harness asserts they stay off during wall-clock
    runs. The ``REPRO_SANITIZE`` environment variable (any non-empty
    value) force-enables all of them regardless of this config, which
    is how CI runs the tier-1 suite in sanitized mode.
    """

    #: Master switch; individual toggles below are ignored when False
    #: (unless REPRO_SANITIZE is set, which turns everything on).
    enabled: bool = False
    #: SSI state sanitizer: after each commit/abort, the SIREAD table
    #: holds no locks for fully-cleaned-up transactions, conflict
    #: pointers reference live-or-summarized sxacts, and
    #: dangerous-structure bookkeeping is consistent with pointer state
    #: (paper sections 4.7 / 5.3 / 6).
    ssi: bool = True
    #: Heap/MVCC sanitizer: xmin/xmax stamp discipline, hint bits agree
    #: with the CLOG, update-chain ctid acyclicity, visibility-map and
    #: FSM consistency.
    heap: bool = True
    #: Lock-leak detector: at transaction end, the heavyweight lock
    #: manager holds nothing for the finished xid.
    locks: bool = True
    #: Durability sanitizer (no-op for in-memory engines): no page file
    #: frame carries a pageLSN past the durable WAL (WAL-before-data),
    #: dirty-page recLSNs stay within the log, and synchronous commits
    #: are durable when acknowledged.
    durable: bool = True
    #: Run the O(heap)/O(locktable) sweeps only every Nth transaction
    #: end (per-transaction checks always run). 1 = every time.
    sweep_interval: int = 8

    @staticmethod
    def all_on(sweep_interval: int = 1) -> "SanitizerConfig":
        return SanitizerConfig(enabled=True, ssi=True, heap=True, locks=True,
                               sweep_interval=sweep_interval)


@dataclass
class DurabilityConfig:
    """Disk persistence (the repro.storage.durable subsystem).

    Off by default: the engine is the pure in-memory simulator and
    takes exactly the seed code paths (every durability hook is behind
    one ``is not None`` test). On, the engine keeps a physical WAL and
    checksummed page files under ``data_dir`` and can be reopened after
    a crash with :func:`repro.storage.durable.open_database`, replaying
    the log ARIES-style (REDO only -- MVCC makes UNDO unnecessary, see
    DESIGN.md "Durability").
    """

    #: Master switch. When False every other field is ignored and the
    #: engine is byte-identical to the in-memory seed behaviour.
    enabled: bool = False
    #: Directory holding pages/, wal.log and checkpoint.json.
    data_dir: str = ""
    #: On-disk page frame size in bytes (header + JSON payload + zero
    #: padding). A page whose payload outgrows this raises at writeback.
    page_bytes: int = 8192
    #: Commit waits for its WAL record to reach disk (the PostgreSQL
    #: synchronous_commit knob). False acknowledges commits after the
    #: in-memory WAL append; a background flusher (or the next
    #: synchronous event) persists them, so a crash may lose the tail
    #: of *acknowledged* commits -- but never corrupts.
    synchronous_commit: bool = True
    #: Group commit: a committing backend that finds a flush in flight
    #: queues behind it and one leader fsyncs the whole batch.
    group_commit: bool = True
    #: Seconds the async flusher sleeps between flushes when
    #: synchronous_commit is off. 0 = flush only on demand.
    commit_delay: float = 0.0
    #: Call os.fsync after WAL/page writes. Off trades real durability
    #: for speed (still crash-*consistent* against process kills, just
    #: not against power loss) -- used by wall-clock benchmarks.
    fsync: bool = True
    #: Write a full page image into the WAL the first time a page is
    #: dirtied after a checkpoint, so REDO can repair a torn page write
    #: (PostgreSQL full_page_writes).
    full_page_writes: bool = True
    #: Take an automatic checkpoint after this many WAL bytes
    #: (0 = only explicit / shutdown checkpoints).
    checkpoint_wal_bytes: int = 0
    #: Dirty pages retained before the clock hand starts writing the
    #: oldest back (WAL-first) to bound recovery work.
    max_dirty_pages: int = 512
    #: Transaction statuses per CLOG segment page.
    clog_segment_xids: int = 1024
    #: Modeled device sync latency in seconds, slept inside every WAL /
    #: page fsync (after the real one, GIL released). Benchmarks set it
    #: so commit cost reflects a fixed storage device instead of the
    #: host page cache, making shard scale-up measurements (N shards =
    #: N independent WAL devices) meaningful on one machine.
    modeled_flush_latency: float = 0.0


@dataclass
class ObsConfig:
    """Observability toggles (the repro.obs subsystem).

    Metrics counters are always on -- the engine's own stat blocks
    live on the registry and cost one bound-attribute increment each.
    Everything with additional per-event overhead (structured event
    tracing, lock-wait timing) sits behind ``enabled`` and costs a
    single ``is not None`` test when off.
    """

    #: Master switch for tracing and timing instrumentation.
    enabled: bool = False
    #: Structured event tracing into a bounded ring buffer (only when
    #: ``enabled``); see repro.obs.trace for the event catalog.
    trace: bool = True
    #: Ring-buffer capacity (events retained; older events fall off).
    trace_capacity: int = 8192
    #: Record wall-clock lock-wait durations into the
    #: ``locks.wait_ns`` histogram (only when ``enabled``).
    lock_wait_timing: bool = True


@dataclass
class CostModel:
    """Simulated-time charges, standing in for wall-clock measurement.

    Throughput figures in the paper are normalized to snapshot
    isolation, so only *relative* costs matter; these defaults are
    calibrated so the SI/SSI/S2PL relationships land in the ranges the
    paper reports (SSI tracking overhead 5-20% depending on workload,
    section 8).
    """

    #: Fixed cost of dispatching any statement.
    base_op: float = 1.0
    #: Per tuple examined by a scan (visibility check and read).
    tuple_read: float = 0.2
    #: Per tuple written (insert / new version / delete marking).
    tuple_write: float = 0.5
    #: Per unit of SSI lock-manager work (SIREAD tracking, conflict
    #: list maintenance, dangerous-structure checks). Calibrated so
    #: SSI's tracking overhead on SIBENCH falls in the paper's 10-20%
    #: band when the read-only optimizations are off.
    ssi_lock_work: float = 0.1
    #: Per unit of heavyweight lock-manager work (table locks, xid
    #: waits, the S2PL baseline's read/write locks). Cheaper than SSI
    #: bookkeeping: the paper's 100%-read-only point shows S2PL
    #: converging with SI, so plain lock acquisition must cost little;
    #: S2PL's penalty comes from blocking and deadlocks instead.
    hw_lock_work: float = 0.02
    #: Per buffer-cache miss. 0 models the paper's in-memory (tmpfs)
    #: configurations; raise it for the disk-bound ones.
    io_miss: float = 0.0
    #: Per begin/commit/abort.
    txn_overhead: float = 1.0
    #: Charged once per detected deadlock: stands in for PostgreSQL's
    #: deadlock_timeout wait plus the "expensive deadlock detection"
    #: the paper attributes S2PL's RUBiS losses to (section 8.3).
    deadlock_penalty: float = 100.0
    #: Charged each time a statement suspends on a heavyweight lock:
    #: the context switch, semaphore sleep/wake, and convoy effects a
    #: real blocking lock wait costs. SIREAD locks never block
    #: (section 5.2.1), so this term is what separates S2PL (blocking
    #: on every rw-conflict) from SSI in the paper's figures.
    #: Calibrated against the paper's RUBiS table: with this value the
    #: S2PL/SI throughput ratio lands at ~0.5 (paper: 208/435 = 0.48).
    block_event: float = 35.0
    #: Degree of hardware parallelism: with R runnable clients, one
    #: unit of work advances the clock by 1/min(R, parallelism). This
    #: is how blocking hurts throughput -- a blocked client wastes a
    #: processor slot, exactly as on the paper's 4-core (in-memory)
    #: and 16-core (disk-bound) machines.
    parallelism: int = 4


@dataclass
class EngineConfig:
    """Top-level configuration for a Database instance."""

    ssi: SSIConfig = field(default_factory=SSIConfig)
    cost: CostModel = field(default_factory=CostModel)
    #: Storage/MVCC fast paths (hint bits, visibility map, FSM).
    perf: PerfConfig = field(default_factory=PerfConfig)
    #: Observability (metrics always on; tracing behind obs.enabled).
    obs: ObsConfig = field(default_factory=ObsConfig)
    #: Runtime invariant sanitizers (repro.analysis); all off by
    #: default, force-enabled by the REPRO_SANITIZE env var.
    sanitize: SanitizerConfig = field(default_factory=SanitizerConfig)
    #: Disk persistence (physical WAL + page files + REDO recovery);
    #: disabled by default -- the in-memory simulator is the seed path.
    durability: DurabilityConfig = field(default_factory=DurabilityConfig)
    #: Tuples per heap page; small pages make page-granularity locking
    #: and promotion meaningful at laptop scale.
    heap_page_size: int = 32
    #: Keys per B+-tree page.
    btree_page_size: int = 32
    #: Buffer cache capacity in pages; None = unlimited (in-memory
    #: configuration). A finite value plus CostModel.io_miss > 0 models
    #: the paper's disk-bound configuration.
    buffer_pages: "int | None" = None
    #: Record a full history for the serializability checker
    #: (repro.verify). Cheap; disable for the largest benchmark runs.
    record_history: bool = False
    #: Scans voluntarily yield to the scheduler every this many heap
    #: pages (and every 8x this many index entries), so long statements
    #: interleave with concurrent clients as on real hardware.
    scan_yield_pages: int = 2

    @staticmethod
    def in_memory(**kw) -> "EngineConfig":
        """The paper's tmpfs configuration: no I/O cost."""
        return EngineConfig(**kw)

    @staticmethod
    def disk_bound(io_miss: float = 25.0, buffer_pages: int = 256, **kw) -> "EngineConfig":
        """The paper's disk-bound configuration: small buffer pool and a
        large per-miss charge, so I/O dominates CPU overheads."""
        cfg = EngineConfig(**kw)
        cfg.cost.io_miss = io_miss
        cfg.buffer_pages = buffer_pages
        return cfg

    @staticmethod
    def durable(data_dir: str, **kw) -> "EngineConfig":
        """A disk-backed configuration: physical WAL + page files under
        ``data_dir``, reopenable after a crash with
        :func:`repro.storage.durable.open_database`."""
        durability = kw.pop("durability", None)
        cfg = EngineConfig(**kw)
        if durability is None:
            durability = DurabilityConfig(enabled=True, data_dir=data_dir)
        else:
            durability.enabled = True
            durability.data_dir = data_dir
        cfg.durability = durability
        return cfg
