"""repro.analysis — machine-checked guardrails for the SSI engine.

The paper's correctness argument rests on discipline the code can
silently lose as it is refactored for speed: SIREAD locks outlive
their transactions under an exact cleanup protocol (section 4.7 /
section 6), conflict flags are only mutated under the SSI manager, and
the performance layer's hint bits are sound only while every CLOG
verdict flows through ``repro.mvcc.visibility``. Formal treatments of
snapshot isolation (Raad et al., *On the Semantics of Snapshot
Isolation*; Fernández Gómez & Yabandeh, *A Critique of Snapshot
Isolation*) show these invariants are exactly where implementations
drift, so this package provides a TSan/ASan analog for the codebase:

* :mod:`repro.analysis.lint` -- a stdlib-``ast`` static pass framework
  with repo-specific rules (CLOG discipline, nondeterminism,
  ``__slots__`` consistency, lock-manager encapsulation, toggle
  purity, hygiene), each carrying a fix-it hint and a
  ``# repro: noqa(RULE)`` escape hatch;
* :mod:`repro.analysis.sanitize` -- runtime invariant sanitizers
  (SSI state, heap/MVCC state, lock leaks) toggleable via
  ``EngineConfig.sanitize`` or the ``REPRO_SANITIZE`` environment
  variable, raising a structured
  :class:`~repro.analysis.sanitize.SanitizerViolation` with an
  ``repro.obs`` post-mortem dump on any breach.

Both halves sit behind one CLI::

    python -m repro.analysis lint src/repro tests
    python -m repro.analysis rules
    python -m repro.analysis smoke

The CI ``analysis`` job runs the linter over ``src/`` and ``tests/``
and a sanitizer-enabled SIBENCH smoke run, failing the build on any
finding; wall-clock benchmarks assert the sanitizers are *off* and
record :data:`ANALYSIS_VERSION` in their metadata so perf numbers are
attributable to a guardrail generation.
"""

from __future__ import annotations

#: Version of the analysis toolchain (rule catalog + sanitizer
#: invariants). Bumped when rules or invariants change meaningfully;
#: recorded in BENCH_PERF.json metadata by the benchmark harness.
ANALYSIS_VERSION = "1.0"

from repro.analysis.lint import (Finding, LintReport, Rule,  # noqa: E402
                                 all_rules, lint_paths)
from repro.analysis.sanitize import (SanitizerRunner,  # noqa: E402
                                     SanitizerViolation)

__all__ = [
    "ANALYSIS_VERSION", "Finding", "LintReport", "Rule", "all_rules",
    "lint_paths", "SanitizerRunner", "SanitizerViolation",
]
