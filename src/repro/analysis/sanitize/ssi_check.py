"""SSI state sanitizer (paper sections 4.7 / 5.3 / 6).

Invariants checked after each commit/abort:

* ``siread-stale-holder`` -- the SIREAD table holds no locks for an
  aborted transaction (abort releases them immediately, section 5.3)
  or for a committed one whose cleanup already claimed to have
  released them (``locks_released``);
* ``siread-unknown-holder`` -- every SIREAD holder is a transaction
  the manager still tracks (active or committed-retained); anything
  else leaked through cleanup/summarization;
* ``conflict-asymmetry`` -- in/out rw-antidependency pointers are
  symmetric: ``a in b.in_conflicts`` iff ``b in a.out_conflicts``;
* ``conflict-dangling`` -- no conflict pointer references an aborted
  sxact (abort unlinks both directions);
* ``lifecycle-state`` -- the active set contains no finished sxact,
  the committed-retained list only committed ones, and every active
  sxact is resolvable through ``sxact_for_xid``;
* ``earliest-out-monotone`` -- the consolidated
  ``earliest_out_commit_seq`` is a true lower bound: no committed
  out-neighbour has a smaller commit seq than the recorded minimum
  (section 6.1's consolidation can only lower it, never lag it);
* ``doom-without-info`` -- a doomed sxact always carries the DoomInfo
  describing the dangerous structure that doomed it.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis.sanitize.violations import SanitizerViolation

Issue = Tuple[str, str, dict]


class SSISanitizer:
    """Checks one SSIManager instance; stateless between runs."""

    name = "ssi"

    def __init__(self, db) -> None:
        self._db = db

    # ------------------------------------------------------------------
    def check(self, *, sweep: bool = True) -> None:
        """Raise SanitizerViolation on the first broken invariant.

        ``sweep=False`` skips the O(lock table) SIREAD scan and checks
        only the per-sxact pointer/lifecycle invariants.
        """
        for invariant, detail, subject in self._issues(sweep=sweep):
            raise SanitizerViolation(self.name, invariant, detail, subject,
                                     dump=self._dump())

    def _dump(self) -> str:
        from repro.obs.postmortem import dump_state
        return dump_state(self._db)

    # ------------------------------------------------------------------
    def _issues(self, sweep: bool) -> Iterator[Issue]:
        ssi = self._db.ssi
        active = ssi.active_sxacts()
        committed = ssi.committed_retained()
        tracked = ssi.tracked_sxacts()

        # lifecycle-state -------------------------------------------------
        for sx in active:
            if sx.finished:
                yield ("lifecycle-state",
                       f"finished sxact {sx!r} still in the active set",
                       {"xid": sx.xid})
            elif ssi.sxact_for_xid(sx.xid) is not sx:
                yield ("lifecycle-state",
                       f"active sxact {sx!r} not resolvable via its xid",
                       {"xid": sx.xid})
        for sx in committed:
            if not sx.committed:
                yield ("lifecycle-state",
                       f"non-committed sxact {sx!r} on the "
                       f"committed-retained list", {"xid": sx.xid})

        # conflict pointers ----------------------------------------------
        if ssi.config.conflict_tracking == "full":
            for sx in tracked:
                yield from self._check_pointers(sx)

        # doom bookkeeping -----------------------------------------------
        for sx in active:
            if sx.doomed and sx.doom_info is None:
                yield ("doom-without-info",
                       f"sxact {sx!r} is doomed but carries no DoomInfo",
                       {"xid": sx.xid})

        # SIREAD table ----------------------------------------------------
        if sweep:
            yield from self._check_siread_table(ssi, tracked)

    def _check_pointers(self, sx) -> Iterator[Issue]:
        for reader in sx.in_conflicts:
            if reader.aborted:
                yield ("conflict-dangling",
                       f"{sx!r} has an in-conflict from aborted {reader!r}",
                       {"xid": sx.xid, "partner_xid": reader.xid})
            elif sx not in reader.out_conflicts:
                yield ("conflict-asymmetry",
                       f"{reader!r} -rw-> {sx!r} recorded on the writer "
                       f"side only", {"xid": sx.xid,
                                      "partner_xid": reader.xid})
        committed_out = [w.cseq for w in sx.out_conflicts if w.committed]
        for writer in sx.out_conflicts:
            if writer.aborted:
                yield ("conflict-dangling",
                       f"{sx!r} has an out-conflict to aborted {writer!r}",
                       {"xid": sx.xid, "partner_xid": writer.xid})
            elif sx not in writer.in_conflicts:
                yield ("conflict-asymmetry",
                       f"{sx!r} -rw-> {writer!r} recorded on the reader "
                       f"side only", {"xid": sx.xid,
                                      "partner_xid": writer.xid})
        if committed_out and min(committed_out) < sx.earliest_out_commit_seq:
            yield ("earliest-out-monotone",
                   f"{sx!r} records earliest committed out-conflict "
                   f"{sx.earliest_out_commit_seq} but holds an edge to "
                   f"commit_seq {min(committed_out)}",
                   {"xid": sx.xid,
                    "recorded": sx.earliest_out_commit_seq,
                    "actual": min(committed_out)})

    def _check_siread_table(self, ssi, tracked) -> Iterator[Issue]:
        for row in ssi.lockmgr.iter_locks():
            holder = row["holder"]
            if holder is None:
                continue  # summarized dummy holder, tagged by seq only
            if holder.aborted:
                yield ("siread-stale-holder",
                       f"SIREAD lock on {row['target']} held by aborted "
                       f"{holder!r}",
                       {"target": row["target"], "holder_xid": holder.xid})
            elif holder.committed and holder.locks_released:
                yield ("siread-stale-holder",
                       f"SIREAD lock on {row['target']} held by committed "
                       f"{holder!r} whose cleanup claims locks_released",
                       {"target": row["target"], "holder_xid": holder.xid})
            elif holder not in tracked:
                yield ("siread-unknown-holder",
                       f"SIREAD lock on {row['target']} held by untracked "
                       f"{holder!r} (leaked past cleanup/summarization)",
                       {"target": row["target"], "holder_xid": holder.xid})
