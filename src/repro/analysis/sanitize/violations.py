"""Structured sanitizer violations."""

from __future__ import annotations

from typing import Any, Dict, Optional


class SanitizerViolation(AssertionError):
    """A runtime invariant the engine promised to keep was broken.

    Subclasses AssertionError so generic engine error handling
    (which catches the repro error hierarchy or specific stdlib types)
    never swallows it: a violation is a bug in the engine, not an
    expected transactional outcome, and must surface.

    Fields:

    * ``sanitizer`` -- which sanitizer fired (``"ssi"`` / ``"heap"`` /
      ``"locks"``);
    * ``invariant`` -- machine-readable invariant id, e.g.
      ``"siread-stale-holder"`` (tests assert on this);
    * ``detail`` -- human-readable description of the breach;
    * ``subject`` -- the offending object(s), rendered to plain data
      (xids, TIDs, targets);
    * ``dump`` -- obs post-mortem state dump taken at violation time.
    """

    def __init__(self, sanitizer: str, invariant: str, detail: str,
                 subject: Optional[Dict[str, Any]] = None,
                 dump: str = "") -> None:
        self.sanitizer = sanitizer
        self.invariant = invariant
        self.detail = detail
        self.subject = subject or {}
        self.dump = dump
        super().__init__(f"[{sanitizer}:{invariant}] {detail}")

    def render(self) -> str:
        lines = [f"sanitizer violation: {self.sanitizer}:{self.invariant}",
                 f"  {self.detail}"]
        for key, value in sorted(self.subject.items()):
            lines.append(f"  {key}: {value!r}")
        if self.dump:
            lines.append("engine state at violation:")
            lines.extend("  " + line for line in self.dump.splitlines())
        return "\n".join(lines)
