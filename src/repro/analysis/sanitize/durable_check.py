"""Durability-invariant sanitizer (WAL-before-data discipline).

Invariants, checked at transaction boundaries when the engine runs with
the durability layer enabled:

* ``wal-before-data`` -- no page file frame may carry a pageLSN beyond
  the durable WAL: a page on disk whose record is not is exactly the
  torn state ARIES REDO cannot repair;
* ``dirty-lsn-bounds`` -- every dirty-page-table entry's recLSN must
  refer to WAL that exists (recLSN <= end of log);
* ``ack-durable`` -- with ``synchronous_commit`` on, every acknowledged
  commit's frame must already be durable at acknowledgement (the
  client was told "committed"; losing it would be a lie).
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis.sanitize.violations import SanitizerViolation

Issue = Tuple[str, str, dict]


class DurableSanitizer:
    """Checks the durability layer's ordering invariants; a no-op when
    the database runs in-memory (``Database.durability is None``)."""

    name = "durable"

    def __init__(self, db) -> None:
        self._db = db

    # ------------------------------------------------------------------
    def check(self) -> None:
        for invariant, detail, subject in self._issues():
            raise SanitizerViolation(self.name, invariant, detail, subject,
                                     dump=self._dump())

    def _dump(self) -> str:
        from repro.obs.postmortem import dump_state
        return dump_state(self._db)

    # ------------------------------------------------------------------
    def _issues(self) -> Iterator[Issue]:
        mgr = self._db.durability
        if mgr is None:
            return
        durable = mgr.wal.durable_lsn
        end = mgr.wal.end_lsn
        for key, page_lsn in sorted(mgr.store.written_lsns.items()):
            if page_lsn > durable:
                yield ("wal-before-data",
                       f"page {key} was written back with pageLSN "
                       f"{page_lsn} but WAL is only durable through "
                       f"{durable}: writeback ran ahead of its fsync",
                       {"page": list(key), "page_lsn": page_lsn,
                        "durable_lsn": durable})
        for key, rec_lsn in sorted(mgr.pool.entries().items()):
            if rec_lsn > end:
                yield ("dirty-lsn-bounds",
                       f"dirty page {key} carries recLSN {rec_lsn} past "
                       f"the end of the WAL ({end})",
                       {"page": list(key), "rec_lsn": rec_lsn,
                        "end_lsn": end})
        if mgr.cfg.synchronous_commit:
            for xid, need in sorted(mgr.acked.items()):
                if need > durable:
                    yield ("ack-durable",
                           f"transaction {xid} was acknowledged "
                           f"committed needing WAL through {need}, but "
                           f"only {durable} is durable "
                           f"(synchronous_commit is on)",
                           {"xid": xid, "needed_lsn": need,
                            "durable_lsn": durable})
