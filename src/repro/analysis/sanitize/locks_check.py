"""Heavyweight lock-leak detector.

Invariants:

* ``lock-leak-txn-end`` -- when a transaction finishes, ``release_all``
  must have dropped every heavyweight lock and queued request its xid
  owned (checked per transaction, at each commit/abort);
* ``lock-orphan-owner`` -- sweep form of the same property: every
  granted hold and queued waiter in the lock table belongs to a
  transaction that is still active or prepared.
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis.sanitize.violations import SanitizerViolation

Issue = Tuple[str, str, dict]


class LockLeakSanitizer:
    """Checks the heavyweight lock table; stateless between runs."""

    name = "locks"

    def __init__(self, db) -> None:
        self._db = db

    # ------------------------------------------------------------------
    def check_txn_end(self, xid: int) -> None:
        """The just-finished ``xid`` must own nothing anymore."""
        held = self._db.lockmgr.locks_held(xid)
        if held:
            raise SanitizerViolation(
                self.name, "lock-leak-txn-end",
                f"transaction {xid} finished but still holds "
                f"{sum(len(m) for m in held.values())} heavyweight "
                f"lock(s): release_all was skipped or bypassed",
                {"xid": xid,
                 "held": sorted((tag, sorted(m.value for m in modes))
                                for tag, modes in held.items())},
                dump=self._dump())
        for request in self._db.lockmgr.waiters():
            if request.owner == xid and not request.cancelled:
                raise SanitizerViolation(
                    self.name, "lock-leak-txn-end",
                    f"transaction {xid} finished but still waits for "
                    f"{request.describe()}",
                    {"xid": xid, "tag": request.tag},
                    dump=self._dump())

    def check(self) -> None:
        for invariant, detail, subject in self._issues():
            raise SanitizerViolation(self.name, invariant, detail, subject,
                                     dump=self._dump())

    def _dump(self) -> str:
        from repro.obs.postmortem import dump_state
        return dump_state(self._db)

    # ------------------------------------------------------------------
    def _issues(self) -> Iterator[Issue]:
        live = set()
        for txn in self._db.active_transactions():
            live.update(txn.all_xids)
        for row in self._db.lockmgr.iter_locks():
            owner = row["owner_xid"]
            if owner not in live:
                yield ("lock-orphan-owner",
                       f"{'granted' if row['granted'] else 'queued'} "
                       f"heavyweight lock {row['mode'].value} on "
                       f"{row['tag']} owned by finished transaction "
                       f"{owner}",
                       {"owner_xid": owner, "tag": row["tag"],
                        "mode": row["mode"].value})
