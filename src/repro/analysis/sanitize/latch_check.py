"""Dynamic lockset sanitizer: runtime check of ``guarded-by`` facts.

The static analyzer (:mod:`repro.analysis.concurrency`) proves
``# repro: guarded-by(LATCH)`` declarations along every call path it
can resolve -- but the engine's statement dispatch is a ``getattr``
call, so facts on deep-engine classes (SSIManager, the SIREAD and
heavyweight lock tables, the visibility map, the stats catalog) are
statically *vacuous*: no reachable access site exists to check. This
module closes that gap at runtime, the Eraser way:

* the declared facts are recovered by running the static collector
  over the installed ``repro`` source tree (one parse per process,
  cached), so the runtime checker can never drift from the
  annotations;
* each declared attribute is replaced by a checking descriptor -- a
  wrapper around the slot member descriptor for ``__slots__`` classes,
  an instance-``__dict__``-backed data descriptor otherwise -- that
  verifies, on every read *and* write, that the accessing thread holds
  a latch of the declared rank (:func:`repro.engine.latches.holds_rank`);
* a violation raises :class:`SanitizerViolation` (sanitizer
  ``"latchset"``, invariant ``"guarded-by-violation"``) -- an engine
  bug surfacing immediately at the racy access, not a corrupted
  result three transactions later.

Checks are skipped when any of these hold:

* the sanitizer is not **armed** (``arm()`` is refcounted; the
  ThreadSafeEngine arms it when its Database carries sanitizers, i.e.
  under ``REPRO_SANITIZE=1`` or ``EngineConfig.sanitize.enabled``);
* the accessing thread is the **main thread** -- the deterministic
  single-threaded engine and test assertions legitimately touch
  engine state with no latches, and single-threaded access cannot
  race;
* the access happens **under construction** (any ``__init__`` of an
  instrumented class on this thread's stack): objects are built
  before they are published to other threads, and the publishing
  latch provides the happens-before edge.
"""

from __future__ import annotations

import functools
import importlib
import os
import threading
from typing import Any, Dict, Optional, Tuple

from repro.analysis.sanitize.violations import SanitizerViolation
from repro.engine.latches import holds_rank

#: rank-name -> numeric rank (kept in sync with repro.engine.latches).
_RANK_BY_NAME = {"ENGINE": 10, "CONNECTIONS": 20, "WIRE": 30,
                 "METRICS": 40}

_tls = threading.local()

#: (class name, attr) -> installed descriptor; module-global so a
#: second engine in the same process reuses the instrumentation.
_installed: Dict[Tuple[str, str], "_GuardedAttribute"] = {}
#: classes whose __init__ has been wrapped: cls -> original __init__.
_wrapped_inits: Dict[type, Any] = {}
#: refcount of armed engines; checks fire only when > 0.
_armed = 0
#: diagnostic counters (approximate: unlocked increments).
_counters = {"checks": 0, "violations": 0}

_facts_cache: Optional[Dict[Tuple[str, str], Tuple[str, str]]] = None


def static_guard_facts() -> Dict[Tuple[str, str], Tuple[str, str]]:
    """(class name, attr) -> (guard rank name, defining module), from
    the static analyzer run over the installed ``repro`` tree. Cached
    per process; fails open to an empty fact set when the source is
    unavailable."""
    global _facts_cache
    if _facts_cache is not None:
        return _facts_cache
    facts: Dict[Tuple[str, str], Tuple[str, str]] = {}
    try:
        import repro
        from repro.analysis.concurrency.callgraph import build_graph
        from repro.analysis.concurrency.lockset import collect_guarded_facts
        from repro.analysis.lint.core import build_contexts
        root = os.path.dirname(os.path.abspath(repro.__file__))
        contexts, _errors = build_contexts([root])
        graph = build_graph(contexts)
        for (cls, attr), guard in collect_guarded_facts(graph).items():
            if guard in _RANK_BY_NAME and cls in graph.classes:
                facts[(cls, attr)] = (guard, graph.classes[cls].module)
    except Exception:
        facts = {}
    _facts_cache = facts
    return facts


def _under_construction() -> bool:
    return getattr(_tls, "depth", 0) > 0


def _check(cls_name: str, attr: str, guard: str, is_write: bool) -> None:
    if _armed <= 0 or _under_construction():
        return
    if threading.current_thread() is threading.main_thread():
        return
    _counters["checks"] += 1
    if holds_rank(_RANK_BY_NAME[guard]):
        return
    _counters["violations"] += 1
    kind = "write to" if is_write else "read of"
    raise SanitizerViolation(
        "latchset", "guarded-by-violation",
        f"{kind} {cls_name}.{attr} (declared guarded-by({guard})) from "
        f"thread {threading.current_thread().name!r} without holding a "
        f"rank-{_RANK_BY_NAME[guard]} latch",
        subject={"class": cls_name, "attr": attr, "guard": guard,
                 "write": is_write,
                 "thread": threading.current_thread().name})


class _GuardedAttribute:
    """Data descriptor enforcing one guarded-by fact.

    Wraps the original slot member descriptor when the class declares
    ``__slots__``; otherwise stores through the instance ``__dict__``
    (a data descriptor shadows the instance dict on lookup, so reads
    funnel through :meth:`__get__` either way)."""

    __slots__ = ("cls_name", "attr", "guard", "base")

    def __init__(self, cls_name: str, attr: str, guard: str,
                 base: Optional[Any]) -> None:
        self.cls_name = cls_name
        self.attr = attr
        self.guard = guard
        self.base = base

    def __get__(self, obj: Any, objtype: Optional[type] = None) -> Any:
        if obj is None:
            return self
        _check(self.cls_name, self.attr, self.guard, is_write=False)
        if self.base is not None:
            return self.base.__get__(obj, objtype)
        try:
            return obj.__dict__[self.attr]
        except KeyError:
            raise AttributeError(
                f"{type(obj).__name__!r} object has no attribute "
                f"{self.attr!r}") from None

    def __set__(self, obj: Any, value: Any) -> None:
        _check(self.cls_name, self.attr, self.guard, is_write=True)
        if self.base is not None:
            self.base.__set__(obj, value)
        else:
            obj.__dict__[self.attr] = value

    def __delete__(self, obj: Any) -> None:
        _check(self.cls_name, self.attr, self.guard, is_write=True)
        if self.base is not None:
            self.base.__delete__(obj)
        else:
            del obj.__dict__[self.attr]


def _wrap_init(cls: type) -> None:
    if cls in _wrapped_inits:
        return
    orig = cls.__init__

    @functools.wraps(orig)
    def init(self: Any, *args: Any, **kw: Any) -> None:
        _tls.depth = getattr(_tls, "depth", 0) + 1
        try:
            orig(self, *args, **kw)
        finally:
            _tls.depth -= 1

    _wrapped_inits[cls] = orig
    cls.__init__ = init  # type: ignore[method-assign]


def install(facts: Optional[Dict[Tuple[str, str],
                                 Tuple[str, str]]] = None) -> int:
    """Instrument every declared attribute; idempotent. Returns the
    number of attributes instrumented (including previously)."""
    if facts is None:
        facts = static_guard_facts()
    for (cls_name, attr), (guard, module) in sorted(facts.items()):
        if (cls_name, attr) in _installed:
            continue
        try:
            mod = importlib.import_module(module)
            cls = getattr(mod, cls_name, None)
        except Exception:
            cls = None
        if not isinstance(cls, type):
            continue
        base = cls.__dict__.get(attr)  # slot member descriptor, or None
        if isinstance(base, _GuardedAttribute):  # pragma: no cover
            continue
        guard_desc = _GuardedAttribute(cls_name, attr, guard, base)
        setattr(cls, attr, guard_desc)
        _installed[(cls_name, attr)] = guard_desc
        _wrap_init(cls)
    return len(_installed)


def uninstall_all() -> None:
    """Remove every descriptor and restore wrapped constructors (test
    isolation; instrumented-but-disarmed classes are harmless but this
    returns the process to a pristine state)."""
    for (cls_name, attr), desc in list(_installed.items()):
        for cls, orig in list(_wrapped_inits.items()):
            if cls.__name__ != cls_name:
                continue
            if cls.__dict__.get(attr) is desc:
                if desc.base is not None:
                    setattr(cls, attr, desc.base)
                else:
                    delattr(cls, attr)
        del _installed[(cls_name, attr)]
    for cls, orig in list(_wrapped_inits.items()):
        cls.__init__ = orig  # type: ignore[method-assign]
        del _wrapped_inits[cls]


def stats() -> Dict[str, int]:
    return {"instrumented": len(_installed), "armed": _armed,
            **_counters}


class LocksetSanitizer:
    """Arm/disarm handle for one engine.

    Instrumentation is installed process-wide on first arm and stays
    in place (disarmed descriptors only cost an attribute indirection);
    the armed refcount scopes *enforcement* to the lifetime of engines
    that requested it."""

    def __init__(self) -> None:
        self._armed = False

    def arm(self) -> "LocksetSanitizer":
        global _armed
        if not self._armed:
            install()
            _armed += 1
            self._armed = True
        return self

    def disarm(self) -> None:
        global _armed
        if self._armed:
            _armed -= 1
            self._armed = False

    @property
    def armed(self) -> bool:
        return self._armed

    def stats(self) -> Dict[str, int]:
        return stats()
