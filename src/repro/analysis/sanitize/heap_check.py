"""Heap/MVCC state sanitizer.

Invariants checked on each sweep, per relation:

* ``xmin-unstamped`` -- every stored tuple has a real creating xid;
* ``chain-without-deleter`` -- a tuple with a forward ctid chain
  (``next_tid``) was replaced, so its xmax must be stamped with a real
  deleter (not invalid, not lock-only);
* ``hint-clog-disagreement`` -- a set hint bit always agrees with the
  commit log (hint bits cache *final* verdicts; disagreement means a
  bit was set early or survived an xmax restamp);
* ``hint-contradiction`` -- committed and aborted hints for the same
  xid are mutually exclusive;
* ``chain-cycle`` -- following ``next_tid`` never revisits a tuple
  (update chains are append-only; a cycle would loop EvalPlanQual-
  style chain walks forever);
* ``vismap-not-all-visible`` -- a page whose all-visible bit is set
  contains only tuples with a committed creator and no live or
  committed deleter (the timeless part of VACUUM's test);
* ``fsm-missing-page`` -- free-space completeness: every non-tail page
  with room is discoverable by the insert path -- present in the FSM's
  free set, or at/above the non-FSM probe hint. (The soundness
  direction is deliberately unchecked: lazy deletion means FSM entries
  may point at pages that refilled.)
"""

from __future__ import annotations

from typing import Iterator, Tuple

from repro.analysis.sanitize.violations import SanitizerViolation
from repro.mvcc.clog import XidStatus
from repro.mvcc.visibility import page_all_visible
from repro.mvcc.xid import INVALID_XID

Issue = Tuple[str, str, dict]


class HeapSanitizer:
    """Checks every relation's heap; stateless between runs."""

    name = "heap"

    def __init__(self, db) -> None:
        self._db = db

    # ------------------------------------------------------------------
    def check(self) -> None:
        for invariant, detail, subject in self._issues():
            raise SanitizerViolation(self.name, invariant, detail, subject,
                                     dump=self._dump())

    def _dump(self) -> str:
        from repro.obs.postmortem import dump_state
        return dump_state(self._db)

    # ------------------------------------------------------------------
    def _issues(self) -> Iterator[Issue]:
        clog = self._db.clog
        for name, rel in self._db.relations().items():
            heap = rel.heap
            for page in heap.scan_pages():
                for tup in page.tuples():
                    yield from self._check_tuple(name, clog, tup)
                if heap.vismap.is_all_visible(page.page_no):
                    if not page_all_visible(page.tuples(), clog):
                        yield ("vismap-not-all-visible",
                               f"page {page.page_no} of {name} is marked "
                               f"all-visible but holds a tuple with an "
                               f"uncommitted creator or a live/committed "
                               f"deleter",
                               {"relation": name, "page": page.page_no})
            yield from self._check_chains(name, heap)
            yield from self._check_fsm(name, heap)

    # -- per-tuple stamps and hint bits ---------------------------------
    def _check_tuple(self, rel_name: str, clog, tup) -> Iterator[Issue]:
        subject = {"relation": rel_name, "tid": tuple(tup.tid)}
        if tup.xmin == INVALID_XID:
            yield ("xmin-unstamped",
                   f"tuple {tuple(tup.tid)} of {rel_name} stored with an "
                   f"invalid xmin", subject)
        if (tup.next_tid is not None
                and (tup.xmax == INVALID_XID or tup.xmax_lock_only)):
            yield ("chain-without-deleter",
                   f"tuple {tuple(tup.tid)} of {rel_name} has a ctid chain "
                   f"to {tuple(tup.next_tid)} but no stamped deleter",
                   {**subject, "next_tid": tuple(tup.next_tid)})
        if tup.xmin_committed and tup.xmin_aborted:
            yield ("hint-contradiction",
                   f"tuple {tuple(tup.tid)} of {rel_name} hints xmin as "
                   f"both committed and aborted", subject)
        if tup.xmax_committed and tup.xmax_aborted:
            yield ("hint-contradiction",
                   f"tuple {tuple(tup.tid)} of {rel_name} hints xmax as "
                   f"both committed and aborted", subject)
        for bit_name, xid, expected in (
                ("xmin_committed", tup.xmin, XidStatus.COMMITTED),
                ("xmin_aborted", tup.xmin, XidStatus.ABORTED),
                ("xmax_committed", tup.xmax, XidStatus.COMMITTED),
                ("xmax_aborted", tup.xmax, XidStatus.ABORTED)):
            if getattr(tup, bit_name) and clog.status(xid) is not expected:
                yield ("hint-clog-disagreement",
                       f"tuple {tuple(tup.tid)} of {rel_name} hints "
                       f"{bit_name} but the commit log says xid {xid} is "
                       f"{clog.status(xid).value}",
                       {**subject, "hint": bit_name, "xid": xid,
                        "clog_status": clog.status(xid).value})

    # -- ctid chain acyclicity ------------------------------------------
    def _check_chains(self, rel_name: str, heap) -> Iterator[Issue]:
        #: TIDs proven cycle-free (their chains were fully walked).
        cleared = set()
        for start in heap.scan():
            path = []
            seen_on_path = set()
            tid = start.tid
            while tid is not None and tid not in cleared:
                if tid in seen_on_path:
                    yield ("chain-cycle",
                           f"ctid chain from {tuple(start.tid)} of "
                           f"{rel_name} revisits {tuple(tid)}",
                           {"relation": rel_name,
                            "start_tid": tuple(start.tid),
                            "cycle_tid": tuple(tid)})
                    break
                seen_on_path.add(tid)
                path.append(tid)
                nxt = heap.fetch(tid)
                tid = nxt.next_tid if nxt is not None else None
            else:
                cleared.update(path)

    # -- free-space completeness ----------------------------------------
    def _check_fsm(self, rel_name: str, heap) -> Iterator[Issue]:
        last = heap.page_count - 1
        if heap.uses_fsm:
            entries = heap.fsm_entries()
            for page in heap.scan_pages():
                if (page.page_no != last and page.has_room()
                        and page.page_no not in entries):
                    yield ("fsm-missing-page",
                           f"page {page.page_no} of {rel_name} has room but "
                           f"is absent from the free-space map: inserts "
                           f"can never reuse it",
                           {"relation": rel_name, "page": page.page_no})
        else:
            for page in heap.scan_pages():
                if (page.page_no != last and page.has_room()
                        and page.page_no < heap.room_hint):
                    yield ("fsm-missing-page",
                           f"page {page.page_no} of {rel_name} has room but "
                           f"sits below the lowest-page-with-room hint "
                           f"{heap.room_hint}: inserts can never reuse it",
                           {"relation": rel_name, "page": page.page_no,
                            "room_hint": heap.room_hint})
