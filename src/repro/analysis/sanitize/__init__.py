"""Runtime invariant sanitizers (the TSan/ASan analog).

See :class:`~repro.analysis.sanitize.runner.SanitizerRunner` for the
lifecycle wiring and the ``ssi_check`` / ``heap_check`` /
``locks_check`` modules for the invariant catalogs.
"""

from __future__ import annotations

from repro.analysis.sanitize.heap_check import HeapSanitizer
from repro.analysis.sanitize.latch_check import LocksetSanitizer
from repro.analysis.sanitize.locks_check import LockLeakSanitizer
from repro.analysis.sanitize.runner import ENV_FLAG, SanitizerRunner, env_forced
from repro.analysis.sanitize.ssi_check import SSISanitizer
from repro.analysis.sanitize.violations import SanitizerViolation

__all__ = ["ENV_FLAG", "HeapSanitizer", "LockLeakSanitizer",
           "LocksetSanitizer", "SSISanitizer", "SanitizerRunner",
           "SanitizerViolation", "env_forced"]
