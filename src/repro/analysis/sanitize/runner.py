"""SanitizerRunner: wires the sanitizers into transaction lifecycle.

The Database creates one runner when ``EngineConfig.sanitize.enabled``
is set or the ``REPRO_SANITIZE`` environment variable is non-empty
(which force-enables every sanitizer, for CI's sanitized tier-1 mode).
Hooks fire at the end of every commit/abort; the cheap per-transaction
checks run every time, the O(heap)/O(lock table) sweeps every
``sweep_interval``-th transaction end. ``check_now()`` runs everything
unconditionally (tests and the CLI smoke command use it).
"""

from __future__ import annotations

import os
from typing import Dict

from repro.analysis.sanitize.durable_check import DurableSanitizer
from repro.analysis.sanitize.heap_check import HeapSanitizer
from repro.analysis.sanitize.locks_check import LockLeakSanitizer
from repro.analysis.sanitize.ssi_check import SSISanitizer

#: Environment variable force-enabling every sanitizer.
ENV_FLAG = "REPRO_SANITIZE"


def env_forced() -> bool:
    return bool(os.environ.get(ENV_FLAG))


class SanitizerRunner:
    """All enabled sanitizers for one Database instance."""

    def __init__(self, db) -> None:
        self._db = db
        config = db.config.sanitize
        forced = env_forced()
        self._ssi = (SSISanitizer(db)
                     if (config.ssi or forced) else None)
        self._heap = (HeapSanitizer(db)
                      if (config.heap or forced) else None)
        self._locks = (LockLeakSanitizer(db)
                       if (config.locks or forced) else None)
        self._durable = (DurableSanitizer(db)
                         if (config.durable or forced) else None)
        self._interval = max(1, config.sweep_interval)
        self._txn_ends = 0
        self._checks: Dict[str, int] = {"ssi": 0, "heap": 0, "locks": 0,
                                        "durable": 0, "sweeps": 0}

    # ------------------------------------------------------------------
    def on_txn_end(self, txn) -> None:
        """Called by the Database after each commit/abort completes."""
        self._txn_ends += 1
        sweep = self._txn_ends % self._interval == 0
        if self._locks is not None:
            self._checks["locks"] += 1
            self._locks.check_txn_end(txn.xid)
            if sweep:
                self._locks.check()
        if self._ssi is not None:
            self._checks["ssi"] += 1
            self._ssi.check(sweep=sweep)
        if self._heap is not None and sweep:
            self._checks["heap"] += 1
            self._heap.check()
        if self._durable is not None:
            self._checks["durable"] += 1
            self._durable.check()
        if sweep:
            self._checks["sweeps"] += 1

    def check_now(self) -> None:
        """Run every enabled sanitizer in full, immediately."""
        if self._locks is not None:
            self._checks["locks"] += 1
            self._locks.check()
        if self._ssi is not None:
            self._checks["ssi"] += 1
            self._ssi.check(sweep=True)
        if self._heap is not None:
            self._checks["heap"] += 1
            self._heap.check()
        if self._durable is not None:
            self._checks["durable"] += 1
            self._durable.check()

    def stats(self) -> Dict[str, int]:
        """How many times each sanitizer has run (CI smoke reporting)."""
        return dict(self._checks)
