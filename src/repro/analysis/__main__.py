"""CLI for the analysis toolchain: ``python -m repro.analysis``.

Subcommands::

    lint [PATH ...]         run the static linter (default: src/repro)
    concurrency [PATH ...]  interprocedural latch-order proof + lockset
                            race detection (default: src/repro)
    rules                   print the rule catalog
    smoke [--ticks T]       sanitizer-enabled SIBENCH smoke run

Exit-code contract (all subcommands): 0 = clean -- no findings, no
parse errors, and for ``concurrency`` no unproven acquisition sites;
1 = at least one finding / violation / unproven site; 2 = usage error.
``--json`` changes the output format only, never the exit code, so CI
can archive the artifact and gate on the status in one invocation.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import ANALYSIS_VERSION
from repro.analysis.lint import all_rules, lint_paths


def _cmd_lint(args: argparse.Namespace) -> int:
    paths = args.paths or ["src/repro"]
    report = lint_paths(paths)
    if args.json:
        payload = {
            "version": ANALYSIS_VERSION,
            "files_checked": report.files_checked,
            "findings": [f.to_dict() for f in report.findings],
            "parse_errors": report.parse_errors,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_concurrency(args: argparse.Namespace) -> int:
    from repro.analysis.concurrency import analyze_paths
    paths = args.paths or ["src/repro"]
    report = analyze_paths(paths)
    payload = report.to_dict()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(report.render())
    return 0 if report.ok else 1


def _cmd_rules(_args: argparse.Namespace) -> int:
    print(f"repro.analysis {ANALYSIS_VERSION} — rule catalog\n")
    for rule in all_rules():
        print(f"{rule.id}  {rule.name}")
        print(f"    {rule.description}")
        print(f"    fix: {rule.hint}\n")
    return 0


def _cmd_smoke(args: argparse.Namespace) -> int:
    """Short SIBENCH run with every sanitizer enabled.

    Exercises the real engine under the runtime sanitizers; any
    invariant breach raises SanitizerViolation and fails the command.
    """
    from repro.analysis.sanitize import SanitizerViolation
    from repro.config import EngineConfig, SanitizerConfig
    from repro.engine.database import Database
    from repro.engine.isolation import IsolationLevel
    from repro.workloads.base import run_workload
    from repro.workloads.sibench import SIBench

    config = EngineConfig()
    config.sanitize = SanitizerConfig.all_on()
    db = Database(config)
    workload = SIBench(table_size=args.rows)
    try:
        result = run_workload(workload,
                              isolation=IsolationLevel.SERIALIZABLE,
                              db=db, max_ticks=args.ticks, seed=args.seed)
    except SanitizerViolation as violation:
        print("SANITIZER VIOLATION during smoke run:", file=sys.stderr)
        print(violation.render(), file=sys.stderr)
        return 1
    checks = db.sanitizers.stats() if db.sanitizers is not None else {}
    print(f"smoke ok: SIBENCH under sanitizers "
          f"(commits={result.commits}, aborts={result.aborts}, "
          f"checks={checks})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="static linter + runtime sanitizers for the repro engine",
        epilog="exit status: 0 = clean (no findings, no parse errors, "
               "no unproven acquisition sites); 1 = findings, parse "
               "errors, unproven sites, or a sanitizer violation; "
               "2 = usage error. --json never changes the exit code.")
    parser.add_argument("--version", action="version",
                        version=f"repro.analysis {ANALYSIS_VERSION}")
    sub = parser.add_subparsers(dest="command")

    lint_p = sub.add_parser(
        "lint", help="run the static invariant linter",
        description="Run the per-file lint rules. Exits 0 when no "
                    "findings and no parse errors; 1 otherwise.")
    lint_p.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    lint_p.add_argument("--json", action="store_true",
                        help="machine-readable output (same exit code)")
    lint_p.set_defaults(func=_cmd_lint)

    conc_p = sub.add_parser(
        "concurrency",
        help="interprocedural latch-order proof + lockset race detection",
        description="Build the project call graph, propagate held-latch "
                    "sets from every thread entry point, and check "
                    "LATCH001/LATCH002 (latch rank order, park/bow/"
                    "notify discipline) and RACE001/RACE002 (Eraser-"
                    "style locksets against '# repro: guarded-by' "
                    "declarations). Exits 0 only when every reachable "
                    "acquisition is proven in-order and every guarded-"
                    "by fact is proven or explicitly vacuous; 1 on any "
                    "finding or unproven site.")
    conc_p.add_argument("paths", nargs="*",
                        help="files or directories (default: src/repro)")
    conc_p.add_argument("--json", action="store_true",
                        help="machine-readable output (same exit code)")
    conc_p.add_argument("--out", metavar="FILE",
                        help="also write the JSON report to FILE "
                             "(CI artifact)")
    conc_p.set_defaults(func=_cmd_concurrency)

    rules_p = sub.add_parser("rules", help="print the rule catalog")
    rules_p.set_defaults(func=_cmd_rules)

    smoke_p = sub.add_parser(
        "smoke", help="sanitizer-enabled SIBENCH smoke run")
    smoke_p.add_argument("--ticks", type=float, default=8_000.0)
    smoke_p.add_argument("--rows", type=int, default=50)
    smoke_p.add_argument("--seed", type=int, default=7)
    smoke_p.set_defaults(func=_cmd_smoke)

    args = parser.parse_args(argv)
    if not hasattr(args, "func"):
        parser.print_help()
        return 2
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
