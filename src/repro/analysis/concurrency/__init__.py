"""Interprocedural concurrency analysis (repro.analysis.concurrency).

Three analyses over one project-wide call graph, all static:

* **call graph** (:mod:`.callgraph`): name/attribute resolution against
  a cross-file index of classes, methods and attribute types (inferred
  from annotations and ``self.x = ClassName(...)`` constructor
  assignments), with method dispatch by receiver-class inference.
  Dynamic calls (``getattr`` dispatch, computed callees) fail open and
  are reported as explicit *unresolved edges*.
* **latch-rank proof** (:mod:`.latchorder`): propagates the set of held
  latch ranks along every call path from the server/engine thread entry
  points and reports any path that can acquire a latch at a rank at or
  below the maximum held rank (LATCH001) -- the static counterpart of
  the runtime :class:`~repro.engine.latches.LatchOrderError` -- plus
  the park/bow/notify re-acquisition hazards of
  :class:`~repro.engine.latches.EngineLatch` (LATCH002).
* **lockset race detection** (:mod:`.lockset`): Eraser-style candidate
  locksets for every attribute of the engine-shared classes, seeded and
  documented by ``# repro: guarded-by(LATCH)`` annotations. RACE001
  flags an undeclared shared field whose lockset is empty; RACE002
  flags a declared guard not held on some reachable path.

Entry point: :func:`analyze_paths`; CLI:
``python -m repro.analysis concurrency``.
"""

from __future__ import annotations

from repro.analysis.concurrency.callgraph import (CallGraph, LatchRef,
                                                  build_graph)
from repro.analysis.concurrency.lockset import collect_guarded_facts
from repro.analysis.concurrency.report import (DEFAULT_ENTRIES,
                                               DEFAULT_SHARED_CLASSES,
                                               ConcurrencyFinding,
                                               ConcurrencyReport,
                                               analyze_paths)

__all__ = ["CallGraph", "ConcurrencyFinding", "ConcurrencyReport",
           "DEFAULT_ENTRIES", "DEFAULT_SHARED_CLASSES", "LatchRef",
           "analyze_paths", "build_graph", "collect_guarded_facts"]
