"""Project-wide call-graph builder over the lint framework.

Reuses the two-pass stdlib-``ast`` machinery of
:mod:`repro.analysis.lint.core` (one :class:`FileContext` per file plus
a shared cross-file index) and adds what interprocedural analysis
needs:

* a **function index**: every ``def`` (including methods and nested
  closures) under a dotted qualified name;
* a **class index** with per-class method tables, base lists, and
  **attribute types** inferred from annotations
  (``x: ClassName`` / ``x: "ClassName"`` / ``Optional[ClassName]``)
  and from constructor assignments (``self.x = ClassName(...)``);
* **latch identification**: attributes or locals bound to
  ``Latch(name, RANK_X)`` / ``EngineLatch()`` carry their rank, so
  ``with self.conn_latch:`` resolves to an acquisition of a known rank;
* per-function **event lists** -- calls, latch acquisitions,
  park/bow/notify sites, and shared-attribute accesses -- each
  annotated with the set of latch ranks held *locally* at that point
  (tracked through ``with`` nesting);
* a **reachability propagator** that pushes entry-point hold-sets
  through the graph and keeps one example call path per (function,
  hold-set) state for violation traces.

Everything here fails **open**: a call whose callee cannot be resolved
becomes an explicit :class:`UnresolvedEdge` in the report rather than a
guessed edge, so the analyses downstream can under-approximate but
never fabricate a path.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import (Dict, Iterable, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from repro.analysis.lint.core import FileContext

#: Canonical rank spellings (mirrors repro.engine.latches constants).
RANK_BY_NAME = {"ENGINE": 10, "CONNECTIONS": 20, "WIRE": 30, "METRICS": 40}
NAME_BY_RANK = {v: k for k, v in RANK_BY_NAME.items()}

#: Class names recognised as latches even when their definition is not
#: among the analyzed files (fixtures import them from the engine).
LATCH_CLASS_DEFAULTS = {"Latch": None, "EngineLatch": "ENGINE"}

#: Blocking / must-hold latch methods modelled specially: ``park`` and
#: ``bow`` release the latch and re-acquire it (a re-acquisition edge);
#: ``notify_all`` merely requires the latch held.
BLOCKING_LATCH_METHODS = {"park", "bow"}
MUSTHOLD_LATCH_METHODS = {"notify_all"}

#: Container methods that mutate their receiver: a call like
#: ``self.fatal_errors.append(x)`` is a *write* to ``fatal_errors``
#: for lockset purposes, exactly like ``self._connections[k] = v``.
MUTATOR_METHODS = {
    "append", "appendleft", "add", "clear", "discard", "extend",
    "insert", "pop", "popleft", "popitem", "remove", "reverse",
    "setdefault", "sort", "update",
}


@dataclass(frozen=True)
class LatchRef:
    """One latch identity, named by its rank."""

    name: str           #: rank name ("ENGINE", ...; "?" when unknown)
    rank: Optional[int]  #: numeric rank, None when unresolvable

    def known(self) -> bool:
        return self.rank is not None


# ----------------------------------------------------------------------
# events
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CallEvent:
    line: int
    held: "frozenset[str]"      #: rank names held locally at the site
    callees: Tuple[str, ...]    #: resolved callee qnames
    label: str


@dataclass(frozen=True)
class AcquireEvent:
    line: int
    held: "frozenset[str]"
    latch: LatchRef


@dataclass(frozen=True)
class BlockEvent:
    """park/bow: releases ``latch`` while blocked, then re-acquires."""

    line: int
    held: "frozenset[str]"
    latch: LatchRef
    kind: str                   #: "park" | "bow" | "notify_all"


@dataclass(frozen=True)
class AccessEvent:
    line: int
    held: "frozenset[str]"
    cls: str
    attr: str
    is_write: bool
    in_init: bool               #: self-access inside the class's __init__


@dataclass(frozen=True)
class UnresolvedEdge:
    caller: str
    path: str
    line: int
    text: str
    reason: str

    def to_dict(self) -> Dict[str, object]:
        return {"caller": self.caller, "path": self.path, "line": self.line,
                "callee": self.text, "reason": self.reason}


# ----------------------------------------------------------------------
# index nodes
# ----------------------------------------------------------------------
@dataclass
class FunctionInfo:
    qname: str
    module: str
    cls: Optional[str]
    name: str
    node: ast.AST
    path: str
    lineno: int
    #: param name -> class name (from annotations).
    param_types: Dict[str, str] = field(default_factory=dict)
    #: class bound to ``self`` (methods, and closures inheriting it).
    self_class: Optional[str] = None
    events: List[object] = field(default_factory=list)


@dataclass
class ClassNode:
    name: str
    module: str
    path: str
    lineno: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    attr_latches: Dict[str, LatchRef] = field(default_factory=dict)
    #: attr -> declared guard rank name (# repro: guarded-by(X)).
    guarded: Dict[str, str] = field(default_factory=dict)
    #: attr -> confinement rationale (# repro: confined(...)).
    confined: Dict[str, str] = field(default_factory=dict)
    #: attr -> (path, line) of its (first) declaration site.
    decl_lines: Dict[str, Tuple[str, int]] = field(default_factory=dict)


class CallGraph:
    """The assembled project index plus per-function event lists."""

    def __init__(self, contexts: Sequence[FileContext]) -> None:
        self.contexts = list(contexts)
        self.ctx_by_path: Dict[str, FileContext] = {
            ctx.path: ctx for ctx in contexts}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassNode] = {}
        #: bare class names defined more than once (resolution fails
        #: open: lookups on an ambiguous name return None).
        self.ambiguous_classes: Set[str] = set()
        #: bare function name -> qnames (for the unique-name fallback
        #: that resolves stored callbacks like ``self.wait_hook(...)``).
        self.by_bare_name: Dict[str, List[str]] = {}
        #: entry points auto-detected from Thread(target=...) /
        #: run_in_executor(executor, fn, ...) sites.
        self.auto_entries: List[str] = []
        self.unresolved: List[UnresolvedEdge] = []
        self.edge_count = 0
        self._subclasses: Dict[str, Set[str]] = {}

    # ------------------------------------------------------------------
    # class index lookups (all fail open on unknown/ambiguous names)
    # ------------------------------------------------------------------
    def class_node(self, name: Optional[str]) -> Optional[ClassNode]:
        if name is None or name in self.ambiguous_classes:
            return None
        return self.classes.get(name)

    def mro(self, name: str) -> List[ClassNode]:
        out: List[ClassNode] = []
        seen: Set[str] = set()
        stack = [name]
        while stack:
            cur = stack.pop(0)
            if cur in seen:
                continue
            seen.add(cur)
            node = self.class_node(cur)
            if node is None:
                continue
            out.append(node)
            stack.extend(node.bases)
        return out

    def attr_type(self, cls: str, attr: str) -> Optional[str]:
        for node in self.mro(cls):
            if attr in node.attr_types:
                return node.attr_types[attr]
        return None

    def attr_latch(self, cls: str, attr: str) -> Optional[LatchRef]:
        for node in self.mro(cls):
            if attr in node.attr_latches:
                return node.attr_latches[attr]
        return None

    def resolve_method(self, cls: str, attr: str) -> List[str]:
        """Method qnames ``cls.attr`` may dispatch to: the MRO match
        plus any override in a known subclass of ``cls``."""
        out: List[str] = []
        for node in self.mro(cls):
            if attr in node.methods:
                out.append(node.methods[attr])
                break
        for sub in sorted(self._subclasses.get(cls, ())):
            sub_node = self.class_node(sub)
            if sub_node is not None and attr in sub_node.methods:
                if sub_node.methods[attr] not in out:
                    out.append(sub_node.methods[attr])
        return out

    def is_latch_class(self, name: Optional[str]) -> bool:
        if name is None:
            return False
        if name in LATCH_CLASS_DEFAULTS:
            return True
        return any(node.name in LATCH_CLASS_DEFAULTS or
                   any(base in LATCH_CLASS_DEFAULTS for base in node.bases)
                   for node in self.mro(name))

    def class_method_names(self) -> Set[str]:
        names: Set[str] = set()
        for node in self.classes.values():
            names.update(node.methods)
        return names

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------
    def propagate(self, entries: Sequence[object]) -> "Reachability":
        """Push hold-sets from ``entries`` through the call events.

        Each entry is a function qname (entered holding nothing) or a
        ``(qname, (rank_name, ...))`` pair for callbacks invoked with
        latches already held (the engine wait hook). Returns the
        visited ``(function, held)`` states with one example call path
        each. Unknown entry names are ignored (the caller reports
        them)."""
        reach = Reachability()
        queue: "deque[Tuple[str, frozenset]]" = deque()
        for entry in entries:
            if isinstance(entry, tuple):
                qname, initial = entry[0], frozenset(entry[1])
            else:
                qname, initial = entry, frozenset()
            if qname in self.functions:
                state = (qname, initial)
                if state not in reach.parents:
                    reach.parents[state] = None
                    reach.entry_of[state] = qname
                    queue.append(state)
        while queue:
            state = queue.popleft()
            qname, held = state
            fn = self.functions[qname]
            reach.states.setdefault(qname, set()).add(held)
            for ev in fn.events:
                if not isinstance(ev, CallEvent):
                    continue
                eff = held | ev.held
                for callee in ev.callees:
                    if callee not in self.functions:
                        continue
                    nxt = (callee, eff)
                    if nxt in reach.parents:
                        continue
                    reach.parents[nxt] = (state, ev.line)
                    reach.entry_of[nxt] = reach.entry_of[state]
                    queue.append(nxt)
        return reach


@dataclass
class Reachability:
    """(function, held-set) states reachable from the entry points."""

    #: state -> (parent state, call line) or None for entry states.
    parents: Dict[Tuple[str, frozenset], Optional[Tuple]] = \
        field(default_factory=dict)
    entry_of: Dict[Tuple[str, frozenset], str] = field(default_factory=dict)
    states: Dict[str, Set[frozenset]] = field(default_factory=dict)

    def trace(self, state: Tuple[str, frozenset]) -> List[str]:
        """Render the example call path leading to ``state``."""
        hops: List[str] = []
        cur: Optional[Tuple[str, frozenset]] = state
        while cur is not None:
            parent = self.parents.get(cur)
            qname, held = cur
            held_txt = "{" + ",".join(sorted(held)) + "}"
            if parent is None:
                hops.append(f"{qname} [entry, held {held_txt}]")
                break
            hops.append(f"{qname} [held {held_txt}] "
                        f"(called at line {parent[1]})")
            cur = parent[0]
        return list(reversed(hops))


# ----------------------------------------------------------------------
# builder
# ----------------------------------------------------------------------
def build_graph(contexts: Sequence[FileContext]) -> CallGraph:
    graph = CallGraph(contexts)
    modmaps: Dict[str, "_ModuleMaps"] = {}
    for ctx in contexts:
        modmaps[ctx.path] = _index_file(graph, ctx)
    for name, node in graph.classes.items():
        for base in node.bases:
            graph._subclasses.setdefault(base, set()).add(name)
    # transitive subclass closure
    changed = True
    while changed:
        changed = False
        for base, subs in list(graph._subclasses.items()):
            for sub in list(subs):
                for subsub in graph._subclasses.get(sub, ()):
                    if subsub not in subs:
                        subs.add(subsub)
                        changed = True
    for ctx in contexts:
        _collect_class_facts(graph, ctx, modmaps[ctx.path])
    for fn in graph.functions.values():
        _EventBuilder(graph, fn, modmaps[fn.path]).build()
    return graph


@dataclass
class _ModuleMaps:
    """Per-module name environment from imports."""

    #: local alias -> imported module dotted path.
    module_alias: Dict[str, str] = field(default_factory=dict)
    #: local name -> (module, original name) from ``from m import n``.
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)


def _index_file(graph: CallGraph, ctx: FileContext) -> _ModuleMaps:
    maps = _ModuleMaps()
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                maps.module_alias[alias.asname or
                                  alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                maps.from_imports[alias.asname or alias.name] = \
                    (node.module, alias.name)

    def visit(body: Iterable[ast.stmt], scope: List[str],
              cls: Optional[str], self_cls: Optional[str]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.ClassDef):
                cnode = ClassNode(name=stmt.name, module=ctx.module,
                                  path=ctx.path, lineno=stmt.lineno,
                                  bases=[_terminal(b) or "?"
                                         for b in stmt.bases])
                if stmt.name in graph.classes and \
                        graph.classes[stmt.name].path != ctx.path:
                    graph.ambiguous_classes.add(stmt.name)
                graph.classes.setdefault(stmt.name, cnode)
                if graph.classes[stmt.name] is not cnode and \
                        graph.classes[stmt.name].path == ctx.path:
                    pass  # redefinition in same file: keep first
                visit(stmt.body, scope + [stmt.name], stmt.name, stmt.name)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qname = ".".join([ctx.module] + scope + [stmt.name])
                args = stmt.args
                all_args = list(args.posonlyargs) + list(args.args) + \
                    list(args.kwonlyargs)
                fn_self = None
                if cls is not None and all_args and \
                        all_args[0].arg in ("self", "cls"):
                    fn_self = cls
                elif self_cls is not None and not any(
                        a.arg == "self" for a in all_args):
                    fn_self = self_cls  # closure: inherits enclosing self
                fn = FunctionInfo(qname=qname, module=ctx.module, cls=cls,
                                  name=stmt.name, node=stmt, path=ctx.path,
                                  lineno=stmt.lineno, self_class=fn_self)
                graph.functions[qname] = fn
                graph.by_bare_name.setdefault(stmt.name, []).append(qname)
                if cls is not None:
                    owner = graph.classes.get(cls)
                    if owner is not None and owner.path == ctx.path:
                        owner.methods.setdefault(stmt.name, qname)
                visit(stmt.body, scope + [stmt.name], None,
                      fn_self)
            # other statements carry no definitions we index
    visit(ctx.tree.body, [], None, None)
    return maps


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _annotation_class(expr: Optional[ast.expr]) -> Optional[str]:
    """Best-effort class name from an annotation expression, seeing
    through Optional[...] / quotes."""
    if expr is None:
        return None
    if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
        name = expr.value.strip()
        return name.split("[")[0].split(".")[-1] if name else None
    if isinstance(expr, (ast.Name, ast.Attribute)):
        return _terminal(expr)
    if isinstance(expr, ast.Subscript):
        head = _terminal(expr.value)
        if head == "Optional":
            return _annotation_class(expr.slice)
        return None
    return None


def _latch_from_call(graph: CallGraph, node: ast.expr) -> Optional[LatchRef]:
    """Recognise ``Latch("x", RANK_Y)`` / ``EngineLatch()`` values."""
    if not isinstance(node, ast.Call):
        return None
    callee = _terminal(node.func)
    if callee is None or not graph.is_latch_class(callee):
        return None
    default = LATCH_CLASS_DEFAULTS.get(callee)
    if default is None:
        cnode = graph.class_node(callee)
        if cnode is not None:
            for base in cnode.bases:
                if LATCH_CLASS_DEFAULTS.get(base):
                    default = LATCH_CLASS_DEFAULTS[base]
    rank_expr: Optional[ast.expr] = None
    if len(node.args) >= 2:
        rank_expr = node.args[1]
    for kw in node.keywords:
        if kw.arg == "rank":
            rank_expr = kw.value
    if rank_expr is None:
        if default is not None:
            return LatchRef(default, RANK_BY_NAME[default])
        return LatchRef("?", None)
    name = _terminal(rank_expr)
    if name is not None and name.startswith("RANK_"):
        short = name[len("RANK_"):]
        return LatchRef(short, RANK_BY_NAME.get(short))
    if isinstance(rank_expr, ast.Constant) and \
            isinstance(rank_expr.value, int):
        rank = rank_expr.value
        return LatchRef(NAME_BY_RANK.get(rank, str(rank)), rank)
    return LatchRef("?", None)


def _collect_class_facts(graph: CallGraph, ctx: FileContext,
                         maps: _ModuleMaps) -> None:
    """Second pass: attribute types/latches/guard facts per class."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        cnode = graph.classes.get(node.name)
        if cnode is None or cnode.path != ctx.path:
            continue

        def record(attr: str, lineno: int, value: Optional[ast.expr],
                   annotation: Optional[ast.expr],
                   param_ann: Optional[Dict[str, str]] = None) -> None:
            cnode.decl_lines.setdefault(attr, (ctx.path, lineno))
            guard = ctx.guards.get(lineno)
            if guard is not None:
                cnode.guarded.setdefault(attr, guard)
            rationale = ctx.confined.get(lineno)
            if rationale is not None:
                cnode.confined.setdefault(attr, rationale)
            latch = _latch_from_call(graph, value) if value is not None \
                else None
            if latch is not None:
                cnode.attr_latches.setdefault(attr, latch)
                cnode.attr_types.setdefault(attr,
                                            _terminal(value.func) or "?")
                return
            typ = _annotation_class(annotation)
            if typ is None and isinstance(value, ast.Call):
                callee = _terminal(value.func)
                if graph.class_node(callee) is not None:
                    typ = callee
            if typ is None and isinstance(value, ast.Name) and param_ann:
                # ``self.server = server`` picks up the annotation of
                # the ``server`` parameter of the enclosing method.
                typ = param_ann.get(value.id)
            if typ is not None and (graph.class_node(typ) is not None
                                    or graph.is_latch_class(typ)):
                cnode.attr_types.setdefault(attr, typ)
                if graph.is_latch_class(typ) and \
                        attr not in cnode.attr_latches:
                    default = LATCH_CLASS_DEFAULTS.get(typ)
                    cnode.attr_latches[attr] = (
                        LatchRef(default, RANK_BY_NAME[default])
                        if default else LatchRef("?", None))

        # class-level declarations (dataclass fields, annotations)
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and \
                    isinstance(stmt.target, ast.Name):
                record(stmt.target.id, stmt.lineno, stmt.value,
                       stmt.annotation)
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                record(stmt.targets[0].id, stmt.lineno, stmt.value, None)
        # self.X = ... sites in every method
        for func in node.body:
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            param_ann: Dict[str, str] = {}
            for arg in (list(func.args.posonlyargs) + list(func.args.args)
                        + list(func.args.kwonlyargs)):
                ann = _annotation_class(arg.annotation)
                if ann is not None:
                    param_ann[arg.arg] = ann
            for sub in ast.walk(func):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                annotation: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign):
                    target, value, annotation = \
                        sub.target, sub.value, sub.annotation
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    record(target.attr, sub.lineno, value, annotation,
                           param_ann)


# ----------------------------------------------------------------------
# per-function event extraction
# ----------------------------------------------------------------------
class _EventBuilder:
    """Walks one function body tracking locally-held latch ranks."""

    def __init__(self, graph: CallGraph, fn: FunctionInfo,
                 maps: _ModuleMaps) -> None:
        self.graph = graph
        self.fn = fn
        self.maps = maps
        self.local_types: Dict[str, str] = {}
        self.local_latches: Dict[str, LatchRef] = {}
        self._func_positions: Set[int] = set()
        self._write_ids: Set[int] = set()
        self._method_names = graph.class_method_names()

    # -- typing helpers -------------------------------------------------
    def _param_types(self) -> None:
        args = self.fn.node.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            typ = _annotation_class(arg.annotation)
            if typ is not None:
                self.fn.param_types[arg.arg] = typ

    def _prescan_locals(self) -> None:
        """Flow-insensitive local variable types (x = ClassName(...))."""
        for sub in self._walk_own(self.fn.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1 and \
                    isinstance(sub.targets[0], ast.Name):
                name = sub.targets[0].id
                latch = _latch_from_call(self.graph, sub.value)
                if latch is not None:
                    self.local_latches[name] = latch
                    continue
                typ = self.expr_class(sub.value)
                if typ is not None:
                    self.local_types.setdefault(name, typ)
            elif isinstance(sub, ast.AnnAssign) and \
                    isinstance(sub.target, ast.Name):
                typ = _annotation_class(sub.annotation)
                if typ is not None:
                    self.local_types.setdefault(sub.target.id, typ)

    def expr_class(self, expr: ast.expr) -> Optional[str]:
        """Infer the class of ``expr``'s value, or None."""
        if isinstance(expr, ast.Name):
            if expr.id == "self":
                return self.fn.self_class
            if expr.id in self.fn.param_types:
                return self.fn.param_types[expr.id]
            if expr.id in self.local_types:
                return self.local_types[expr.id]
            if expr.id in self.maps.from_imports:
                _mod, orig = self.maps.from_imports[expr.id]
                if self.graph.class_node(orig) is not None:
                    return orig
            return None
        if isinstance(expr, ast.Attribute):
            base = self.expr_class(expr.value)
            if base is None:
                return None
            return self.graph.attr_type(base, expr.attr)
        if isinstance(expr, ast.Call):
            callee = _terminal(expr.func)
            if callee is not None and \
                    self.graph.class_node(callee) is not None and \
                    isinstance(expr.func, ast.Name):
                return callee  # constructor call
            return None
        return None

    def latch_for(self, expr: ast.expr) -> Optional[LatchRef]:
        """Resolve ``expr`` to a latch identity, or None."""
        if isinstance(expr, ast.Name):
            if expr.id in self.local_latches:
                return self.local_latches[expr.id]
            typ = self.fn.param_types.get(expr.id) or \
                self.local_types.get(expr.id)
            if typ is not None and self.graph.is_latch_class(typ):
                default = LATCH_CLASS_DEFAULTS.get(typ)
                return (LatchRef(default, RANK_BY_NAME[default])
                        if default else LatchRef("?", None))
            return None
        if isinstance(expr, ast.Attribute):
            base = self.expr_class(expr.value)
            if base is not None:
                latch = self.graph.attr_latch(base, expr.attr)
                if latch is not None:
                    return latch
            return None
        latch = _latch_from_call(self.graph, expr)
        return latch

    # -- AST iteration that respects function boundaries ---------------
    @staticmethod
    def _walk_own(root: ast.AST) -> Iterator[ast.AST]:
        """ast.walk, but do not descend into nested def/class bodies
        (they are separate functions in the index). Lambdas ARE
        descended into: their bodies run where they are called, which
        for ready-predicates is under the latch at the call site."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(root))
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            stack.extend(ast.iter_child_nodes(node))

    # -- the walk -------------------------------------------------------
    def build(self) -> None:
        self._param_types()
        self._prescan_locals()
        self._mark_writes()
        node = self.fn.node
        self._walk_stmts(list(getattr(node, "body", [])), frozenset())

    def _mark_writes(self) -> None:
        """Pre-mark attribute nodes that are *writes* despite a Load
        ctx: subscript stores (``self.d[k] = v``) and mutator-method
        calls (``self.xs.append(v)``)."""
        for sub in self._walk_own(self.fn.node):
            if isinstance(sub, ast.Subscript) and \
                    isinstance(sub.ctx, (ast.Store, ast.Del)) and \
                    isinstance(sub.value, ast.Attribute):
                self._write_ids.add(id(sub.value))
            elif isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Attribute) and \
                    sub.func.attr in MUTATOR_METHODS and \
                    isinstance(sub.func.value, ast.Attribute):
                self._write_ids.add(id(sub.func.value))

    def _walk_stmts(self, stmts: Sequence[ast.stmt],
                    held: "frozenset[str]") -> None:
        current = held
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired: List[str] = []
                for item in stmt.items:
                    latch = self.latch_for(item.context_expr)
                    if latch is not None:
                        self.fn.events.append(AcquireEvent(
                            line=item.context_expr.lineno, held=current,
                            latch=latch))
                        if latch.known():
                            acquired.append(latch.name)
                    else:
                        self._visit_expr(item.context_expr, current)
                self._walk_stmts(stmt.body, current | frozenset(acquired))
            elif isinstance(stmt, ast.Try):
                self._walk_stmts(stmt.body, current)
                for handler in stmt.handlers:
                    self._walk_stmts(handler.body, current)
                self._walk_stmts(stmt.orelse, current)
                self._walk_stmts(stmt.finalbody, current)
            elif isinstance(stmt, ast.If):
                self._visit_expr(stmt.test, current)
                self._walk_stmts(stmt.body, current)
                self._walk_stmts(stmt.orelse, current)
            elif isinstance(stmt, ast.While):
                self._visit_expr(stmt.test, current)
                self._walk_stmts(stmt.body, current)
                self._walk_stmts(stmt.orelse, current)
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._visit_expr(stmt.iter, current)
                self._walk_stmts(stmt.body, current)
                self._walk_stmts(stmt.orelse, current)
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                   ast.ClassDef)):
                continue  # indexed separately
            else:
                current = self._visit_stmt(stmt, current)

    def _visit_stmt(self, stmt: ast.stmt,
                    held: "frozenset[str]") -> "frozenset[str]":
        """Visit a simple statement; bare acquire()/release() calls
        shift the held set for the rest of the block."""
        self._visit_expr(stmt, held)
        for sub in self._walk_own(stmt):
            if isinstance(sub, ast.Call) and \
                    isinstance(sub.func, ast.Attribute):
                latch = self.latch_for(sub.func.value)
                if latch is None or not latch.known():
                    continue
                if sub.func.attr == "acquire":
                    held = held | {latch.name}
                elif sub.func.attr == "release":
                    held = held - {latch.name}
        return held

    def _visit_expr(self, node: ast.AST, held: "frozenset[str]") -> None:
        # Handle the node itself first (calls mark their func position
        # before the child walk reaches the method Attribute).
        if isinstance(node, ast.Call):
            self._handle_call(node, held)
        elif isinstance(node, ast.Attribute):
            self._handle_attribute(node, held)
        for sub in self._walk_own(node):
            if isinstance(sub, ast.Call):
                self._handle_call(sub, held)
            elif isinstance(sub, ast.Attribute):
                self._handle_attribute(sub, held)

    # -- attribute access events ---------------------------------------
    def _handle_attribute(self, node: ast.Attribute,
                          held: "frozenset[str]") -> None:
        if id(node) in self._func_positions:
            return  # method-call position, not a state access
        recv = self.expr_class(node.value)
        if recv is None or self.graph.class_node(recv) is None:
            return
        if node.attr.startswith("__") or any(
                node.attr in c.methods for c in self.graph.mro(recv)):
            return
        is_write = isinstance(node.ctx, (ast.Store, ast.Del)) or \
            id(node) in self._write_ids
        in_init = (self.fn.name == "__init__"
                   and isinstance(node.value, ast.Name)
                   and node.value.id == "self"
                   and self.fn.cls == recv)
        self.fn.events.append(AccessEvent(
            line=node.lineno, held=held, cls=recv, attr=node.attr,
            is_write=is_write, in_init=in_init))

    # -- call events ----------------------------------------------------
    def _handle_call(self, node: ast.Call, held: "frozenset[str]") -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            self._func_positions.add(id(func))
        self._detect_thread_entry(node)
        label = ast.unparse(func) if hasattr(ast, "unparse") else "?"
        # latch method calls: park/bow/notify_all, bare acquire/release
        if isinstance(func, ast.Attribute):
            latch = self.latch_for(func.value)
            if latch is not None:
                if func.attr in BLOCKING_LATCH_METHODS or \
                        func.attr in MUSTHOLD_LATCH_METHODS:
                    self.fn.events.append(BlockEvent(
                        line=node.lineno, held=held, latch=latch,
                        kind=func.attr))
                elif func.attr == "acquire":
                    self.fn.events.append(AcquireEvent(
                        line=node.lineno, held=held, latch=latch))
                # fall through: also record the call edge if resolvable
        callees = self._resolve_call(func)
        if callees:
            self.graph.edge_count += len(callees)
            self.fn.events.append(CallEvent(
                line=node.lineno, held=held, callees=tuple(callees),
                label=label))
        else:
            reason = self._unresolved_reason(func)
            if reason is not None:
                self.graph.unresolved.append(UnresolvedEdge(
                    caller=self.fn.qname, path=self.fn.path,
                    line=node.lineno, text=label, reason=reason))

    def _resolve_call(self, func: ast.expr) -> List[str]:
        graph = self.graph
        if isinstance(func, ast.Name):
            name = func.id
            if name in self.maps.from_imports:
                mod, orig = self.maps.from_imports[name]
                qname = f"{mod}.{orig}"
                if qname in graph.functions:
                    return [qname]
                cnode = graph.class_node(orig)
                if cnode is not None and "__init__" in cnode.methods:
                    return [cnode.methods["__init__"]]
            qname = f"{self.fn.module}.{name}"
            if qname in graph.functions:
                return [qname]
            cnode = graph.class_node(name)
            if cnode is not None and "__init__" in cnode.methods:
                return [cnode.methods["__init__"]]
            return []
        if isinstance(func, ast.Attribute):
            attr = func.attr
            recv = self.expr_class(func.value)
            if recv is not None:
                resolved = graph.resolve_method(recv, attr)
                if resolved:
                    return resolved
            # module alias call: protocol.encode_frame(...)
            if isinstance(func.value, ast.Name):
                base = func.value.id
                if base in self.maps.module_alias:
                    qname = f"{self.maps.module_alias[base]}.{attr}"
                    if qname in graph.functions:
                        return [qname]
                if base in self.maps.from_imports:
                    mod, orig = self.maps.from_imports[base]
                    qname = f"{mod}.{orig}.{attr}"
                    if qname in graph.functions:
                        return [qname]
                # class attribute call: ClassName.method(obj)
                cnode = graph.class_node(base)
                if cnode is not None and attr in cnode.methods:
                    return [cnode.methods[attr]]
            # stored-callback fallback: unique bare name project-wide
            candidates = graph.by_bare_name.get(attr, [])
            if len(candidates) == 1 and attr not in self._method_names:
                return [candidates[0]]
            return []
        return []

    def _unresolved_reason(self, func: ast.expr) -> Optional[str]:
        """Report dynamic/unknown callees that plausibly reach project
        code; stay silent on obvious builtins/stdlib calls."""
        if isinstance(func, ast.Attribute):
            if func.attr in self._method_names or \
                    len(self.graph.by_bare_name.get(func.attr, [])) > 1:
                return ("receiver class unknown (dynamic dispatch "
                        "fails open)")
            return None
        if isinstance(func, ast.Name):
            if func.id in self._method_names or \
                    func.id in self.graph.by_bare_name:
                return "name does not resolve in this module's scope"
            return None
        return "computed callee expression (getattr/indirect dispatch)"

    def _detect_thread_entry(self, node: ast.Call) -> None:
        """Register Thread(target=...) / run_in_executor(_, fn, ...)
        targets as thread entry points."""
        callee = _terminal(node.func)
        target: Optional[ast.expr] = None
        if callee == "Thread":
            for kw in node.keywords:
                if kw.arg == "target":
                    target = kw.value
        elif callee == "run_in_executor" and len(node.args) >= 2:
            target = node.args[1]
        if target is None:
            return
        resolved = self._resolve_call(target) if isinstance(
            target, (ast.Name, ast.Attribute)) else []
        for qname in resolved:
            if qname not in self.graph.auto_entries:
                self.graph.auto_entries.append(qname)
