"""Eraser-style lockset race detection (RACE001/RACE002).

For every attribute of an engine-shared class, collect each access
site reachable from the thread entry points together with the set of
latch ranks held there, then:

* attributes **declared** with ``# repro: guarded-by(LATCH)`` must
  hold that latch at every reachable site -- a miss is **RACE002**,
  anchored at the offending site with the example call path;
* attributes **declared** ``# repro: confined(<rationale>)`` are
  thread-confined by design; they are skipped but surfaced in the
  audit table so the claim stays reviewable;
* **undeclared** attributes get the classic Eraser treatment: the
  *candidate lockset* is the intersection of held latches over every
  reachable site. An empty intersection with at least one write
  outside ``__init__`` is **RACE001** -- no latch protects the field
  consistently. A non-empty intersection is reported in the audit as
  the suggested ``guarded-by`` annotation.

Accesses inside the owning class's ``__init__`` are excluded:
construction happens before the object is published to other threads
(the latch that publishes it provides the happens-before edge).

Declared facts with **no** reachable access site are not "proven" --
they are listed as *vacuous* in the audit, which is exactly the set
the dynamic lockset sanitizer (:mod:`repro.analysis.sanitize`) covers
at runtime behind the ``getattr``-dispatch boundary the static call
graph cannot cross.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.concurrency.callgraph import (AccessEvent, CallGraph,
                                                  RANK_BY_NAME, Reachability)


@dataclass(frozen=True)
class RaceFinding:
    rule: str
    path: str
    line: int
    message: str
    hint: str
    trace: Tuple[str, ...] = ()


@dataclass(frozen=True)
class AuditRow:
    """One (class, attribute) row of the shared-state audit."""

    cls: str
    attr: str
    status: str          #: proven | violated | confined | vacuous |
                         #: candidate | read-only
    detail: str
    sites: int

    def to_dict(self) -> Dict[str, object]:
        return {"class": self.cls, "attr": self.attr,
                "status": self.status, "detail": self.detail,
                "sites": self.sites}


@dataclass
class LocksetResult:
    races: List[RaceFinding] = field(default_factory=list)
    audit: List[AuditRow] = field(default_factory=list)


@dataclass
class _Site:
    path: str
    line: int
    held: "frozenset[str]"
    is_write: bool
    state: Tuple[str, frozenset]


def collect_guarded_facts(
        graph: CallGraph) -> Dict[Tuple[str, str], str]:
    """(class, attr) -> declared guard rank name, project-wide. Also
    consumed by the dynamic lockset sanitizer."""
    facts: Dict[Tuple[str, str], str] = {}
    for name, node in graph.classes.items():
        for attr, guard in node.guarded.items():
            facts[(name, attr)] = guard
    return facts


def _fact_owner(graph: CallGraph, cls: str, attr: str) -> str:
    """The class on ``cls``'s MRO that declares ``attr`` (guard,
    confinement, or plain declaration), else ``cls`` itself -- so an
    access through a subclass reference aggregates with the base-class
    fact."""
    for node in graph.mro(cls):
        if (attr in node.guarded or attr in node.confined
                or attr in node.decl_lines):
            return node.name
    return cls


def check_locksets(graph: CallGraph, reach: Reachability,
                   shared_classes: Sequence[str]) -> LocksetResult:
    result = LocksetResult()
    shared: Set[str] = set(shared_classes)
    for name, node in graph.classes.items():
        if node.guarded or node.confined:
            shared.add(name)

    # 1. gather reachable access sites per (owner class, attr)
    sites: Dict[Tuple[str, str], List[_Site]] = {}
    for qname, heldsets in sorted(reach.states.items()):
        fn = graph.functions[qname]
        for held in sorted(heldsets, key=sorted):
            state = (qname, held)
            for ev in fn.events:
                if not isinstance(ev, AccessEvent) or ev.in_init:
                    continue
                owner = _fact_owner(graph, ev.cls, ev.attr)
                if ev.cls not in shared and owner not in shared:
                    continue
                sites.setdefault((owner, ev.attr), []).append(_Site(
                    path=fn.path, line=ev.line, held=held | ev.held,
                    is_write=ev.is_write, state=state))

    # 2. every declared fact, whether or not it has reachable sites
    keys: Set[Tuple[str, str]] = set(sites)
    for name, node in graph.classes.items():
        for attr in node.guarded:
            keys.add((name, attr))
        for attr in node.confined:
            keys.add((name, attr))

    seen: Set[Tuple[str, str, int]] = set()
    for owner, attr in sorted(keys):
        node = graph.class_node(owner)
        guard = node.guarded.get(attr) if node else None
        confined = node.confined.get(attr) if node else None
        at = sites.get((owner, attr), [])
        n = len(at)
        if confined is not None:
            result.audit.append(AuditRow(
                cls=owner, attr=attr, status="confined",
                detail=confined.strip() or "(no rationale)", sites=n))
            continue
        if guard is not None:
            if guard not in RANK_BY_NAME:
                result.races.append(RaceFinding(
                    rule="RACE002", path=(node.decl_lines.get(attr)
                                          or (node.path, node.lineno))[0],
                    line=(node.decl_lines.get(attr)
                          or (node.path, node.lineno))[1],
                    message=f"{owner}.{attr} declares guarded-by"
                            f"({guard}), which is not a known latch "
                            "rank (ENGINE/CONNECTIONS/WIRE/METRICS)",
                    hint="fix the annotation; guard names are latch "
                         "rank names"))
                continue
            misses = [s for s in at if guard not in s.held]
            for s in misses:
                key = ("RACE002", s.path, s.line)
                if key in seen:
                    continue
                seen.add(key)
                result.races.append(RaceFinding(
                    rule="RACE002", path=s.path, line=s.line,
                    message=f"{owner}.{attr} is declared guarded-by"
                            f"({guard}) but this "
                            f"{'write' if s.is_write else 'read'} is "
                            f"reachable holding only "
                            "{" + ",".join(sorted(s.held)) + "}",
                    hint=f"take the {guard} latch around the access, "
                         "or re-declare the field (confined / a "
                         "different guard) if the claim is wrong",
                    trace=tuple(reach.trace(s.state))))
            if n == 0:
                result.audit.append(AuditRow(
                    cls=owner, attr=attr, status="vacuous",
                    detail=f"guarded-by({guard}); no statically "
                           "reachable access (dynamic sanitizer "
                           "covers)", sites=0))
            elif misses:
                result.audit.append(AuditRow(
                    cls=owner, attr=attr, status="violated",
                    detail=f"guarded-by({guard}); {len(misses)} "
                           f"unguarded site(s)", sites=n))
            else:
                result.audit.append(AuditRow(
                    cls=owner, attr=attr, status="proven",
                    detail=f"guarded-by({guard}) holds at every "
                           "reachable site", sites=n))
            continue
        # undeclared: Eraser candidate lockset
        lockset = None
        writes = 0
        for s in at:
            lockset = s.held if lockset is None else (lockset & s.held)
            writes += int(s.is_write)
        if not at:
            continue
        if writes == 0:
            result.audit.append(AuditRow(
                cls=owner, attr=attr, status="read-only",
                detail="only read outside __init__ on reachable "
                       "paths", sites=n))
            continue
        if lockset:
            suggestion = sorted(lockset,
                                key=lambda nm: RANK_BY_NAME.get(nm, 99))[0]
            result.audit.append(AuditRow(
                cls=owner, attr=attr, status="candidate",
                detail="consistent lockset "
                       "{" + ",".join(sorted(lockset)) + "}; annotate "
                       f"guarded-by({suggestion})", sites=n))
            continue
        anchor = min(at, key=lambda s: (len(s.held), s.path, s.line))
        key = ("RACE001", anchor.path, anchor.line)
        if key not in seen:
            seen.add(key)
            result.races.append(RaceFinding(
                rule="RACE001", path=anchor.path, line=anchor.line,
                message=f"{owner}.{attr} is engine-shared, written on "
                        f"reachable paths ({writes} write(s), {n} "
                        "site(s)) and its candidate lockset is empty: "
                        "no latch protects it consistently",
                hint="guard every access with one latch and declare "
                     "it with '# repro: guarded-by(LATCH)', or mark "
                     "the field '# repro: confined(<why>)' if one "
                     "thread owns it",
                trace=tuple(reach.trace(anchor.state))))
        result.audit.append(AuditRow(
            cls=owner, attr=attr, status="racy",
            detail=f"empty candidate lockset over {n} site(s)",
            sites=n))
    return result
