"""Static latch-rank proof (LATCH001/LATCH002).

The runtime discipline (:mod:`repro.engine.latches`) raises
``LatchOrderError`` the moment a thread acquires a latch at a rank at
or below one it already holds. That catches violations *observed* on
some build; this module proves their absence statically by propagating
the set of held latch ranks along every resolvable call path from the
thread entry points and checking each acquisition site against every
hold-set that can reach it.

* **LATCH001** -- out-of-rank acquisition: some path reaches a
  ``with latch:`` / ``latch.acquire()`` site while already holding a
  latch of equal or higher rank (and not reentrantly holding this
  one). The finding carries the example call path.
* **LATCH002** -- park/bow/notify discipline on
  :class:`~repro.engine.latches.EngineLatch`:

  - ``park``/``bow``/``notify_all`` on a path that does **not** hold
    the latch (the runtime would corrupt the condition-variable
    protocol or raise from ``Condition.wait``);
  - ``park``/``bow`` while also holding some *other* latch of equal or
    higher rank -- the block point releases and **re-acquires** the
    parked latch, and the re-acquisition is exactly an out-of-rank
    acquire that the runtime check would only catch when the race
    window is hit.

Acquisition sites whose latch rank cannot be resolved statically are
never guessed: they are returned as *unproven* entries, and the report
is only ``ok`` when that list is empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.analysis.concurrency.callgraph import (AcquireEvent, BlockEvent,
                                                  CallGraph, RANK_BY_NAME,
                                                  Reachability)


@dataclass(frozen=True)
class LatchViolation:
    rule: str
    path: str
    line: int
    message: str
    hint: str
    trace: Tuple[str, ...] = ()


@dataclass
class LatchOrderResult:
    violations: List[LatchViolation] = field(default_factory=list)
    #: acquisition/park sites whose latch rank is statically unknown.
    unproven: List[Dict[str, object]] = field(default_factory=list)
    #: number of (site, hold-set) pairs proven in-order.
    proven_sites: int = 0


def _max_rank(names: "frozenset[str]") -> int:
    return max((RANK_BY_NAME[n] for n in names if n in RANK_BY_NAME),
               default=-1)


def _fmt(names: "frozenset[str]") -> str:
    return "{" + ",".join(sorted(names)) + "}"


def check_latch_order(graph: CallGraph,
                      reach: Reachability) -> LatchOrderResult:
    result = LatchOrderResult()
    seen: set = set()

    def emit(rule: str, path: str, line: int, message: str, hint: str,
             state: Tuple[str, frozenset]) -> None:
        key = (rule, path, line, message)
        if key in seen:
            return
        seen.add(key)
        result.violations.append(LatchViolation(
            rule=rule, path=path, line=line, message=message, hint=hint,
            trace=tuple(reach.trace(state))))

    for qname, heldsets in sorted(reach.states.items()):
        fn = graph.functions[qname]
        for held in sorted(heldsets, key=sorted):
            state = (qname, held)
            for ev in fn.events:
                if isinstance(ev, AcquireEvent):
                    eff = held | ev.held
                    latch = ev.latch
                    if not latch.known():
                        result.unproven.append({
                            "path": fn.path, "line": ev.line,
                            "function": qname,
                            "reason": "latch rank not statically "
                                      "resolvable at this acquire site"})
                        continue
                    if latch.name in eff:
                        result.proven_sites += 1  # reentrant: safe
                        continue
                    worst = _max_rank(eff)
                    if worst >= latch.rank:
                        emit("LATCH001", fn.path, ev.line,
                             f"acquires latch {latch.name} (rank "
                             f"{latch.rank}) while a path from "
                             f"{reach.entry_of[state]} already holds "
                             f"{_fmt(eff)} (max rank {worst})",
                             "latches must be acquired in strictly "
                             "increasing rank order "
                             "(ENGINE<CONNECTIONS<WIRE<METRICS); "
                             "restructure so the lower-rank latch is "
                             "taken first, or drop the outer latch "
                             "before calling in", state)
                    else:
                        result.proven_sites += 1
                elif isinstance(ev, BlockEvent):
                    eff = held | ev.held
                    latch = ev.latch
                    if not latch.known():
                        result.unproven.append({
                            "path": fn.path, "line": ev.line,
                            "function": qname,
                            "reason": f"{ev.kind}() on a latch whose "
                                      "rank is not statically "
                                      "resolvable"})
                        continue
                    if latch.name not in eff:
                        emit("LATCH002", fn.path, ev.line,
                             f"{ev.kind}() on latch {latch.name} on a "
                             f"path from {reach.entry_of[state]} that "
                             f"does not hold it (held: {_fmt(eff)})",
                             "park/bow/notify_all require the latch "
                             "held: they operate on the condition "
                             "variable sharing the latch's lock", state)
                        continue
                    if ev.kind in ("park", "bow"):
                        others = eff - {latch.name}
                        worst = _max_rank(others)
                        if worst >= latch.rank:
                            emit("LATCH002", fn.path, ev.line,
                                 f"{ev.kind}() releases and re-acquires "
                                 f"latch {latch.name} (rank "
                                 f"{latch.rank}) while still holding "
                                 f"{_fmt(others)} (max rank {worst}): "
                                 "the re-acquisition is out of rank "
                                 "order",
                                 "a blocked thread keeps its other "
                                 "latches; parking may only happen "
                                 "with the parked latch as the "
                                 "highest-ranked latch held", state)
                        else:
                            result.proven_sites += 1
                    else:
                        result.proven_sites += 1
    return result


def latent_unknown_sites(graph: CallGraph,
                         reach: Reachability) -> List[Dict[str, object]]:
    """Unknown-rank acquire sites in functions *not* reached from any
    entry point -- informational (they cannot violate the proof, but a
    new call edge could make them reachable)."""
    out: List[Dict[str, object]] = []
    for qname, fn in sorted(graph.functions.items()):
        if qname in reach.states:
            continue
        for ev in fn.events:
            if isinstance(ev, (AcquireEvent, BlockEvent)) and \
                    not ev.latch.known():
                out.append({"path": fn.path, "line": ev.line,
                            "function": qname,
                            "reason": "unreached function acquires a "
                                      "latch of unknown rank"})
    return out
