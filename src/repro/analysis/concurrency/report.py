"""Assembly: run the concurrency analyses and render the report.

:func:`analyze_paths` is the single entry point used by the CLI
(``python -m repro.analysis concurrency``), the CI gate, and the
tests. It parses the files with the lint framework (so ``# repro:``
annotations and noqa suppression behave identically to the linter),
builds the call graph, propagates hold-sets from the entry points, and
runs the latch-order proof and the lockset race detector.

The report is **ok** only when there are zero findings *and* zero
unproven acquisition sites on reachable paths -- "clean" means proven,
not merely nothing-flagged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.core import Finding, build_contexts
from repro.analysis.concurrency.callgraph import (CallGraph, build_graph)
from repro.analysis.concurrency.latchorder import (check_latch_order,
                                                   latent_unknown_sites)
from repro.analysis.concurrency.lockset import check_locksets

#: Functions that real OS threads enter with no latches held, beyond
#: the auto-detected ``threading.Thread(target=...)`` /
#: ``run_in_executor(...)`` targets: the asyncio connection handler
#: (runs on the event-loop thread) and the engine/server public API
#: (driven directly by benchmark and test threads).
DEFAULT_ENTRIES = (
    "repro.server.server._AsyncioFrontend._handle",
    "repro.server.server.ReproServer.stop",
    "repro.server.engine.ThreadSafeEngine.execute",
    "repro.server.engine.ThreadSafeEngine.run",
    "repro.server.engine.ThreadSafeEngine.open_session",
    "repro.server.engine.ThreadSafeEngine.close_session",
    "repro.server.engine.ThreadSafeEngine.shutdown",
    # The session wait hook is invoked from deep engine code with the
    # engine latch held (the getattr-dispatch boundary the static call
    # graph cannot cross); modeling it as a held-ENGINE entry proves
    # the park/bow re-acquisition edges.
    ("repro.server.engine.ThreadSafeEngine._make_wait_hook.wait_hook",
     ("ENGINE",)),
)

#: Classes whose instances are reachable from more than one OS thread
#: (the engine singletons behind the engine latch, the server's
#: connection tables, per-connection plumbing). Classes carrying a
#: ``# repro: guarded-by(...)`` or ``confined(...)`` fact are added
#: automatically.
DEFAULT_SHARED_CLASSES = frozenset({
    "ReproServer", "ThreadSafeEngine", "EngineSession", "ConnectionCore",
    "ThreadedConnection", "EngineLatch",
    "SSIManager", "SIReadLockManager", "LockManager", "VisibilityMap",
    "StatsCatalog",
})


@dataclass(frozen=True)
class ConcurrencyFinding(Finding):
    """A lint :class:`Finding` plus the example call path that
    reaches the site from a thread entry point."""

    trace: Tuple[str, ...] = ()

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["trace"] = list(self.trace)
        return data

    def render(self, with_hint: bool = True) -> str:
        text = super().render(with_hint)
        for hop in self.trace:
            text += f"\n      via {hop}"
        return text


@dataclass
class ConcurrencyReport:
    files: int = 0
    functions: int = 0
    classes: int = 0
    edges: int = 0
    entries: List[str] = field(default_factory=list)
    auto_entries: List[str] = field(default_factory=list)
    reachable_functions: int = 0
    proven_sites: int = 0
    findings: List[ConcurrencyFinding] = field(default_factory=list)
    unproven: List[Dict[str, object]] = field(default_factory=list)
    latent: List[Dict[str, object]] = field(default_factory=list)
    unresolved: List[Dict[str, object]] = field(default_factory=list)
    audit: List[Dict[str, object]] = field(default_factory=list)
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return (not self.findings and not self.unproven
                and not self.parse_errors)

    def to_dict(self) -> Dict[str, object]:
        return {
            "version": 1,
            "ok": self.ok,
            "files": self.files,
            "functions": self.functions,
            "classes": self.classes,
            "edges": self.edges,
            "entries": list(self.entries),
            "auto_entries": list(self.auto_entries),
            "reachable_functions": self.reachable_functions,
            "proven_sites": self.proven_sites,
            "findings": [f.to_dict() for f in self.findings],
            "unproven": list(self.unproven),
            "latent": list(self.latent),
            "unresolved_edges": list(self.unresolved),
            "audit": list(self.audit),
            "parse_errors": list(self.parse_errors),
        }

    def render(self) -> str:
        lines = [
            f"call graph: {self.files} file(s), {self.functions} "
            f"function(s), {self.classes} class(es), {self.edges} "
            "resolved call edge(s)",
            f"entries: {len(self.entries)} "
            f"({len(self.auto_entries)} auto-detected thread target(s)); "
            f"{self.reachable_functions} function(s) reachable",
            f"latch proof: {self.proven_sites} site/hold-set pair(s) "
            f"proven in-order, {len(self.unproven)} unproven, "
            f"{len(self.unresolved)} unresolved call edge(s) "
            "(fail-open)",
        ]
        for f in self.findings:
            lines.append(f.render())
        for item in self.unproven:
            lines.append(f"{item['path']}:{item['line']}: UNPROVEN "
                         f"{item['reason']} (in {item['function']})")
        if self.parse_errors:
            lines.append(f"{len(self.parse_errors)} parse error(s):")
            lines.extend(f"  {err}" for err in self.parse_errors)
        by_status: Dict[str, int] = {}
        for row in self.audit:
            by_status[str(row["status"])] = \
                by_status.get(str(row["status"]), 0) + 1
        if by_status:
            summary = ", ".join(f"{n} {s}" for s, n in
                                sorted(by_status.items()))
            lines.append(f"shared-state audit: {len(self.audit)} "
                         f"field(s) ({summary})")
        lines.append("concurrency: "
                     + ("clean (all reachable acquisitions proven)"
                        if self.ok else
                        f"{len(self.findings)} finding(s), "
                        f"{len(self.unproven)} unproven site(s)"))
        return "\n".join(lines)


def analyze_paths(paths: Sequence[str],
                  entries: Optional[Sequence[str]] = None,
                  shared_classes: Optional[Sequence[str]] = None,
                  ) -> ConcurrencyReport:
    """Run the full concurrency analysis over ``paths``."""
    contexts, errors = build_contexts(paths)
    graph = build_graph(contexts)
    report = ConcurrencyReport(
        files=len(contexts), functions=len(graph.functions),
        classes=len(graph.classes), edges=graph.edge_count,
        parse_errors=list(errors))

    def _qname(entry: object) -> str:
        return entry[0] if isinstance(entry, tuple) else str(entry)

    wanted = [e for e in (entries if entries is not None
                          else DEFAULT_ENTRIES)
              if _qname(e) in graph.functions]
    for auto in graph.auto_entries:
        if auto not in (_qname(e) for e in wanted):
            wanted.append(auto)
    report.entries = [
        _qname(e) + ("@{" + ",".join(e[1]) + "}"
                     if isinstance(e, tuple) and e[1] else "")
        for e in wanted]
    report.auto_entries = list(graph.auto_entries)

    reach = graph.propagate(wanted)
    report.reachable_functions = len(reach.states)

    order = check_latch_order(graph, reach)
    report.proven_sites = order.proven_sites
    report.unproven = list(order.unproven)
    report.latent = latent_unknown_sites(graph, reach)

    shared = (shared_classes if shared_classes is not None
              else sorted(DEFAULT_SHARED_CLASSES))
    locks = check_locksets(graph, reach, shared)
    report.audit = [row.to_dict() for row in locks.audit]

    ctx_by_path = graph.ctx_by_path
    raw = [ConcurrencyFinding(rule=v.rule, path=v.path, line=v.line,
                              col=0, message=v.message, hint=v.hint,
                              trace=v.trace)
           for v in order.violations]
    raw += [ConcurrencyFinding(rule=r.rule, path=r.path, line=r.line,
                               col=0, message=r.message, hint=r.hint,
                               trace=r.trace)
            for r in locks.races]
    for finding in raw:
        ctx = ctx_by_path.get(finding.path)
        if ctx is not None and ctx.suppressed(finding.rule, finding.line):
            continue
        report.findings.append(finding)
    report.findings.sort(key=lambda f: (f.path, f.line, f.rule))

    report.unresolved = [edge.to_dict() for edge in graph.unresolved]
    return report
