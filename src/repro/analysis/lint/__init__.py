"""Static invariant linter for the repro engine.

See :mod:`repro.analysis.lint.core` for the pass framework and
:mod:`repro.analysis.lint.rules` for the repo-specific rule catalog.
"""

from __future__ import annotations

from repro.analysis.lint.core import (FileContext, Finding, LintReport,
                                      ProjectIndex, Rule, lint_paths)
from repro.analysis.lint.rules import all_rules

__all__ = ["FileContext", "Finding", "LintReport", "ProjectIndex", "Rule",
           "all_rules", "lint_paths"]
