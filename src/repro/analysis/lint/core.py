"""Lint pass framework: files, findings, noqa, and the project index.

The linter is a two-pass stdlib-``ast`` framework:

1. every file on the command line is parsed once into a
   :class:`FileContext`, and a :class:`ProjectIndex` of cross-file
   facts (currently: every class's ``__slots__`` declaration) is
   built, so rules can reason across modules;
2. each rule visits each file's AST and emits :class:`Finding`\\ s.

Suppression: a finding on line N is dropped when line N carries a
``# repro: noqa(RULE1,RULE2)`` comment naming the rule (or a bare
``# repro: noqa`` suppressing every rule). The comment is expected to
be accompanied by a human rationale; the linter does not enforce that,
but ``--strict-noqa`` flags bare (rule-less) suppressions.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

#: matches the ``repro: noqa`` / ``repro: noqa(CLOG001, DET001)`` comment forms
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\(([^)]*)\))?")
#: ``# repro: guarded-by(ENGINE)`` / ``# repro: confined(worker thread)``
_GUARD_RE = re.compile(r"#\s*repro:\s*guarded-by\(([A-Za-z0-9_]+)\)")
_CONFINED_RE = re.compile(r"#\s*repro:\s*confined\(([^)]*)\)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    hint: str = ""

    def render(self, with_hint: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"
        if with_hint and self.hint:
            text += f"\n    hint: {self.hint}"
        return text

    def to_dict(self) -> Dict[str, object]:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "message": self.message, "hint": self.hint}


@dataclass
class ClassFacts:
    """Cross-file facts about one class (for SLOT001)."""

    name: str
    module: str
    #: Declared ``__slots__`` names, or None when the class does not
    #: declare slots (instances get a ``__dict__``).
    slots: Optional[Set[str]]
    #: Base-class names as written (terminal identifier of each base).
    bases: List[str] = field(default_factory=list)


@dataclass
class ProjectIndex:
    """Facts shared across every linted file."""

    #: class name -> facts. Same-name classes in different modules
    #: (e.g. two private ``_Node`` helpers) are merged fail-open: their
    #: slot sets union, so a rule can only under-report on collisions,
    #: never flag an attribute one of the definitions declares.
    classes: Dict[str, ClassFacts] = field(default_factory=dict)

    def record(self, facts: ClassFacts) -> None:
        prior = self.classes.get(facts.name)
        if prior is None:
            self.classes[facts.name] = facts
            return
        merged_slots = (None if prior.slots is None or facts.slots is None
                        else prior.slots | facts.slots)
        self.classes[facts.name] = ClassFacts(
            name=facts.name, module=prior.module, slots=merged_slots,
            bases=list(dict.fromkeys(prior.bases + facts.bases)))

    def slots_closure(self, name: str) -> Optional[Set[str]]:
        """All attribute names instances of ``name`` may carry, or None
        when any class on the MRO is unknown or un-slotted (meaning a
        ``__dict__`` exists and anything goes)."""
        facts = self.classes.get(name)
        if facts is None or facts.slots is None:
            return None
        allowed = set(facts.slots)
        for base in facts.bases:
            if base == "object":
                continue
            base_allowed = self.slots_closure(base)
            if base_allowed is None:
                return None
            allowed |= base_allowed
        return allowed


@dataclass
class FileContext:
    """One parsed source file plus derived lookup tables."""

    path: str
    module: str
    source: str
    tree: ast.Module
    project: ProjectIndex
    #: line number -> suppressed rule ids ("*" = all rules).
    noqa: Dict[int, Set[str]] = field(default_factory=dict)
    #: line number -> guard name from ``# repro: guarded-by(LATCH)``.
    guards: Dict[int, str] = field(default_factory=dict)
    #: line number -> rationale from ``# repro: confined(...)``.
    confined: Dict[int, str] = field(default_factory=dict)
    #: line number -> rule ids that actually suppressed a finding there
    #: (populated by :func:`run_rules`; NOQA001 reads it back).
    used_noqa: Dict[int, Set[str]] = field(default_factory=dict)

    @property
    def in_engine(self) -> bool:
        """Is this file part of the engine source tree (``repro.*``)?"""
        return self.module.startswith("repro")

    def suppressed(self, rule_id: str, line: int) -> bool:
        rules = self.noqa.get(line)
        if rules is not None and ("*" in rules or rule_id in rules):
            self.used_noqa.setdefault(line, set()).add(rule_id)
            return True
        return False


class Rule:
    """Base class for lint rules.

    Subclasses set ``id`` / ``name`` / ``description`` / ``hint`` and
    implement :meth:`check`. ``hint`` is the generic fix-it text shown
    with every finding; :meth:`finding` lets a rule override it per
    site.
    """

    id: str = "RULE000"
    name: str = "unnamed"
    description: str = ""
    hint: str = ""

    def applies_to(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    def post_check(self, contexts: Sequence[FileContext],
                   active_ids: Set[str]) -> Iterable[Finding]:
        """Second phase, run after every per-file rule has finished on
        every file. Rules that need whole-run facts (NOQA001 reads the
        used-noqa map) override this; the default contributes nothing."""
        return ()

    def finding(self, ctx: FileContext, node: ast.AST, message: str,
                hint: Optional[str] = None) -> Finding:
        return Finding(rule=self.id, path=ctx.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       message=message,
                       hint=self.hint if hint is None else hint)


@dataclass
class LintReport:
    """Outcome of one lint run."""

    findings: List[Finding]
    files_checked: int
    parse_errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def render(self) -> str:
        lines = [f.render() for f in self.findings]
        lines.extend(f"parse error: {err}" for err in self.parse_errors)
        lines.append(f"{len(self.findings)} finding(s) in "
                     f"{self.files_checked} file(s)")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# file discovery and parsing
# ----------------------------------------------------------------------
def module_name_for(path: str) -> str:
    """Best-effort dotted module name from a file path: anything under
    a ``repro`` package root maps to ``repro.x.y``; tests map to
    ``tests.x``; everything else gets its bare stem."""
    norm = os.path.normpath(os.path.abspath(path))
    parts = norm.split(os.sep)
    stem = os.path.splitext(parts[-1])[0]
    for anchor in ("repro", "tests"):
        if anchor in parts:
            rel = parts[parts.index(anchor):-1] + [stem]
            if stem == "__init__":
                rel = rel[:-1]
            return ".".join(rel)
    return stem


def iter_python_files(paths: Sequence[str]) -> Iterator[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs
                             if d not in ("__pycache__", ".git"))
            for fname in sorted(files):
                if fname.endswith(".py"):
                    yield os.path.join(root, fname)


def iter_comments(source: str) -> Iterator["tuple[int, str]"]:
    """Yield ``(lineno, comment_text)`` for every real comment token.

    Tokenize-based so ``# repro:`` markers quoted inside string
    literals (rule hints, docstrings) are not mistaken for live
    annotations. Falls back to a line scan when the source does not
    tokenize (the AST parse will have reported the syntax error).
    """
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                yield tok.start[0], tok.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" in line:
                yield lineno, line[line.index("#"):]


def _comment_maps(source: str) -> "tuple[Dict[int, Set[str]], Dict[int, str], Dict[int, str]]":
    """Extract the (noqa, guarded-by, confined) annotation maps."""
    noqa: Dict[int, Set[str]] = {}
    guards: Dict[int, str] = {}
    confined: Dict[int, str] = {}
    for lineno, text in iter_comments(source):
        match = _NOQA_RE.search(text)
        if match is not None:
            rules = match.group(1)
            if rules is None:
                noqa[lineno] = {"*"}
            else:
                noqa[lineno] = {r.strip() for r in rules.split(",")
                                if r.strip()}
        match = _GUARD_RE.search(text)
        if match is not None:
            guards[lineno] = match.group(1)
        match = _CONFINED_RE.search(text)
        if match is not None:
            confined[lineno] = match.group(1).strip()
    return noqa, guards, confined


def _class_facts(module: str, node: ast.ClassDef) -> ClassFacts:
    slots: Optional[Set[str]] = None
    for stmt in node.body:
        if (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and stmt.targets[0].id == "__slots__"):
            slots = set()
            value = stmt.value
            elts = value.elts if isinstance(value, (ast.Tuple, ast.List)) \
                else [value]
            for elt in elts:
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str):
                    slots.add(elt.value)
                else:
                    slots = None  # dynamic slots: fail open
                    break
            break
    if slots is None and _is_slotted_dataclass(node):
        # @dataclass(slots=True): the synthesized __slots__ holds the
        # annotated field names.
        slots = {stmt.target.id for stmt in node.body
                 if isinstance(stmt, ast.AnnAssign)
                 and isinstance(stmt.target, ast.Name)}
    bases = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            bases.append(base.id)
        elif isinstance(base, ast.Attribute):
            bases.append(base.attr)
        else:
            bases.append("?")  # unknown base: closure fails open
    return ClassFacts(name=node.name, module=module, slots=slots, bases=bases)


def _is_slotted_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if (isinstance(deco, ast.Call)
                and isinstance(deco.func, ast.Name)
                and deco.func.id == "dataclass"):
            for kw in deco.keywords:
                if (kw.arg == "slots" and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True):
                    return True
    return False


def build_contexts(paths: Sequence[str]) -> "tuple[List[FileContext], List[str]]":
    """Parse every file and build the shared project index."""
    contexts: List[FileContext] = []
    errors: List[str] = []
    project = ProjectIndex()
    for path in iter_python_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as fh:
                source = fh.read()
            tree = ast.parse(source, filename=path)
        except (OSError, SyntaxError) as exc:
            errors.append(f"{path}: {exc}")
            continue
        noqa, guards, confined = _comment_maps(source)
        ctx = FileContext(path=path, module=module_name_for(path),
                          source=source, tree=tree, project=project,
                          noqa=noqa, guards=guards, confined=confined)
        contexts.append(ctx)
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                project.record(_class_facts(ctx.module, node))
    return contexts, errors


def run_rules(contexts: Sequence[FileContext],
              rules: Sequence[Rule]) -> List[Finding]:
    findings: List[Finding] = []
    for ctx in contexts:
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            for finding in rule.check(ctx):
                if not ctx.suppressed(finding.rule, finding.line):
                    findings.append(finding)
    # Whole-run second phase (NOQA001 audits the used-noqa map filled
    # in above). Post findings honour noqa, but only by *name*: the
    # rotted escape under audit must not be allowed to suppress its
    # own audit finding (a stale bare noqa would otherwise silently
    # excuse itself forever).
    active_ids = {rule.id for rule in rules}
    for rule in rules:
        for finding in rule.post_check(contexts, active_ids):
            ctx = next((c for c in contexts if c.path == finding.path), None)
            if ctx is not None and \
                    finding.rule in ctx.noqa.get(finding.line, set()):
                ctx.used_noqa.setdefault(finding.line,
                                         set()).add(finding.rule)
                continue
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings


def lint_paths(paths: Sequence[str],
               rules: Optional[Sequence[Rule]] = None) -> LintReport:
    """Lint ``paths`` (files or directories) with ``rules`` (default:
    the full catalog from :mod:`repro.analysis.lint.rules`)."""
    if rules is None:
        from repro.analysis.lint.rules import all_rules
        rules = all_rules()
    contexts, errors = build_contexts(paths)
    findings = run_rules(contexts, rules)
    return LintReport(findings=findings, files_checked=len(contexts),
                      parse_errors=errors)
