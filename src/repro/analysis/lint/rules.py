"""Repo-specific lint rules.

Catalog
-------

========  ===========================================================
CLOG001   CLOG status reads outside the visibility layer
DET001    wall-clock / PRNG use inside the deterministic engine
DUR001    page-file writes outside the durability layer
SLOT001   attribute assigned on a slotted class but not declared
LOCK001   private lock-manager state touched from another package
LOCK002   lock acquired with no release path in the same function
CFG001    perf-toggle fast path does simulated-cost accounting
MUT001    mutable default argument
EXC001    bare ``except:``
NOQA001   ``# repro: noqa`` that suppresses nothing (rotted escape)
========  ===========================================================

The interprocedural concurrency rules (LATCH001/LATCH002 latch-rank
proof, RACE001/RACE002 lockset races) live in
:mod:`repro.analysis.concurrency` and run under
``python -m repro.analysis concurrency``; they honour the same noqa
convention but need the whole-project call graph, so they are not part
of the per-file catalog here.

Every rule carries a fix-it hint and honours the
``# repro: noqa(RULE)`` escape hatch (see
:mod:`repro.analysis.lint.core`). Rules that guard engine invariants
(everything except MUT001/EXC001 hygiene) only fire on ``repro.*``
modules -- tests and benchmarks may legitimately poke internals.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint.core import FileContext, Finding, Rule


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Rightmost identifier of a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class ClogDisciplineRule(Rule):
    """CLOG verdicts must flow through the visibility layer.

    PR 2's hint bits cache the CLOG's *final* verdict on a tuple; they
    are sound only if every status read that can stamp or trust a hint
    goes through ``repro.mvcc.visibility``. A raw ``did_commit`` /
    ``did_abort`` / ``in_progress`` / ``clog.status`` call elsewhere
    bypasses hint maintenance and can disagree with a stamped hint.
    """

    id = "CLOG001"
    name = "clog-discipline"
    description = ("CommitLog status read (did_commit/did_abort/in_progress/"
                   "clog.status) outside the visibility layer")
    hint = ("route the check through repro.mvcc.visibility (tuple_visibility/"
            "tuple_is_dead) or add '# repro: noqa(CLOG001)' with a rationale "
            "for why raw status is required (e.g. in-progress waits)")

    #: Modules allowed to read raw CLOG status: the CLOG itself, the
    #: visibility layer, snapshot construction (xip tracking), and the
    #: S2PL baseline's own visibility routine.
    ALLOWED = {"repro.mvcc.clog", "repro.mvcc.visibility",
               "repro.mvcc.snapshot", "repro.s2pl.locking"}
    #: The sanitizers compare hint bits against raw CLOG ground truth;
    #: routing them through the visibility layer would let the code
    #: under test answer for itself.
    ALLOWED_PREFIXES = ("repro.analysis",)

    STATUS_METHODS = {"did_commit", "did_abort", "in_progress"}

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.in_engine and ctx.module not in self.ALLOWED
                and not ctx.module.startswith(self.ALLOWED_PREFIXES))

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            attr = node.func.attr
            if attr in self.STATUS_METHODS:
                yield self.finding(
                    ctx, node,
                    f"raw CLOG status read '{attr}()' outside the "
                    f"visibility layer (module {ctx.module})")
            elif (attr == "status"
                    and _terminal_name(node.func.value) == "clog"):
                yield self.finding(
                    ctx, node,
                    f"raw 'clog.status()' read outside the visibility "
                    f"layer (module {ctx.module})")


class DeterminismRule(Rule):
    """The engine must be deterministic: same seed, same history.

    ``time``/``random`` inside ``src/repro`` breaks replayability of
    recorded histories and the verify-layer's serializability checks.
    Only explicitly allowlisted modules may import them.
    """

    id = "DET001"
    name = "nondeterminism"
    description = "time/random import inside the deterministic engine core"
    hint = ("thread a seeded random.Random or the simulated clock through "
            "instead; if wall-clock/PRNG use is genuinely required, add "
            "'# repro: noqa(DET001)' with a rationale")

    #: module -> why it is allowed to import time/random.
    ALLOWED: Dict[str, str] = {
        "repro.obs.trace": "tracer timestamps are observability-only "
                           "metadata, never fed back into scheduling",
        "repro.locks.manager": "deadlock-detection timers mirror "
                               "PostgreSQL's deadlock_timeout and do not "
                               "affect the logical history",
    }
    #: module prefixes allowed wholesale (the discrete-event simulator
    #: owns all randomness, seeded per run; the schedule explorer's
    #: random walks use seeded Randoms and record every choice).
    ALLOWED_PREFIXES: Tuple[str, ...] = ("repro.sim", "repro.explore")

    BANNED = {"time", "random"}

    #: Modules whose output must be a pure function of schema +
    #: statistics + predicate: besides the time/random import ban,
    #: they may not let object identity (``id()``) or raw dict-view
    #: iteration order drive a choice (plans must replay identically).
    #: (operators: hash-join/hash-agg bucket iteration must not leak
    #: set/dict-view or id() order into result order either.)
    PURE_CHOICE_MODULES: Tuple[str, ...] = ("repro.engine.planner",
                                            "repro.engine.operators",
                                            "repro.engine.batch")

    def applies_to(self, ctx: FileContext) -> bool:
        if not ctx.in_engine or ctx.module in self.ALLOWED:
            return False
        return not ctx.module.startswith(self.ALLOWED_PREFIXES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.module in self.PURE_CHOICE_MODULES:
            yield from self._check_pure_choice(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self.BANNED:
                        yield self.finding(
                            ctx, node,
                            f"'import {alias.name}' in engine module "
                            f"{ctx.module} (not on the determinism "
                            f"allowlist)")
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                root = (node.module or "").split(".")[0]
                if root in self.BANNED:
                    yield self.finding(
                        ctx, node,
                        f"'from {node.module} import ...' in engine module "
                        f"{ctx.module} (not on the determinism allowlist)")

    # -- planner purity: no id()- or dict-order-dependent choice ---------
    def _check_pure_choice(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and func.id == "id":
                    yield self.finding(
                        ctx, node,
                        f"id() in pure-choice module {ctx.module}: plan "
                        f"choice must not depend on object identity")
                elif (isinstance(func, ast.Name)
                        and func.id in ("sorted", "min", "max")
                        and node.args and self._dict_view(node.args[0])):
                    yield self.finding(
                        ctx, node.args[0],
                        f"{func.id}() over a dict view in pure-choice "
                        f"module {ctx.module}: order the candidates by an "
                        f"explicit total-order key instead")
            elif isinstance(node, ast.For) and self._dict_view(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    f"iteration over a dict view in pure-choice module "
                    f"{ctx.module}: plan choice must not depend on dict "
                    f"insertion order")
            elif isinstance(node, ast.comprehension) \
                    and self._dict_view(node.iter):
                yield self.finding(
                    ctx, node.iter,
                    f"comprehension over a dict view in pure-choice module "
                    f"{ctx.module}: plan choice must not depend on dict "
                    f"insertion order")

    @staticmethod
    def _dict_view(expr: ast.expr) -> bool:
        return (isinstance(expr, ast.Call)
                and isinstance(expr.func, ast.Attribute)
                and expr.func.attr in ("values", "items", "keys"))


class DurabilityDisciplineRule(Rule):
    """Page-file writes are owned by the durability layer.

    The WAL-before-data rule is enforced at exactly one choke point:
    ``DurabilityManager._write_back`` flushes WAL through a page's
    recLSN before handing it to ``PageStore.write_page``. A
    ``write_page`` (or raw positioned ``pwrite``) call anywhere else in
    the engine can put a page image on disk whose WAL is not durable --
    the one state ARIES REDO cannot repair. The runtime counterpart is
    the ``durable`` sanitizer's wal-before-data check.
    """

    id = "DUR001"
    name = "durability-discipline"
    description = ("page-file write (write_page/pwrite) outside "
                   "repro.storage.durable")
    hint = ("route the write through DurabilityManager (mark the page "
            "dirty and let writeback/checkpoint persist it), or add "
            "'# repro: noqa(DUR001)' with a rationale for why the "
            "pageLSN rule cannot be violated at this site")

    #: The durability layer owns both entry points.
    ALLOWED_PREFIXES = ("repro.storage.durable",)

    WRITE_METHODS = {"write_page", "pwrite"}

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.in_engine
                and not ctx.module.startswith(self.ALLOWED_PREFIXES))

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr in self.WRITE_METHODS:
                yield self.finding(
                    ctx, node,
                    f"page-file write '{node.func.attr}()' outside the "
                    f"durability layer (module {ctx.module})")


class SlotsConsistencyRule(Rule):
    """No attribute may be assigned on a slotted class undeclared.

    With ``__slots__`` a stray ``self.typo = ...`` raises
    ``AttributeError`` at runtime -- but only on the code path that
    executes it. This catches it statically, resolving inherited slots
    across the project index (including ``@dataclass(slots=True)``).
    """

    id = "SLOT001"
    name = "slots-consistency"
    description = "attribute assigned on a slotted class but not in __slots__"
    hint = ("declare the attribute in the class's __slots__ tuple (or the "
            "dataclass field list), or drop the assignment")

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_engine

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            allowed = ctx.project.slots_closure(cls.name)
            if allowed is None:
                continue  # un-slotted somewhere on the MRO: __dict__ exists
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                for finding in self._check_method(ctx, cls.name, func,
                                                  allowed):
                    yield finding

    def _check_method(self, ctx: FileContext, cls_name: str,
                      func: ast.AST, allowed: Set[str]) -> Iterable[Finding]:
        for node in ast.walk(func):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                elts = target.elts if isinstance(
                    target, (ast.Tuple, ast.List)) else [target]
                for elt in elts:
                    if (isinstance(elt, ast.Attribute)
                            and isinstance(elt.value, ast.Name)
                            and elt.value.id == "self"
                            and not elt.attr.startswith("__")
                            and elt.attr not in allowed):
                        yield self.finding(
                            ctx, elt,
                            f"'self.{elt.attr}' assigned on slotted class "
                            f"{cls_name} but not declared in its __slots__")


class LockEncapsulationRule(Rule):
    """Lock-table internals are owned by their managers.

    The SIREAD cleanup protocol (paper section 4.7) and the
    heavyweight-lock release protocol are only correct if every
    mutation goes through the manager's public methods -- a direct
    ``lockmgr._table[...]`` / ``lockmgr._add(...)`` from another
    package can desynchronize the per-holder indexes the cleanup
    relies on.

    The same discipline covers the server-era latches
    (:mod:`repro.engine.latches`): a latch's condition variable and
    held-stack bookkeeping (``latch._cond``, ``latch._lock``, ...) are
    owned by the latch module -- outside code must go through
    acquire/release/park/bow/notify_all or the rank-order enforcement
    can be bypassed.
    """

    id = "LOCK001"
    name = "lock-encapsulation"
    description = ("private lock-manager or latch state accessed from "
                   "another package")
    hint = ("use the manager's public API (acquire/release_all/iter_locks/"
            "locks_held/... -- for latches: acquire/release/park/bow/"
            "notify_all), or add the operation to the manager as a "
            "public method")

    #: Receiver spellings that denote a lock manager or latch in this
    #: codebase (repro.server names its latches by guarded resource).
    RECEIVERS = {"lockmgr", "lock_manager", "lockmanager",
                 "latch", "latches", "engine_latch", "wire_latch",
                 "conn_latch", "metrics_latch"}
    #: Packages that own lock-manager / latch internals.
    OWNER_PREFIXES = ("repro.locks", "repro.ssi", "repro.engine.latches")

    def applies_to(self, ctx: FileContext) -> bool:
        return (ctx.in_engine
                and not ctx.module.startswith(self.OWNER_PREFIXES))

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Attribute):
                continue
            if (node.attr.startswith("_") and not node.attr.startswith("__")
                    and _terminal_name(node.value) in self.RECEIVERS):
                yield self.finding(
                    ctx, node,
                    f"private lock-manager member "
                    f"'{_terminal_name(node.value)}.{node.attr}' touched "
                    f"from {ctx.module}")


class LockReleasePathRule(Rule):
    """Every in-function ``acquire`` needs a release path.

    A function that acquires a heavyweight lock and never mentions a
    release leaks the lock unless some other protocol (transaction-end
    ``release_all``) covers it -- in which case the site takes a noqa
    stating that protocol.

    Latch acquisitions (repro.engine.latches receivers, including the
    server's wire/conn/metrics latches) are held to the same standard:
    a bare ``latch.acquire()`` with no release in the function is a
    hang waiting for an exception -- use ``with latch:`` instead.
    """

    id = "LOCK002"
    name = "lock-release-path"
    description = ("lock/latch acquire without a release path in the "
                   "same function")
    hint = ("pair the acquire with release/release_all in this function "
            "(try/finally; for latches prefer 'with latch:'), or add "
            "'# repro: noqa(LOCK002)' naming the protocol that releases "
            "it (e.g. held to transaction end, released by release_all "
            "at commit/abort)")

    RECEIVERS = LockEncapsulationRule.RECEIVERS

    def applies_to(self, ctx: FileContext) -> bool:
        # The managers themselves implement acquire; the rule is about
        # call sites in the rest of the engine (including repro.server).
        return (ctx.in_engine
                and not ctx.module.startswith(("repro.locks",
                                               "repro.engine.latches")))

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            acquires = []
            has_release = False
            for node in ast.walk(func):
                if isinstance(node, ast.Attribute):
                    if node.attr.startswith("release"):
                        has_release = True
                    elif (node.attr == "acquire"
                            and _terminal_name(node.value) in self.RECEIVERS):
                        acquires.append(node)
            if has_release:
                continue
            for node in acquires:
                yield self.finding(
                    ctx, node,
                    f"'{func.name}' acquires a lock but has no "
                    f"release/release_all path")


class TogglePurityRule(Rule):
    """Perf-toggle fast paths must not do simulated-cost accounting.

    The paper-faithful cost model charges ``work_units`` per logical
    lock-table operation; the PR 2 fast paths are *supposed* to skip
    that work entirely (that is the optimization being measured). A
    ``work_units`` touch inside a toggle-guarded fast path silently
    re-introduces the cost and invalidates the figure benchmarks.
    """

    id = "CFG001"
    name = "toggle-purity"
    description = ("work_units accounting inside a perf-toggle-guarded "
                   "fast path")
    hint = ("move the accounting out of the fast-path branch -- the toggle "
            "exists to skip that simulated cost; if the charge is genuinely "
            "part of the fast path, add '# repro: noqa(CFG001)' explaining "
            "what it models")

    #: Terminal attribute names that denote a perf toggle in a guard.
    TOGGLES = {"siread_fast_path", "hint_bits", "visibility_map", "fsm",
               "use_hints", "_use_hints", "_use_fsm", "_use_vismap",
               # PR 5 planner toggles: the cost planner and the plan /
               # parse caches must not charge simulated cost either --
               # they exist to skip (re)planning work, not to shift it.
               "cost_planner", "plan_cache", "parse_cache",
               "use_cost", "use_cache", "_use_parse_cache",
               # PR 7: the batch executor amortizes per-tuple dispatch;
               # its fast path must not charge simulated cost either.
               "vectorized_executor", "use_vectorized"}

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_engine

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.If):
                continue
            branch = self._fast_branch(node)
            if branch is None:
                continue
            for stmt in branch:
                for sub in ast.walk(stmt):
                    if (isinstance(sub, (ast.Attribute, ast.Name))
                            and _terminal_name(sub) == "work_units"):
                        yield self.finding(
                            ctx, sub,
                            "work_units touched inside a branch guarded by "
                            f"perf toggle "
                            f"'{self._toggle_name(node.test)}'")
                        break  # one finding per statement is enough

    def _fast_branch(self, node: ast.If) -> Optional[List[ast.stmt]]:
        """Statements executed when the toggle is ON, or None when the
        guard doesn't reference a toggle / polarity is ambiguous."""
        test = node.test
        if self._is_toggle(test):
            return node.body
        if (isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not)
                and self._is_toggle(test.operand)):
            return node.orelse or None
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            if any(self._is_toggle(v) for v in test.values):
                return node.body
        return None

    def _is_toggle(self, expr: ast.expr) -> bool:
        return (isinstance(expr, (ast.Attribute, ast.Name))
                and _terminal_name(expr) in self.TOGGLES)

    def _toggle_name(self, test: ast.expr) -> str:
        for sub in ast.walk(test):
            name = _terminal_name(sub)
            if name in self.TOGGLES:
                return name
        return "?"


class MutableDefaultRule(Rule):
    """Mutable default arguments are shared across calls."""

    id = "MUT001"
    name = "mutable-default"
    description = "mutable default argument"
    hint = "default to None and construct the list/dict/set in the body"

    MUTABLE_CALLS = {"list", "dict", "set"}

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in ast.walk(ctx.tree):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        f"mutable default argument in '{func.name}'")

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self.MUTABLE_CALLS
                and not node.args and not node.keywords)


class BareExceptRule(Rule):
    """``except:`` swallows SanitizerViolation, KeyboardInterrupt, ..."""

    id = "EXC001"
    name = "bare-except"
    description = "bare except clause"
    hint = ("catch a specific exception type; at minimum 'except Exception' "
            "so sanitizer violations and interrupts propagate")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(ctx, node, "bare 'except:' clause")


class UnusedNoqaRule(Rule):
    """A ``# repro: noqa(RULE)`` that suppresses nothing has rotted.

    Suppressions are contracts ("this site is exempt *because* ...");
    when the code they excused is gone the stale comment keeps the
    escape hatch open for whatever lands on that line next. This runs
    as a whole-run post pass over the used-noqa map: a named rule that
    was checked on this run but suppressed nothing is a finding. Rules
    not in the active run set (e.g. RACE001 during a plain lint, which
    only the concurrency analyzer evaluates) are left alone -- another
    command owns them.
    """

    id = "NOQA001"
    name = "unused-noqa"
    description = "noqa annotation that no longer suppresses any finding"
    hint = ("delete the stale '# repro: noqa(...)' comment (or the stale "
            "rule name from its list); if the suppression is owned by "
            "another analysis command, name that command's rule ids only")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def post_check(self, contexts: Sequence[FileContext],
                   active_ids: Set[str]) -> Iterable[Finding]:
        for ctx in contexts:
            for line, named in sorted(ctx.noqa.items()):
                used = ctx.used_noqa.get(line, set())
                if "*" in named:
                    if not used:
                        yield Finding(
                            rule=self.id, path=ctx.path, line=line, col=0,
                            message="bare '# repro: noqa' suppresses "
                                    "nothing on this line",
                            hint=self.hint)
                    continue
                for rule_id in sorted((named & active_ids) - {self.id}
                                      - used):
                    yield Finding(
                        rule=self.id, path=ctx.path, line=line, col=0,
                        message=f"'# repro: noqa({rule_id})' suppresses "
                                f"nothing on this line",
                        hint=self.hint)


def all_rules() -> Sequence[Rule]:
    """The full rule catalog, in catalog order."""
    return (ClogDisciplineRule(), DeterminismRule(),
            DurabilityDisciplineRule(), SlotsConsistencyRule(),
            LockEncapsulationRule(), LockReleasePathRule(),
            TogglePurityRule(), MutableDefaultRule(), BareExceptRule(),
            UnusedNoqaRule())
