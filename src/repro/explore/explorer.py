"""Interleaving enumeration over static programs.

Two exploration strategies over the schedule space of a
:class:`repro.explore.program.Program`:

* :func:`explore_exhaustive` -- depth-first enumeration of *all*
  statement interleavings up to a bound, with sleep-set pruning of
  commuting statement pairs (Godefroid-style partial-order reduction:
  once a branch explored statement ``s`` at a node, sibling branches
  need not re-explore ``s`` until some statement *dependent* with ``s``
  has executed, because the two orders are Mazurkiewicz-equivalent);
* :func:`explore_random` -- seeded random walks for program spaces too
  large to enumerate, with the full choice sequence recorded so any
  failure replays exactly.

Every completed schedule is checked by the differential oracles in
:mod:`repro.explore.oracles`; oracle failures become
:class:`ScheduleFinding` records carrying the exact schedule, which
the shrinker and replay-file machinery consume.

The explorer drives the stock :class:`repro.sim.scheduler.Scheduler`
through its pluggable pick policy, so it exercises the same engine
code paths as the benchmarks -- only the choice of which client steps
next differs.
"""

from __future__ import annotations

import random  # seeded Random only; every walk records its choices
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.engine.isolation import IsolationLevel
from repro.explore.program import Program, Txn, txn_name
from repro.sim import ops
from repro.sim.client import Client
from repro.sim.scheduler import Scheduler
from repro.verify import CheckResult, check_serializable


class ExplorationError(RuntimeError):
    """Internal invariant breach in the explorer itself (e.g. a replayed
    prefix diverged, meaning the engine was nondeterministic)."""


# ---------------------------------------------------------------------------
# step metadata and the independence relation
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class StepMeta:
    """What one scheduler step did, at the granularity the pruning
    relation needs: statement kind plus target table."""

    kind: str
    table: Optional[str] = None


#: Transaction-control steps: ordering against anything else may change
#: snapshot contents, lock release order, or SSI commit ordering.
CONTROL_KINDS = frozenset({"begin", "commit", "abort"})
#: Statement kinds that write (or lock for write).
WRITE_KINDS = frozenset({"insert", "update", "delete", "select_for_update"})
#: Client-local bookkeeping step (transaction handoff): touches no
#: shared engine state at all.
BOUNDARY = StepMeta("boundary")
#: A step during which the transaction aborted (statement failure,
#: failed commit, retry): released locks and SSI state -- treat as
#: dependent with everything.
ABORT_META = StepMeta("abort")


def independent(a: StepMeta, b: StepMeta) -> bool:
    """Conservative Mazurkiewicz independence for two adjacent steps of
    different clients: True only when swapping them provably yields the
    same engine state and the same behaviour of both steps.

    * boundary steps touch only client-local state: independent with
      everything;
    * control steps (begin/commit/abort) are dependent with everything
      (snapshots, lock release, commit ordering);
    * two reads commute even on the same table (SIREAD acquisition is
      idempotent and order-insensitive);
    * anything else on the same table conflicts (tuple placement, lock
      queues, first-committer-wins, SSI conflict edges);
    * statements on disjoint tables commute.
    """
    if a.kind == "boundary" or b.kind == "boundary":
        return True
    if a.kind in CONTROL_KINDS or b.kind in CONTROL_KINDS:
        return False
    if a.table != b.table:
        return True
    return not (a.kind in WRITE_KINDS or b.kind in WRITE_KINDS)


class MetaCell:
    """Mutable holder the compiled program writes its current step's
    metadata into, so the explorer can observe what each scheduler step
    actually executed (guards and retries make this impossible to
    predict statically)."""

    __slots__ = ("meta",)

    def __init__(self) -> None:
        self.meta = StepMeta("begin")


def _txn_factory(cell: MetaCell, txn: Txn, isolation: IsolationLevel):
    """Compile one transaction into a restartable generator factory
    that stamps ``cell.meta`` before every yield."""

    def factory():
        def run():
            cell.meta = StepMeta("begin")
            yield ops.begin(isolation, read_only=txn.read_only)
            results: List[Any] = []
            for stmt in txn.stmts:
                if not stmt.guard_passes(results):
                    results.append(None)
                    continue
                cell.meta = StepMeta(stmt.op, stmt.table)
                results.append((yield stmt.to_op(results)))
            cell.meta = StepMeta("commit")
            yield ops.commit()
            cell.meta = BOUNDARY

        return run()

    return factory


def attach_clients(program: Program, db, scheduler: Scheduler,
                   isolation: IsolationLevel,
                   max_retries: int = 8) -> List[MetaCell]:
    """Register one simulated client per program client; returns the
    per-client metadata cells."""
    cells: List[MetaCell] = []
    for cid, txns in enumerate(program.clients):
        cell = MetaCell()
        queue = [(txn_name(cid, idx), _txn_factory(cell, txn, isolation))
                 for idx, txn in enumerate(txns)]
        queue.reverse()

        def source(queue=queue):
            return queue.pop() if queue else None

        scheduler.add_client(Client(cid, db.session(), source,
                                    max_retries=max_retries))
        cells.append(cell)
    return cells


# ---------------------------------------------------------------------------
# single-schedule execution
# ---------------------------------------------------------------------------
@dataclass
class RunRecord:
    """Everything the oracles need from one executed schedule."""

    schedule: List[int]
    complete: bool          # every client finished (oracles apply)
    pruned: bool            # stopped by sleep-set pruning (covered elsewhere)
    capped: bool            # hit the per-run step bound
    steps: int
    commits: int
    aborts: int
    serialization_failures: int
    committed_txns: Tuple[str, ...]
    check: Optional[CheckResult] = None
    state: Optional[tuple] = None   # canonical final state (hashable)
    error: Optional[str] = None     # stall / sanitizer violation text


def canonical_state(db, program: Program) -> tuple:
    """Hashable snapshot of all committed rows, per table."""
    session = db.session()
    out = []
    for spec in program.tables:
        rows = session.select(spec.name)
        out.append((spec.name,
                    tuple(sorted(tuple(sorted(r.items())) for r in rows))))
    return tuple(out)


def execute_schedule(program: Program, isolation: IsolationLevel, policy, *,
                     max_steps: int = 4000, sanitize: bool = False,
                     max_retries: int = 8, perf=None,
                     analyze: bool = False, db=None) -> RunRecord:
    """Run the program once under ``policy`` (a scheduler pick policy)
    and collect the oracle inputs. The policy's recorded choices are
    read back from its ``choices`` attribute if present. ``perf`` and
    ``analyze`` pass through to :meth:`Program.build_db` (differential
    planner testing). ``db`` substitutes a pre-built database (the
    durability tests run the same schedule on a disk-backed engine)."""
    if db is None:
        db = program.build_db(sanitize=sanitize, perf=perf, analyze=analyze)
    scheduler = Scheduler(db, policy=policy)
    cells = attach_clients(program, db, scheduler, isolation,
                           max_retries=max_retries)
    binder = getattr(policy, "__self__", policy)
    if hasattr(binder, "bind"):
        binder.bind(scheduler.clients, cells)
    error = None
    try:
        scheduler.run(max_steps=max_steps)
    except RuntimeError as exc:            # scheduler stall
        error = f"stall: {exc}"
    except AssertionError as exc:          # sanitizer violation
        error = f"sanitizer: {exc}"
    if hasattr(binder, "finish"):
        binder.finish(error=error is not None)
    complete = error is None and all(c.finished for c in scheduler.clients)
    capped = error is None and not complete and scheduler.steps >= max_steps
    pruned = bool(getattr(binder, "pruned", False))
    committed: List[str] = []
    for client in scheduler.clients:
        committed.extend(client.stats.by_type)
    stats = [c.stats for c in scheduler.clients]
    record = RunRecord(
        schedule=list(getattr(binder, "choices", ())),
        complete=complete, pruned=pruned, capped=capped,
        steps=scheduler.steps,
        commits=sum(s.commits for s in stats),
        aborts=sum(s.aborts for s in stats),
        serialization_failures=sum(s.serialization_failures for s in stats),
        committed_txns=tuple(sorted(committed)),
        error=error)
    if complete:
        # Graph verdict first: the final-state read below appends
        # (harmless) read events to the same recorder.
        record.check = check_serializable(db.recorder)
        record.state = canonical_state(db, program)
    return record


# ---------------------------------------------------------------------------
# findings and reports
# ---------------------------------------------------------------------------
@dataclass
class ScheduleFinding:
    """One interesting (schedule, verdict) pair: an oracle failure, or
    -- under snapshot isolation -- an expected anomaly witness."""

    kind: str               # non-serializable-commit | state-divergence |
                            # stall | sanitizer
    isolation: str
    schedule: List[int]
    detail: str = ""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScheduleFinding({self.kind} under {self.isolation}, "
                f"schedule={self.schedule}, {self.detail})")


@dataclass
class ExplorationReport:
    """Aggregate outcome of one exploration campaign."""

    isolation: IsolationLevel
    strategy: str                     # "exhaustive" | "random"
    schedules_complete: int = 0
    schedules_pruned: int = 0
    schedules_capped: int = 0
    #: True when the DFS enumerated the whole (pruned) schedule tree
    #: without hitting max_schedules.
    exhausted: bool = False
    #: Oracle failures: guarantees of this isolation level violated.
    violations: List[ScheduleFinding] = field(default_factory=list)
    #: Non-serializable committed histories observed where the
    #: isolation level permits them (the SI anomaly witnesses).
    anomalies: List[ScheduleFinding] = field(default_factory=list)
    distinct_states: Set[tuple] = field(default_factory=set)
    errors: List[ScheduleFinding] = field(default_factory=list)

    @property
    def runs(self) -> int:
        return (self.schedules_complete + self.schedules_pruned
                + self.schedules_capped)

    def summary(self) -> str:
        return (f"{self.strategy} exploration under "
                f"{self.isolation.value}: "
                f"{self.schedules_complete} complete schedules "
                f"({self.schedules_pruned} pruned, "
                f"{self.schedules_capped} capped, "
                f"exhausted={self.exhausted}), "
                f"{len(self.distinct_states)} distinct final states, "
                f"{len(self.anomalies)} anomalies, "
                f"{len(self.violations)} violations")


# ---------------------------------------------------------------------------
# exhaustive DFS with sleep sets
# ---------------------------------------------------------------------------
class _Frame:
    """One node of the DFS choice tree (persists across re-executions)."""

    __slots__ = ("choice", "untried", "sleep", "meta")

    def __init__(self, choice: int, untried: List[int],
                 sleep: Set[Tuple[int, StepMeta]]) -> None:
        self.choice = choice
        self.untried = untried
        self.sleep = sleep
        self.meta: Optional[StepMeta] = None


class _DFSDriver:
    """Pick policy for one DFS iteration: replays the frame-stack
    prefix, then extends first-unslept-choice to a leaf, appending new
    frames as it goes."""

    def __init__(self, frames: List[_Frame], prune: bool) -> None:
        self.frames = frames
        self.prune = prune
        self.depth = 0
        self.pruned = False
        self.choices: List[int] = []
        self.current_sleep: Set[Tuple[int, StepMeta]] = set()
        self._clients: Dict[int, Client] = {}
        self._cells: List[MetaCell] = []
        self._pending: Optional[Tuple[_Frame, Client, int]] = None

    def bind(self, clients: List[Client], cells: List[MetaCell]) -> None:
        self._clients = {c.client_id: c for c in clients}
        self._cells = cells

    def pick(self, runnable: List[Client]) -> Optional[Client]:
        self._finalize_pending()
        cids = [c.client_id for c in runnable]
        if self.depth < len(self.frames):
            frame = self.frames[self.depth]
            if frame.choice not in cids:
                raise ExplorationError(
                    f"prefix replay diverged at step {self.depth}: "
                    f"client {frame.choice} not runnable in {cids}")
        else:
            asleep = {cid for cid, _meta in self.current_sleep}
            candidates = [cid for cid in cids if cid not in asleep]
            if not candidates:
                # Every enabled transition is asleep: all completions of
                # this node are Mazurkiewicz-equivalent to schedules the
                # DFS already explored.
                self.pruned = True
                return None
            frame = _Frame(candidates[0], candidates[1:],
                           set(self.current_sleep))
            self.frames.append(frame)
        self.depth += 1
        self.choices.append(frame.choice)
        client = self._clients[frame.choice]
        self._pending = (frame, client, client.stats.aborts)
        return client

    def finish(self, error: bool = False) -> None:
        if error and self._pending is not None:
            frame, _client, _aborts = self._pending
            frame.meta = ABORT_META
            self._pending = None
        self._finalize_pending()

    def _finalize_pending(self) -> None:
        """Observe what the previously picked step actually did, and
        derive the next node's sleep set from it."""
        if self._pending is None:
            return
        frame, client, aborts_before = self._pending
        self._pending = None
        meta = self._cells[client.client_id].meta
        if client.stats.aborts > aborts_before:
            meta = ABORT_META
        frame.meta = meta
        if self.prune:
            self.current_sleep = {entry for entry in frame.sleep
                                  if independent(entry[1], meta)}


def _backtrack(frames: List[_Frame], prune: bool) -> bool:
    """Advance the frame stack to the next unexplored branch; returns
    False when the tree is exhausted."""
    while frames:
        frame = frames[-1]
        if frame.untried:
            if prune:
                frame.sleep.add((frame.choice, frame.meta))
            frame.choice = frame.untried.pop(0)
            frame.meta = None
            return True
        frames.pop()
    return False


def explore_exhaustive(program: Program, isolation: IsolationLevel, *,
                       max_schedules: Optional[int] = None,
                       max_steps_per_run: int = 4000,
                       prune: bool = True,
                       sanitize: bool = False,
                       serial_oracle: bool = True,
                       perm_limit: int = 5,
                       max_retries: int = 8) -> ExplorationReport:
    """Enumerate all interleavings (up to the bounds) depth-first.

    Each iteration re-executes the program from scratch along the
    current choice prefix -- stateless model checking; the engine is
    deterministic, so replaying a prefix always reaches the same state.
    """
    from repro.explore.oracles import apply_oracles
    report = ExplorationReport(isolation=isolation, strategy="exhaustive")
    frames: List[_Frame] = []
    serial_cache: Dict = {}
    while True:
        driver = _DFSDriver(frames, prune=prune)
        record = execute_schedule(program, isolation, driver.pick,
                                  max_steps=max_steps_per_run,
                                  sanitize=sanitize,
                                  max_retries=max_retries)
        if record.error is not None:
            kind = record.error.split(":", 1)[0]
            report.errors.append(ScheduleFinding(
                kind, isolation.value, record.schedule, record.error))
            report.violations.append(ScheduleFinding(
                kind, isolation.value, record.schedule, record.error))
        elif record.pruned:
            report.schedules_pruned += 1
        elif record.capped:
            report.schedules_capped += 1
        elif record.complete:
            report.schedules_complete += 1
            apply_oracles(report, program, isolation, record,
                          serial_cache, serial_oracle=serial_oracle,
                          perm_limit=perm_limit)
        if max_schedules is not None and report.runs >= max_schedules:
            break
        if not _backtrack(frames, prune):
            report.exhausted = True
            break
    return report


# ---------------------------------------------------------------------------
# seeded random exploration
# ---------------------------------------------------------------------------
class _RandomDriver:
    """Seeded random pick policy that records its choices."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.choices: List[int] = []
        self.pruned = False

    def pick(self, runnable: List[Client]) -> Optional[Client]:
        client = self.rng.choice(runnable)
        self.choices.append(client.client_id)
        return client


def explore_random(program: Program, isolation: IsolationLevel, *,
                   trials: int, seed: int = 0,
                   max_steps_per_run: int = 4000,
                   sanitize: bool = False,
                   serial_oracle: bool = True,
                   perm_limit: int = 5,
                   max_retries: int = 8) -> ExplorationReport:
    """Sample ``trials`` random schedules; every run's full choice
    sequence is recorded, so seed + trial index (or the schedule in any
    finding) replays it exactly."""
    from repro.explore.oracles import apply_oracles
    report = ExplorationReport(isolation=isolation, strategy="random")
    serial_cache: Dict = {}
    for trial in range(trials):
        driver = _RandomDriver(seed * 1_000_003 + trial)
        record = execute_schedule(program, isolation, driver.pick,
                                  max_steps=max_steps_per_run,
                                  sanitize=sanitize,
                                  max_retries=max_retries)
        if record.error is not None:
            kind = record.error.split(":", 1)[0]
            report.errors.append(ScheduleFinding(
                kind, isolation.value, record.schedule, record.error))
            report.violations.append(ScheduleFinding(
                kind, isolation.value, record.schedule, record.error))
        elif record.capped:
            report.schedules_capped += 1
        elif record.complete:
            report.schedules_complete += 1
            apply_oracles(report, program, isolation, record,
                          serial_cache, serial_oracle=serial_oracle,
                          perm_limit=perm_limit)
    return report
