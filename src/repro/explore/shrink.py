"""Delta-debugging shrinker: minimize a failing (program, schedule).

Given a program whose interleaving space contains a failure (an SI
anomaly witness or an oracle violation), the shrinker greedily removes
whole clients, then whole transactions, then individual statements --
re-exploring each candidate with a bounded exhaustive search to decide
whether the failure survives -- until the program is 1-minimal: no
single removal preserves the failure. The companion schedule is not
shrunk positionally (statement removal invalidates recorded positions);
instead the minimal program is re-explored and the DFS's first failing
schedule, which is lexicographically earliest, becomes the witness.

This is the classic ddmin shape specialized to structured programs:
removal candidates are semantic units (client / transaction /
statement) rather than line ranges, which converges in few probes and
never produces syntactically invalid intermediate programs.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.engine.isolation import IsolationLevel
from repro.explore.explorer import (ExplorationReport, ScheduleFinding,
                                    explore_exhaustive)
from repro.explore.program import Program
from repro.explore.replay import Replay


def _clone(program: Program) -> Program:
    return Program.from_dict(program.to_dict())


def explore_predicate(isolation: IsolationLevel, *,
                      kinds: Optional[Tuple[str, ...]] = None,
                      max_schedules: int = 400,
                      max_steps_per_run: int = 2000,
                      perm_limit: int = 4
                      ) -> Callable[[Program], Optional[ScheduleFinding]]:
    """Failure predicate for :func:`shrink_program`: bounded exhaustive
    exploration; the program "fails" when it yields any anomaly or
    violation (optionally restricted to the given finding kinds).
    Returns the first matching finding, or None."""

    def probe(program: Program) -> Optional[ScheduleFinding]:
        report = explore_exhaustive(
            program, isolation, max_schedules=max_schedules,
            max_steps_per_run=max_steps_per_run, perm_limit=perm_limit)
        for finding in report.anomalies + report.violations:
            if kinds is None or finding.kind in kinds:
                return finding
        return None

    return probe


def _drop_client(program: Program, cid: int) -> Program:
    out = _clone(program)
    del out.clients[cid]
    return out


def _drop_txn(program: Program, cid: int, tid: int) -> Program:
    out = _clone(program)
    del out.clients[cid][tid]
    if not out.clients[cid]:
        del out.clients[cid]
    return out


def _drop_stmt(program: Program, cid: int, tid: int, sid: int) -> Program:
    out = _clone(program)
    txn = out.clients[cid][tid]
    del txn.stmts[sid]
    # Guards and $refs index into the statement list; drop any
    # statement whose back-reference just dangled or shifted.
    for stmt in txn.stmts:
        if stmt.guard is not None and stmt.guard["stmt"] >= sid:
            stmt.guard = None if stmt.guard["stmt"] == sid else {
                **stmt.guard, "stmt": stmt.guard["stmt"] - 1}
    if not txn.stmts:
        del out.clients[cid][tid]
        if not out.clients[cid]:
            del out.clients[cid]
    return out


def _references_ok(program: Program) -> bool:
    """Reject candidates whose $ref dataflow dangles after a removal."""
    for txns in program.clients:
        for txn in txns:
            for idx, stmt in enumerate(txn.stmts):
                for value in _ref_values(stmt):
                    target = value["$ref"]["stmt"]
                    if not (0 <= target < idx):
                        return False
                    if txn.stmts[target].op not in ("select",
                                                    "select_for_update"):
                        return False
    return True


def _ref_values(stmt) -> List[dict]:
    values = []
    for container in (stmt.row, stmt.set):
        if container:
            values.extend(v for v in container.values()
                          if isinstance(v, dict) and "$ref" in v)
    if stmt.where:
        values.extend(v for v in stmt.where
                      if isinstance(v, dict) and "$ref" in v)
    return values


def shrink_program(program: Program,
                   fails: Callable[[Program], Optional[ScheduleFinding]]
                   ) -> Program:
    """Greedy structural ddmin to a 1-minimal failing program."""
    current = program
    changed = True
    while changed:
        changed = False
        # Pass 1: whole clients.
        cid = 0
        while cid < len(current.clients) and len(current.clients) > 1:
            candidate = _drop_client(current, cid)
            if fails(candidate) is not None:
                current = candidate
                changed = True
            else:
                cid += 1
        # Pass 2: whole transactions.
        cid = 0
        while cid < len(current.clients):
            tid = 0
            while tid < len(current.clients[cid]):
                if current.txn_count() <= 1:
                    break
                candidate = _drop_txn(current, cid, tid)
                if fails(candidate) is not None:
                    current = candidate
                    changed = True
                    if cid >= len(current.clients):
                        break
                else:
                    tid += 1
            cid += 1
        # Pass 3: individual statements.
        cid = 0
        while cid < len(current.clients):
            tid = 0
            while tid < len(current.clients[cid]):
                sid = 0
                while sid < len(current.clients[cid][tid].stmts):
                    candidate = _drop_stmt(current, cid, tid, sid)
                    if (_references_ok(candidate)
                            and fails(candidate) is not None):
                        current = candidate
                        changed = True
                        if (cid >= len(current.clients)
                                or tid >= len(current.clients[cid])):
                            break
                    else:
                        sid += 1
                else:
                    tid += 1
                    continue
                break
            cid += 1
    return current


def shrink_to_replay(program: Program, isolation: IsolationLevel, *,
                     kinds: Optional[Tuple[str, ...]] = None,
                     max_schedules: int = 400,
                     max_steps_per_run: int = 2000,
                     description: str = ""
                     ) -> Optional[Tuple[Replay, ScheduleFinding]]:
    """Shrink and package: minimize the program, re-find the earliest
    failing schedule, and return it as a loadable replay (None when the
    original program does not fail within the bounds)."""
    fails = explore_predicate(isolation, kinds=kinds,
                              max_schedules=max_schedules,
                              max_steps_per_run=max_steps_per_run)
    if fails(program) is None:
        return None
    minimal = shrink_program(program, fails)
    finding = fails(minimal)
    expect = {"anomaly": True, "serializable_aborts": True,
              "s2pl_serializable": True}
    if isolation in (IsolationLevel.SERIALIZABLE, IsolationLevel.S2PL):
        # A violation of a serializable level is a bug reproducer, not
        # an expected anomaly.
        expect = {}
    replay = Replay(program=minimal, isolation=isolation,
                    schedule=list(finding.schedule), expect=expect,
                    description=description or
                    f"shrunk {finding.kind} witness under {isolation.value}")
    return replay, finding
