"""CLI: explore interleavings, replay pinned schedules, shrink failures.

    python -m repro.explore explore --program write_skew --isolation si
    python -m repro.explore random --program batch_processing --trials 200
    python -m repro.explore replay tests/explore_corpus/write_skew.json
    python -m repro.explore shrink --program write_skew_3 -o minimal.json
    python -m repro.explore sweep --out-dir artifacts/

Exit status is nonzero when an oracle violation is found (explore,
sweep), an expectation fails to reproduce (replay), or no failure
exists to shrink (shrink) -- so every subcommand is CI-gateable as-is.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.engine.isolation import IsolationLevel
from repro.explore.corpus import BUILTIN_PROGRAMS, builtin
from repro.explore.explorer import (ExplorationReport, explore_exhaustive,
                                    explore_random)
from repro.explore.oracles import differential_explore, vacuity_findings
from repro.explore.program import Program
from repro.explore.replay import (Replay, load_replay, run_replay,
                                  save_replay)
from repro.explore.shrink import shrink_to_replay

ISOLATION_NAMES = {
    "rc": IsolationLevel.READ_COMMITTED,
    "si": IsolationLevel.REPEATABLE_READ,
    "repeatable_read": IsolationLevel.REPEATABLE_READ,
    "serializable": IsolationLevel.SERIALIZABLE,
    "ssi": IsolationLevel.SERIALIZABLE,
    "s2pl": IsolationLevel.S2PL,
}


def _isolation(name: str) -> IsolationLevel:
    try:
        return ISOLATION_NAMES[name.lower()]
    except KeyError:
        raise SystemExit(f"unknown isolation {name!r}; "
                         f"choose from {', '.join(sorted(ISOLATION_NAMES))}")


def _load_program(args) -> Program:
    if args.program_file:
        with open(args.program_file) as fp:
            d = json.load(fp)
        # Accept either a bare program or a full replay file.
        return Program.from_dict(d.get("program", d))
    return builtin(args.program)


def _program_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--program", default="write_skew",
                        choices=sorted(BUILTIN_PROGRAMS),
                        help="builtin program (default: write_skew)")
    parser.add_argument("--program-file", metavar="FILE",
                        help="load the program from a JSON file instead")
    parser.add_argument("--sanitize", action="store_true",
                        help="run with all runtime sanitizers on")
    parser.add_argument("--max-steps", type=int, default=4000,
                        help="per-schedule step bound (default 4000)")


def _print_report(report: ExplorationReport, verbose: bool) -> None:
    print(report.summary())
    findings = report.violations + (report.anomalies if verbose else [])
    for finding in findings[:20]:
        print(f"  {finding.kind} under {finding.isolation}: "
              f"schedule={finding.schedule} {finding.detail}")


def _cmd_explore(args) -> int:
    program = _load_program(args)
    if args.differential:
        reports = differential_explore(
            program, max_schedules=args.max_schedules,
            max_steps_per_run=args.max_steps, prune=not args.no_prune,
            sanitize=args.sanitize, perm_limit=args.perm_limit)
        for report in reports.values():
            _print_report(report, args.verbose)
        problems = vacuity_findings(reports)
        for finding in problems:
            print(f"PROBLEM: {finding.kind} under {finding.isolation}: "
                  f"{finding.detail}")
        return 1 if problems else 0
    report = explore_exhaustive(
        program, _isolation(args.isolation),
        max_schedules=args.max_schedules,
        max_steps_per_run=args.max_steps, prune=not args.no_prune,
        sanitize=args.sanitize, perm_limit=args.perm_limit)
    _print_report(report, args.verbose)
    return 1 if report.violations else 0


def _cmd_random(args) -> int:
    program = _load_program(args)
    report = explore_random(
        program, _isolation(args.isolation), trials=args.trials,
        seed=args.seed, max_steps_per_run=args.max_steps,
        sanitize=args.sanitize, perm_limit=args.perm_limit)
    _print_report(report, args.verbose)
    return 1 if report.violations else 0


def _cmd_replay(args) -> int:
    failed = False
    for path in args.files:
        replay = load_replay(path)
        print(f"{path}: {replay.description or '(no description)'}")
        levels = [replay.isolation]
        if args.all_levels:
            for level in (IsolationLevel.SERIALIZABLE, IsolationLevel.S2PL):
                if level is not replay.isolation:
                    levels.append(level)
        for level in levels:
            result = run_replay(replay, level, sanitize=not args.no_sanitize)
            print(f"  {result.summary()}")
            if not result.ok:
                failed = True
    return 1 if failed else 0


def _cmd_shrink(args) -> int:
    program = _load_program(args)
    before = (program.txn_count(), program.stmt_count())
    shrunk = shrink_to_replay(
        program, _isolation(args.isolation),
        max_schedules=args.max_schedules,
        max_steps_per_run=args.max_steps)
    if shrunk is None:
        print("no failure found within the exploration bounds; "
              "nothing to shrink")
        return 1
    replay, finding = shrunk
    after = (replay.program.txn_count(), replay.program.stmt_count())
    print(f"shrunk {before[0]} txns / {before[1]} stmts -> "
          f"{after[0]} txns / {after[1]} stmts; "
          f"witness: {finding.kind} schedule={finding.schedule}")
    if args.output:
        save_replay(args.output, replay)
        print(f"wrote {args.output}")
    else:
        print(json.dumps(replay.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_sweep(args) -> int:
    """Bounded differential sweep over every builtin program: the CI
    gate. SSI and S2PL must commit zero non-serializable histories;
    SI must produce at least one anomaly per program. On failure the
    shrunken counterexamples are written to --out-dir."""
    failed = False
    for name in sorted(BUILTIN_PROGRAMS):
        if args.programs and name not in args.programs:
            continue
        program = builtin(name)
        reports = differential_explore(
            program, max_schedules=args.max_schedules,
            max_steps_per_run=args.max_steps, sanitize=not args.no_sanitize,
            perm_limit=args.perm_limit)
        problems = vacuity_findings(reports)
        for report in reports.values():
            print(f"{name}: {report.summary()}")
        if problems:
            failed = True
            for finding in problems:
                print(f"{name}: PROBLEM {finding.kind} under "
                      f"{finding.isolation}: {finding.detail}")
            _emit_counterexamples(name, program, reports, args.out_dir)
    print("sweep: " + ("FAIL" if failed else "ok"))
    return 1 if failed else 0


def _emit_counterexamples(name: str, program: Program, reports,
                          out_dir: Optional[str]) -> None:
    """Shrink each violated level's failure and write it as a replay
    artifact (best effort -- the unshrunk witness is still printed)."""
    if not out_dir:
        return
    os.makedirs(out_dir, exist_ok=True)
    for isolation, report in reports.items():
        if not report.violations:
            continue
        kinds = tuple({f.kind for f in report.violations})
        shrunk = shrink_to_replay(program, isolation, kinds=kinds,
                                  description=f"sweep failure in {name}")
        if shrunk is None:
            continue
        replay, _finding = shrunk
        path = os.path.join(out_dir, f"{name}.{isolation.value}.json")
        save_replay(path, replay)
        print(f"{name}: wrote counterexample {path}")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.explore",
        description="schedule exploration, replay, and shrinking")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("explore", help="exhaustive interleaving enumeration")
    _program_options(p)
    p.add_argument("--isolation", default="si")
    p.add_argument("--max-schedules", type=int, default=20000)
    p.add_argument("--perm-limit", type=int, default=5)
    p.add_argument("--no-prune", action="store_true",
                   help="disable sleep-set partial-order reduction")
    p.add_argument("--differential", action="store_true",
                   help="explore under SI, SSI and S2PL and cross-check")
    p.add_argument("-v", "--verbose", action="store_true",
                   help="also print anomaly witnesses")
    p.set_defaults(fn=_cmd_explore)

    p = sub.add_parser("random", help="seeded random schedule sampling")
    _program_options(p)
    p.add_argument("--isolation", default="si")
    p.add_argument("--trials", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--perm-limit", type=int, default=5)
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(fn=_cmd_random)

    p = sub.add_parser("replay", help="re-execute pinned replay files")
    p.add_argument("files", nargs="+", metavar="FILE")
    p.add_argument("--all-levels", action="store_true",
                   help="also replay under SERIALIZABLE and S2PL")
    p.add_argument("--no-sanitize", action="store_true")
    p.set_defaults(fn=_cmd_replay)

    p = sub.add_parser("shrink", help="minimize a failing program")
    _program_options(p)
    p.add_argument("--isolation", default="si")
    p.add_argument("--max-schedules", type=int, default=400)
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the shrunken replay file here")
    p.set_defaults(fn=_cmd_shrink)

    p = sub.add_parser("sweep", help="differential sweep over the corpus "
                       "(the CI gate)")
    p.add_argument("--programs", nargs="*", metavar="NAME",
                   help="restrict to these builtin programs")
    p.add_argument("--max-schedules", type=int, default=20000)
    p.add_argument("--max-steps", type=int, default=4000)
    p.add_argument("--perm-limit", type=int, default=5)
    p.add_argument("--no-sanitize", action="store_true")
    p.add_argument("--out-dir", metavar="DIR",
                   help="write shrunken counterexample replays here")
    p.set_defaults(fn=_cmd_sweep)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
