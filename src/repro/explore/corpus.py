"""The paper's canonical anomaly programs, as explorable data.

Each builder returns a :class:`repro.explore.program.Program` whose
interleaving space contains the corresponding snapshot-isolation
anomaly; the explorer finds it, the shrinker minimizes it, and the
checked-in replay files under tests/explore_corpus/ pin one witness
schedule per program forever.

* :func:`write_skew` -- section 2.1.1 / Figure 1: the doctors on-call
  write skew (disjoint writes guarded by overlapping reads);
* :func:`batch_processing` -- section 2.2 / Figure 2: receipt inserted
  into a batch a concurrent report already closed over (three
  transactions, one read-only);
* :func:`receipt_report` -- the receipt example reduced to phantoms:
  two transactions whose predicate reads each miss the other's insert,
  a write skew carried entirely by index-gap/phantom dependencies;
* :func:`read_only_anomaly` -- Fekete, O'Neil & O'Neil's read-only
  transaction anomaly: the two-writer sub-history is serializable and
  only the read-only observer makes the execution non-serializable.
* :func:`phantom_under_join` -- a reporting join (orders x customers)
  whose order-side predicate read races a concurrent insert: the
  reporter writes a total derived from join inputs that are missing a
  phantom row, the teller's insert is guarded by a read the reporter's
  write invalidates;
* :func:`write_skew_via_aggregate` -- write skew carried by an
  aggregate (COUNT over a predicate read): two clients each admit a
  new expense only if the department's expense count is under budget,
  and under SI both see the same count and both insert.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.explore.program import Program, Stmt, TableSpec, Txn, add, ref


def write_skew(n_clients: int = 2, recheck: bool = False) -> Program:
    """Doctors on-call: every client checks >= 2 doctors are on call,
    then takes itself off call. ``recheck`` appends a (futile) re-read
    of the roster, growing the statement count for shrinker tests."""
    tables = [TableSpec(
        name="doctors", columns=["name", "oncall"], key="name",
        rows=[{"name": f"doc{i}", "oncall": True}
              for i in range(n_clients)])]
    clients = []
    for i in range(n_clients):
        stmts = [
            Stmt("select", "doctors", where=["eq", "oncall", True]),
            Stmt("update", "doctors", where=["eq", "name", f"doc{i}"],
                 set={"oncall": False},
                 guard={"stmt": 0, "min_rows": 2}),
        ]
        if recheck:
            stmts.append(Stmt("select", "doctors",
                              where=["eq", "oncall", True]))
        clients.append([Txn(stmts)])
    return Program(tables=tables, clients=clients)


def batch_processing() -> Program:
    """Figure 2: NEW-RECEIPT (client 0) reads the current batch and
    inserts a receipt into it; CLOSE-BATCH (client 1) increments the
    batch number; REPORT (client 2, read-only) sums the receipts of the
    just-closed batch. The anomalous interleaving commits a receipt
    into a batch whose report already ran."""
    tables = [
        TableSpec(name="control", columns=["id", "batch"], key="id",
                  rows=[{"id": 0, "batch": 1}]),
        TableSpec(name="receipts", columns=["rid", "batch", "amount"],
                  key="rid", indexes=["batch"],
                  rows=[{"rid": 0, "batch": 0, "amount": 5}]),
    ]
    new_receipt = Txn([
        Stmt("select", "control", where=["eq", "id", 0]),
        Stmt("insert", "receipts",
             row={"rid": 1, "batch": ref(0, "batch"), "amount": 10}),
    ])
    close_batch = Txn([
        Stmt("update", "control", where=["eq", "id", 0],
             set={"batch": add("batch", 1)}),
    ])
    report = Txn([
        Stmt("select", "control", where=["eq", "id", 0]),
        Stmt("select", "receipts", where=["eq", "batch", ref(0, "batch", -1)]),
    ], read_only=True)
    return Program(tables=tables,
                   clients=[[new_receipt], [close_batch], [report]])


def receipt_report() -> Program:
    """Write skew through phantoms only: the reporter counts the
    receipts of batch 1 and inserts a summary row; the teller inserts a
    new batch-1 receipt and checks no summary exists yet. Each
    predicate read misses the other transaction's insert."""
    tables = [
        TableSpec(name="receipts", columns=["rid", "batch", "amount"],
                  key="rid", indexes=["batch"],
                  rows=[{"rid": 0, "batch": 1, "amount": 5}]),
        TableSpec(name="totals", columns=["batch", "total"], key="batch"),
    ]
    reporter = Txn([
        Stmt("select", "receipts", where=["eq", "batch", 1]),
        Stmt("insert", "totals", row={"batch": 1, "total": 5}),
    ])
    teller = Txn([
        Stmt("select", "totals", where=["eq", "batch", 1]),
        Stmt("insert", "receipts", row={"rid": 1, "batch": 1, "amount": 10}),
    ])
    return Program(tables=tables, clients=[[reporter], [teller]])


def read_only_anomaly() -> Program:
    """Fekete et al.'s read-only transaction anomaly over a savings (x)
    and checking (y) pair: WITHDRAW (client 0) reads both and debits x
    with an overdraft penalty; DEPOSIT (client 1) credits y; REPORT
    (client 2, read-only) observes the deposit but not the withdrawal.
    Without the report, <WITHDRAW, DEPOSIT> is a serializable order;
    the read-only observer creates the cycle."""
    tables = [TableSpec(
        name="acct", columns=["id", "bal"], key="id",
        rows=[{"id": "x", "bal": 0}, {"id": "y", "bal": 0}])]
    withdraw = Txn([
        Stmt("select", "acct", where=["eq", "id", "x"]),
        Stmt("select", "acct", where=["eq", "id", "y"]),
        Stmt("update", "acct", where=["eq", "id", "x"],
             set={"bal": add("bal", -11)}),
    ])
    deposit = Txn([
        Stmt("update", "acct", where=["eq", "id", "y"],
             set={"bal": add("bal", 20)}),
    ])
    report = Txn([
        Stmt("select", "acct", where=["eq", "id", "x"]),
        Stmt("select", "acct", where=["eq", "id", "y"]),
    ], read_only=True)
    return Program(tables=tables, clients=[[withdraw], [deposit], [report]])


def phantom_under_join() -> Program:
    """Phantom under a reporting join. The reporter runs the two base
    scans of ``orders JOIN customers ON cid`` (the SQL layer's join
    reads exactly these inputs) and records the joined total on the
    customer row; the teller checks the recorded total is still unset
    and inserts a new order. Each side's predicate read misses the
    other's write: the reporter's order scan misses the teller's
    phantom order, the teller's customer read misses the reporter's
    total. SI commits both -- a total that never matched any state of
    the join; SSI's index-gap/relation SIREAD locks on the order scan
    catch the rw-antidependency pair."""
    tables = [
        TableSpec(name="customers", columns=["cid", "region", "total"],
                  key="cid",
                  rows=[{"cid": 1, "region": "north", "total": 0}]),
        TableSpec(name="orders", columns=["oid", "cid", "amount"],
                  key="oid", indexes=["cid"],
                  rows=[{"oid": 0, "cid": 1, "amount": 5}]),
    ]
    reporter = Txn([
        Stmt("select", "orders", where=["eq", "cid", 1]),
        Stmt("select", "customers", where=["eq", "cid", 1]),
        # 5 = the joined order total of the snapshot the reporter saw
        # (a literal so the shrinker may drop either read independently).
        Stmt("update", "customers", where=["eq", "cid", 1],
             set={"total": 5}, guard={"stmt": 0, "min_rows": 1}),
    ])
    teller = Txn([
        Stmt("select", "customers", where=["eq", "cid", 1]),
        Stmt("insert", "orders",
             row={"oid": 1, "cid": 1, "amount": 10},
             guard={"stmt": 0, "min_rows": 1}),
    ])
    return Program(tables=tables, clients=[[reporter], [teller]])


def write_skew_via_aggregate() -> Program:
    """Write skew carried by an aggregate: each client counts the
    department's expenses (the COUNT(*) the SQL layer folds during the
    scan) and admits one new expense only while the count is within
    budget (at most one existing row). Under SI both clients aggregate
    the same snapshot, both pass the guard, and the department ends two
    expenses over a budget either serial order would have enforced."""
    tables = [TableSpec(
        name="expenses", columns=["eid", "dept", "amount"], key="eid",
        indexes=["dept"],
        rows=[{"eid": 0, "dept": "eng", "amount": 60}])]
    clients = []
    for i in (1, 2):
        clients.append([Txn([
            Stmt("select", "expenses", where=["eq", "dept", "eng"]),
            Stmt("insert", "expenses",
                 row={"eid": i, "dept": "eng", "amount": 25},
                 guard={"stmt": 0, "max_rows": 1}),
        ])])
    return Program(tables=tables, clients=clients)


def cross_shard_write_skew() -> Program:
    """Write skew whose two rw-antidependency edges live on *different*
    shards of a 2-shard deployment (repro.shard): the two accounts are
    chosen so the hash partitioner places them on shard 0 and shard 1.
    Each client reads both accounts and debits its own, so each shard
    sees exactly one edge of the cycle and neither branch ever carries
    both conflict flags -- per-shard SSI plus 2PC commits the anomaly
    ("A Critique of Snapshot Isolation"'s cross-node write skew), and
    only the coordinator-level exchange of branch conflict summaries
    (the GlobalCertifier) can doom the pivot. On one shard it is plain
    Figure-1 write skew and local SSI catches it."""
    from repro.shard.partition import shard_for
    acct_a = next(i for i in range(64) if shard_for(i, 2) == 0)
    acct_b = next(i for i in range(64) if shard_for(i, 2) == 1)
    tables = [TableSpec(
        name="accounts", columns=["id", "bal"], key="id",
        rows=[{"id": acct_a, "bal": 50}, {"id": acct_b, "bal": 50}])]
    clients = []
    for own in (acct_a, acct_b):
        clients.append([Txn([
            Stmt("select", "accounts", where=["eq", "id", acct_a]),
            Stmt("select", "accounts", where=["eq", "id", acct_b]),
            # Withdraw against the *combined* balance: legal only while
            # both reads still see a row (joint funds >= the debit).
            Stmt("update", "accounts", where=["eq", "id", own],
                 set={"bal": add("bal", -90)},
                 guard={"stmt": 0 if own == acct_b else 1, "min_rows": 1}),
        ])])
    return Program(tables=tables, clients=clients)


#: name -> zero-argument builder (the CLI's --program registry).
BUILTIN_PROGRAMS: Dict[str, Callable[[], Program]] = {
    "write_skew": write_skew,
    "write_skew_3": lambda: write_skew(n_clients=3),
    "batch_processing": batch_processing,
    "receipt_report": receipt_report,
    "read_only_anomaly": read_only_anomaly,
    "phantom_under_join": phantom_under_join,
    "write_skew_via_aggregate": write_skew_via_aggregate,
    "cross_shard_write_skew": cross_shard_write_skew,
}


def builtin(name: str) -> Program:
    try:
        return BUILTIN_PROGRAMS[name]()
    except KeyError:
        raise ValueError(
            f"unknown builtin program {name!r}; "
            f"available: {', '.join(sorted(BUILTIN_PROGRAMS))}") from None
