"""repro.explore: schedule exploration for the SSI engine.

A stateless model checker over the simulator: enumerate (or sample)
the statement interleavings of small multi-client transaction
programs, judge every completed schedule with differential oracles
(Adya-graph acyclicity, serial-execution final states, cross-isolation
differencing), shrink failures to minimal reproducers, and pin them as
JSON replay files.

    python -m repro.explore explore --program write_skew
    python -m repro.explore replay tests/explore_corpus/write_skew.json
    python -m repro.explore shrink --program write_skew_3 -o min.json

See DESIGN.md, "Schedule exploration".
"""

from repro.explore.corpus import (BUILTIN_PROGRAMS, batch_processing,
                                  builtin, read_only_anomaly,
                                  receipt_report, write_skew)
from repro.explore.explorer import (ExplorationError, ExplorationReport,
                                    RunRecord, ScheduleFinding, StepMeta,
                                    canonical_state, execute_schedule,
                                    explore_exhaustive, explore_random,
                                    independent)
from repro.explore.oracles import (SERIALIZABLE_LEVELS, apply_oracles,
                                   differential_explore, serial_states,
                                   vacuity_findings)
from repro.explore.program import (Program, Stmt, TableSpec, Txn, add, ref,
                                   txn_name)
from repro.explore.replay import (FixedSchedulePolicy, Replay, ReplayResult,
                                  load_replay, run_replay, save_replay)
from repro.explore.shrink import (explore_predicate, shrink_program,
                                  shrink_to_replay)

__all__ = [
    "BUILTIN_PROGRAMS", "ExplorationError", "ExplorationReport",
    "FixedSchedulePolicy", "Program", "Replay", "ReplayResult", "RunRecord",
    "SERIALIZABLE_LEVELS", "ScheduleFinding", "StepMeta", "Stmt",
    "TableSpec", "Txn", "add", "apply_oracles", "batch_processing",
    "builtin", "canonical_state", "differential_explore",
    "execute_schedule", "explore_exhaustive", "explore_predicate",
    "explore_random", "independent", "load_replay", "read_only_anomaly",
    "receipt_report", "ref", "run_replay", "save_replay", "serial_states",
    "shrink_program", "shrink_to_replay", "txn_name", "vacuity_findings",
    "write_skew",
]
