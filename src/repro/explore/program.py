"""Static multi-client transaction programs.

The explorer needs programs it can re-execute deterministically and
serialize into replay files, so programs here are *data*, not Python
generators: a :class:`Program` is an initial database state plus, per
client, a list of transactions, each a list of :class:`Stmt` statement
descriptors. Statements support just enough dataflow for the paper's
canonical anomalies:

* a ``guard`` makes a statement conditional on the row count of an
  earlier statement's result (the doctors example's "IF on-call >= 2");
* value references (``ref(stmt, field)``) feed a field read earlier in
  the same transaction into a later WHERE clause or INSERT row (the
  batch-processing example's "insert into batch x");
* ``add(field, by)`` in an UPDATE computes ``row[field] + by`` (the
  batch-closing "batch = batch + 1").

Everything round-trips through plain-JSON dicts (see DESIGN.md,
"Schedule exploration" for the format), which is what the replay files
under tests/explore_corpus/ contain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.config import EngineConfig, PerfConfig, SanitizerConfig
from repro.engine.database import Database
from repro.engine.isolation import IsolationLevel
from repro.engine.predicate import AlwaysTrue, Between, Eq, Predicate
from repro.sim import ops

#: Statement kinds a program may contain (begin/commit are implicit:
#: every transaction opens with BEGIN and closes with COMMIT).
DML_KINDS = ("select", "select_for_update", "insert", "update", "delete")


# ---------------------------------------------------------------------------
# value encoding: literals, back-references, and field arithmetic
# ---------------------------------------------------------------------------
def ref(stmt: int, fld: str, add: int = 0) -> Dict[str, Any]:
    """Value of ``fld`` in the first row returned by statement ``stmt``
    of the same transaction (0-based), plus ``add``."""
    return {"$ref": {"stmt": stmt, "field": fld, "add": add}}


def add(fld: str, by: int) -> Dict[str, Any]:
    """UPDATE set-value: current row's ``fld`` plus ``by``."""
    return {"$add": {"field": fld, "by": by}}


def _resolve(value: Any, results: List[Any]) -> Any:
    """Resolve a value encoding against earlier statement results."""
    if isinstance(value, dict) and "$ref" in value:
        spec = value["$ref"]
        rows = results[spec["stmt"]]
        return rows[0][spec["field"]] + spec.get("add", 0)
    return value


def _set_fn(updates: Dict[str, Any], results: List[Any]):
    """Compile an UPDATE's SET clause into the engine's updates arg."""
    if any(isinstance(v, dict) and "$add" in v for v in updates.values()):
        def compute(row, updates=updates, results=results):
            out = {}
            for col, value in updates.items():
                if isinstance(value, dict) and "$add" in value:
                    spec = value["$add"]
                    out[col] = row[spec["field"]] + spec["by"]
                else:
                    out[col] = _resolve(value, results)
            return out
        return compute
    return {col: _resolve(v, results) for col, v in updates.items()}


def _where(encoded, results: List[Any]) -> Predicate:
    if encoded is None:
        return AlwaysTrue()
    kind = encoded[0]
    if kind == "eq":
        return Eq(encoded[1], _resolve(encoded[2], results))
    if kind == "between":
        return Between(encoded[1], _resolve(encoded[2], results),
                       _resolve(encoded[3], results))
    raise ValueError(f"unknown where encoding {encoded!r}")


# ---------------------------------------------------------------------------
# program model
# ---------------------------------------------------------------------------
@dataclass
class Stmt:
    """One DML statement of a transaction program."""

    op: str
    table: str
    #: Encoded predicate: None | ["eq", col, v] | ["between", col, lo, hi].
    where: Optional[list] = None
    #: INSERT row (values may be encoded).
    row: Optional[Dict[str, Any]] = None
    #: UPDATE set clause (values may be encoded, incl. ``$add``).
    set: Optional[Dict[str, Any]] = None
    #: Conditional execution: {"stmt": i, "min_rows": n, "max_rows": m}
    #: -- run only if the row count of statement i's result is in range.
    guard: Optional[Dict[str, int]] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"op": self.op, "table": self.table}
        for key in ("where", "row", "set", "guard"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        return out

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "Stmt":
        if d["op"] not in DML_KINDS:
            raise ValueError(f"unknown statement op {d['op']!r}")
        return Stmt(op=d["op"], table=d["table"], where=d.get("where"),
                    row=d.get("row"), set=d.get("set"), guard=d.get("guard"))

    def guard_passes(self, results: List[Any]) -> bool:
        if self.guard is None:
            return True
        rows = results[self.guard["stmt"]]
        if not isinstance(rows, list):
            return False  # guarded on a skipped/non-SELECT statement
        n = len(rows)
        if n < self.guard.get("min_rows", 0):
            return False
        return n <= self.guard.get("max_rows", n)

    def to_op(self, results: List[Any]) -> ops.Op:
        if self.op == "select":
            return ops.select(self.table, self._pred(results))
        if self.op == "select_for_update":
            return ops.select_for_update(self.table, self._pred(results))
        if self.op == "insert":
            return ops.insert(self.table, {col: _resolve(v, results)
                                           for col, v in self.row.items()})
        if self.op == "update":
            return ops.update(self.table, self._pred(results),
                              _set_fn(self.set, results))
        if self.op == "delete":
            return ops.delete(self.table, self._pred(results))
        raise ValueError(f"unknown statement op {self.op!r}")

    def _pred(self, results: List[Any]) -> Optional[Predicate]:
        return _where(self.where, results) if self.where is not None else None


@dataclass
class Txn:
    """One transaction: implicit BEGIN, statements, implicit COMMIT."""

    stmts: List[Stmt]
    read_only: bool = False

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"stmts": [s.to_dict() for s in self.stmts]}
        if self.read_only:
            out["read_only"] = True
        return out

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "Txn":
        return Txn(stmts=[Stmt.from_dict(s) for s in d["stmts"]],
                   read_only=bool(d.get("read_only", False)))


@dataclass
class TableSpec:
    name: str
    columns: List[str]
    key: Optional[str] = None
    rows: List[Dict[str, Any]] = field(default_factory=list)
    #: Extra secondary indexes: list of column names.
    indexes: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"name": self.name, "columns": self.columns,
                               "rows": self.rows}
        if self.key is not None:
            out["key"] = self.key
        if self.indexes:
            out["indexes"] = self.indexes
        return out

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "TableSpec":
        return TableSpec(name=d["name"], columns=list(d["columns"]),
                         key=d.get("key"), rows=list(d.get("rows", [])),
                         indexes=list(d.get("indexes", [])))


def txn_name(cid: int, idx: int) -> str:
    """Stable name for transaction ``idx`` of client ``cid`` (used to
    map committed transactions back to program positions)."""
    return f"c{cid}.t{idx}"


@dataclass
class Program:
    """Initial state plus one statement list per client."""

    tables: List[TableSpec]
    clients: List[List[Txn]]

    # -- serialization ----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "tables": [t.to_dict() for t in self.tables],
            "clients": [[txn.to_dict() for txn in txns]
                        for txns in self.clients],
        }

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "Program":
        return Program(
            tables=[TableSpec.from_dict(t) for t in d["tables"]],
            clients=[[Txn.from_dict(txn) for txn in txns]
                     for txns in d["clients"]])

    # -- structure --------------------------------------------------------
    def txn_count(self) -> int:
        return sum(len(txns) for txns in self.clients)

    def stmt_count(self) -> int:
        """Explicit DML statements (excludes implicit begin/commit)."""
        return sum(len(txn.stmts) for txns in self.clients for txn in txns)

    def all_txns(self) -> List[Tuple[str, Txn]]:
        out = []
        for cid, txns in enumerate(self.clients):
            for idx, txn in enumerate(txns):
                out.append((txn_name(cid, idx), txn))
        return out

    # -- execution --------------------------------------------------------
    def build_db(self, *, record_history: bool = True,
                 sanitize: bool = False,
                 perf: Optional[PerfConfig] = None,
                 analyze: bool = False,
                 config: Optional[EngineConfig] = None) -> Database:
        """Fresh database loaded with the initial state.

        ``perf`` overrides the performance toggles (the differential
        planner suite runs the same program with the cost planner on
        and off); ``analyze`` collects catalog statistics after the
        initial load so the cost planner has something to price with;
        ``config`` replaces the whole EngineConfig (the durability
        differential tests run programs against a disk-backed engine).
        """
        if config is None:
            config = EngineConfig(record_history=record_history)
        if sanitize:
            config.sanitize = SanitizerConfig.all_on(sweep_interval=4)
        if perf is not None:
            config.perf = perf
        db = Database(config)
        for spec in self.tables:
            db.create_table(spec.name, spec.columns, key=spec.key)
            for column in spec.indexes:
                db.create_index(spec.name, column)
            if spec.rows:
                session = db.session()
                session.begin()
                for row in spec.rows:
                    session.insert(spec.name, dict(row))
                session.commit()
        if analyze:
            db.analyze()
        return db

    def run_txn_directly(self, session, txn: Txn,
                         isolation: IsolationLevel) -> None:
        """Execute one transaction serially on a plain session (no
        scheduler) -- the serial-execution oracle's building block."""
        session.begin(isolation, read_only=txn.read_only)
        results: List[Any] = []
        for stmt in txn.stmts:
            if not stmt.guard_passes(results):
                results.append(None)
                continue
            op = stmt.to_op(results)
            results.append(getattr(session, op.method)(*op.args, **op.kwargs))
        session.commit()
