"""Replay files: a failing (program, schedule) pair as portable JSON.

A replay file is self-contained: the initial tables and rows, every
client's transaction programs, the isolation level, the exact schedule
(the sequence of client ids the scheduler picked), and the expected
verdicts. ``python -m repro.explore replay FILE`` re-executes it and
exits nonzero unless the expectations reproduce.

Expectations (all optional):

* ``anomaly`` -- replayed at the file's own isolation level, the
  committed history is NOT serializable (the pinned SI anomaly);
* ``serializable_aborts`` -- replayed under SERIALIZABLE, at least one
  transaction hits a serialization failure and the committed history IS
  serializable (SSI breaks the dangerous structure);
* ``s2pl_serializable`` -- replayed under S2PL the history is
  serializable (blocking prevents the anomaly outright).

Replay is *strict* at the file's own isolation level: every scheduled
pick must name a runnable client, or the result is flagged as diverged
(and ``anomaly`` fails). Under other isolation levels aborts and
retries legitimately change the step structure, so replay is lenient:
a scheduled client that is not currently runnable is substituted by
the first runnable one, deterministically.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.isolation import IsolationLevel
from repro.explore.explorer import RunRecord, execute_schedule
from repro.explore.program import Program
from repro.sim.client import Client

REPLAY_FORMAT = "repro-explore-replay"
REPLAY_VERSION = 1


@dataclass
class Replay:
    program: Program
    isolation: IsolationLevel
    schedule: List[int]
    expect: Dict[str, Any] = field(default_factory=dict)
    description: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": REPLAY_FORMAT,
            "version": REPLAY_VERSION,
            "description": self.description,
            "isolation": self.isolation.value,
            "program": self.program.to_dict(),
            "schedule": list(self.schedule),
            "expect": dict(self.expect),
        }

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "Replay":
        if d.get("format") != REPLAY_FORMAT:
            raise ValueError(
                f"not a {REPLAY_FORMAT} file (format={d.get('format')!r})")
        if int(d.get("version", 0)) > REPLAY_VERSION:
            raise ValueError(
                f"replay file version {d['version']} is newer than "
                f"supported version {REPLAY_VERSION}")
        return Replay(program=Program.from_dict(d["program"]),
                      isolation=IsolationLevel(d["isolation"]),
                      schedule=[int(c) for c in d["schedule"]],
                      expect=dict(d.get("expect", {})),
                      description=d.get("description", ""))


def save_replay(path: str, replay: Replay) -> None:
    with open(path, "w") as fp:
        json.dump(replay.to_dict(), fp, indent=2, sort_keys=True)
        fp.write("\n")


def load_replay(path: str) -> Replay:
    with open(path) as fp:
        return Replay.from_dict(json.load(fp))


class FixedSchedulePolicy:
    """Scheduler pick policy that follows a recorded schedule.

    Lenient mode substitutes the first runnable client when the
    scheduled one cannot run (and after the schedule is exhausted);
    strict mode only flags the divergence -- both stay deterministic.
    """

    def __init__(self, schedule: List[int], strict: bool = True) -> None:
        self.schedule = schedule
        self.strict = strict
        self.position = 0
        self.diverged = False
        self.choices: List[int] = []

    def pick(self, runnable: List[Client]) -> Optional[Client]:
        chosen = None
        if self.position < len(self.schedule):
            want = self.schedule[self.position]
            self.position += 1
            for client in runnable:
                if client.client_id == want:
                    chosen = client
                    break
            if chosen is None:
                self.diverged = True
        if chosen is None:
            chosen = runnable[0]
        self.choices.append(chosen.client_id)
        return chosen


@dataclass
class ReplayResult:
    isolation: IsolationLevel
    record: RunRecord
    diverged: bool
    #: Per-expectation verdicts actually evaluated for this run.
    checks: Dict[str, bool] = field(default_factory=dict)
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(self.checks.values()) if self.checks else True

    def summary(self) -> str:
        verdicts = ", ".join(f"{name}={'ok' if ok else 'FAIL'}"
                             for name, ok in sorted(self.checks.items()))
        serializable = (self.record.check.serializable
                        if self.record.check is not None else None)
        return (f"replay under {self.isolation.value}: "
                f"commits={self.record.commits} "
                f"serialization_failures={self.record.serialization_failures} "
                f"serializable={serializable} diverged={self.diverged}"
                + (f" [{verdicts}]" if verdicts else ""))


def run_replay(replay: Replay,
               isolation: Optional[IsolationLevel] = None, *,
               strict: Optional[bool] = None,
               sanitize: bool = True,
               max_steps: int = 4000,
               perf=None, analyze: bool = False) -> ReplayResult:
    """Re-execute a replay file and evaluate its expectations under the
    given isolation level (default: the file's own). ``perf`` and
    ``analyze`` pass through to the database build (differential
    planner testing: same schedule, different scan plans)."""
    iso = isolation or replay.isolation
    if strict is None:
        strict = iso is replay.isolation
    policy = FixedSchedulePolicy(replay.schedule, strict=strict)
    record = execute_schedule(replay.program, iso, policy.pick,
                              max_steps=max_steps, sanitize=sanitize,
                              perf=perf, analyze=analyze)
    result = ReplayResult(isolation=iso, record=record,
                          diverged=policy.diverged)
    _evaluate(replay, result)
    return result


def _evaluate(replay: Replay, result: ReplayResult) -> None:
    expect = replay.expect
    record = result.record
    if not record.complete:
        result.notes.append(f"run did not complete ({record.error})")
        result.checks["complete"] = False
        return
    serializable = record.check.serializable
    if result.isolation is replay.isolation and expect.get("anomaly"):
        result.checks["anomaly"] = (not serializable
                                    and not result.diverged)
        if result.diverged:
            result.notes.append("strict replay diverged from the schedule")
    if (result.isolation is IsolationLevel.SERIALIZABLE
            and expect.get("serializable_aborts")):
        result.checks["serializable_aborts"] = (
            serializable and record.serialization_failures >= 1)
    if (result.isolation is IsolationLevel.S2PL
            and expect.get("s2pl_serializable")):
        result.checks["s2pl_serializable"] = serializable
