"""Differential oracles run on every explored schedule.

Three independent ways to decide whether a completed schedule was
correct, so a bug in any one layer is caught by another:

* **graph oracle** -- the offline Adya multiversion serialization graph
  (:func:`repro.verify.check_serializable`) must be acyclic for every
  history an isolation level claims serializable (SERIALIZABLE, S2PL);
* **serial-state oracle** -- the final database state of the concurrent
  execution must equal the final state of *some* serial execution of
  the transactions that committed (enumerated up to ``perm_limit``
  factorial permutations, memoized per committed set). A history the
  graph calls serializable whose state matches no serial order exposes
  a recorder or checker bug, so that divergence is a violation under
  *every* isolation level;
* **cross-isolation differencing** -- at the campaign level (see
  :func:`differential_explore`): SSI and S2PL must commit zero
  non-serializable histories over a program corpus, while plain
  snapshot isolation over the same corpus must exhibit at least one
  anomaly -- otherwise the corpus is vacuous and proves nothing.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.engine.isolation import IsolationLevel
from repro.errors import ReproError
from repro.explore.explorer import (ExplorationReport, RunRecord,
                                    ScheduleFinding, canonical_state,
                                    explore_exhaustive)
from repro.explore.program import Program

#: Isolation levels that promise serializable histories.
SERIALIZABLE_LEVELS = (IsolationLevel.SERIALIZABLE, IsolationLevel.S2PL)

#: Cache key -> set of reachable serial final states (None while a
#: committed set is too large or no permutation executed cleanly).
SerialCache = Dict[Tuple[str, Tuple[str, ...]], Optional[Set[tuple]]]


def serial_states(program: Program, isolation: IsolationLevel,
                  committed: Tuple[str, ...], cache: SerialCache,
                  perm_limit: int = 5) -> Optional[Set[tuple]]:
    """All final states reachable by executing the committed
    transactions serially, in any order. Returns None when the oracle
    does not apply (too many transactions, or no permutation ran
    cleanly). Memoized per committed set: every schedule that commits
    the same transactions shares one enumeration."""
    key = (isolation.value, committed)
    if key in cache:
        return cache[key]
    if len(committed) > perm_limit:
        cache[key] = None
        return None
    by_name = dict(program.all_txns())
    txns = [by_name[name] for name in committed]
    states: Set[tuple] = set()
    for order in permutations(range(len(txns))):
        db = program.build_db(record_history=False)
        session = db.session()
        try:
            for i in order:
                program.run_txn_directly(session, txns[i], isolation)
        except ReproError:
            # This order is not serially executable (e.g. a duplicate
            # key); it contributes no reference state.
            if session.in_transaction():
                session.rollback()
            continue
        states.add(canonical_state(db, program))
    result = states or None
    cache[key] = result
    return result


def apply_oracles(report: ExplorationReport, program: Program,
                  isolation: IsolationLevel, record: RunRecord,
                  cache: SerialCache, *, serial_oracle: bool = True,
                  perm_limit: int = 5) -> None:
    """Judge one completed run and file findings into the report."""
    report.distinct_states.add(record.state)
    check = record.check
    if not check.serializable:
        finding = ScheduleFinding(
            "non-serializable-commit", isolation.value, record.schedule,
            f"cycle {check.cycle} via {check.cycle_edges}")
        if isolation in SERIALIZABLE_LEVELS:
            report.violations.append(finding)
        else:
            report.anomalies.append(finding)
        return
    if not serial_oracle:
        return
    reference = serial_states(program, isolation, record.committed_txns,
                              cache, perm_limit=perm_limit)
    if reference is not None and record.state not in reference:
        # The graph says serializable but no serial order reproduces
        # the state: a checker/recorder bug under any isolation level.
        report.violations.append(ScheduleFinding(
            "state-divergence", isolation.value, record.schedule,
            f"final state matches none of {len(reference)} serial states "
            f"of {record.committed_txns}"))


def differential_explore(program: Program, *,
                         isolations: Iterable[IsolationLevel] = (
                             IsolationLevel.REPEATABLE_READ,
                             IsolationLevel.SERIALIZABLE,
                             IsolationLevel.S2PL),
                         **explore_kwargs
                         ) -> Dict[IsolationLevel, ExplorationReport]:
    """Explore the same program under several isolation levels with the
    same bounds -- the cross-isolation oracle's raw material."""
    return {isolation: explore_exhaustive(program, isolation,
                                          **explore_kwargs)
            for isolation in isolations}


def vacuity_findings(reports: Dict[IsolationLevel, ExplorationReport]
                     ) -> list:
    """Campaign-level differential verdicts as a list of problems
    (empty = healthy): any violation under a serializable level, and a
    vacuous corpus (SI explored but produced zero anomalies)."""
    problems = []
    for isolation, report in reports.items():
        problems.extend(report.violations)
    si = reports.get(IsolationLevel.REPEATABLE_READ)
    if si is not None and si.schedules_complete and not si.anomalies:
        problems.append(ScheduleFinding(
            "vacuous-corpus", IsolationLevel.REPEATABLE_READ.value, [],
            f"{si.schedules_complete} SI schedules explored without a "
            f"single anomaly: the program cannot distinguish SI from "
            f"serializable execution"))
    return problems
