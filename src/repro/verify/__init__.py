"""Serializability verification.

Records complete execution histories and builds the Adya multiversion
serialization history graph (paper section 3.1): wr-dependencies,
ww-dependencies, and rw-antidependencies, including predicate-read
(phantom) antidependencies. A cycle among committed transactions means
the execution was not serializable; acyclicity yields a witness serial
order by topological sort.

Used by the anomaly tests (the SI runs of Figures 1 and 2 must show a
cycle; SSI and S2PL runs must never produce one) and by the
property-based random-history tests.
"""

from repro.verify.history import HistoryRecorder, ReadEvent, WriteEvent
from repro.verify.graph import SerializationGraph, build_graph
from repro.verify.checker import CheckResult, check_serializable

__all__ = [
    "HistoryRecorder",
    "ReadEvent",
    "WriteEvent",
    "SerializationGraph",
    "build_graph",
    "CheckResult",
    "check_serializable",
]
