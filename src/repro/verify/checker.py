"""Serializability verdicts over recorded histories."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.verify.graph import SerializationGraph, build_graph
from repro.verify.history import HistoryRecorder

#: Dependency edge kinds in the Adya multiversion graph.
EDGE_KINDS = ("ww", "wr", "rw")


@dataclass
class CheckResult:
    serializable: bool
    #: A cycle of xids when not serializable.
    cycle: Optional[List[int]]
    #: A witness serial order (topological sort) when serializable.
    serial_order: Optional[List[int]]
    graph: SerializationGraph
    #: Edges per dependency kind (ww/wr/rw) across the whole graph; the
    #: rw count is the antidependency load SSI had to police.
    edge_counts: Dict[str, int] = field(default_factory=dict)
    #: When not serializable: the cycle's edges as (src, dst, kinds)
    #: with kinds rendered "rw" / "ww+rw" -- the offending dependency
    #: edges a sanitizer failure's post-mortem can cite directly.
    cycle_edges: List[Tuple[int, int, str]] = field(default_factory=list)

    @property
    def rw_edge_count(self) -> int:
        """Total rw-antidependency edges (paper section 3.1)."""
        return self.edge_counts.get("rw", 0)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.serializable


def _edge_counts(graph: SerializationGraph) -> Dict[str, int]:
    return {kind: len(graph.edges_of_type(kind)) for kind in EDGE_KINDS}


def _cycle_edges(graph: SerializationGraph,
                 cycle: List[int]) -> List[Tuple[int, int, str]]:
    edges = []
    for i, src in enumerate(cycle):
        dst = cycle[(i + 1) % len(cycle)]
        kinds = graph.edge_kinds(src, dst)
        edges.append((src, dst, "+".join(sorted(kinds)) or "?"))
    return edges


def check_serializable(recorder: HistoryRecorder) -> CheckResult:
    """Was the committed portion of the recorded history serializable?

    Uses the Adya multiversion serialization graph: acyclicity is
    equivalent to the existence of an equivalent serial order
    (section 3.1: "Otherwise, the serial order can be determined using
    a topological sort").
    """
    graph = build_graph(recorder)
    counts = _edge_counts(graph)
    cycle = graph.find_cycle()
    if cycle is not None:
        return CheckResult(False, cycle, None, graph, edge_counts=counts,
                           cycle_edges=_cycle_edges(graph, cycle))
    return CheckResult(True, None, graph.serial_order(), graph,
                       edge_counts=counts)
