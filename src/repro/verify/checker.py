"""Serializability verdicts over recorded histories."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.verify.graph import SerializationGraph, build_graph
from repro.verify.history import HistoryRecorder


@dataclass
class CheckResult:
    serializable: bool
    #: A cycle of xids when not serializable.
    cycle: Optional[List[int]]
    #: A witness serial order (topological sort) when serializable.
    serial_order: Optional[List[int]]
    graph: SerializationGraph

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.serializable


def check_serializable(recorder: HistoryRecorder) -> CheckResult:
    """Was the committed portion of the recorded history serializable?

    Uses the Adya multiversion serialization graph: acyclicity is
    equivalent to the existence of an equivalent serial order
    (section 3.1: "Otherwise, the serial order can be determined using
    a topological sort").
    """
    graph = build_graph(recorder)
    cycle = graph.find_cycle()
    if cycle is not None:
        return CheckResult(False, cycle, None, graph)
    return CheckResult(True, None, graph.serial_order(), graph)
