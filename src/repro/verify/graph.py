"""Multiversion serialization history graph (Adya; paper section 3.1).

Nodes are committed transactions; edges are:

* ``wr``: T1 wrote a version T2 read -> T1 before T2;
* ``ww``: T1 wrote a version T2 replaced -> T1 before T2;
* ``rw``: T1 read a version T2 replaced, or T1's predicate read missed
  a matching version T2 created (phantom) -> T1 before T2 (the
  antidependencies central to SSI).

A cycle proves the execution non-serializable; otherwise a topological
sort yields a witness serial order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import networkx as nx

from repro.verify.history import HistoryRecorder, INITIAL_XID


@dataclass
class SerializationGraph:
    """Wrapper around the networkx digraph with typed edges."""

    graph: nx.DiGraph

    def edges_of_type(self, kind: str) -> List[Tuple[int, int]]:
        return [(u, v) for u, v, k in self.graph.edges(data="kinds")
                if kind in k]

    def find_cycle(self) -> Optional[List[int]]:
        try:
            cycle_edges = nx.find_cycle(self.graph)
        except nx.NetworkXNoCycle:
            return None
        return [u for u, _v in cycle_edges]

    def serial_order(self) -> Optional[List[int]]:
        try:
            return list(nx.topological_sort(self.graph))
        except nx.NetworkXUnfeasible:
            return None

    def edge_kinds(self, u: int, v: int) -> Set[str]:
        data = self.graph.get_edge_data(u, v)
        return set(data["kinds"]) if data else set()


def build_graph(recorder: HistoryRecorder,
                include_initial: bool = False) -> SerializationGraph:
    """Build the serialization graph over committed transactions."""
    committed = recorder.committed_xids()
    g = nx.DiGraph()

    def node_ok(xid: int) -> bool:
        if xid == INITIAL_XID and not include_initial:
            return False
        return xid in committed

    def add_edge(u: int, v: int, kind: str) -> None:
        if u == v or not node_ok(u) or not node_ok(v):
            return
        if g.has_edge(u, v):
            g[u][v]["kinds"].add(kind)
        else:
            g.add_edge(u, v, kinds={kind})

    for xid in committed:
        if xid == INITIAL_XID and not include_initial:
            continue
        g.add_node(xid)

    # ww: version chain order.
    for info in recorder.versions.values():
        if info.replacer_xid is not None:
            add_edge(info.creator_xid, info.replacer_xid, "ww")

    for read in recorder.reads:
        if read.xid not in committed:
            continue
        # wr: creators of versions we read precede us.
        for vid in read.versions:
            info = recorder.versions[vid]
            add_edge(info.creator_xid, read.xid, "wr")
            # rw: replacers of versions we read follow us.
            if info.replacer_xid is not None:
                add_edge(read.xid, info.replacer_xid, "rw")
        # rw (phantoms): committed versions matching our predicate that
        # our snapshot could not see -> their creators follow us.
        seen = set(read.versions)
        for vid, info in recorder.versions.items():
            if vid[0] != read.rel_oid or vid in seen:
                continue
            creator = info.creator_xid
            if creator == read.xid or creator not in committed:
                continue
            if creator == INITIAL_XID:
                continue
            if not read.snapshot.xid_in_progress_at_snapshot(creator):
                continue  # visible-committed; not a missed write
            try:
                matches = read.predicate.matches(info.data)
            except Exception:
                matches = False
            if matches:
                add_edge(read.xid, creator, "rw")

    return SerializationGraph(g)
