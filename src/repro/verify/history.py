"""Execution-history recording.

The engine (when EngineConfig.record_history is set) reports every
begin, read (with its predicate and visibility snapshot), write, and
commit/abort. The recorder keeps a version registry -- who created
each tuple version, its contents, who replaced it -- from which the
multiversion serialization graph is rebuilt offline (repro.verify.graph).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.mvcc.snapshot import Snapshot
from repro.storage.tuple import TID

VersionId = Tuple[int, TID]  # (relation oid, tid)

#: Synthetic transaction that "created" pre-existing data (setup rows
#: inserted outside recorded sessions).
INITIAL_XID = 0


@dataclass
class VersionInfo:
    """Provenance of one tuple version."""

    vid: VersionId
    creator_xid: int
    data: Dict[str, Any]
    replacer_xid: Optional[int] = None
    successor: Optional[VersionId] = None


@dataclass
class ReadEvent:
    """One scan: which versions it returned, under which predicate and
    visibility snapshot (for phantom antidependencies)."""

    xid: int
    rel_oid: int
    predicate: Any
    versions: List[VersionId]
    snapshot: Snapshot


@dataclass
class WriteEvent:
    xid: int
    rel_oid: int
    kind: str  # insert | update | delete
    old: Optional[VersionId]
    new: Optional[VersionId]


class HistoryRecorder:
    """Accumulates one execution history."""

    def __init__(self) -> None:
        self.versions: Dict[VersionId, VersionInfo] = {}
        self.reads: List[ReadEvent] = []
        self.writes: List[WriteEvent] = []
        self.committed: Set[int] = {INITIAL_XID}
        self.aborted: Set[int] = set()
        self.begun: Dict[int, Tuple[Snapshot, Any]] = {}

    # -- engine hooks -----------------------------------------------------
    def on_begin(self, xid: int, snapshot: Snapshot, isolation) -> None:
        self.begun[xid] = (snapshot, isolation)

    def on_read(self, xid: int, rel_oid: int, predicate,
                tids: List[TID], snapshot: Snapshot) -> None:
        vids = []
        for tid in tids:
            vid = (rel_oid, tid)
            self._ensure_version(vid)
            vids.append(vid)
        self.reads.append(ReadEvent(xid, rel_oid, predicate, vids, snapshot))

    def on_write(self, xid: int, rel_oid: int, kind: str,
                 old_tuple, new_tuple) -> None:
        old_vid = (rel_oid, old_tuple.tid) if old_tuple is not None else None
        new_vid = (rel_oid, new_tuple.tid) if new_tuple is not None else None
        if new_vid is not None:
            self.versions[new_vid] = VersionInfo(
                vid=new_vid, creator_xid=xid, data=dict(new_tuple.data))
        if old_vid is not None:
            info = self._ensure_version(old_vid, old_tuple)
            info.replacer_xid = xid
            info.successor = new_vid
        self.writes.append(WriteEvent(xid, rel_oid, kind, old_vid, new_vid))

    def on_commit(self, xid: int) -> None:
        self.committed.add(xid)

    def on_abort(self, xid: int) -> None:
        self.aborted.add(xid)

    # -- helpers -------------------------------------------------------------
    def _ensure_version(self, vid: VersionId, tup=None) -> VersionInfo:
        info = self.versions.get(vid)
        if info is None:
            data = dict(tup.data) if tup is not None else {}
            info = VersionInfo(vid=vid, creator_xid=INITIAL_XID, data=data)
            self.versions[vid] = info
        elif tup is not None and not info.data:
            info.data = dict(tup.data)
        return info

    def committed_xids(self) -> Set[int]:
        return set(self.committed)
