"""Catalog statistics: ANALYZE-populated inputs to the cost planner.

The paper's predicate-lock footprint argument (section 5.2) makes scan
choice a *correctness-adjacent* decision: an index scan SIREAD-locks
only the B+-tree pages it visits while a sequential scan locks the
whole relation, so a mis-planned scan inflates false-positive abort
rates. This module supplies what the planner needs to choose well:

* per-relation **live row count** and **page count**, seeded by
  ``ANALYZE`` and maintained incrementally by write-time deltas (the
  role of ``pg_class.reltuples``/``relpages`` plus the stats
  collector's n_live_tup);
* per-indexed-column **n_distinct**, **min/max**, and an
  **equal-depth histogram** (``pg_statistic``'s STATISTIC_KIND_
  HISTOGRAM), from which selectivity estimates are derived;
* a monotonically increasing **epoch**, bumped by ANALYZE and by DDL,
  which the plan and prepared-statement caches embed in their keys so
  stale plans are never served (PostgreSQL's plancache invalidation).

Like PostgreSQL's, these numbers are *estimates*: write-time deltas
are applied when the write happens, not transactionally, so aborted
work can skew them slightly until the next ANALYZE. The planner only
uses them to rank scan choices; correctness never depends on them.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

#: Histogram resolution: equal-depth bucket boundaries retained per
#: column. Small because laptop-scale tables are small; the planner
#: only needs coarse fractions.
HISTOGRAM_BUCKETS = 16

#: Selectivity assumed for a range restriction when the histogram
#: cannot answer (no stats for the bound's type, unanalyzed column):
#: PostgreSQL's DEFAULT_INEQ_SEL.
DEFAULT_INEQ_SEL = 1.0 / 3.0
#: Likewise for equality (DEFAULT_EQ_SEL flavour).
DEFAULT_EQ_SEL = 0.005


def _sort_key(value: Any) -> Tuple[str, Any]:
    """Total order over mixed-type column values: group by type name
    first so incomparable types never meet (deterministic, no reliance
    on dict/iteration order)."""
    return (type(value).__name__, value)


@dataclass
class ColumnStats:
    """Distribution statistics for one (indexed) column."""

    n_distinct: int = 0
    min_value: Any = None
    max_value: Any = None
    #: Equal-depth bucket boundaries (ascending, same-type values):
    #: ``bounds[0]`` = min, ``bounds[-1]`` = max, each adjacent pair
    #: covering ~1/(len-1) of the rows.
    histogram: List[Any] = field(default_factory=list)
    #: Rows sampled to build the stats (live rows at ANALYZE time).
    sample_rows: int = 0

    # -- construction ---------------------------------------------------
    @staticmethod
    def from_values(values: List[Any]) -> "ColumnStats":
        present = [v for v in values if v is not None]
        stats = ColumnStats(sample_rows=len(values))
        if not present:
            return stats
        try:
            ordered = sorted(present)
        except TypeError:
            # Mixed incomparable types: fall back to the type-grouped
            # total order so ANALYZE never raises.
            ordered = sorted(present, key=_sort_key)
        stats.n_distinct = len(set(map(_freeze, present)))
        stats.min_value = ordered[0]
        stats.max_value = ordered[-1]
        n = len(ordered)
        buckets = min(HISTOGRAM_BUCKETS, n)
        if buckets >= 1:
            bounds = [ordered[(i * (n - 1)) // buckets]
                      for i in range(buckets)]
            bounds.append(ordered[-1])
            stats.histogram = bounds
        return stats

    # -- selectivity ----------------------------------------------------
    def eq_selectivity(self) -> float:
        """Fraction of rows matching ``col = const`` (1/n_distinct)."""
        if self.n_distinct <= 0:
            return DEFAULT_EQ_SEL
        return 1.0 / self.n_distinct

    def range_selectivity(self, lo: Any, hi: Any, *,
                          lo_incl: bool = True,
                          hi_incl: bool = True) -> float:
        """Fraction of rows with lo </<= value </<= hi (None = open)."""
        lo_frac = self._position(lo, incl=not lo_incl) if lo is not None \
            else 0.0
        hi_frac = self._position(hi, incl=hi_incl) if hi is not None \
            else 1.0
        if lo_frac is None or hi_frac is None:
            return DEFAULT_INEQ_SEL
        return max(0.0, min(1.0, hi_frac - lo_frac))

    def _position(self, value: Any, *, incl: bool) -> Optional[float]:
        """Fraction of rows with value <(=) ``value`` via the
        histogram, with linear interpolation inside a bucket when the
        values support it. None when the histogram cannot answer."""
        bounds = self.histogram
        if not bounds or len(bounds) < 2:
            return None
        try:
            if value < bounds[0]:
                return 0.0
            if value > bounds[-1]:
                return 1.0
        except TypeError:
            return None
        finder = bisect_right if incl else bisect_left
        try:
            i = finder(bounds, value)
        except TypeError:
            return None
        if i <= 0:
            return 0.0
        if i >= len(bounds):
            return 1.0
        buckets = len(bounds) - 1
        frac = (i - 1) / buckets
        lo_b, hi_b = bounds[i - 1], bounds[i]
        if isinstance(lo_b, (int, float)) and isinstance(hi_b, (int, float)) \
                and isinstance(value, (int, float)) and hi_b > lo_b:
            frac += ((value - lo_b) / (hi_b - lo_b)) / buckets
        else:
            # Non-interpolatable bucket (strings, tuples): charge half.
            frac += 0.5 / buckets
        return max(0.0, min(1.0, frac))

    def to_dict(self) -> Dict[str, Any]:
        return {"n_distinct": self.n_distinct, "min": self.min_value,
                "max": self.max_value, "histogram": list(self.histogram),
                "sample_rows": self.sample_rows}


def _freeze(value: Any) -> Any:
    return tuple(value) if isinstance(value, list) else value


@dataclass
class RelationStats:
    """ANALYZE output plus incrementally maintained write deltas."""

    oid: int
    name: str
    #: Live (visible-to-the-ANALYZE-snapshot) rows at ANALYZE time.
    analyzed_rows: int = 0
    #: Heap pages at ANALYZE time.
    analyzed_pages: int = 0
    #: Net row delta since ANALYZE (+insert, -delete; update = 0).
    row_delta: int = 0
    #: Stats epoch this entry was built in.
    epoch: int = 0
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    @property
    def live_rows(self) -> int:
        return max(0, self.analyzed_rows + self.row_delta)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)


class StatsCatalog:
    """Per-relation statistics plus the cache-invalidation epoch.

    The epoch is bumped by ANALYZE (new stats must replace cached
    plans) and by any DDL that changes the set of access paths or
    relations (CREATE/DROP INDEX, CREATE/DROP TABLE, table rewrite).
    Caches embed the epoch in their keys, so bumping it atomically
    invalidates every cached plan and prepared-statement plan.
    """

    def __init__(self) -> None:
        self._by_oid: Dict[int, RelationStats] = {}  # repro: guarded-by(ENGINE)
        self.epoch = 0  # repro: guarded-by(ENGINE)

    # -- lookups --------------------------------------------------------
    def get(self, oid: int) -> Optional[RelationStats]:
        return self._by_oid.get(oid)

    def relations(self) -> List[RelationStats]:
        return [self._by_oid[oid] for oid in sorted(self._by_oid)]

    # -- maintenance ----------------------------------------------------
    def bump_epoch(self) -> int:
        """Invalidate every plan cached against the previous epoch."""
        self.epoch += 1
        return self.epoch

    def forget(self, oid: int) -> None:
        """Drop stats for a removed relation (DROP TABLE)."""
        self._by_oid.pop(oid, None)
        self.bump_epoch()

    def install(self, stats: RelationStats) -> RelationStats:
        """Install fresh ANALYZE output and invalidate cached plans."""
        stats.epoch = self.bump_epoch()
        self._by_oid[stats.oid] = stats
        return stats

    def note_write(self, oid: int, kind: str) -> None:
        """Incremental row accounting from the executor's write path.

        ``kind`` is insert/update/delete. Cheap (one dict probe + one
        integer add) and approximate: applied at write time, never
        rolled back on abort -- exactly pg_stat's n_live_tup drift.
        """
        stats = self._by_oid.get(oid)
        if stats is None:
            return
        if kind == "insert":
            stats.row_delta += 1
        elif kind == "delete":
            stats.row_delta -= 1

    # -- ANALYZE --------------------------------------------------------
    def analyze_relation(self, rel, visible_rows: List[Dict[str, Any]],
                         columns: List[str]) -> RelationStats:
        """Build and install stats for one relation.

        ``visible_rows`` is the list of row dicts visible to the
        ANALYZE snapshot (the caller owns visibility: statistics must
        go through the same MVCC rules as any scan); ``columns`` names
        the columns to build distribution stats for (the indexed ones).
        """
        stats = RelationStats(oid=rel.oid, name=rel.name,
                              analyzed_rows=len(visible_rows),
                              analyzed_pages=rel.heap.page_count)
        for column in sorted(set(columns)):
            values = [row.get(column) for row in visible_rows]
            stats.columns[column] = ColumnStats.from_values(values)
        return self.install(stats)
