"""Heap storage substrate.

PostgreSQL-style versioned heap: slotted pages of tuples, each tuple
tagged with its creator (xmin) and deleter/replacer (xmax) transaction
IDs (paper section 5.1). An UPDATE deletes the old version and inserts
a new tuple at a new location, linked through the forward ``ctid``
pointer; write locks live in the tuple header itself (the xmax field),
which is why the paper needed a separate in-RAM SIREAD lock manager.
"""

from repro.storage.tuple import TID, HeapTuple
from repro.storage.page import HeapPage
from repro.storage.heap import Heap
from repro.storage.buffer import BufferManager
from repro.storage.relation import Relation

__all__ = ["TID", "HeapTuple", "HeapPage", "Heap", "BufferManager", "Relation"]
