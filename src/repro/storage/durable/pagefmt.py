"""On-disk page frame format.

Every durable page -- heap pages, CLOG segments, the old-serxid table
-- is one fixed-size frame::

    <4s B B H I I Q I I>  = 32-byte header
    magic  version  kind  reserved  oid  page_no  page_lsn  len  crc32

followed by a compact-JSON payload and zero padding up to
``page_bytes``. The CRC covers the header (with the crc field zeroed)
plus the payload, so a torn write, a bit flip anywhere in the frame, or
a frame written for the wrong page all surface as
:class:`~repro.errors.DataCorruptionError` -- never as wrong rows. An
all-zero frame decodes to None ("no page here"): page files are written
at ``page_no * page_bytes`` offsets and may legitimately contain holes.

``page_lsn`` is the WAL position of the last record applied to the
page when it was written back; recovery's REDO pass skips any log
record at or below it (the ARIES pageLSN rule), which is what makes
replay idempotent over pages that already reached disk.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any, Optional, Tuple

from repro.errors import DataCorruptionError

MAGIC = b"RPG1"
VERSION = 1

KIND_HEAP = 1
KIND_CLOG = 2
KIND_SERXID = 3
KIND_NAMES = {KIND_HEAP: "heap", KIND_CLOG: "clog", KIND_SERXID: "serxid"}

HEADER = struct.Struct("<4sBBHIIQII")


def encode_page(kind: int, oid: int, page_no: int, page_lsn: int,
                payload: Any, page_bytes: int) -> bytes:
    """Serialize one frame, zero-padded to exactly ``page_bytes``."""
    body = json.dumps(payload, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    if HEADER.size + len(body) > page_bytes:
        raise DataCorruptionError(
            f"page payload ({len(body)} bytes) exceeds page_bytes="
            f"{page_bytes} for {KIND_NAMES.get(kind, kind)} page "
            f"{oid}/{page_no}",
            kind=KIND_NAMES.get(kind, str(kind)), page_no=page_no,
            reason="overflow")
    head0 = HEADER.pack(MAGIC, VERSION, kind, 0, oid, page_no,
                        page_lsn, len(body), 0)
    crc = zlib.crc32(head0 + body) & 0xFFFFFFFF
    head = HEADER.pack(MAGIC, VERSION, kind, 0, oid, page_no,
                       page_lsn, len(body), crc)
    return head + body + b"\x00" * (page_bytes - HEADER.size - len(body))


def decode_page(frame: bytes, *, path: str = "",
                expect_kind: Optional[int] = None
                ) -> Optional[Tuple[int, int, int, int, Any]]:
    """Validate and parse one frame.

    Returns ``(kind, oid, page_no, page_lsn, payload)``, or None for an
    all-zero (never-written) frame. Raises DataCorruptionError with a
    machine-readable ``reason`` on any mismatch.
    """
    if not any(frame):
        return None
    kind_name = KIND_NAMES.get(expect_kind, "page")
    if len(frame) < HEADER.size:
        raise DataCorruptionError(
            f"short page frame in {path}: {len(frame)} bytes",
            path=path, kind=kind_name, reason="short")
    (magic, version, kind, _res, oid, page_no, page_lsn,
     length, crc) = HEADER.unpack_from(frame)
    if magic != MAGIC:
        raise DataCorruptionError(
            f"bad page magic {magic!r} in {path}",
            path=path, kind=kind_name, reason="magic")
    if version != VERSION:
        raise DataCorruptionError(
            f"unsupported page version {version} in {path}",
            path=path, kind=kind_name, page_no=page_no, reason="version")
    if HEADER.size + length > len(frame):
        raise DataCorruptionError(
            f"truncated page {oid}/{page_no} in {path}: payload length "
            f"{length} overruns the {len(frame)}-byte frame",
            path=path, kind=kind_name, page_no=page_no, reason="short")
    body = frame[HEADER.size:HEADER.size + length]
    head0 = HEADER.pack(MAGIC, version, kind, 0, oid, page_no,
                        page_lsn, length, 0)
    if zlib.crc32(head0 + body) & 0xFFFFFFFF != crc:
        raise DataCorruptionError(
            f"checksum mismatch on {KIND_NAMES.get(kind, kind)} page "
            f"{oid}/{page_no} in {path} (torn or corrupt write)",
            path=path, kind=KIND_NAMES.get(kind, str(kind)),
            page_no=page_no, reason="checksum")
    if expect_kind is not None and kind != expect_kind:
        raise DataCorruptionError(
            f"expected {kind_name} page, found "
            f"{KIND_NAMES.get(kind, kind)} in {path}",
            path=path, kind=kind_name, page_no=page_no, reason="magic")
    return kind, oid, page_no, page_lsn, json.loads(body.decode("utf-8"))


# ----------------------------------------------------------------------
# payload codecs
# ----------------------------------------------------------------------
def encode_tuple(tup) -> list:
    """HeapTuple -> JSON slot entry. Hint bits are deliberately not
    persisted: they are a cache of CLOG verdicts and recovery recomputes
    them lazily."""
    nxt = [tup.next_tid.page, tup.next_tid.slot] if tup.next_tid else None
    return [tup.data, tup.xmin, tup.cmin, tup.xmax, tup.cmax,
            1 if tup.xmax_lock_only else 0, nxt]


def decode_tuple(entry: list, page_no: int, slot: int):
    from repro.storage.tuple import TID, HeapTuple
    data, xmin, cmin, xmax, cmax, lock_only, nxt = entry
    return HeapTuple(tid=TID(page_no, slot), data=data, xmin=xmin,
                     cmin=cmin, xmax=xmax, cmax=cmax,
                     xmax_lock_only=bool(lock_only),
                     next_tid=TID(nxt[0], nxt[1]) if nxt else None)
