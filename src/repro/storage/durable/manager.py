"""DurabilityManager: the engine-facing face of the durability layer.

One instance hangs off ``Database.durability`` (None when the toggle is
off -- every hook call site is a single ``is not None`` test, keeping
the off path byte-identical to the in-memory engine). It owns:

* **redo capture** -- ``on_write`` turns each heap mutation into a
  physiological redo entry (page/slot-addressed, logically idempotent)
  queued on the transaction;
* **commit/prepare records** -- ``on_commit``/``on_prepare`` append one
  WAL frame carrying the transaction's redo, its logical change stream
  (replication parity), full page images for first-touch-after-
  checkpoint pages (torn-page repair), and the SSI facts recovery
  needs (commit_seq; for prepares: snapshot + persisted SIREAD locks,
  the paper's section 7.1 state);
* **the pageLSN rule** -- pages dirtied by a record are tracked with
  its LSN; any writeback (clock eviction or checkpoint) first flushes
  WAL through that LSN, then writes the page stamped with it;
* **group commit** -- synchronous commits flush through the server's
  flush gate (engine latch released around the fsync, so concurrent
  backends batch under one leader); with ``synchronous_commit`` off,
  commits are acknowledged unflushed and a background flusher (or the
  next synchronous event) persists them;
* **checkpoints** -- flush WAL, write back every dirty page, rewrite
  the CLOG / old-serxid segments, then atomically publish
  ``checkpoint.json`` (tmp + fsync + rename) and reset the
  full-page-write tracker.

WAL record kinds ("t" field): ``ddl``, ``commit``, ``prepare``,
``cprep`` (commit prepared), ``aprep`` (rollback prepared). Redo
entries: ``["i", oid, page, slot, data, xmin, cmin]`` inserts a row
version; ``["m", oid, page, slot, xmax, cmax, next]`` stamps a
deleter; ``fpw`` entries carry whole-page payloads. Aborts of ordinary
transactions write nothing (presumed abort: an xid recovery cannot
prove committed is marked aborted, and MVCC makes its tuples
invisible -- the reason ARIES' UNDO pass is unnecessary here).
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Optional, Set

from repro.mvcc.clog import XidStatus
from repro.replication.wal import CommitRecord
from repro.storage.durable import pagefmt
from repro.storage.durable.bufferpool import DirtyPageTable, PageKey
from repro.storage.durable.io import DurableIO
from repro.storage.durable.pagestore import PageStore
from repro.storage.durable.walfile import WALFile

CHECKPOINT_VERSION = 1
STATUS_CHAR = {XidStatus.IN_PROGRESS: "I", XidStatus.COMMITTED: "C",
               XidStatus.ABORTED: "A"}
CHAR_STATUS = {v: k for k, v in STATUS_CHAR.items()}
#: old-serxid entries per serxid-table page.
SERXID_PER_PAGE = 128

INDEX_USING = {"BTreeIndex": "btree", "HashIndex": "hash",
               "GiSTIndex": "gist"}


def _jsonable_targets(targets) -> list:
    return sorted([list(t) for t in targets])


def tuples_deep(value):
    """JSON round-trip turns tuples into lists; SIREAD target keys and
    TIDs must come back as tuples to compare equal."""
    if isinstance(value, list):
        return tuple(tuples_deep(v) for v in value)
    return value


class DurabilityManager:
    def __init__(self, db, cfg) -> None:
        self.db = db
        self.cfg = cfg
        os.makedirs(cfg.data_dir, exist_ok=True)
        self.io = DurableIO(
            fsync=cfg.fsync,
            flush_latency=getattr(cfg, "modeled_flush_latency", 0.0))
        self.wal = WALFile(os.path.join(cfg.data_dir, "wal.log"), self.io,
                           group_commit=cfg.group_commit)
        self.store = PageStore(cfg.data_dir, self.io, cfg.page_bytes)
        self.pool = DirtyPageTable(cfg.max_dirty_pages, self._write_back)
        #: True while recovery replays the log: every hook is a no-op so
        #: replayed operations are not re-logged.
        self.replaying = bool(getattr(cfg, "_recovering", False))
        #: Pages whose full image already went to the WAL since the
        #: last checkpoint (torn-page protection needs only the first).
        self.fpw_done: Set[PageKey] = set()
        #: Acknowledged commits: xid -> end-LSN its frame needs durable.
        #: With synchronous_commit every entry is durable at ack time;
        #: without, stop()/close() must drain these before exiting.
        self.acked: Dict[int, int] = {}
        #: Installed by the threaded server: runs a flush with the
        #: engine latch released so backends batch under one fsync
        #: leader. None under the deterministic scheduler.
        self.flush_gate = None
        self.checkpoints = 0
        self._wal_bytes_at_ckpt = 0
        #: Serializes checkpoints: the engine latch is released around
        #: WAL fsyncs inside a checkpoint, so a second backend crossing
        #: the auto-checkpoint threshold could otherwise start an
        #: overlapping one (racing generation switches and the
        #: checkpoint.json publish).
        self._ckpt_lock = threading.Lock()
        self._closed = False
        self._flusher: Optional[threading.Thread] = None
        self._flusher_stop = threading.Event()
        m = db.obs.metrics
        self._c_fsyncs = m.counter("durable.wal_fsyncs")
        self._c_records = m.counter("durable.wal_records")
        self._c_writebacks = m.counter("durable.page_writebacks")
        self._c_checkpoints = m.counter("durable.checkpoints")
        m.gauge("durable.dirty_pages").set_function(lambda: len(self.pool))
        m.gauge("durable.wal_end_lsn").set_function(
            lambda: self.wal.end_lsn)
        m.gauge("durable.wal_durable_lsn").set_function(
            lambda: self.wal.durable_lsn)
        m.gauge("durable.group_commit_rides").set_function(
            lambda: self.wal.piggybacked)
        if not self.replaying:
            self.start_flusher()

    def start_flusher(self) -> None:
        """Start the background WAL flusher if the config wants one and
        it is not already running. Recovery constructs the manager with
        ``replaying=True`` (suppressing the ``__init__`` start), so
        ``open_database`` calls this again once replay finishes."""
        if (self.cfg.synchronous_commit or self.cfg.commit_delay <= 0
                or self.replaying or self._closed):
            return
        if self._flusher is None or not self._flusher.is_alive():
            self._flusher_stop.clear()
            self._flusher = threading.Thread(
                target=self._flusher_loop, name="wal-flusher", daemon=True)
            self._flusher.start()

    # ------------------------------------------------------------------
    # bootstrap
    # ------------------------------------------------------------------
    def startup(self) -> None:
        """Called at the end of Database.__init__ on a *fresh* data
        directory: publish the initial (empty-catalog) checkpoint that
        recovery will use as its base."""
        if self.replaying:
            return
        if not os.path.exists(self.checkpoint_path()):
            self.checkpoint()

    def checkpoint_path(self) -> str:
        return os.path.join(self.cfg.data_dir, "checkpoint.json")

    # ------------------------------------------------------------------
    # DDL hooks
    # ------------------------------------------------------------------
    def on_create_table(self, rel) -> None:
        if self.replaying:
            return
        self._append({"t": "ddl", "op": "create_table", "oid": rel.oid,
                      "name": rel.name, "columns": list(rel.columns)})
        self._flush()

    def on_create_index(self, index, table: str) -> None:
        if self.replaying:
            return
        self._append({"t": "ddl", "op": "create_index", "oid": index.oid,
                      "table": table, "column": index.column,
                      "name": index.name,
                      "unique": 1 if index.unique else 0,
                      "using": INDEX_USING.get(type(index).__name__,
                                               "btree")})
        self._flush()

    def on_drop_table(self, rel) -> None:
        if self.replaying:
            return
        self._append({"t": "ddl", "op": "drop_table", "oid": rel.oid,
                      "name": rel.name})
        self.pool.discard(lambda key: key[1] == rel.oid
                          and key[0] == pagefmt.KIND_HEAP)
        self.store.drop_heap(rel.oid)
        self._flush()

    # ------------------------------------------------------------------
    # DML capture
    # ------------------------------------------------------------------
    def on_write(self, txn, rel, kind: str, old, new) -> None:
        """Queue physiological redo for one executor write. FOR UPDATE
        tuple locks never reach here (lock-only xmax is not logged --
        locks do not survive a crash)."""
        if self.replaying:
            return
        redo = txn.__dict__.setdefault("_durable_redo", [])
        pages = txn.__dict__.setdefault("_durable_pages", set())
        if old is not None:
            nxt = ([old.next_tid.page, old.next_tid.slot]
                   if old.next_tid else None)
            redo.append(["m", rel.oid, old.tid.page, old.tid.slot,
                         old.xmax, old.cmax, nxt])
            pages.add((pagefmt.KIND_HEAP, rel.oid, old.tid.page))
        if new is not None:
            redo.append(["i", rel.oid, new.tid.page, new.tid.slot,
                         new.data, new.xmin, new.cmin])
            pages.add((pagefmt.KIND_HEAP, rel.oid, new.tid.page))

    # ------------------------------------------------------------------
    # transaction hooks
    # ------------------------------------------------------------------
    def on_commit(self, txn, marker: bool) -> None:
        if self.replaying:
            return
        seq = txn.sxact.commit_seq if txn.sxact is not None else None
        if txn.gid is not None:
            # COMMIT PREPARED: the prepare record already carries the
            # redo and pages; this frame just resolves the outcome.
            lsn = self._append({"t": "cprep", "gid": txn.gid,
                                "xid": txn.xid,
                                "c": sorted(txn.live_xids()),
                                "m": 1 if marker else 0, "seq": seq})
            self._stamp_logical(txn, lsn)
            if txn.wal_changes:
                self._ack(txn, lsn)
            # A branch with no redo needs no synchronous flush: losing
            # the frame leaves the prepare in doubt and the coordinator
            # decision log re-resolves it identically.
            return
        if not txn.wal_changes:
            # Nothing written: no redo, and recovery marking the xid
            # aborted is indistinguishable from this commit.
            return
        record = self._txn_record(txn)
        record.update({"t": "commit", "m": 1 if marker else 0, "seq": seq})
        lsn = self._append(record)
        self._stamp_logical(txn, lsn)
        self._mark_dirty(txn, lsn)
        self._ack(txn, lsn)
        self.maybe_auto_checkpoint()

    def _stamp_logical(self, txn, lsn: int) -> None:
        """Stamp the just-appended logical CommitRecord (replication
        stream) with its physical LSN, giving replicas a durable
        resume cursor."""
        wal = self.db.wal
        if wal and wal[-1].xid == txn.xid and wal[-1].lsn is None:
            wal[-1].lsn = lsn

    def on_prepare(self, txn) -> None:
        """PREPARE TRANSACTION: durable before the vote is returned --
        the section 7.1 contract -- carrying the SSI state (snapshot +
        SIREAD lock targets) the recovered transaction needs."""
        if self.replaying:
            return
        snap = txn.snapshot
        record = self._txn_record(txn)
        record.update({
            "t": "prepare", "gid": txn.gid,
            "iso": txn.isolation.value, "ro": 1 if txn.read_only else 0,
            "snap": {"xmin": snap.xmin, "xmax": snap.xmax,
                     "xip": sorted(snap.xip)},
            "siread": _jsonable_targets(
                getattr(txn, "persisted_siread", ()))})
        lsn = self._append(record)
        self._mark_dirty(txn, lsn)
        if txn.wal_changes:
            self._flush()
        # No redo: the record still goes to the WAL (in-doubt
        # bookkeeping + SIREAD targets) but the vote need not wait for
        # the device. If the unflushed record is lost in a crash the
        # branch simply vanishes -- it had no effects to make atomic,
        # and its SIREAD locks are moot because no pre-crash reader
        # survives recovery as active (the same argument that lets
        # single-node recovery drop committed transactions' SIREADs).

    def on_abort(self, txn) -> None:
        if self.replaying:
            return
        self.acked.pop(txn.xid, None)
        if txn.gid is not None:
            # ROLLBACK PREPARED must be logged: recovery would otherwise
            # resurrect the prepare record's transaction.
            self._append({"t": "aprep", "gid": txn.gid, "xid": txn.xid,
                          "ab": sorted(txn.all_xids)})

    def _txn_record(self, txn) -> Dict[str, Any]:
        live = sorted(txn.live_xids())
        aborted = sorted(set(txn.all_xids) - set(live))
        parents = {}
        for xid in sorted(txn.all_xids):
            parent = self.db.clog.parent_of(xid)
            if parent:
                parents[str(xid)] = parent
        record: Dict[str, Any] = {
            "xid": txn.xid, "c": live, "ab": aborted, "par": parents,
            "redo": list(txn.__dict__.get("_durable_redo", ())),
            "ch": [list(ch) for ch in txn.wal_changes],
        }
        if self.cfg.full_page_writes:
            fpw = []
            for key in sorted(txn.__dict__.get("_durable_pages", ())):
                if key in self.fpw_done:
                    continue
                self.fpw_done.add(key)
                _, oid, page_no = key
                fpw.append([oid, page_no, self._heap_page_payload(key)])
            if fpw:
                record["fpw"] = fpw
        return record

    # ------------------------------------------------------------------
    # WAL plumbing
    # ------------------------------------------------------------------
    def _append(self, record: Dict[str, Any]) -> int:
        lsn = self.wal.append(record)
        self._c_records.inc()
        return lsn

    def _over_checkpoint_threshold(self) -> bool:
        return bool(self.cfg.checkpoint_wal_bytes
                    and not self.replaying
                    and self.wal.end_lsn - self._wal_bytes_at_ckpt
                    >= self.cfg.checkpoint_wal_bytes)

    def maybe_auto_checkpoint(self) -> None:
        """Take a checkpoint once enough WAL accumulated. Called from
        Database *between* transactions -- never mid-record, so a
        checkpoint's redo_lsn can't split a commit from its dirty
        pages. Non-blocking: if another backend's checkpoint is in
        flight (possible because the engine latch is released around
        its WAL fsyncs), that one covers us -- blocking here while
        holding the engine latch would deadlock against the in-flight
        checkpointer reacquiring it."""
        if not self._over_checkpoint_threshold():
            return
        if not self._ckpt_lock.acquire(blocking=False):
            return
        try:
            # Re-check: the checkpoint we contended with may have
            # finished (resetting the WAL-bytes baseline) between the
            # threshold test and the acquire.
            if self._over_checkpoint_threshold():
                self._checkpoint_locked()
        finally:
            self._ckpt_lock.release()

    def _flush(self, upto: Optional[int] = None) -> None:
        before = self.wal.flushes
        if self.flush_gate is not None:
            self.flush_gate(lambda: self.wal.flush(upto))
        else:
            self.wal.flush(upto)
        self._c_fsyncs.inc(self.wal.flushes - before)
        if self.acked:
            durable = self.wal.durable_lsn
            for xid in [x for x, need in self.acked.items()
                        if need <= durable]:
                del self.acked[xid]

    def _ack(self, txn, lsn: int) -> None:
        self.acked[txn.xid] = self.wal.end_lsn
        if self.cfg.synchronous_commit:
            self._flush()

    def drain(self) -> None:
        """Make every acknowledged commit durable (server stop(), clean
        close): flush the whole WAL queue."""
        self._flush()

    def _mark_dirty(self, txn, lsn: int) -> None:
        for key in sorted(txn.__dict__.get("_durable_pages", ())):
            self.pool.mark_dirty(key, lsn)

    def mark_dirty(self, key: PageKey, lsn: int) -> None:
        """Recovery marks replayed pages dirty so the end-of-recovery
        checkpoint writes them back."""
        self.pool.mark_dirty(key, lsn)

    # ------------------------------------------------------------------
    # writeback (the pageLSN / WAL-before-data choke point)
    # ------------------------------------------------------------------
    def _write_back(self, key: PageKey, rec_lsn: int) -> None:
        """Write one page to its file, WAL first: the page carries
        pageLSN = rec_lsn, so WAL through rec_lsn must be durable before
        the page image may replace the old one on disk."""
        if self.wal.durable_lsn < rec_lsn:
            self._flush(rec_lsn)
        assert self.wal.durable_lsn >= rec_lsn, \
            "pageLSN rule: page writeback ahead of durable WAL"
        kind, oid, page_no = key
        self.store.write_page(kind, oid, page_no, rec_lsn,
                              self._heap_page_payload(key))
        self._c_writebacks.inc()

    def _heap_page_payload(self, key: PageKey) -> Dict[str, Any]:
        _, oid, page_no = key
        rel = self._rel_by_oid(oid)
        page = rel.heap.page(page_no)
        return {"s": [pagefmt.encode_tuple(t) if t is not None else None
                      for t in page.slots()]}

    def _rel_by_oid(self, oid: int):
        for rel in self.db.relations().values():
            if rel.oid == oid:
                return rel
        raise KeyError(f"no relation with oid {oid}")

    # ------------------------------------------------------------------
    # checkpoint
    # ------------------------------------------------------------------
    def checkpoint(self) -> Dict[str, Any]:
        """Flush WAL, write back all dirty pages and the CLOG/serxid
        segments, then atomically publish checkpoint.json. REDO after a
        crash starts at the returned ``redo_lsn``."""
        with self._ckpt_lock:
            return self._checkpoint_locked()

    def _checkpoint_locked(self) -> Dict[str, Any]:
        db = self.db
        # Commits can land *during* the checkpoint (the flush gate
        # releases the engine latch around WAL fsyncs in the flushes
        # below). Their pages stay in the dirty table, so redo must
        # start no later than the WAL end captured here -- a record
        # appended after this point may have neither its page on disk
        # nor (with an end-of-flush redo_lsn) a replay covering it.
        start_lsn = self.wal.end_lsn
        self._flush()
        self.pool.flush_all()
        # CLOG / serxid segments go to a *new* generation of files; the
        # published doc names them, so a crash mid-checkpoint (even one
        # tearing these writes) leaves the previous checkpoint's
        # generation untouched and fully usable.
        old_names = dict(self.store.special_names)
        self.store.begin_special_generation(self._next_segment_names())
        self._write_clog_pages()
        self._write_serxid_pages()
        self.store.fsync_touched()
        redo_lsn = min([start_lsn, *self.pool.entries().values()])
        doc = self._checkpoint_doc(redo_lsn)
        path = self.checkpoint_path()
        tmp = path + ".tmp"
        with open(tmp, "wb") as f:
            payload = json.dumps(doc, separators=(",", ":"),
                                 sort_keys=True).encode("utf-8")
            self.io.pwrite(f, tmp, 0, payload)
            self.io.fsync(f, tmp)
        os.replace(tmp, path)
        self.io.fsync_dir(self.cfg.data_dir)
        for key, name in old_names.items():
            if name != self.store.special_names[key]:
                self.store.remove_special(name)
        self.fpw_done.clear()
        self._wal_bytes_at_ckpt = self.wal.end_lsn
        self.checkpoints += 1
        self._c_checkpoints.inc()
        if db.obs.tracer is not None:
            db.obs.tracer.emit("durable.checkpoint", 0,
                               redo_lsn=doc["redo_lsn"])
        return doc

    def _next_segment_names(self) -> Dict[str, str]:
        current = self.store.special_names.get("clog", "clog.0.pg")
        try:
            seq = int(current.split(".")[1]) + 1
        except (IndexError, ValueError):
            seq = 1
        return {"clog": f"clog.{seq}.pg", "serxid": f"serxid.{seq}.pg"}

    def _checkpoint_doc(self, redo_lsn: int) -> Dict[str, Any]:
        db = self.db
        tables = []
        indexes = []
        for rel in sorted(db.relations().values(), key=lambda r: r.oid):
            tables.append({"oid": rel.oid, "name": rel.name,
                           "columns": list(rel.columns)})
            for index in rel.indexes.values():
                indexes.append({
                    "oid": index.oid, "table": rel.name,
                    "column": index.column, "name": index.name,
                    "unique": 1 if index.unique else 0,
                    "using": INDEX_USING.get(type(index).__name__,
                                             "btree")})
        indexes.sort(key=lambda i: i["oid"])
        prepared = []
        for gid in db.prepared_gids():
            txn = db._prepared[gid]
            snap = txn.snapshot
            live = sorted(txn.live_xids())
            prepared.append({
                "gid": gid, "xid": txn.xid, "c": live,
                "ab": sorted(set(txn.all_xids) - set(live)),
                "iso": txn.isolation.value,
                "ro": 1 if txn.read_only else 0,
                "snap": {"xmin": snap.xmin, "xmax": snap.xmax,
                         "xip": sorted(snap.xip)},
                "siread": _jsonable_targets(
                    getattr(txn, "persisted_siread", ())),
                "ch": [list(ch) for ch in txn.wal_changes]})
        old_serxid = {str(xid): [entry[0], entry[1]]
                      for xid, entry in db.ssi.old_serxid_table().items()}
        return {
            "version": CHECKPOINT_VERSION,
            "page_bytes": self.cfg.page_bytes,
            "heap_page_size": db.config.heap_page_size,
            "btree_page_size": db.config.btree_page_size,
            "next_xid": db.xids.next_xid,
            "next_oid": db._next_oid,
            "tables": tables, "indexes": indexes,
            "commit_counter": db.ssi.commit_seq_counter,
            "old_serxid": old_serxid,
            "prepared": prepared,
            "segment_files": dict(self.store.special_names),
            "redo_lsn": redo_lsn,
        }

    def _write_clog_pages(self) -> None:
        """Rewrite every CLOG segment (a few bytes/xid).

        A dense segment's JSON can exceed one frame (clog_segment_xids
        entries plus subtransaction parents), so segments are packed
        greedily into as many physical pages as their encoded size
        needs. Physical page numbers are just sequential positions in
        this checkpoint's fresh generation file: recovery merges
        entries by absolute xid (``b`` + offset), so where a segment's
        bytes land is invisible to it."""
        seg = self.cfg.clog_segment_xids
        segments: Dict[int, Dict[int, list]] = {}
        for xid, status in self.db.clog.entries().items():
            entry = segments.setdefault(xid // seg, {}).setdefault(
                xid % seg, [None, None])
            entry[0] = STATUS_CHAR[status]
        for xid, parent in self.db.clog.parents().items():
            entry = segments.setdefault(xid // seg, {}).setdefault(
                xid % seg, [None, None])
            entry[1] = parent
        # Conservative per-entry JSON cost upper bounds; the wrapper
        # ({"b":...,"seg":...,"st":{},"par":{}}) rides in the slack.
        budget = self.cfg.page_bytes - pagefmt.HEADER.size - 96
        page_no = 0
        for seg_no in sorted(segments):
            st: Dict[str, Any] = {}
            par: Dict[str, Any] = {}
            used = 0
            for off in sorted(segments[seg_no]):
                status_ch, parent = segments[seg_no][off]
                cost = ((len(str(off)) + 8 if status_ch is not None else 0)
                        + (len(str(off)) + len(str(parent)) + 6
                           if parent is not None else 0))
                if (st or par) and used + cost > budget:
                    self.store.write_page(
                        pagefmt.KIND_CLOG, 0, page_no, self.wal.end_lsn,
                        {"b": seg_no * seg, "seg": seg,
                         "st": st, "par": par})
                    page_no += 1
                    st, par, used = {}, {}, 0
                if status_ch is not None:
                    st[str(off)] = status_ch
                if parent is not None:
                    par[str(off)] = parent
                used += cost
            self.store.write_page(pagefmt.KIND_CLOG, 0, page_no,
                                  self.wal.end_lsn,
                                  {"b": seg_no * seg, "seg": seg,
                                   "st": st, "par": par})
            page_no += 1

    def _write_serxid_pages(self) -> None:
        """Rewrite the old-committed-serializable-xid table (the
        section 6.2 summary state: commit_seq + earliest conflict-out
        per summarized xid)."""
        items = sorted(self.db.ssi.old_serxid_table().items())
        for page_no in range(0, max(1, (len(items) + SERXID_PER_PAGE - 1)
                                    // SERXID_PER_PAGE)):
            chunk = items[page_no * SERXID_PER_PAGE:
                          (page_no + 1) * SERXID_PER_PAGE]
            payload = {"e": [[xid, entry[0], entry[1]]
                             for xid, entry in chunk]}
            self.store.write_page(pagefmt.KIND_SERXID, 0, page_no,
                                  self.wal.end_lsn, payload)

    # ------------------------------------------------------------------
    # async-commit flusher (PostgreSQL's walwriter)
    # ------------------------------------------------------------------
    def _flusher_loop(self) -> None:  # pragma: no cover - timing-driven
        while not self._flusher_stop.wait(self.cfg.commit_delay):
            try:
                self.wal.flush()
            except Exception:
                return

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def close(self, *, final_checkpoint: bool = True) -> None:
        """Clean shutdown: drain acknowledged commits, optionally take a
        shutdown checkpoint, close the files. Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._flusher_stop.set()
        if self._flusher is not None:
            self._flusher.join(timeout=5)
        self.drain()
        if final_checkpoint:
            self.checkpoint()
        self.wal.close()
        self.store.close()
