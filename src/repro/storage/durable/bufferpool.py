"""Dirty-page table with clock (second-chance) eviction.

The in-memory heap *is* the buffer pool's contents -- what this layer
adds, on top of the accounting-only :class:`repro.storage.buffer.
BufferManager`, is the durability bookkeeping: which pages have changes
not yet on disk (and up to which WAL position), and a clock sweep that
writes the coldest ones back when the dirty set outgrows
``max_dirty_pages`` -- bounding how much WAL a crash must replay.

Every writeback goes through the manager-provided callback, which
enforces the pageLSN rule: flush WAL through the page's recLSN *first*,
then write the page stamped with it. Data never gets ahead of the log.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

#: (kind, table oid, page_no)
PageKey = Tuple[int, int, int]


class DirtyPageTable:
    def __init__(self, max_dirty: int,
                 writeback: Callable[[PageKey, int], None]) -> None:
        self.max_dirty = max_dirty
        self._writeback = writeback
        #: key -> LSN of the latest WAL record that dirtied the page.
        self._lsn: Dict[PageKey, int] = {}
        #: Clock state: insertion-ordered ring + second-chance bits.
        self._ring: List[PageKey] = []
        self._ref: Dict[PageKey, bool] = {}
        self._hand = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._lsn)

    def entries(self) -> Dict[PageKey, int]:
        return dict(self._lsn)

    def rec_lsn(self, key: PageKey) -> int:
        return self._lsn.get(key, -1)

    # ------------------------------------------------------------------
    def mark_dirty(self, key: PageKey, lsn: int) -> None:
        if key in self._lsn:
            if lsn > self._lsn[key]:
                self._lsn[key] = lsn
            self._ref[key] = True  # recently used: survives one sweep
            return
        self._lsn[key] = lsn
        self._ref[key] = False
        self._ring.append(key)
        if self.max_dirty and len(self._lsn) > self.max_dirty:
            self._evict_one()

    def _evict_one(self) -> None:
        """Classic clock: skip-and-clear referenced pages, write back
        the first unreferenced one."""
        sweeps = 0
        while self._ring and sweeps < 2 * len(self._ring) + 1:
            if self._hand >= len(self._ring):
                self._hand = 0
            key = self._ring[self._hand]
            if key not in self._lsn:  # stale ring entry (flushed)
                self._ring.pop(self._hand)
                continue
            if self._ref.get(key):
                self._ref[key] = False
                self._hand += 1
                sweeps += 1
                continue
            self._ring.pop(self._hand)
            lsn = self._lsn.pop(key)
            self._ref.pop(key, None)
            self.evictions += 1
            self._writeback(key, lsn)
            return

    # ------------------------------------------------------------------
    def discard(self, key_filter: Callable[[PageKey], bool]) -> None:
        """Forget entries (dropped table) without writing them back."""
        for key in [k for k in self._lsn if key_filter(k)]:
            del self._lsn[key]
            self._ref.pop(key, None)

    def flush_all(self) -> List[PageKey]:
        """Write back everything dirty at entry (checkpoint); returns
        the keys written in deterministic order.

        The writeback callback may block on a WAL fsync with the engine
        latch released, so concurrent backends can commit and
        ``mark_dirty`` mid-flush. Those entries must survive: only a key
        whose recLSN is unchanged after its own writeback is dropped --
        anything added or re-dirtied during the flush stays in the table
        for the next writeback."""
        keys = sorted(self._lsn)
        for key in keys:
            lsn = self._lsn.get(key)
            if lsn is None:  # discarded concurrently (dropped table)
                continue
            self._writeback(key, lsn)
            if self._lsn.get(key) == lsn:
                del self._lsn[key]
                self._ref.pop(key, None)
        # Compact the ring to the surviving entries (dedup: a key popped
        # above and re-dirtied during a later writeback re-entered it).
        seen = set()
        survivors = []
        for key in self._ring:
            if key in self._lsn and key not in seen:
                survivors.append(key)
                seen.add(key)
        self._ring = survivors
        self._hand = 0
        return keys
