"""The physical write-ahead log.

A single append-only file of frames::

    <I I> payload_len crc32   +   compact-JSON payload

The LSN of a record is the byte offset of its frame -- strictly
monotonic, and "WAL through LSN x is durable" means "the first x bytes
of the file are durable", which is exactly what one fsync provides.

**Group commit** (leader/follower): a committing backend that needs
``flush(upto)`` while another backend's fsync is in flight parks on the
internal condition variable; the in-flight leader's fsync covers every
frame appended before it ran, so followers usually wake already
durable. One fsync amortizes over the whole batch -- the classic
PostgreSQL commit_delay-free group commit. With ``group_commit=False``
every committer performs its own serialized fsync (the ablation the
throughput bench measures).

Torn tails: a crash mid-append leaves a frame with a short body or a
CRC mismatch at the end of the file. :func:`read_wal` stops cleanly at
the first invalid frame; recovery then truncates the tail so new
appends stay contiguous. A commit is durable iff its complete frame
precedes the torn point -- the fsync boundary is the commit-visibility
guarantee, nothing stronger (see DESIGN.md "Durability").
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import DataCorruptionError
from repro.storage.durable.io import DurableIO

FRAME = struct.Struct("<II")


def encode_frame(record: Dict[str, Any]) -> bytes:
    body = json.dumps(record, separators=(",", ":"),
                      sort_keys=True).encode("utf-8")
    return FRAME.pack(len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def read_wal(path: str) -> Tuple[List[Tuple[int, Dict[str, Any]]], int]:
    """Read every intact frame: ``([(lsn, record), ...], valid_end)``.

    Stops -- without raising -- at the first short or checksum-failing
    frame: a torn tail is the *expected* crash artifact, and everything
    before it is the recovered prefix. ``valid_end`` is the truncation
    point for subsequent appends.
    """
    frames: List[Tuple[int, Dict[str, Any]]] = []
    if not os.path.exists(path):
        return frames, 0
    with open(path, "rb") as f:
        buf = f.read()
    pos = 0
    while pos + FRAME.size <= len(buf):
        length, crc = FRAME.unpack_from(buf, pos)
        body = buf[pos + FRAME.size:pos + FRAME.size + length]
        if len(body) < length or (zlib.crc32(body) & 0xFFFFFFFF) != crc:
            break
        try:
            record = json.loads(body.decode("utf-8"))
        except ValueError:
            break
        frames.append((pos, record))
        pos += FRAME.size + length
    return frames, pos


class WALFile:
    """Append + group-commit flush over one log file.

    Thread-safe on its own lock (not an engine latch): the engine latch
    is *released* around ``flush`` by the server's flush gate, so
    followers park here while other backends keep executing -- that is
    what makes the batching real.
    """

    def __init__(self, path: str, io: DurableIO, *,
                 group_commit: bool = True) -> None:
        self.path = path
        self.io = io
        self.group_commit = group_commit
        exists = os.path.exists(path)
        self._f = open(path, "r+b" if exists else "w+b")
        self._f.seek(0, os.SEEK_END)
        self._mu = threading.Lock()
        self._cv = threading.Condition(self._mu)
        #: Next append offset == current end of log.
        self._end = self._f.tell()
        #: Everything below this offset has been fsynced. Pre-existing
        #: content counts as durable: recovery re-validated it.
        self._durable = self._end
        self._flushing = False
        self.records = 0
        self.flushes = 0
        #: Commits whose flush returned without issuing an fsync because
        #: a concurrent leader's batch already covered them.
        self.piggybacked = 0

    # ------------------------------------------------------------------
    @property
    def end_lsn(self) -> int:
        return self._end

    @property
    def durable_lsn(self) -> int:
        return self._durable

    def append(self, record: Dict[str, Any]) -> int:
        """Write one frame (to the OS, not yet fsynced); returns its LSN."""
        frame = encode_frame(record)
        with self._mu:
            lsn = self._end
            self.io.pwrite(self._f, self.path, lsn, frame)
            self._end += len(frame)
            self.records += 1
            return lsn

    def flush(self, upto: Optional[int] = None) -> None:
        """Make WAL through ``upto`` (default: everything appended so
        far) durable. Group commit: at most one fsync in flight; late
        arrivals ride on it or lead the next batch."""
        with self._cv:
            target = self._end if upto is None else upto
            rode_along = False
            while True:
                if self._durable >= target:
                    if rode_along:
                        self.piggybacked += 1
                    return
                if self._flushing and self.group_commit:
                    rode_along = True
                    self._cv.wait()
                    continue
                if self._flushing:
                    # group commit off: serialize, then fsync ourselves
                    self._cv.wait()
                    continue
                self._flushing = True
                end = self._end
                break
        ok = False
        try:
            self.io.fsync(self._f, self.path)
            ok = True
        finally:
            with self._cv:
                self._flushing = False
                if ok:
                    self._durable = max(self._durable, end)
                    self.flushes += 1
                self._cv.notify_all()

    def truncate_to(self, size: int) -> None:
        """Drop a torn tail found by recovery."""
        with self._mu:
            self.io.truncate(self._f, self.path, size)
            self._f.seek(0, os.SEEK_END)
            self._end = size
            self._durable = min(self._durable, size)

    def close(self) -> None:
        with self._mu:
            if not self._f.closed:
                self._f.close()
