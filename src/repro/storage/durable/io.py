"""The physical IO seam: every durable byte goes through DurableIO.

One class owns positioned writes, fsyncs and truncation for the whole
durability layer, for two reasons:

* **fault injection** -- tests install :attr:`DurableIO.fault_hook`,
  which sees every IO operation *before* it happens and may cut power:
  raise :class:`SimulatedCrash`, or return a byte count ``k`` to tear
  the write (the first ``k`` bytes reach the file, then the "machine
  dies"). Enumerating hook call sites enumerates every crash point.
* **accounting** -- the hot-path counters (writes, fsyncs, bytes) that
  the group-commit benchmark and the durability sanitizer read.
"""

from __future__ import annotations

import os
import time  # repro: noqa(DET001) -- the modeled flush latency is a wall-clock sleep standing in for a storage device; it never feeds back into the logical history
from typing import BinaryIO, Callable, Optional


class SimulatedCrash(BaseException):
    """The simulated power cut.

    Deliberately a BaseException: no ``except Exception`` handler in
    the engine may swallow it, so it unwinds to the test harness with
    the on-disk state frozen exactly at the crash point.
    """

    def __init__(self, op: str, path: str, detail: str = "") -> None:
        super().__init__(f"simulated crash at {op} {path} {detail}".rstrip())
        self.op = op
        self.path = path


class DurableIO:
    """Positioned file IO with an injectable power-cut hook.

    The hook signature is ``hook(op, path, nbytes) -> Optional[int]``
    where ``op`` is ``"write"``, ``"fsync"`` or ``"truncate"``. It may:

    * return None -- the operation proceeds in full;
    * raise SimulatedCrash -- the operation never happens;
    * return an int ``k`` (write ops only) -- the first ``k`` bytes are
      written, then SimulatedCrash is raised: a torn write.
    """

    def __init__(self, *, fsync: bool = True,
                 flush_latency: float = 0.0) -> None:
        self.do_fsync = fsync
        #: Modeled device sync latency (seconds) added to every fsync.
        #: The sleep releases the GIL, so one slow "device" per shard
        #: overlaps with work on other shards -- exactly the resource
        #: the shard benchmark scales out.
        self.flush_latency = flush_latency
        self.fault_hook: Optional[Callable[[str, str, int],
                                           Optional[int]]] = None
        self.writes = 0
        self.fsyncs = 0
        self.bytes_written = 0

    # ------------------------------------------------------------------
    def pwrite(self, f: BinaryIO, path: str, offset: int,
               data: bytes) -> None:
        """Write ``data`` at ``offset``, flushed to the OS (safe against
        process kill; an fsync is still needed against power loss)."""
        torn = None
        if self.fault_hook is not None:
            torn = self.fault_hook("write", path, len(data))
        f.seek(offset)
        if torn is None:
            f.write(data)
            f.flush()
            self.writes += 1
            self.bytes_written += len(data)
            return
        f.write(data[:torn])
        f.flush()
        raise SimulatedCrash("write", path, f"torn at {torn}/{len(data)}")

    def append(self, f: BinaryIO, path: str, data: bytes) -> None:
        """Append at the file's current end (WAL frames)."""
        f.seek(0, os.SEEK_END)
        self.pwrite(f, path, f.tell(), data)

    def fsync(self, f: BinaryIO, path: str) -> None:
        if self.fault_hook is not None:
            torn = self.fault_hook("fsync", path, 0)
            if torn is not None:
                raise SimulatedCrash("fsync", path)
        f.flush()
        if self.do_fsync:
            os.fsync(f.fileno())
        if self.flush_latency > 0.0:
            time.sleep(self.flush_latency)
        self.fsyncs += 1

    def truncate(self, f: BinaryIO, path: str, size: int) -> None:
        """Cut a torn WAL tail so post-recovery appends are contiguous."""
        if self.fault_hook is not None:
            torn = self.fault_hook("truncate", path, size)
            if torn is not None:
                raise SimulatedCrash("truncate", path)
        f.truncate(size)
        f.flush()

    def fsync_dir(self, path: str) -> None:
        """Persist a directory entry (after create/rename)."""
        if not self.do_fsync:
            return
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
