"""Disk persistence: physical WAL, checksummed page files, REDO recovery.

The in-memory engine is the source of truth while running; this package
makes its state *durable*:

* :mod:`pagefmt` -- the fixed-size checksummed page frame (heap pages,
  CLOG segments, the old-committed-serializable-xid table);
* :mod:`walfile` -- the physical log: LSN-addressed frames with group
  commit (leader/follower fsync batching);
* :mod:`pagestore` / :mod:`bufferpool` -- page files plus the dirty-page
  table with clock eviction, every writeback ordered WAL-before-data by
  the pageLSN rule;
* :mod:`manager` -- the engine-facing hooks (commit/prepare/abort/DDL)
  and checkpoints;
* :mod:`recovery` -- ARIES-style REDO: replay the log from the last
  checkpoint into an identical database, including prepared-2PC SSI
  state per the paper's section 6 / 7.1 rule.

Everything is reached through one ``Database.durability`` attribute that
is None unless ``EngineConfig.durability.enabled`` -- the off path is
byte-identical to the in-memory engine.
"""

from repro.storage.durable.io import DurableIO, SimulatedCrash
from repro.storage.durable.manager import DurabilityManager
from repro.storage.durable.recovery import open_database

__all__ = ["DurableIO", "SimulatedCrash", "DurabilityManager",
           "open_database"]
