"""ARIES-style crash recovery: REDO from the last checkpoint.

:func:`open_database` is the one entry point: pointed at a data
directory it either initializes a fresh durable database or recovers
the existing one into a state equivalent to the instant of the crash:

1. **Analysis** -- read ``checkpoint.json`` (atomically published, so
   always intact) and every intact WAL frame; a torn tail is cut off.
   The checkpoint names the catalog, the CLOG/serxid segment files,
   prepared transactions, SSI counters, and ``redo_lsn``.
2. **REDO** -- rebuild the catalog (checkpoint tables plus replayed
   DDL), load the page files (a checksum-failing page is repaired from
   its full-page WAL image when one exists past ``redo_lsn``, else
   surfaces as DataCorruptionError), then replay commit/prepare frames
   in log order under the pageLSN rule: a page already carrying a
   record's effects skips it, which makes replay idempotent.
3. **No UNDO** -- MVCC is the undo log: any xid recovery cannot prove
   committed is marked aborted in the CLOG, and its tuple versions --
   possibly present on flushed pages -- are simply invisible forever
   (VACUUM reclaims them later).
4. **Prepared 2PC survivors** (paper section 7.1) -- transactions whose
   prepare record is durable but unresolved come back PREPARED: their
   snapshots, xid locks and persisted SIREAD locks are restored, and
   their SSI state is conservatively marked as having
   rw-antidependencies both in and out, exactly like
   ``Database.simulate_crash_recovery``.

The replayed database then takes an end-of-recovery checkpoint, so a
crash during recovery just repeats the same (idempotent) replay.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.config import EngineConfig
from repro.engine.isolation import IsolationLevel
from repro.engine.transaction import Transaction, TxnStatus
from repro.errors import DataCorruptionError
from repro.locks.modes import LockMode
from repro.mvcc.clog import XidStatus
from repro.mvcc.snapshot import Snapshot
from repro.mvcc.xid import XidAllocator
from repro.replication.wal import CommitRecord
from repro.storage.durable import pagefmt
from repro.storage.durable.manager import CHAR_STATUS, tuples_deep
from repro.storage.durable.walfile import read_wal
from repro.storage.page import HeapPage


def open_database(data_dir: str,
                  config: Optional[EngineConfig] = None):
    """Open (or create) a durable database rooted at ``data_dir``.

    A directory without a checkpoint is initialized fresh; otherwise
    the WAL is replayed from the last checkpoint and the recovered
    Database is returned, with a recovery report available as
    ``db.durability.last_recovery``.
    """
    from repro.engine.database import Database

    if config is None:
        cfg = EngineConfig.durable(data_dir)
    else:
        cfg = config
        cfg.durability.enabled = True
        cfg.durability.data_dir = data_dir
    ckpt_path = os.path.join(data_dir, "checkpoint.json")
    if not os.path.exists(ckpt_path):
        return Database(cfg)
    doc = _read_checkpoint(ckpt_path)
    # Page geometry is a property of the data directory, not the
    # caller's config: recovered pages must decode with the sizes they
    # were written with.
    cfg.heap_page_size = doc["heap_page_size"]
    cfg.btree_page_size = doc.get("btree_page_size", cfg.btree_page_size)
    cfg.durability.page_bytes = doc["page_bytes"]
    cfg.durability._recovering = True
    try:
        db = Database(cfg)
        mgr = db.durability
        report = _replay(db, mgr, doc)
    finally:
        del cfg.durability._recovering
    mgr.replaying = False
    mgr.checkpoint()  # end-of-recovery checkpoint
    mgr.start_flusher()  # __init__ skipped it while replaying
    mgr.last_recovery = report
    return db


def _read_checkpoint(path: str) -> Dict[str, Any]:
    try:
        with open(path, "rb") as f:
            return json.loads(f.read().decode("utf-8"))
    except (ValueError, OSError) as exc:
        raise DataCorruptionError(
            f"unreadable checkpoint {path}: {exc}", path=path,
            kind="checkpoint", reason="checksum") from None


class _PageState:
    """One heap page mid-replay: raw slot entries + pageLSN."""

    __slots__ = ("entries", "lsn", "free_from_image", "dirty")

    def __init__(self, entries: List[Optional[list]], lsn: int,
                 *, dirty: bool = False) -> None:
        self.entries = entries
        self.lsn = lsn
        self.free_from_image: Set[int] = {
            i for i, e in enumerate(entries) if e is None}
        self.dirty = dirty

    def install_image(self, entries: List[Optional[list]],
                      lsn: int) -> None:
        self.entries = list(entries)
        self.lsn = lsn
        self.free_from_image = {i for i, e in enumerate(self.entries)
                                if e is None}
        self.dirty = True

    def place(self, slot: int, entry: list) -> None:
        while len(self.entries) <= slot:
            # Padding for slots whose inserts never committed: dead
            # (not reusable), matching the uncrashed page where they
            # hold invisible tuples of crashed transactions.
            self.entries.append(None)
        self.entries[slot] = entry
        self.free_from_image.discard(slot)
        self.dirty = True

    def stamp(self, slot: int, xmax: int, cmax: int,
              nxt: Optional[list], *, path: str) -> None:
        if slot >= len(self.entries) or self.entries[slot] is None:
            raise DataCorruptionError(
                f"redo references missing tuple at slot {slot}",
                path=path, kind="heap", reason="redo-miss")
        entry = self.entries[slot]
        entry[3] = xmax
        entry[4] = cmax
        entry[5] = 0
        entry[6] = nxt
        self.dirty = True


def _replay(db, mgr, doc: Dict[str, Any]) -> Dict[str, Any]:
    store = mgr.store
    store.special_names.update(doc.get("segment_files", {}))
    wal_path = mgr.wal.path
    frames, valid_end = read_wal(wal_path)
    torn_bytes = os.path.getsize(wal_path) - valid_end
    if torn_bytes:
        mgr.wal.truncate_to(valid_end)
    redo_lsn = doc["redo_lsn"]
    replay = [(lsn, rec) for lsn, rec in frames if lsn >= redo_lsn]

    # ------------------------------------------------------------------
    # catalog: checkpoint tables, then replayed DDL (forced oids keep
    # physical identity -- TIDs and SIREAD targets are oid-addressed)
    # ------------------------------------------------------------------
    deferred_indexes: List[Dict[str, Any]] = list(doc["indexes"])
    for t in doc["tables"]:
        db._next_oid = t["oid"]
        rel = db.create_table(t["name"], t["columns"])
        assert rel.oid == t["oid"]
    # Replay can overlap the checkpoint doc: redo_lsn is the WAL end at
    # checkpoint *start*, and DDL may land while the checkpoint's WAL
    # fsyncs run with the engine latch released -- such a record is both
    # in the doc and in the replayed log, so each DDL op here tolerates
    # already being applied.
    for _lsn, rec in replay:
        if rec.get("t") != "ddl":
            continue
        if rec["op"] == "create_table":
            if rec["name"] not in db.relations():
                db._next_oid = rec["oid"]
                rel = db.create_table(rec["name"], rec["columns"])
                assert rel.oid == rec["oid"]
        elif rec["op"] == "drop_table":
            if rec["name"] in db.relations():
                db.drop_table(rec["name"])
        elif rec["op"] == "create_index":
            deferred_indexes.append(rec)
    live_rels = {rel.oid: rel for rel in db.relations().values()}
    deferred_indexes = [ix for ix in deferred_indexes
                        if ix["table"] in db.relations()]

    # FPW coverage: which damaged pages can be repaired from the log.
    fpw_cover = {(entry[0], entry[1])
                 for _lsn, rec in replay
                 for entry in rec.get("fpw", ())}

    # ------------------------------------------------------------------
    # load page files (repairing torn pages from FPW where possible)
    # ------------------------------------------------------------------
    pages: Dict[Tuple[int, int], _PageState] = {}
    repaired: List[Tuple[int, int]] = []
    for oid in live_rels:
        path = store.path_for(pagefmt.KIND_HEAP, oid)
        if not os.path.exists(path):
            continue
        with open(path, "rb") as f:
            page_no = 0
            while True:
                frame = f.read(store.page_bytes)
                if not frame:
                    break
                try:
                    decoded = pagefmt.decode_page(
                        frame, path=path, expect_kind=pagefmt.KIND_HEAP)
                except DataCorruptionError as exc:
                    if (oid, page_no) in fpw_cover:
                        # Torn write; REDO will reinstall the full
                        # image logged for this page.
                        pages[(oid, page_no)] = _PageState([], -1,
                                                           dirty=True)
                        repaired.append((oid, page_no))
                        page_no += 1
                        continue
                    raise DataCorruptionError(
                        f"{exc} (no full-page image available)",
                        path=exc.path, kind=exc.kind, page_no=page_no,
                        reason=exc.reason) from None
                if decoded is not None:
                    _, _, disk_no, page_lsn, payload = decoded
                    pages[(oid, disk_no)] = _PageState(
                        [e if e is not None else None
                         for e in payload["s"]], page_lsn)
                page_no += 1

    # ------------------------------------------------------------------
    # CLOG + old-serxid base state
    # ------------------------------------------------------------------
    statuses: Dict[int, XidStatus] = {}
    parents: Dict[int, int] = {}
    for _page_no, _lsn2, payload in store.read_pages(pagefmt.KIND_CLOG, 0):
        base = payload["b"]
        for off, ch in payload["st"].items():
            statuses[base + int(off)] = CHAR_STATUS[ch]
        for off, parent in payload["par"].items():
            parents[base + int(off)] = parent
    db.clog.restore(statuses, parents)
    old_serxid = {int(xid): (entry[0], entry[1])
                  for xid, entry in doc.get("old_serxid", {}).items()}
    for _page_no, _lsn2, payload in store.read_pages(pagefmt.KIND_SERXID,
                                                     0):
        for xid, seq, eo in payload["e"]:
            old_serxid.setdefault(int(xid), (seq, eo))

    # ------------------------------------------------------------------
    # REDO pass
    # ------------------------------------------------------------------
    ckpt_prepared = {p["gid"]: p for p in doc.get("prepared", ())}
    pending_prepared: Dict[str, Dict[str, Any]] = {}
    max_xid = doc["next_xid"] - 1
    commit_counter = doc["commit_counter"]
    commits_replayed = 0

    def register_xids(rec: Dict[str, Any]) -> None:
        nonlocal max_xid
        for xid in [*rec.get("c", ()), *rec.get("ab", ())]:
            max_xid = max(max_xid, xid)
        for child, parent in rec.get("par", {}).items():
            db.clog.register(int(child), parent)

    def apply_physical(rec: Dict[str, Any], lsn: int) -> None:
        touched: Set[Tuple[int, int]] = set()
        for oid, page_no, payload in rec.get("fpw", ()):
            key = (oid, page_no)
            if oid not in live_rels:
                continue
            state = pages.get(key)
            if state is None:
                state = pages[key] = _PageState([], -1, dirty=True)
            if state.lsn < lsn or key in touched:
                state.install_image(payload["s"], lsn)
                touched.add(key)
        for entry in rec.get("redo", ()):
            oid, page_no = entry[1], entry[2]
            if oid not in live_rels:
                continue
            key = (oid, page_no)
            state = pages.get(key)
            if state is None:
                state = pages[key] = _PageState([], -1, dirty=True)
            if not (state.lsn < lsn or key in touched):
                continue  # pageLSN rule: already on the page image
            touched.add(key)
            if entry[0] == "i":
                _op, _oid, _pg, slot, data, xmin, cmin = entry
                state.place(slot, [data, xmin, cmin, 0, 0, 0, None])
            else:
                _op, _oid, _pg, slot, xmax, cmax, nxt = entry
                state.stamp(slot, xmax, cmax, nxt,
                            path=store.path_for(pagefmt.KIND_HEAP, oid))
        for key in touched:
            pages[key].lsn = lsn

    for lsn, rec in replay:
        kind = rec.get("t")
        if kind == "commit":
            register_xids(rec)
            db.clog.set_committed(rec["c"])
            db.clog.set_aborted(rec["ab"])
            apply_physical(rec, lsn)
            db.wal.append(CommitRecord(
                xid=rec["xid"],
                changes=[tuple(ch) for ch in rec["ch"]],
                safe_snapshot_marker=bool(rec["m"]), lsn=lsn))
            if rec.get("seq"):
                commit_counter = max(commit_counter, int(rec["seq"]))
            commits_replayed += 1
        elif kind == "prepare":
            # A prepare that landed mid-checkpoint is also in the doc's
            # prepared set; the replayed frame (identical content) wins
            # so the survivor is not restored twice.
            ckpt_prepared.pop(rec["gid"], None)
            register_xids(rec)
            for xid in rec["c"]:
                if xid not in db.clog.entries():
                    db.clog.register(xid)
            db.clog.set_aborted(rec["ab"])
            apply_physical(rec, lsn)
            pending_prepared[rec["gid"]] = rec
        elif kind == "cprep":
            info = pending_prepared.pop(rec["gid"], None)
            if info is None:
                info = ckpt_prepared.pop(rec["gid"], None)
            if info is not None:
                db.clog.set_committed(info["c"])
                db.wal.append(CommitRecord(
                    xid=rec["xid"],
                    changes=[tuple(ch) for ch in info["ch"]],
                    safe_snapshot_marker=bool(rec["m"]), lsn=lsn))
            if rec.get("seq"):
                commit_counter = max(commit_counter, int(rec["seq"]))
            max_xid = max(max_xid, rec["xid"])
            commits_replayed += 1
        elif kind == "aprep":
            pending_prepared.pop(rec["gid"], None)
            ckpt_prepared.pop(rec["gid"], None)
            db.clog.set_aborted(rec["ab"])
            max_xid = max(max_xid, rec["xid"])

    # ------------------------------------------------------------------
    # install heaps
    # ------------------------------------------------------------------
    survivors = list(ckpt_prepared.values()) + list(
        pending_prepared.values())
    survivor_live: Set[int] = set()
    survivor_aborted: Set[int] = set()
    for info in survivors:
        survivor_live.update(info["c"])
        survivor_aborted.update(info["ab"])

    seen_xids: Set[int] = set()
    for oid, rel in sorted(live_rels.items()):
        page_nos = [p for (o, p) in pages if o == oid]
        heap_pages: List[HeapPage] = []
        for page_no in range(max(page_nos) + 1 if page_nos else 0):
            state = pages.get((oid, page_no))
            if state is None:
                heap_pages.append(HeapPage(page_no,
                                           db.config.heap_page_size))
                continue
            slots = []
            for slot, entry in enumerate(state.entries):
                if entry is None:
                    slots.append(None)
                    continue
                tup = pagefmt.decode_tuple(entry, page_no, slot)
                seen_xids.add(tup.xmin)
                if tup.xmax:
                    seen_xids.add(tup.xmax)
                slots.append(tup)
            heap_pages.append(HeapPage.restore(
                page_no, db.config.heap_page_size, slots,
                state.free_from_image))
        rel.heap.attach_pages(heap_pages)

    # ------------------------------------------------------------------
    # xid accounting: unknown xids belong to transactions that crashed
    # mid-flight -- mark them aborted (the MVCC stand-in for UNDO),
    # except prepared survivors, which stay in progress.
    # ------------------------------------------------------------------
    known = db.clog.entries()
    max_xid = max([max_xid, *known.keys(), *seen_xids], default=max_xid)
    for xid in sorted(seen_xids):
        if xid not in known and xid not in survivor_live:
            db.clog.register(xid)
            db.clog.set_aborted([xid])
    for xid in sorted(survivor_live):
        if xid not in known:
            db.clog.register(xid)
    db.clog.set_aborted(sorted(survivor_aborted))
    db.xids = XidAllocator(max_xid + 1)

    # ------------------------------------------------------------------
    # prepared-2PC survivors (section 7.1)
    # ------------------------------------------------------------------
    for info in sorted(survivors, key=lambda p: p["xid"]):
        snap = Snapshot(xmin=info["snap"]["xmin"],
                        xmax=info["snap"]["xmax"],
                        xip=frozenset(info["snap"]["xip"]))
        iso = IsolationLevel(info["iso"])
        txn = Transaction(info["xid"], iso, snap,
                          read_only=bool(info.get("ro")))
        txn.status = TxnStatus.PREPARED
        txn.gid = info["gid"]
        txn.merged_subs = [x for x in info["c"] if x != txn.xid]
        txn.all_xids = set(info["c"]) | set(info["ab"])
        txn.wal_changes = [tuple(ch) for ch in info["ch"]]
        txn.persisted_siread = {tuples_deep(t) for t in info["siread"]}
        db._active[txn.xid] = txn
        db._prepared[txn.gid] = txn
        db.lockmgr.acquire(txn.xid, ("xid", txn.xid),  # repro: noqa(LOCK002) -- re-taken for recovered prepared transactions; released when they resolve
                           LockMode.EXCLUSIVE)
        if iso.uses_ssi:
            sx = db.ssi.register_recovered_prepared(txn.xid, snap)
            db.ssi.lockmgr.restore_recovered(sx, txn.persisted_siread)
            txn.sxact = sx

    db.ssi.restore_recovered_state(commit_counter, old_serxid)

    # ------------------------------------------------------------------
    # rebuild indexes from the recovered heaps (forced oids), newest
    # catalog state only -- a dropped table's indexes died with it
    # ------------------------------------------------------------------
    next_oid = doc["next_oid"]
    # Dedupe by oid: an index created mid-checkpoint appears both in the
    # doc and as a replayed DDL record.
    unique_indexes: Dict[int, Dict[str, Any]] = {}
    for ix in deferred_indexes:
        unique_indexes.setdefault(ix["oid"], ix)
    for ix in sorted(unique_indexes.values(), key=lambda i: i["oid"]):
        db._next_oid = ix["oid"]
        index = db.create_index(ix["table"], ix["column"], name=ix["name"],
                                unique=bool(ix["unique"]),
                                using=ix.get("using", "btree"))
        assert index.oid == ix["oid"]
        next_oid = max(next_oid, ix["oid"] + 1)
    for t in doc["tables"]:
        next_oid = max(next_oid, t["oid"] + 1)
    for _lsn3, rec in replay:
        if rec.get("t") == "ddl":
            next_oid = max(next_oid, rec["oid"] + 1)
    db._next_oid = next_oid

    # Orphan page files (tables dropped after their last writeback).
    for oid in store.heap_oids():
        if oid not in live_rels:
            store.drop_heap(oid)

    # Replay-modified pages become dirty so the end-of-recovery
    # checkpoint writes them back.
    for (oid, page_no), state in sorted(pages.items()):
        if state.dirty:
            mgr.mark_dirty((pagefmt.KIND_HEAP, oid, page_no),
                           max(state.lsn, 0))

    db.statscat.bump_epoch()
    return {
        "redo_lsn": redo_lsn,
        "wal_end": valid_end,
        "torn_tail_bytes": torn_bytes,
        "frames_replayed": len(replay),
        "commits_replayed": commits_replayed,
        "repaired_pages": sorted(repaired),
        "prepared_recovered": sorted(db.prepared_gids()),
    }
