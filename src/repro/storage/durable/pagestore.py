"""Page files: positioned frames under ``<data_dir>/pages/``.

Heap relations get one file per table oid (``<oid>.pg``); the CLOG and
the old-committed-serializable-xid table get one file each. Page ``n``
of a file lives at byte offset ``n * page_bytes``, so holes (pages
never written back) read as zero frames and decode to None.

The store never decides *when* to write -- writeback ordering
(WAL-before-data) is the durability manager's job, which is why
``write_page`` is lint-restricted (rule DUR001) to the durable package.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.storage.durable import pagefmt
from repro.storage.durable.io import DurableIO


class PageStore:
    def __init__(self, data_dir: str, io: DurableIO,
                 page_bytes: int) -> None:
        self.dir = os.path.join(data_dir, "pages")
        os.makedirs(self.dir, exist_ok=True)
        self.io = io
        self.page_bytes = page_bytes
        self._files: Dict[str, Any] = {}
        #: page_lsn last written per (kind, oid, page_no) -- the
        #: durability sanitizer checks these never pass the durable WAL.
        self.written_lsns: Dict[Tuple[int, int, int], int] = {}
        self._touched: set = set()
        #: Checkpoint-versioned names for the CLOG / old-serxid segment
        #: files (``clog.<seq>.pg``). Each checkpoint writes a *fresh*
        #: generation and records the names in checkpoint.json, so a
        #: torn segment write during an in-flight checkpoint can never
        #: damage the files the *published* checkpoint points at (heap
        #: pages do not need this: full-page WAL images repair them).
        self.special_names: Dict[str, str] = {"clog": "clog.0.pg",
                                              "serxid": "serxid.0.pg"}

    # ------------------------------------------------------------------
    def path_for(self, kind: int, oid: int) -> str:
        if kind == pagefmt.KIND_HEAP:
            return os.path.join(self.dir, f"{oid}.pg")
        if kind == pagefmt.KIND_CLOG:
            return os.path.join(self.dir, self.special_names["clog"])
        return os.path.join(self.dir, self.special_names["serxid"])

    def _file(self, path: str):
        f = self._files.get(path)
        if f is None or f.closed:
            f = open(path, "r+b" if os.path.exists(path) else "w+b")
            self._files[path] = f
        return f

    # ------------------------------------------------------------------
    def write_page(self, kind: int, oid: int, page_no: int, page_lsn: int,
                   payload: Any) -> None:
        """Write one frame in place. Caller (the durability manager)
        guarantees WAL through ``page_lsn`` is already durable."""
        frame = pagefmt.encode_page(kind, oid, page_no, page_lsn,
                                    payload, self.page_bytes)
        path = self.path_for(kind, oid)
        self.io.pwrite(self._file(path), path, page_no * self.page_bytes,
                       frame)
        self.written_lsns[(kind, oid, page_no)] = page_lsn
        self._touched.add(path)

    def begin_special_generation(self, names: Dict[str, str]) -> None:
        """Switch to a fresh CLOG/serxid generation.

        A crash mid-checkpoint can leave an unpublished generation file
        on disk under the same name the next checkpoint picks (recovery
        restarts numbering from the *published* checkpoint's names), and
        ``write_page`` opens existing files ``r+b`` -- stale frames from
        the crashed attempt would survive past the rewritten prefix. So
        any leftover file under a new name is truncated here, and marked
        touched so the truncation is fsynced before the checkpoint that
        references it publishes."""
        self.special_names = dict(names)
        for name in names.values():
            path = os.path.join(self.dir, name)
            f = self._files.pop(path, None)
            if f is not None and not f.closed:
                f.close()
            if os.path.exists(path):
                f = open(path, "r+b")
                self._files[path] = f
                self.io.truncate(f, path, 0)
                self._touched.add(path)

    def fsync_touched(self) -> None:
        """Persist every file written since the last call (checkpoint
        step: after all writebacks, before the checkpoint record)."""
        for path in sorted(self._touched):
            f = self._files.get(path)
            if f is not None and not f.closed:
                self.io.fsync(f, path)
        self._touched.clear()

    # ------------------------------------------------------------------
    def read_pages(self, kind: int, oid: int
                   ) -> Iterator[Tuple[int, int, Any]]:
        """Yield ``(page_no, page_lsn, payload)`` for every non-hole
        page, raising DataCorruptionError on a damaged frame."""
        path = self.path_for(kind, oid)
        if not os.path.exists(path):
            return
        with open(path, "rb") as f:
            page_no = 0
            while True:
                frame = f.read(self.page_bytes)
                if not frame:
                    return
                decoded = pagefmt.decode_page(frame, path=path,
                                              expect_kind=kind)
                if decoded is not None:
                    _, _, disk_page_no, page_lsn, payload = decoded
                    yield disk_page_no, page_lsn, payload
                page_no += 1

    def remove_special(self, filename: str) -> None:
        """Delete a superseded CLOG/serxid generation (after the
        checkpoint naming its replacement is durably published)."""
        path = os.path.join(self.dir, filename)
        f = self._files.pop(path, None)
        if f is not None and not f.closed:
            f.close()
        if os.path.exists(path):
            os.remove(path)
        self._touched.discard(path)

    def heap_oids(self) -> List[int]:
        oids = []
        for entry in os.listdir(self.dir):
            stem, ext = os.path.splitext(entry)
            if ext == ".pg" and stem.isdigit():
                oids.append(int(stem))
        return sorted(oids)

    def drop_heap(self, oid: int) -> None:
        """Remove a dropped table's page file (cleanup, not correctness:
        recovery ignores files whose oid is absent from the catalog)."""
        path = self.path_for(pagefmt.KIND_HEAP, oid)
        f = self._files.pop(path, None)
        if f is not None and not f.closed:
            f.close()
        if os.path.exists(path):
            os.remove(path)
        self.written_lsns = {k: v for k, v in self.written_lsns.items()
                             if not (k[0] == pagefmt.KIND_HEAP
                                     and k[1] == oid)}

    def close(self) -> None:
        for f in self._files.values():
            if not f.closed:
                f.close()
        self._files.clear()
