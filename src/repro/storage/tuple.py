"""Heap tuples: row versions with MVCC headers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, NamedTuple, Optional

from repro.mvcc.xid import INVALID_XID


class TID(NamedTuple):
    """Physical tuple identifier: (page number, slot within page).

    SIREAD locks at tuple and page granularity are keyed by physical
    location (paper section 5.2.1), which is why table rewrites must
    promote them to relation granularity.
    """

    page: int
    slot: int


@dataclass(slots=True)
class HeapTuple:
    """One row version.

    Header fields follow PostgreSQL: ``xmin``/``cmin`` identify the
    creating transaction and command, ``xmax``/``cmax`` the deleting or
    replacing one. ``xmax_lock_only`` marks a FOR UPDATE-style tuple
    lock stored in xmax without deleting the tuple (HEAP_XMAX_LOCK_ONLY).
    ``next_tid`` is the forward ctid chain to the replacing version.

    The four ``*_committed``/``*_aborted`` booleans are infomask hint
    bits (HEAP_XMIN_COMMITTED & co.): a cache of the commit log's
    *final* verdict on xmin/xmax, set lazily by visibility checks so
    repeat scans skip the CLOG. They are advisory only -- a bit is set
    only once the corresponding status can never change again, so a
    set bit always agrees with the commit log -- and they are reset
    whenever xmax is restamped.
    """

    tid: TID
    data: Dict[str, Any]
    xmin: int
    cmin: int = 0
    xmax: int = INVALID_XID
    cmax: int = 0
    xmax_lock_only: bool = False
    next_tid: Optional[TID] = None
    # -- hint bits (lazily set, CLOG-consistent by construction) --------
    xmin_committed: bool = False
    xmin_aborted: bool = False
    xmax_committed: bool = False
    xmax_aborted: bool = False

    def set_deleter(self, xid: int, cid: int, *, lock_only: bool = False) -> None:
        self.xmax = xid
        self.cmax = cid
        self.xmax_lock_only = lock_only
        # The new xmax is in progress: any cached verdict on the old
        # xmax no longer applies.
        self.xmax_committed = False
        self.xmax_aborted = False

    def clear_deleter(self) -> None:
        """Remove an aborted deleter / released tuple lock."""
        self.xmax = INVALID_XID
        self.cmax = 0
        self.xmax_lock_only = False
        self.next_tid = None
        self.xmax_committed = False
        self.xmax_aborted = False
