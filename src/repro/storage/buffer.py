"""Buffer manager: page residency tracking with LRU eviction.

The simulator charges an I/O cost per buffer miss, which is how the
paper's disk-bound configurations (sections 8.2, 8.4) are modelled
without real disks: with a small buffer pool and a large per-miss
charge, I/O dominates and concurrency-control CPU overhead stops
mattering, compressing the SI/SSI/S2PL differences exactly as Figure 5b
shows.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

PageKey = Tuple[int, int]  # (relation oid, page number)


class BufferManager:
    """LRU page cache. ``capacity=None`` means everything fits
    (the paper's tmpfs configuration)."""

    def __init__(self, capacity: Optional[int] = None, obs=None) -> None:
        self.capacity = capacity
        self._lru: "OrderedDict[PageKey, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        #: Tracer (repro.obs), or None: touch() is the hottest loop in
        #: the engine, so the only overhead tolerated when tracing is
        #: off is one ``is not None`` test on the miss path.
        self._tracer = obs.tracer if obs is not None else None

    def touch(self, rel_oid: int, page_no: int) -> bool:
        """Access a page; returns True on a miss (I/O charged)."""
        key = (rel_oid, page_no)
        if self.capacity is None:
            # Unlimited cache: first touch of a page is still a miss.
            if key in self._lru:
                self.hits += 1
                return False
            self._lru[key] = None
            self.misses += 1
            if self._tracer is not None:
                self._tracer.emit("buf.miss", None, rel_oid=rel_oid,
                                  page_no=page_no)
            return True
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return False
        self._lru[key] = None
        if len(self._lru) > self.capacity:
            self._lru.popitem(last=False)
        self.misses += 1
        if self._tracer is not None:
            self._tracer.emit("buf.miss", None, rel_oid=rel_oid,
                              page_no=page_no)
        return True

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
