"""Per-relation visibility map (PostgreSQL's vm fork).

One all-visible bit per heap page. A set bit asserts that *every*
tuple on the page is visible to every current and future snapshot:
its creator committed before the oldest active snapshot's window and
it has no live or committed deleter. VACUUM is the only setter; every
write path that touches a page (insert into it, or stamping any
tuple's xmax) clears its bit first.

Scans use the bit to skip per-tuple visibility checks entirely -- and,
for a sequential scan whose relation-granularity SIREAD lock already
covers the page, the per-tuple SSI bookkeeping as well (the analogue
of an index-only scan's heap-fetch skip).
"""

from __future__ import annotations

from typing import Set


class VisibilityMap:
    """All-visible page bits for one heap."""

    __slots__ = ("_all_visible",)

    def __init__(self) -> None:
        self._all_visible: Set[int] = set()  # repro: guarded-by(ENGINE)

    def is_all_visible(self, page_no: int) -> bool:
        return page_no in self._all_visible

    def set_all_visible(self, page_no: int) -> None:
        self._all_visible.add(page_no)

    def clear(self, page_no: int) -> None:
        self._all_visible.discard(page_no)

    def clear_all(self) -> None:
        self._all_visible.clear()

    def all_visible_pages(self) -> Set[int]:
        return set(self._all_visible)

    def __len__(self) -> int:
        return len(self._all_visible)
