"""Slotted heap pages."""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator, List, Optional

from repro.storage.tuple import HeapTuple


class HeapPage:
    """A fixed-capacity array of tuple slots.

    Slots are never reused while a tuple occupies them; VACUUM frees
    slots of dead tuples, after which they can host new inserts. Keeping
    pages small (tens of tuples) makes page-granularity SIREAD locks and
    granularity promotion meaningful at laptop scale.

    Freed slots are tracked in a min-heap so ``add`` and ``has_room``
    are O(1)/O(log n) instead of scanning the slot array; the lowest
    freed slot is always reused first, preserving the original
    first-fit placement exactly.
    """

    __slots__ = ("page_no", "capacity", "_slots", "_free", "_live_cache")

    def __init__(self, page_no: int, capacity: int) -> None:
        self.page_no = page_no
        self.capacity = capacity
        self._slots: List[Optional[HeapTuple]] = []
        #: Min-heap of vacated slot indexes (each exactly once).
        self._free: List[int] = []
        #: Memoized live_tuples() result; dropped on any slot change.
        self._live_cache: Optional[List[HeapTuple]] = None

    def has_room(self) -> bool:
        return bool(self._free) or len(self._slots) < self.capacity

    def add(self, tup: HeapTuple) -> int:
        """Place a tuple in the lowest free slot; return the slot number."""
        self._live_cache = None
        if self._free:
            slot = heapq.heappop(self._free)
            self._slots[slot] = tup
            return slot
        if len(self._slots) >= self.capacity:
            raise ValueError(f"page {self.page_no} is full")
        self._slots.append(tup)
        return len(self._slots) - 1

    def slots(self) -> List[Optional[HeapTuple]]:
        """The raw slot array (copy), None for freed slots -- what the
        durability layer serializes: slot numbers are physical identity
        (TIDs, SIREAD lock targets), so pages must round-trip
        slot-exactly, not just tuple-exactly."""
        return list(self._slots)

    @classmethod
    def restore(cls, page_no: int, capacity: int,
                slots: List[Optional[HeapTuple]],
                free: Iterable[int] = ()) -> "HeapPage":
        """Rebuild a page from recovered slot contents.

        ``free`` lists the slots open for reuse (vacuumed before the
        page was written back). Trailing/interior None slots *not* in
        ``free`` stay unusable -- they belonged to crashed transactions
        whose inserts never reached the WAL, and the uncrashed engine
        would still have them occupied (by invisible tuples), so
        leaving them dead keeps post-recovery placement equivalent.
        """
        page = cls(page_no, capacity)
        page._slots = list(slots)
        page._free = [s for s in set(free)
                      if 0 <= s < len(slots) and slots[s] is None]
        heapq.heapify(page._free)
        return page

    def get(self, slot: int) -> Optional[HeapTuple]:
        if 0 <= slot < len(self._slots):
            return self._slots[slot]
        return None

    def remove(self, slot: int) -> None:
        if self._slots[slot] is not None:
            self._slots[slot] = None
            self._live_cache = None
            heapq.heappush(self._free, slot)

    def tuples(self) -> Iterator[HeapTuple]:
        for tup in self._slots:
            if tup is not None:
                yield tup

    def live_tuples(self) -> List[HeapTuple]:
        """The occupied slots as a list, in slot order (the batch
        executor's page-at-a-time unit; same tuples, same order as
        ``tuples()``). The list is shared across calls until the next
        slot change -- callers must treat it as read-only."""
        cached = self._live_cache
        if cached is None:
            self._live_cache = cached = [tup for tup in self._slots
                                         if tup is not None]
        return cached

    def __len__(self) -> int:
        return sum(1 for t in self._slots if t is not None)
