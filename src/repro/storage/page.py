"""Slotted heap pages."""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.storage.tuple import HeapTuple


class HeapPage:
    """A fixed-capacity array of tuple slots.

    Slots are never reused while a tuple occupies them; VACUUM frees
    slots of dead tuples, after which they can host new inserts. Keeping
    pages small (tens of tuples) makes page-granularity SIREAD locks and
    granularity promotion meaningful at laptop scale.
    """

    def __init__(self, page_no: int, capacity: int) -> None:
        self.page_no = page_no
        self.capacity = capacity
        self._slots: List[Optional[HeapTuple]] = []

    def has_room(self) -> bool:
        return len(self._slots) < self.capacity or None in self._slots

    def add(self, tup: HeapTuple) -> int:
        """Place a tuple in a free slot and return the slot number."""
        for i, slot in enumerate(self._slots):
            if slot is None:
                self._slots[i] = tup
                return i
        if len(self._slots) >= self.capacity:
            raise ValueError(f"page {self.page_no} is full")
        self._slots.append(tup)
        return len(self._slots) - 1

    def get(self, slot: int) -> Optional[HeapTuple]:
        if 0 <= slot < len(self._slots):
            return self._slots[slot]
        return None

    def remove(self, slot: int) -> None:
        self._slots[slot] = None

    def tuples(self) -> Iterator[HeapTuple]:
        for tup in self._slots:
            if tup is not None:
                yield tup

    def __len__(self) -> int:
        return sum(1 for t in self._slots if t is not None)
