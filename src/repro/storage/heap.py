"""Heap: the page collection backing one relation."""

from __future__ import annotations

import heapq
from typing import Any, Dict, Iterator, List, Optional

from repro.mvcc.clog import CommitLog
from repro.mvcc.visibility import page_all_visible, tuple_is_dead
from repro.storage.page import HeapPage
from repro.storage.tuple import TID, HeapTuple
from repro.storage.vismap import VisibilityMap


class Heap:
    """Append-mostly tuple storage with slot reuse after VACUUM.

    Free space is tracked two ways so ``insert`` never degrades to an
    O(pages) rescan:

    * with the FSM enabled (default), a min-heap of page numbers that
      have had a slot vacuumed, popped lazily as pages refill;
    * with it disabled, a lowest-page-with-room hint that the linear
      probe starts from (lowered on vacuum, advanced past full pages).

    Both pick the same page -- the lowest-numbered page with room, the
    original scan order -- so the toggle changes cost, not placement.
    """

    def __init__(self, page_size: int, *, use_fsm: bool = True,
                 track_all_visible: bool = True) -> None:
        self.page_size = page_size
        self._pages: List[HeapPage] = []
        self._use_fsm = use_fsm
        self._track_vis = track_all_visible
        #: All-visible page bits (see repro.storage.vismap).
        self.vismap = VisibilityMap()
        #: FSM: min-heap + membership set of pages with vacuumed slots.
        self._free_pages: List[int] = []
        self._free_set: set = set()
        #: Non-FSM probe start: no page below this has room (except the
        #: tail, which is checked separately).
        self._room_hint = 0

    # -- basic access ----------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self._pages)

    def page(self, page_no: int) -> Optional[HeapPage]:
        if 0 <= page_no < len(self._pages):
            return self._pages[page_no]
        return None

    def fetch(self, tid: TID) -> Optional[HeapTuple]:
        page = self.page(tid.page)
        return page.get(tid.slot) if page else None

    def insert(self, data: Dict[str, Any], xid: int, cid: int) -> HeapTuple:
        """Store a new tuple version; returns it with its TID set."""
        page = self._page_with_room()
        tup = HeapTuple(tid=TID(page.page_no, 0), data=dict(data),
                        xmin=xid, cmin=cid)
        slot = page.add(tup)
        tup.tid = TID(page.page_no, slot)
        self.vismap.clear(page.page_no)
        return tup

    def _note_free(self, page_no: int) -> None:
        """Record that ``page_no`` regained room (a slot was vacuumed)."""
        if page_no not in self._free_set:
            self._free_set.add(page_no)
            heapq.heappush(self._free_pages, page_no)
        if page_no < self._room_hint:
            self._room_hint = page_no

    def _page_with_room(self) -> HeapPage:
        # The last page first (the common append case), then the lowest
        # page with a vacuumed slot, then extend.
        if self._pages and self._pages[-1].has_room():
            return self._pages[-1]
        if self._use_fsm:
            while self._free_pages:
                page = self._pages[self._free_pages[0]]
                if page.has_room():
                    return page
                self._free_set.discard(heapq.heappop(self._free_pages))
        else:
            n = len(self._pages)
            while self._room_hint < n:
                page = self._pages[self._room_hint]
                if page.has_room():
                    return page
                self._room_hint += 1
        page = HeapPage(len(self._pages), self.page_size)
        self._pages.append(page)
        return page

    def attach_pages(self, pages: List[HeapPage]) -> None:
        """Install recovered pages (crash recovery only; the heap must
        be empty). Rebuilds free-space tracking from the pages' own
        room; the visibility map starts empty -- all-visible bits are a
        VACUUM byproduct and are conservatively dropped, so scans fall
        back to per-tuple checks until the next VACUUM."""
        assert not self._pages, "attach_pages on a non-empty heap"
        self._pages = list(pages)
        self.vismap = VisibilityMap()
        self._free_pages = []
        self._free_set = set()
        self._room_hint = 0
        for page in self._pages[:-1] if self._pages else []:
            # Interior pages advertise room only via vacuumed slots
            # (matching _note_free semantics); the tail page is always
            # probed directly.
            if page.has_room():
                self._note_free(page.page_no)

    # -- scans -------------------------------------------------------------
    def scan(self) -> Iterator[HeapTuple]:
        """All tuple versions, in physical order (sequential scan)."""
        for page in self._pages:
            yield from page.tuples()

    def scan_pages(self) -> Iterator[HeapPage]:
        yield from self._pages

    # -- maintenance ---------------------------------------------------------
    def vacuum(self, horizon_xmin: int, clog: CommitLog, *,
               use_hints: bool = False, hint_counter=None) -> List[HeapTuple]:
        """Remove tuple versions no snapshot can see.

        Returns the removed tuples (they carry their TID and data) so
        the caller can clean index entries. Tuples are not moved (plain
        VACUUM, not VACUUM FULL), so physical SIREAD lock targets stay
        valid (paper section 5.2.1).

        Also refreshes the visibility map: a page whose every surviving
        tuple is visible to all current and future snapshots gets its
        all-visible bit set; any other page has it cleared.
        """
        removed: List[HeapTuple] = []
        for page in self._pages:
            for slot in range(page.capacity):
                tup = page.get(slot)
                if tup is not None and tuple_is_dead(
                        tup, horizon_xmin, clog,
                        use_hints=use_hints, hint_counter=hint_counter):
                    page.remove(slot)
                    removed.append(tup)
                    self._note_free(page.page_no)
            if self._track_vis:
                if page_all_visible(page.tuples(), clog,
                                    horizon_xmin=horizon_xmin):
                    self.vismap.set_all_visible(page.page_no)
                else:
                    self.vismap.clear(page.page_no)
        return removed

    # -- introspection (free-space tracking; used by repro.analysis) ------
    @property
    def uses_fsm(self) -> bool:
        return self._use_fsm

    @property
    def room_hint(self) -> int:
        """Non-FSM probe start: no non-tail page below it has room."""
        return self._room_hint

    def fsm_entries(self) -> set:
        """Page numbers currently in the free-space map (lazy-deleted:
        entries may point at pages that refilled since)."""
        return set(self._free_set)

    def rewrite(self, keep) -> "Heap":
        """Physically rewrite the heap (CLUSTER / rewriting ALTER TABLE).

        ``keep`` is a predicate over tuples selecting versions to copy.
        Tuples move to new TIDs, which is why the engine must promote
        page- and tuple-granularity SIREAD locks on this relation to
        relation granularity (paper section 5.2.1). The new heap starts
        with an empty visibility map (VACUUM rebuilds it).
        """
        new = Heap(self.page_size, use_fsm=self._use_fsm,
                   track_all_visible=self._track_vis)
        for tup in self.scan():
            if keep(tup):
                page = new._page_with_room()
                moved = HeapTuple(tid=TID(page.page_no, 0), data=tup.data,
                                  xmin=tup.xmin, cmin=tup.cmin,
                                  xmax=tup.xmax, cmax=tup.cmax,
                                  xmax_lock_only=tup.xmax_lock_only,
                                  xmin_committed=tup.xmin_committed,
                                  xmin_aborted=tup.xmin_aborted,
                                  xmax_committed=tup.xmax_committed,
                                  xmax_aborted=tup.xmax_aborted)
                slot = page.add(moved)
                moved.tid = TID(page.page_no, slot)
        return new
