"""Heap: the page collection backing one relation."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

from repro.mvcc.clog import CommitLog
from repro.mvcc.visibility import tuple_is_dead
from repro.storage.page import HeapPage
from repro.storage.tuple import TID, HeapTuple


class Heap:
    """Append-mostly tuple storage with slot reuse after VACUUM."""

    def __init__(self, page_size: int) -> None:
        self.page_size = page_size
        self._pages: List[HeapPage] = []

    # -- basic access ----------------------------------------------------
    @property
    def page_count(self) -> int:
        return len(self._pages)

    def page(self, page_no: int) -> Optional[HeapPage]:
        if 0 <= page_no < len(self._pages):
            return self._pages[page_no]
        return None

    def fetch(self, tid: TID) -> Optional[HeapTuple]:
        page = self.page(tid.page)
        return page.get(tid.slot) if page else None

    def insert(self, data: Dict[str, Any], xid: int, cid: int) -> HeapTuple:
        """Store a new tuple version; returns it with its TID set."""
        page = self._page_with_room()
        tup = HeapTuple(tid=TID(page.page_no, 0), data=dict(data),
                        xmin=xid, cmin=cid)
        slot = page.add(tup)
        tup.tid = TID(page.page_no, slot)
        return tup

    def _page_with_room(self) -> HeapPage:
        # Check the last page first (the common case), then any page
        # with a vacuumed slot, then extend.
        if self._pages and self._pages[-1].has_room():
            return self._pages[-1]
        for page in self._pages:
            if page.has_room():
                return page
        page = HeapPage(len(self._pages), self.page_size)
        self._pages.append(page)
        return page

    # -- scans -------------------------------------------------------------
    def scan(self) -> Iterator[HeapTuple]:
        """All tuple versions, in physical order (sequential scan)."""
        for page in self._pages:
            yield from page.tuples()

    def scan_pages(self) -> Iterator[HeapPage]:
        yield from self._pages

    # -- maintenance ---------------------------------------------------------
    def vacuum(self, horizon_xmin: int, clog: CommitLog) -> List[HeapTuple]:
        """Remove tuple versions no snapshot can see.

        Returns the removed tuples (they carry their TID and data) so
        the caller can clean index entries. Tuples are not moved (plain
        VACUUM, not VACUUM FULL), so physical SIREAD lock targets stay
        valid (paper section 5.2.1).
        """
        removed: List[HeapTuple] = []
        for page in self._pages:
            for slot in range(page.capacity):
                tup = page.get(slot)
                if tup is not None and tuple_is_dead(tup, horizon_xmin, clog):
                    page.remove(slot)
                    removed.append(tup)
        return removed

    def rewrite(self, keep) -> "Heap":
        """Physically rewrite the heap (CLUSTER / rewriting ALTER TABLE).

        ``keep`` is a predicate over tuples selecting versions to copy.
        Tuples move to new TIDs, which is why the engine must promote
        page- and tuple-granularity SIREAD locks on this relation to
        relation granularity (paper section 5.2.1).
        """
        new = Heap(self.page_size)
        for tup in self.scan():
            if keep(tup):
                page = new._page_with_room()
                moved = HeapTuple(tid=TID(page.page_no, 0), data=tup.data,
                                  xmin=tup.xmin, cmin=tup.cmin,
                                  xmax=tup.xmax, cmax=tup.cmax,
                                  xmax_lock_only=tup.xmax_lock_only)
                slot = page.add(moved)
                moved.tid = TID(page.page_no, slot)
        return new
