"""Relations: a named heap plus its indexes."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.storage.heap import Heap


class Relation:
    """Catalog entry tying together a heap and its access paths.

    Index objects are duck-typed (see repro.index): they expose
    ``name``, ``oid``, ``column``, ``unique``,
    ``supports_predicate_locks``, ``insert_entry``, ``remove_entry``,
    ``search`` and ``range_search``.
    """

    def __init__(self, oid: int, name: str, columns: Sequence[str],
                 page_size: int, *, use_fsm: bool = True,
                 track_all_visible: bool = True) -> None:
        self.oid = oid
        self.name = name
        self.columns: List[str] = list(columns)
        self.heap = Heap(page_size, use_fsm=use_fsm,
                         track_all_visible=track_all_visible)
        self.indexes: Dict[str, object] = {}

    def add_index(self, index) -> None:
        self.indexes[index.name] = index

    def drop_index(self, name: str) -> None:
        del self.indexes[name]

    def index_on(self, column: str) -> Optional[object]:
        """An index whose key is ``column``, if any (planner helper)."""
        for index in self.indexes.values():
            if index.column == column:
                return index
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Relation {self.name} oid={self.oid} pages={self.heap.page_count}>"
